"""Electronic structure in a harmonic trap: eigenstates and a Hartree SCF.

The second GPAW workload motivating the paper (section II): the Kohn-Sham
equations apply the FD stencil to every wave function.  This example

1. diagonalizes ``H = -1/2 laplace + 1/2 omega^2 r^2`` and compares with
   the exact 3D harmonic-oscillator shells (n + 3/2) omega;
2. runs the self-consistent Hartree loop for two interacting electrons in
   the trap and reports the interaction-induced level shift.

Run:  python examples/electronic_structure.py
"""

import numpy as np

from repro.dft import Hamiltonian, SCFLoop, lowest_eigenstates, overlap_matrix
from repro.dft.density import total_charge
from repro.grid import GridDescriptor


def harmonic_potential(gd: GridDescriptor, omega: float = 1.0) -> np.ndarray:
    x, y, z = gd.coordinates()
    centre = (gd.shape[0] + 1) * gd.spacing / 2
    return 0.5 * omega**2 * (
        (x - centre) ** 2 + (y - centre) ** 2 + (z - centre) ** 2
    )


def main() -> None:
    gd = GridDescriptor((24, 24, 24), pbc=(False, False, False), spacing=0.4)
    v = harmonic_potential(gd)
    print(f"grid {gd.shape}, spacing {gd.spacing} a.u., omega = 1")

    # -- single-particle spectrum -------------------------------------------
    result = lowest_eigenstates(Hamiltonian(gd, v), k=5, tol=1e-7)
    exact = [1.5, 2.5, 2.5, 2.5, 3.5]
    print("\n  state   E_fd      E_exact")
    for i, (e, ex) in enumerate(zip(result.energies, exact)):
        print(f"  {i:3d}   {e:8.4f}   {ex:6.1f}")

    s = overlap_matrix(gd, result.states)
    print(f"max orthonormality error: {np.abs(s - np.eye(5)).max():.2e}")

    # -- two interacting electrons -------------------------------------------
    print("\nSCF (2 electrons, Hartree interaction):")
    scf = SCFLoop(
        gd, v, n_bands=1, occupations=[2.0], mixing=0.6,
        tolerance=1e-4, max_iterations=40, eig_tol=1e-7,
    )
    out = scf.run()
    print(f"  converged: {out.converged} after {out.iterations} iterations")
    print(f"  total charge: {total_charge(gd, out.density):.4f} e")
    print(f"  non-interacting level : {result.energies[0]:8.4f} Ha")
    print(f"  self-consistent level : {out.energies[0]:8.4f} Ha")
    print(f"  Hartree shift         : {out.energies[0] - result.energies[0]:8.4f} Ha")


if __name__ == "__main__":
    main()
