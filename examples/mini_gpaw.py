"""Mini-GPAW end to end: an LDA calculation with GPAW's own algorithm.

Everything the paper's introduction describes, in one run: a "molecule"
(two Gaussian potential wells), wave functions iterated with RMM-DIIS
(GPAW's residual-minimization eigensolver — the loop that applies the FD
stencil to every band, repeatedly), the Hartree potential from the
multigrid Poisson solver, LDA exchange-correlation, and a self-consistent
total energy.

Run:  python examples/mini_gpaw.py
"""

import numpy as np

from repro.dft import SCFLoop
from repro.dft.density import total_charge
from repro.grid import GridDescriptor


def two_wells(gd: GridDescriptor, depth=4.0, sigma=1.1, separation=2.2):
    """A diatomic-molecule-like external potential: two Gaussian wells."""
    x, y, z = gd.coordinates()
    c = (gd.shape[0] + 1) * gd.spacing / 2
    left = (x - (c - separation / 2)) ** 2 + (y - c) ** 2 + (z - c) ** 2
    right = (x - (c + separation / 2)) ** 2 + (y - c) ** 2 + (z - c) ** 2
    return -depth * (
        np.exp(-left / (2 * sigma**2)) + np.exp(-right / (2 * sigma**2))
    )


def main() -> None:
    gd = GridDescriptor((20, 20, 20), pbc=(False,) * 3, spacing=0.45)
    v_ext = two_wells(gd)
    print(f"grid {gd.shape}, spacing {gd.spacing} a.u.")
    print("external potential: two Gaussian wells (a 'diatomic molecule')")

    scf = SCFLoop(
        gd, v_ext, n_bands=2, occupations=[2.0, 2.0], mixing=0.5,
        tolerance=1e-4, max_iterations=40, eig_tol=1e-6,
        xc="lda", eigensolver="rmm-diis",
    )
    out = scf.run()

    print(f"\nSCF (RMM-DIIS + LDA): converged={out.converged} "
          f"in {out.iterations} iterations")
    print(f"  electrons            : {total_charge(gd, out.density):.4f}")
    print(f"  band energies        : "
          + ", ".join(f"{e:.4f}" for e in out.energies) + " Ha")
    print(f"  total energy         : {out.total_energy:.4f} Ha")

    # bonding vs antibonding character: the ground state is symmetric
    # (no node between the wells), the second state antisymmetric.
    mid = gd.shape[0] // 2
    ground = out.states[0]
    excited = out.states[1]
    print(f"  |psi_0| at bond mid  : {abs(ground[mid, mid, mid]):.4f} (bonding: large)")
    print(f"  |psi_1| at bond mid  : {abs(excited[mid, mid, mid]):.4f} (antibonding: ~0)")

    # density profile along the molecular axis
    profile = out.density[:, mid, mid]
    peak = profile.max()
    print("\n  density along the bond axis:")
    for i in range(0, gd.shape[0], 2):
        bar = "#" * int(profile[i] / peak * 40)
        print(f"   x={i * gd.spacing:5.2f}  {bar}")


if __name__ == "__main__":
    main()
