"""Solve the electrostatic Poisson equation for a Gaussian charge.

One of the two GPAW workloads that motivate the paper's stencil (section
II): the Hartree potential solves ``laplace(phi) = -4 pi rho`` by finite
differences.  This example builds a normalized Gaussian charge in an open
box, solves with the multigrid solver, and compares against the analytic
potential ``erf(r / sqrt(2) sigma) / r``.

Run:  python examples/poisson_solver.py
"""

import numpy as np
from scipy.special import erf

from repro.dft import Laplacian, PoissonSolver
from repro.grid import GridDescriptor


def main() -> None:
    gd = GridDescriptor((32, 32, 32), pbc=(False, False, False), spacing=0.5)
    sigma = 1.2

    x, y, z = gd.coordinates()
    centre = (gd.shape[0] + 1) * gd.spacing / 2
    r2 = (x - centre) ** 2 + (y - centre) ** 2 + (z - centre) ** 2
    rho = np.exp(-r2 / (2 * sigma**2)) / (sigma**3 * (2 * np.pi) ** 1.5)
    charge = rho.sum() * gd.spacing**3
    print(f"grid {gd.shape}, spacing {gd.spacing}, total charge {charge:.4f} e")

    for method in ("multigrid", "jacobi"):
        solver = PoissonSolver(gd, method=method, tolerance=1e-8,
                               max_iterations=4000)
        result = solver.solve(rho)
        print(
            f"{method:10s}: converged={result.converged} "
            f"iterations={result.iterations:4d} "
            f"residual={result.residual_norm:.2e}"
        )

    result = PoissonSolver(gd, tolerance=1e-9).solve(rho)

    # verify the PDE itself
    lhs = Laplacian(gd).apply(result.potential)
    rhs = -4 * np.pi * rho
    pde_err = np.linalg.norm(lhs - rhs) / np.linalg.norm(rhs)
    print(f"relative PDE residual: {pde_err:.2e}")

    # compare with the analytic solution along the box diagonal
    r = np.sqrt(np.maximum(r2, 1e-12))
    exact = erf(r / (np.sqrt(2) * sigma)) / r
    print("\n  r (a.u.)   phi_fd     phi_exact  (zero-boundary box truncates ~0.12)")
    n = gd.shape[0]
    for i in range(n // 2, n, 3):
        print(
            f"  {r[i, i, i]:8.3f}  {result.potential[i, i, i]:9.5f}  "
            f"{exact[i, i, i]:9.5f}"
        )


if __name__ == "__main__":
    main()
