"""Watch the latency hiding happen: activity traces of the FD schedules.

Runs the same small FD job through the DES machine under Flat original and
Flat optimized, then renders each run's per-core and per-link activity as
an ASCII Gantt chart.  The original's cores sit idle while its blocking
exchanges serialize; the optimized schedule's link activity hides under
the compute bars — the mechanism behind the paper's entire speedup.

Run:  python examples/latency_hiding_gantt.py
"""

from repro.core import FDJob, FLAT_OPTIMIZED, FLAT_ORIGINAL, simulate_fd
from repro.grid import GridDescriptor


def show(approach, batch_size):
    job = FDJob(GridDescriptor((24, 24, 24)), 8)
    result = simulate_fd(job, approach, 8, batch_size=batch_size, trace=True)
    trace = result.trace
    rows = [r for r in trace.resources() if r.startswith("node0")]
    rows += [r for r in trace.resources() if r.startswith("link0")]
    print(f"\n=== {approach.name} (batch {batch_size}) — "
          f"total {result.total * 1e3:.3f} ms, "
          f"utilization {result.utilization:.0%} ===")
    print(trace.gantt(width=70, resources=rows))


def main() -> None:
    print("8 grids of 24^3 on 8 cores (2 virtual-node BG/P nodes);")
    print("node0's cores and outgoing links, time flowing right.")
    show(FLAT_ORIGINAL, 1)
    show(FLAT_OPTIMIZED, 2)
    print(
        "\nReading: in the original schedule the cores' bars are broken by"
        "\nidle gaps while each blocking exchange completes; in the"
        "\noptimized schedule the link bars run *underneath* solid compute"
        "\nbars — communication happens, but nobody waits for it."
    )


if __name__ == "__main__":
    main()
