"""Quickstart: the distributed finite-difference operation in five minutes.

Builds a small set of real-space grids, applies the paper's 13-point
stencil with all four programming approaches on an in-process 8-rank
"cluster", verifies every approach against the sequential kernel, and then
asks the performance model what the same job would cost on a real
Blue Gene/P partition.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    ALL_APPROACHES,
    DistributedStencil,
    FDJob,
    PerformanceModel,
    SequentialStencil,
)
from repro.grid import Decomposition, GridDescriptor, HaloSpec, gather, scatter
from repro.stencil import laplacian_coefficients
from repro.transport import run_ranks


def main() -> None:
    # -- 1. a grid set: four 32^3 periodic wave-function-like grids --------
    gd = GridDescriptor((32, 32, 32), pbc=(True, True, True), spacing=0.25)
    n_grids, n_ranks = 4, 8
    arrays = {gid: gd.random(seed=gid) for gid in range(n_grids)}
    print(f"{n_grids} grids of {gd.shape}, {gd.nbytes / 1e6:.1f} MB each")

    # -- 2. decompose over 8 ranks and build the engine --------------------
    decomp = Decomposition(gd, n_ranks)
    coeffs = laplacian_coefficients(radius=2, spacing=gd.spacing)
    engine = DistributedStencil(decomp, coeffs)
    halo = HaloSpec(coeffs.radius)
    print(f"decomposition: {decomp.domains_shape} blocks of {decomp.block_shape(0)}")

    # -- 3. run every approach and check against the sequential kernel ------
    expected = SequentialStencil(gd, coeffs).apply(arrays)
    for approach in ALL_APPROACHES:
        blocks = {gid: scatter(a, decomp, halo) for gid, a in arrays.items()}
        batch = 2 if approach.supports_batching else 1

        def rank_fn(ep):
            mine = {gid: blocks[gid][ep.rank] for gid in arrays}
            return engine.apply(ep, mine, approach=approach, batch_size=batch)

        results = run_ranks(n_ranks, rank_fn)
        for gid in arrays:
            got = gather([results[r][gid] for r in range(n_ranks)])
            np.testing.assert_allclose(got, expected[gid], rtol=1e-12)
        print(f"  {approach.name:20s} matches the sequential stencil")

    # -- 4. what would this cost on a real BG/P? ---------------------------
    pm = PerformanceModel()
    job = FDJob(GridDescriptor((144, 144, 144)), 32)
    seq = pm.sequential_time(job)
    print(f"\nmodelled BG/P, 32 grids of 144^3 (sequential: {seq:.2f} s):")
    for cores in (512, 2048):
        row = []
        for approach in ALL_APPROACHES:
            batch = 8 if approach.supports_batching else 1
            t = pm.evaluate(job, approach, cores, batch_size=batch)
            row.append(f"{approach.name}: {seq / t.total:7.0f}x")
        print(f"  {cores:5d} cores  " + "   ".join(row))


if __name__ == "__main__":
    main()
