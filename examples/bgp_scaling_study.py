"""Full scaling study: regenerate every table/figure of the paper's
evaluation from the performance model.

Prints Table I, the Fig 5 speedup curves (batched and unbatched), the
Fig 6 Gustafson table with per-node communication, the Fig 7 large-job
speedups, the section VII-A sub-group ablation, and the section VIII
headline numbers with the paper's values alongside.

Run:  python examples/bgp_scaling_study.py
"""

from repro.analysis import (
    ablation_subgroups,
    fig5_rows,
    fig6_rows,
    fig7_rows,
    format_table,
    headline_numbers,
    table1,
)

NAMES = ["flat-original", "flat-optimized", "hybrid-multiple", "hybrid-master-only"]
SHORT = {"flat-original": "orig", "flat-optimized": "opt",
         "hybrid-multiple": "hyb-mult", "hybrid-master-only": "hyb-master"}


def main() -> None:
    print(format_table(["item", "value"], table1(), title="Table I — BG/P node"))

    for batching in (False, True):
        rows = fig5_rows(batching, cores=(1, 512, 1024, 2048, 4096))
        label = "batch-size 8" if batching else "batching disabled"
        table = [
            [r.n_cores] + [round(r.speedups.get(n, float("nan")), 1) for n in NAMES]
            for r in rows
        ]
        print()
        print(format_table(
            ["cores"] + [SHORT[n] for n in NAMES], table,
            title=f"Fig 5 — speedup vs sequential, 32 grids of 144^3 ({label})",
        ))

    rows6 = fig6_rows(cores=(512, 1024, 2048, 4096, 8192, 16384))
    table6 = [
        [r.n_cores]
        + [round(r.times[n], 3) for n in NAMES]
        + [round(r.flat_comm_mb, 1), round(r.hybrid_comm_mb, 1)]
        for r in rows6
    ]
    print()
    print(format_table(
        ["cores=grids"] + [SHORT[n] + " s" for n in NAMES] + ["flat MB/node", "hyb MB/node"],
        table6,
        title="Fig 6 — Gustafson: grids = cores, 192^3, best batch-size",
    ))

    rows7 = fig7_rows()
    table7 = [
        [r.n_cores] + [round(r.speedups[n], 2) for n in NAMES] for r in rows7
    ]
    print()
    print(format_table(
        ["cores"] + [SHORT[n] for n in NAMES], table7,
        title="Fig 7 — speedup vs flat-original @ 1k cores, 2816 grids of 192^3",
    ))

    sub, hyb = ablation_subgroups()
    print(
        f"\nSection VII-A ablation: flat + static sub-groups = {sub.total:.3f} s, "
        f"hybrid multiple = {hyb.total:.3f} s "
        f"(difference {abs(sub.total - hyb.total) / hyb.total * 100:.1f}%, "
        "paper: identical)"
    )

    h = headline_numbers()
    print("\nSection VIII headline numbers (model vs paper):")
    print(f"  speedup vs original @16k cores : {h.speedup_vs_original:.2f}  (paper 1.94)")
    print(f"  utilization, original         : {h.utilization_original:.0%}  (paper 36%)")
    print(f"  utilization, hybrid multiple  : {h.utilization_hybrid:.0%}  (paper 70%)")
    print(f"  hybrid vs flat optimized      : {(h.hybrid_vs_flat_optimized - 1) * 100:.0f}%  (paper ~10%)")


if __name__ == "__main__":
    main()
