"""Reproduce the paper's message-size experiment (Figure 2).

Sends one MPI message of each size between two neighbouring nodes of the
simulated Blue Gene/P and plots achieved bandwidth against message size as
an ASCII chart, annotating the two anchor points the paper calls out:
half the asymptotic bandwidth near 10^3 bytes, saturation above 10^5.

Run:  python examples/message_size_sweep.py
"""

from repro.netmodel import measured_bandwidth_curve
from repro.util.units import MB


def main() -> None:
    sizes = [10**e for e in range(8)]  # 10^0 .. 10^7, like the figure
    points = measured_bandwidth_curve(sizes)
    peak = max(p.bandwidth for p in points)

    print("Fig 2 — one message between two neighbouring BG/P nodes\n")
    print("   size (B)   bandwidth      ")
    width = 52
    for p in points:
        bar = "#" * max(1, int(p.bandwidth / peak * width))
        print(f"  {p.message_bytes:9d}  {p.bandwidth / MB:8.2f} MB/s  {bar}")

    half = min(points, key=lambda p: abs(p.bandwidth - peak / 2))
    sat = next(p for p in points if p.bandwidth >= 0.95 * peak)
    print(f"\n  asymptotic bandwidth : {peak / MB:.0f} MB/s")
    print(f"  half bandwidth at    : ~10^{len(str(half.message_bytes)) - 1} bytes "
          "(paper: ~10^3)")
    print(f"  saturation (95%) at  : ~10^{len(str(sat.message_bytes)) - 1} bytes "
          "(paper: >10^5)")
    print("\nThis latency/bandwidth trade-off is why the FD engine packs "
          "grid surfaces into batches (section V-A).")


if __name__ == "__main__":
    main()
