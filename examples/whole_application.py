"""Whole-application outlook: is rewriting all of GPAW worth it? (§VIII-A)

The paper optimizes only the finite-difference kernel and leaves the rest
of GPAW as "further work".  This example uses the whole-application model
to quantify that outlook for a full SCF iteration: phase breakdown of the
original code, the gain from the paper's FD-only optimization (Amdahl),
and the gain from a full hybrid/latency-hiding rewrite — for both a
band-heavy production job and a lean few-band job.

Run:  python examples/whole_application.py
"""

from repro.analysis import format_table
from repro.core import FDJob, WholeAppModel
from repro.grid import GridDescriptor


def report(model: WholeAppModel, job: FDJob, label: str) -> None:
    print(f"\n=== {label}: {job.n_grids} bands of {job.grid.shape} ===")
    rows = []
    for cores in (1024, 4096, 16384):
        t = model.original(job, cores)
        f = t.fractions()
        g = model.gains(job, cores)
        rows.append([
            cores,
            round(t.total, 3),
            f"{f['fd']:.0%}",
            f"{f['subspace']:.0%}",
            f"{f['poisson'] + f['density']:.0%}",
            round(g["fd_only"], 2),
            round(g["amdahl"], 2),
            round(g["full"], 2),
        ])
    print(format_table(
        ["cores", "orig s/SCF", "FD", "subspace", "other",
         "FD-only gain", "Amdahl gain", "full-rewrite gain"],
        rows,
    ))


def main() -> None:
    model = WholeAppModel()

    # The paper's Fig 7 workload: thousands of bands — the subspace GEMMs
    # weigh heavily, diluting the FD-only gain (Amdahl's law).
    report(model, FDJob(GridDescriptor((192, 192, 192)), 2816),
           "production job")

    # A lean job where the FD operation dominates: here the whole-app gain
    # approaches the kernel gain, the regime of the paper's conjecture.
    report(model, FDJob(GridDescriptor((192, 192, 192)), 128), "lean job")

    print(
        "\nReading: the 1.94x kernel gain survives as a whole-application"
        "\ngain only where the FD step dominates the iteration — the"
        "\nquantitative version of the paper's closing 'a lot of work"
        "\nremains' caveat."
    )


if __name__ == "__main__":
    main()
