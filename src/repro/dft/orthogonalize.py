"""Wave-function orthogonalization.

This is the operation that pins GPAW's data layout: orthogonalizing the
band set needs *the same subset of every grid* on every process
(section IV of the paper), because the overlap matrix couples all bands
point by point.  We provide the two standard schemes:

* modified Gram-Schmidt — sequential, numerically robust;
* Löwdin (symmetric) orthogonalization — ``S^{-1/2}`` via an eigen
  decomposition of the overlap matrix; treats all bands symmetrically,
  which is what GPAW actually does.

The grid inner product carries the ``h^3`` volume element so that
orthonormality means physical normalization.
"""

from __future__ import annotations

import numpy as np

from repro.grid.grid import GridDescriptor


def overlap_matrix(grid: GridDescriptor, states: np.ndarray) -> np.ndarray:
    """``S_ij = <psi_i | psi_j>`` over the grid (with volume element)."""
    if states.ndim != 4 or states.shape[1:] != grid.shape:
        raise ValueError(
            f"states must be (bands, {grid.shape}); got {states.shape}"
        )
    flat = states.reshape(states.shape[0], -1)
    h3 = grid.spacing ** 3
    return (flat.conj() @ flat.T) * h3


def gram_schmidt(grid: GridDescriptor, states: np.ndarray) -> np.ndarray:
    """Modified Gram-Schmidt orthonormalization of a band set."""
    if states.ndim != 4 or states.shape[1:] != grid.shape:
        raise ValueError(
            f"states must be (bands, {grid.shape}); got {states.shape}"
        )
    h3 = grid.spacing ** 3
    out = states.astype(states.dtype, copy=True)
    n = out.shape[0]
    for i in range(n):
        for j in range(i):
            proj = np.vdot(out[j], out[i]) * h3
            out[i] = out[i] - proj * out[j]
        norm = np.sqrt(np.vdot(out[i], out[i]).real * h3)
        if norm < 1e-14:
            raise ValueError(f"band {i} is linearly dependent on earlier bands")
        out[i] = out[i] / norm
    return out


def lowdin(grid: GridDescriptor, states: np.ndarray) -> np.ndarray:
    """Löwdin (symmetric) orthonormalization: ``psi' = S^{-1/2} psi``."""
    s = overlap_matrix(grid, states)
    evals, evecs = np.linalg.eigh(s)
    if evals.min() < 1e-12:
        raise ValueError(
            f"overlap matrix is singular (min eigenvalue {evals.min():.2e}); "
            "bands are linearly dependent"
        )
    inv_sqrt = (evecs * (1.0 / np.sqrt(evals))) @ evecs.conj().T
    flat = states.reshape(states.shape[0], -1)
    return (inv_sqrt @ flat).reshape(states.shape)
