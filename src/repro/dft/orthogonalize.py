"""Wave-function orthogonalization.

This is the operation that pins GPAW's data layout: orthogonalizing the
band set needs *the same subset of every grid* on every process
(section IV of the paper), because the overlap matrix couples all bands
point by point.  We provide the two standard schemes:

* modified Gram-Schmidt — sequential, numerically robust;
* Löwdin (symmetric) orthogonalization — ``S^{-1/2}`` via an eigen
  decomposition of the overlap matrix; treats all bands symmetrically,
  which is what GPAW actually does.

The grid inner product carries the ``h^3`` volume element so that
orthonormality means physical normalization.
"""

from __future__ import annotations

import numpy as np

from repro.grid.grid import GridDescriptor


def overlap_matrix(
    grid: GridDescriptor, states: np.ndarray, block_size: int = 32
) -> np.ndarray:
    """``S_ij = <psi_i | psi_j>`` over the grid (with volume element).

    ``S`` is Hermitian, so only the lower triangle is computed — as
    blocked GEMM tiles of ``block_size`` bands a side — and reflected.
    That halves the flops of the full ``flat @ flat.T`` Gram product and
    makes the result *bitwise* Hermitian: the diagonal tiles are
    explicitly symmetrized (a GEMM's output is only symmetric to
    round-off), which downstream eigensolvers appreciate.
    """
    if states.ndim != 4 or states.shape[1:] != grid.shape:
        raise ValueError(
            f"states must be (bands, {grid.shape}); got {states.shape}"
        )
    if block_size < 1:
        raise ValueError(f"block_size must be >= 1, got {block_size}")
    flat = states.reshape(states.shape[0], -1)
    h3 = grid.spacing ** 3
    n = flat.shape[0]
    s = np.empty((n, n), dtype=flat.dtype)
    for i0 in range(0, n, block_size):
        i1 = min(i0 + block_size, n)
        left = flat[i0:i1].conj()
        for j0 in range(0, i0 + 1, block_size):
            j1 = min(j0 + block_size, n)
            tile = left @ flat[j0:j1].T
            tile *= h3
            if j0 == i0:
                # reflect the tile's own lower triangle across its
                # diagonal so S == S^H holds bit for bit
                il, ju = np.tril_indices(i1 - i0, k=-1)
                tile[ju, il] = tile[il, ju].conj()
                s[i0:i1, j0:j1] = tile
            else:
                s[i0:i1, j0:j1] = tile
                s[j0:j1, i0:i1] = tile.conj().T
    return s


def gram_schmidt(grid: GridDescriptor, states: np.ndarray) -> np.ndarray:
    """Modified Gram-Schmidt orthonormalization of a band set."""
    if states.ndim != 4 or states.shape[1:] != grid.shape:
        raise ValueError(
            f"states must be (bands, {grid.shape}); got {states.shape}"
        )
    h3 = grid.spacing ** 3
    out = states.astype(states.dtype, copy=True)
    n = out.shape[0]
    for i in range(n):
        for j in range(i):
            proj = np.vdot(out[j], out[i]) * h3
            out[i] = out[i] - proj * out[j]
        norm = np.sqrt(np.vdot(out[i], out[i]).real * h3)
        if norm < 1e-14:
            raise ValueError(f"band {i} is linearly dependent on earlier bands")
        out[i] = out[i] / norm
    return out


def lowdin(grid: GridDescriptor, states: np.ndarray) -> np.ndarray:
    """Löwdin (symmetric) orthonormalization: ``psi' = S^{-1/2} psi``."""
    s = overlap_matrix(grid, states)
    evals, evecs = np.linalg.eigh(s)
    if evals.min() < 1e-12:
        raise ValueError(
            f"overlap matrix is singular (min eigenvalue {evals.min():.2e}); "
            "bands are linearly dependent"
        )
    inv_sqrt = (evecs * (1.0 / np.sqrt(evals))) @ evecs.conj().T
    flat = states.reshape(states.shape[0], -1)
    return (inv_sqrt @ flat).reshape(states.shape)
