"""Lowest eigenstates of the FD Hamiltonian.

Uses ARPACK (``scipy.sparse.linalg.eigsh``) through the Hamiltonian's
LinearOperator view — the standard route for "give me the lowest k states
of a big sparse operator" — with ``sigma``-free smallest-algebraic mode.
Wave functions come back grid-shaped and orthonormal (ARPACK guarantees an
orthonormal basis of the converged invariant subspace).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse.linalg import eigsh

from repro.dft.hamiltonian import Hamiltonian


@dataclass
class EigenResult:
    """Eigenpairs, lowest first."""

    energies: np.ndarray  # (k,)
    states: np.ndarray  # (k, nx, ny, nz), orthonormal w.r.t. grid dot

    @property
    def n_states(self) -> int:
        return len(self.energies)


def lowest_eigenstates(
    hamiltonian: Hamiltonian,
    k: int,
    tol: float = 1e-8,
    maxiter: int | None = None,
    seed: int = 0,
) -> EigenResult:
    """The ``k`` lowest eigenpairs of ``hamiltonian``."""
    n = hamiltonian.grid.n_points
    if not 1 <= k < n - 1:
        raise ValueError(f"k must be in 1..{n - 2}, got {k}")
    op = hamiltonian.as_linear_operator()
    rng = np.random.default_rng(seed)
    v0 = rng.standard_normal(n)
    # Request guard states beyond k: ARPACK can otherwise return an
    # incomplete degenerate shell (e.g. two of the three first excited
    # harmonic-oscillator states) when the cluster straddles the cut.
    k_eff = min(k + 4, n - 2)
    ncv = min(n - 1, max(4 * k_eff, 40))
    energies, vectors = eigsh(
        op, k=k_eff, which="SA", tol=tol, maxiter=maxiter, v0=v0, ncv=ncv
    )
    order = np.argsort(energies)[:k]
    energies = energies[order]
    vectors = vectors[:, order]
    # normalize w.r.t. the grid inner product (h^3 volume element)
    h3 = hamiltonian.grid.spacing ** 3
    vectors = vectors / np.sqrt(h3)
    states = vectors.T.reshape((k,) + hamiltonian.grid.shape)
    return EigenResult(energies=energies, states=states)
