"""Grid operators: the FD Laplacian and the kinetic-energy operator.

These wrap the raw stencil kernels with a grid descriptor (shape, spacing,
boundary conditions), giving the DFT layer operator objects it can apply,
compose and hand to iterative solvers.
"""

from __future__ import annotations

import numpy as np

from repro.grid.grid import GridDescriptor
from repro.stencil.coefficients import StencilCoefficients, laplacian_coefficients
from repro.stencil.kernel import apply_stencil_global


class Laplacian:
    """The finite-difference Laplacian on a grid descriptor."""

    def __init__(self, grid: GridDescriptor, radius: int = 2):
        self.grid = grid
        self.radius = radius
        self.coeffs: StencilCoefficients = laplacian_coefficients(
            radius, spacing=grid.spacing
        )

    def apply(
        self,
        array: np.ndarray,
        out: np.ndarray | None = None,
        workspace=None,
    ) -> np.ndarray:
        """laplace(array) with the descriptor's boundary conditions.

        ``out`` receives the result in place; with a
        :class:`repro.core.workspace.Workspace` the kernel's shifted-grid
        and scratch buffers are borrowed from the arena instead of
        allocated, making repeated applications (Jacobi smoothing, SCF
        residuals) allocation-free.  Results are bit-identical on every
        path.
        """
        self.grid.check_array(array)
        if workspace is None:
            return apply_stencil_global(
                array, self.coeffs, pbc=self.grid.pbc, out=out
            )
        shape, dtype = array.shape, array.dtype
        scratch = workspace.borrow(shape, dtype)
        t1 = workspace.borrow(shape, dtype)
        t2 = workspace.borrow(shape, dtype)
        try:
            return apply_stencil_global(
                array, self.coeffs, pbc=self.grid.pbc, out=out,
                scratch=scratch, term_buf=t1, term_buf2=t2,
            )
        finally:
            workspace.release(t2)
            workspace.release(t1)
            workspace.release(scratch)

    def __call__(self, array: np.ndarray) -> np.ndarray:
        return self.apply(array)

    @property
    def diagonal(self) -> float:
        """The operator's diagonal element (used by Jacobi smoothers)."""
        return self.coeffs.center


class Kinetic:
    """The kinetic-energy operator ``-1/2 laplace`` (atomic units)."""

    def __init__(self, grid: GridDescriptor, radius: int = 2):
        self.grid = grid
        self.coeffs = laplacian_coefficients(radius, spacing=grid.spacing).scale(-0.5)

    def apply(self, array: np.ndarray) -> np.ndarray:
        self.grid.check_array(array)
        return apply_stencil_global(array, self.coeffs, pbc=self.grid.pbc)

    def __call__(self, array: np.ndarray) -> np.ndarray:
        return self.apply(array)
