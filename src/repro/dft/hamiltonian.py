"""The Kohn-Sham-style Hamiltonian: ``H = -1/2 laplace + V(r)``.

Atomic units throughout.  ``V`` is any local potential on the grid — an
external confinement, the Hartree potential from the Poisson solver, or
their sum in the SCF loop.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse.linalg import LinearOperator

from repro.dft.operators import Kinetic
from repro.grid.grid import GridDescriptor


class Hamiltonian:
    """A one-particle FD Hamiltonian on a real-space grid."""

    def __init__(
        self,
        grid: GridDescriptor,
        potential: np.ndarray | None = None,
        radius: int = 2,
    ):
        self.grid = grid
        self.kinetic = Kinetic(grid, radius)
        if potential is None:
            potential = grid.zeros()
        grid.check_array(potential, "potential")
        self.potential = potential

    def apply(self, psi: np.ndarray) -> np.ndarray:
        """``H psi`` for one wave function."""
        self.grid.check_array(psi, "psi")
        return self.kinetic.apply(psi) + self.potential * psi

    def __call__(self, psi: np.ndarray) -> np.ndarray:
        return self.apply(psi)

    def apply_all(self, psis: np.ndarray) -> np.ndarray:
        """``H`` applied to a stack of wave functions (bands, nx, ny, nz)."""
        return np.stack([self.apply(p) for p in psis])

    def expectation(self, psi: np.ndarray) -> float:
        """``<psi|H|psi> / <psi|psi>`` (the Rayleigh quotient)."""
        num = np.vdot(psi, self.apply(psi)).real
        den = np.vdot(psi, psi).real
        if den == 0:
            raise ValueError("cannot take the expectation of a zero state")
        return num / den

    def as_linear_operator(self) -> LinearOperator:
        """SciPy view of H for iterative eigensolvers."""
        n = self.grid.n_points
        shape = self.grid.shape
        dtype = self.grid.dtype

        def matvec(x: np.ndarray) -> np.ndarray:
            return self.apply(x.reshape(shape).astype(dtype, copy=False)).ravel()

        return LinearOperator((n, n), matvec=matvec, dtype=dtype)

    def with_potential(self, potential: np.ndarray) -> "Hamiltonian":
        """A Hamiltonian sharing this one's kinetic part (SCF updates)."""
        h = Hamiltonian.__new__(Hamiltonian)
        h.grid = self.grid
        h.kinetic = self.kinetic
        self.grid.check_array(potential, "potential")
        h.potential = potential
        return h
