"""A fully distributed Kohn-Sham SCF on top of the FD engine.

This is the library's capstone composition — the workload the paper's
introduction describes, executed end to end on the functional plane:

* every rank holds the same subset of every wave function (section IV's
  constraint, live in code),
* every Hamiltonian application routes the kinetic stencil through the
  distributed FD engine (halo exchanges under any of the paper's four
  schedules),
* orthogonalization and subspace diagonalization reduce band matrices
  with allreduces (the operation that *forces* the shared decomposition),
* the Hartree potential comes from the distributed Jacobi Poisson solver,
* the band update is the same preconditioned residual minimization as the
  sequential :class:`~repro.dft.rmm_diis.RmmDiis` — kinetic
  preconditioner sweeps included, each one a distributed stencil
  application.

The whole loop is deterministic and rank-count-invariant up to reduction
round-off, so tests can pin it against the sequential SCF.

``n_band_groups > 1`` switches the run to the 2D **grid x band**
decomposition that breaks section IV's constraint: the ``P`` ranks split
into ``nb`` groups, each owning ``G/nb`` wave functions on a
``P/nb``-domain decomposition (:class:`repro.grid.bandgroups.BandGroups`
maps ranks to ``(group, domain)``).  Halo traffic and the Poisson solve
stay inside a group (over a :class:`~repro.transport.inproc
.GroupEndpoint` window); the subspace steps execute the compiled
:class:`~repro.core.schedule.BandSchedulePlan` through
:class:`~repro.dft.band_ortho.BandRingExecutor` — blocked GEMMs on ring-
circulated band blocks, the same plan the DES replay and the analytic
:class:`~repro.core.bandpar.BandParallelModel` price.  Cross-group
reductions are a global all-reduce of zero-padded band-matrix strips,
a deterministic :func:`~repro.dft.band_ortho.band_axis_sum` for the
density, and group-0-only contributions for scalar grid sums (every
group holds the identical density, so one group speaks for all).
``n_band_groups=1`` is bit-for-bit the 1D code path.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from repro.core.approaches import Approach, FLAT_OPTIMIZED
from repro.core.engine import DistributedStencil
from repro.core.jobspec import (
    JobSpec,
    LayoutSpec,
    ProblemSpec,
    RuntimeSpec,
    check_restart_compatible,
)
from repro.core.schedule import compile_band_schedule
from repro.core.workspace import Workspace
from repro.dft.band_ortho import BandRingExecutor, band_axis_sum
from repro.dft.checkpoint import SCFCheckpoint, regroup_checkpoint
from repro.dft.distributed import DistributedPoissonSolver
from repro.grid.array import LocalGrid, gather, scatter
from repro.grid.bandgroups import BandGroups
from repro.grid.decompose import Decomposition
from repro.grid.grid import GridDescriptor
from repro.grid.halo import HaloSpec
from repro.stencil.coefficients import laplacian_coefficients
from repro.transport.errors import TransportError
from repro.transport.inproc import GroupEndpoint, RankEndpoint, run_ranks


@dataclass
class DistributedSCFResult:
    """Gathered outcome of a distributed SCF run."""

    energies: np.ndarray
    states: np.ndarray  # gathered, (bands, nx, ny, nz)
    density: np.ndarray
    total_energy: float
    iterations: int
    converged: bool
    restarts: int = 0  # recovery restarts consumed (run_with_recovery)
    final_ranks: int = 0  # rank count of the attempt that finished
    final_band_groups: int = 1  # band groups of the attempt that finished


class DistributedSCF:
    """Self-consistent loop where every grid operation is distributed."""

    def __init__(
        self,
        grid: GridDescriptor,
        external_potential: np.ndarray,
        n_bands: int,
        n_ranks: int,
        n_band_groups: int = 1,
        occupations: list[float] | None = None,
        mixing: float = 0.5,
        tolerance: float = 1e-4,
        max_iterations: int = 30,
        band_iterations: int = 10,
        approach: Approach = FLAT_OPTIMIZED,
        xc: str = "none",
        seed: int = 0,
        checkpoint_store=None,
        checkpoint_every: int = 1,
        metrics=None,
        cadence=None,
    ):
        grid.check_array(external_potential, "external_potential")
        # One validation point: the JobSpec constructors raise the typed
        # errors (positive counts, known xc, divisible band groups) the
        # ad-hoc checks used to duplicate per layer.
        self.spec = JobSpec(
            problem=ProblemSpec.from_grid(grid, n_bands),
            layout=LayoutSpec(
                approach=approach.name,
                n_cores=n_ranks,
                n_band_groups=n_band_groups,
            ),
            runtime=RuntimeSpec(
                tolerance=tolerance,
                max_iterations=max_iterations,
                band_iterations=band_iterations,
                mixing=mixing,
                xc=xc,
                seed=seed,
                checkpoint_every=checkpoint_every,
            ),
        )
        self._spec_dict = self.spec.to_dict()
        self.grid = grid
        self.v_ext = external_potential
        self.n_bands = n_bands
        self.occ = np.asarray(
            occupations if occupations is not None else [2.0] * n_bands, dtype=float
        )
        if self.occ.shape != (n_bands,):
            raise ValueError(f"occupations must have {n_bands} entries")
        self.mixing = mixing
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.band_iterations = band_iterations
        self.xc = xc
        self.seed = seed
        self.checkpoint_store = checkpoint_store
        self.checkpoint_every = checkpoint_every
        #: optional :class:`repro.core.recovery_policy.AdaptiveCadence`;
        #: when set, it replaces the static ``checkpoint_every`` gate —
        #: see ``_rank_run`` (the extra allreduce only runs when enabled,
        #: so static runs keep their exact transport op counts)
        self.cadence = cadence
        from repro.obs.metrics import resolve_registry

        #: per-iteration residual/energy gauges and timing land here (the
        #: null registry by default); rank 0 writes, the loop is SPMD
        self.metrics = resolve_registry(metrics)

        # 2D layout: n_ranks split into n_band_groups groups, each with
        # its own domain decomposition of the full grid.  BandGroups
        # raises the typed divisibility errors (G % nb, P % nb).
        self.layout = BandGroups(
            n_ranks=n_ranks, n_bands=n_bands, n_groups=n_band_groups
        )
        self.decomp = Decomposition(grid, self.layout.ranks_per_group)
        self.halo = HaloSpec(2)
        lap = laplacian_coefficients(2, spacing=grid.spacing)
        # kinetic = -1/2 laplacian; the engine is operator-agnostic
        self.kinetic_engine = DistributedStencil(self.decomp, lap.scale(-0.5))
        self.approach = approach
        # Compile the all-bands kinetic schedule once; every Hamiltonian
        # and preconditioner application across the SCF loop re-executes
        # this plan via the cache instead of recompiling.  Each group
        # only stencils its own G/nb bands.
        self.kinetic_plan = self.kinetic_engine.plan_for(
            approach, self.layout.bands_per_group
        )
        self.poisson = DistributedPoissonSolver(
            grid,
            self.layout.ranks_per_group,
            tolerance=1e-7,
            max_sweeps=20000,
            approach=approach,
        )
        # the ring-orthogonalization plan all three planes share; the
        # sizes only parameterize the plan's cost metadata — the
        # functional executor works on the actual block shapes
        self.band_plan = compile_band_schedule(
            self.layout,
            self.decomp.max_block_points(),
            self.decomp.max_block_points(),
            grid.bytes_per_point,
        )
        self.h3 = grid.spacing ** 3
        # kinetic-preconditioner constants (mirror dft.rmm_diis)
        self.pre_shift = 1.0
        self.pre_sweeps = 2
        self.pre_omega = 2 / 3
        self._pre_inv_diag = 1.0 / (lap.scale(-0.5).center + self.pre_shift)

    @classmethod
    def from_spec(
        cls,
        spec: JobSpec,
        external_potential: np.ndarray,
        *,
        occupations: list[float] | None = None,
        checkpoint_store=None,
        metrics=None,
        cadence=None,
    ) -> "DistributedSCF":
        """Build the distributed loop straight from a :class:`JobSpec`.

        The spec is carried verbatim (including ``batch_size`` /
        ``ramp_up``, which the functional plane does not consume but the
        checkpoint marker and config hash must preserve).
        """
        scf = cls(
            spec.grid(),
            external_potential,
            spec.problem.n_grids,
            spec.layout.n_cores,
            n_band_groups=spec.layout.n_band_groups,
            occupations=occupations,
            mixing=spec.runtime.mixing,
            tolerance=spec.runtime.tolerance,
            max_iterations=spec.runtime.max_iterations,
            band_iterations=spec.runtime.band_iterations,
            approach=spec.approach_obj(),
            xc=spec.runtime.xc,
            seed=spec.runtime.seed,
            checkpoint_store=checkpoint_store,
            checkpoint_every=spec.runtime.checkpoint_every,
            metrics=metrics,
            cadence=cadence,
        )
        scf.spec = spec
        scf._spec_dict = spec.to_dict()
        return scf

    # -- distributed primitives (all run inside rank functions) ---------------
    def _apply_h(
        self,
        ep: RankEndpoint,
        states: dict[int, LocalGrid],
        v_local: np.ndarray,
    ) -> dict[int, np.ndarray]:
        """H psi for every band; returns interior arrays per band."""
        kin = self.kinetic_engine.apply(ep, states, approach=self.approach)
        return {
            b: kin[b].interior + v_local * states[b].interior for b in states
        }

    def _precondition(
        self, ep: RankEndpoint, residuals: dict[int, np.ndarray]
    ) -> dict[int, LocalGrid]:
        """Damped-Jacobi sweeps of (T + shift) applied to every residual.

        Each sweep's T application is a distributed stencil — the same
        halo traffic pattern as the main Hamiltonian."""
        xs: dict[int, LocalGrid] = {}
        for b, r in residuals.items():
            lg = LocalGrid(self.decomp, ep.rank, self.halo)
            lg.interior[...] = self.pre_omega * self._pre_inv_diag * r
            xs[b] = lg
        for _ in range(self.pre_sweeps - 1):
            tx = self.kinetic_engine.apply(ep, xs, approach=self.approach)
            for b in xs:
                r2 = residuals[b] - (
                    tx[b].interior + self.pre_shift * xs[b].interior
                )
                xs[b].interior[...] += self.pre_omega * self._pre_inv_diag * r2
        return xs

    def _band_matrix(
        self,
        ep: RankEndpoint,
        ring: BandRingExecutor,
        left: dict[int, np.ndarray],
        right: dict[int, np.ndarray],
    ) -> np.ndarray:
        """Allreduced ``M[i, j] = <left_i | right_j>`` over grid + bands.

        ``left``/``right`` hold this rank's *own group's* band blocks
        (keyed by global band id).  The ring executor produces the
        group's row strip as blocked GEMMs overlapping the ring
        exchange; the global all-reduce of the zero-padded matrix sums
        the domains of each group and merges the strips of all groups.
        """
        bands = sorted(left)
        lstack = np.stack([left[b].reshape(-1) for b in bands])
        if right is left:
            rstack = lstack
        else:
            rstack = np.stack([right[b].reshape(-1) for b in bands])
        partial = ring.band_matrix(ep, lstack, rstack, self.h3)
        n = self.n_bands
        return ep.allreduce(partial.ravel()).reshape(n, n)

    def _lowdin_rotate(
        self, ep: RankEndpoint, ring: BandRingExecutor,
        states: dict[int, LocalGrid],
    ) -> None:
        """Löwdin-orthonormalize the band set in place (distributed)."""
        interiors = {b: states[b].interior for b in states}
        s = self._band_matrix(ep, ring, interiors, interiors)
        evals, evecs = np.linalg.eigh(s)
        if evals.min() < 1e-12:
            raise ValueError("bands became linearly dependent")
        inv_sqrt = (evecs * (1.0 / np.sqrt(evals))) @ evecs.T
        self._rotate(ep, ring, states, inv_sqrt)

    def _rotate(
        self, ep: RankEndpoint, ring: BandRingExecutor,
        states: dict[int, LocalGrid], u: np.ndarray,
    ) -> None:
        """states <- u @ states (u is the full G x G matrix, identical
        on all ranks); the rank's rows come out of the ring's rotate
        phase, so the blocks of other groups only transit once."""
        bands = sorted(states)
        shape = states[bands[0]].interior.shape
        local = np.stack([states[b].interior.reshape(-1) for b in bands])
        rotated = ring.rotate(ep, u, local)
        for i, b in enumerate(bands):
            states[b].interior[...] = rotated[i].reshape(shape)

    def _rotate_arrays(
        self, ep: RankEndpoint, ring: BandRingExecutor,
        arrays: dict[int, np.ndarray], u: np.ndarray,
    ) -> dict[int, np.ndarray]:
        """Same rotation for plain interior arrays (H psi blocks)."""
        bands = sorted(arrays)
        shape = arrays[bands[0]].shape
        local = np.stack([arrays[b].reshape(-1) for b in bands])
        rotated = ring.rotate(ep, u, local)
        return {b: rotated[i].reshape(shape) for i, b in enumerate(bands)}

    # -- the rank program --------------------------------------------------------
    def _rank_run(
        self, ep: RankEndpoint, v_ext_blocks, initial_blocks,
        restore=None, step_tracer=None, flight_recorder=None,
    ):
        rank = ep.rank
        lay = self.layout
        group = lay.group_of(rank)
        domain = lay.domain_of(rank)
        bands = list(lay.bands_of(group))
        # halo traffic, preconditioning and the Poisson solve stay inside
        # the band group: gep re-ranks this rank to its domain index
        if lay.n_groups > 1:
            gep = GroupEndpoint(
                ep, group * lay.ranks_per_group, lay.ranks_per_group
            )
        else:
            gep = ep
        hook = None
        if step_tracer is not None:
            from repro.obs.spans import engine_hook

            hook = engine_hook(
                step_tracer, domain, worker_prefix=f"bg{group}.rank"
            )
        ring = BandRingExecutor(
            lay, self.band_plan, workspace=Workspace(), on_step=hook
        )
        v_ext = v_ext_blocks[domain].interior.copy()
        states = {b: initial_blocks[b][domain] for b in bands}
        self._lowdin_rotate(ep, ring, states)

        v_h = np.zeros_like(v_ext)
        v_xc = np.zeros_like(v_ext)
        rho_old = None
        energies = np.zeros(self.n_bands)
        start_it = 0
        if restore is not None:
            # resume mid-SCF: the mixing history (v_h/v_xc) and the
            # convergence reference (rho_old) come from the snapshot
            fields = restore.blocks[rank]
            v_h = fields["v_h"].copy()
            v_xc = fields["v_xc"].copy()
            rho_old = fields["rho_old"].copy()
            energies = np.array(restore.energies, copy=True)
            start_it = restore.iteration
        converged = False
        it = start_it
        # rank 0 reports the loop's telemetry (the loop is SPMD, so one
        # reporter suffices and the gauges are not written concurrently)
        report = rank == 0
        m_iters = self.metrics.counter("scf_iterations_total")
        m_seconds = self.metrics.histogram("scf_iteration_seconds")
        m_residual = self.metrics.gauge("scf_residual")
        m_energy = self.metrics.gauge("scf_band_energy_sum")
        for it in range(start_it + 1, self.max_iterations + 1):
            it_t0 = time.perf_counter()
            v_local = v_ext + v_h + v_xc
            for _ in range(self.band_iterations):
                h_states = self._apply_h(gep, states, v_local)
                interiors = {b: states[b].interior for b in states}
                h_sub = self._band_matrix(ep, ring, interiors, h_states)
                h_sub = 0.5 * (h_sub + h_sub.T)
                energies, u = np.linalg.eigh(h_sub)
                self._rotate(ep, ring, states, u.T)
                h_states = self._rotate_arrays(ep, ring, h_states, u.T)

                residuals = {
                    b: h_states[b] - energies[b] * states[b].interior
                    for b in states
                }
                directions = self._precondition(gep, residuals)
                h_dirs = self._apply_h(gep, directions, v_local)
                # per-band 2x2 Rayleigh line search; each rank fills its
                # own bands' entries and one global reduce sums domains
                # within each owning group (other groups contribute 0)
                n = self.n_bands
                partial = np.zeros(5 * n)
                for b in bands:
                    psi = states[b].interior
                    d = directions[b].interior
                    partial[5 * b + 0] = float(np.vdot(psi, h_states[b])) * self.h3
                    partial[5 * b + 1] = float(np.vdot(psi, h_dirs[b])) * self.h3
                    partial[5 * b + 2] = float(np.vdot(d, h_dirs[b])) * self.h3
                    partial[5 * b + 3] = float(np.vdot(psi, d)) * self.h3
                    partial[5 * b + 4] = float(np.vdot(d, d)) * self.h3
                red = ep.allreduce(partial)
                from scipy.linalg import eigh as geigh

                for b in bands:
                    app, apd, add, spd, sdd = red[5 * b: 5 * b + 5]
                    a = np.array([[app, apd], [apd, add]])
                    s2 = np.array([[1.0, spd], [spd, sdd]])
                    if np.linalg.det(s2) < 1e-14:
                        continue
                    _, vecs = geigh(a, s2)
                    c0, c1 = vecs[:, 0]
                    states[b].interior[...] = (
                        c0 * states[b].interior + c1 * directions[b].interior
                    )
                self._lowdin_rotate(ep, ring, states)

            # density, Hartree, XC; each group only knows its own bands'
            # share, so the band-axis sum completes rho (deterministic:
            # every band peer ends up with the bitwise-identical total)
            rho = np.zeros_like(v_ext)
            for b in bands:
                rho += self.occ[b] * states[b].interior ** 2
            rho = band_axis_sum(ep, lay, rho)
            if rho_old is not None:
                local_change = float(np.abs(rho - rho_old).sum() * self.h3)
                # all groups hold the same rho: group 0 speaks for all
                change = float(
                    ep.allreduce(local_change if group == 0 else 0.0)[0]
                )
                if report:
                    m_residual.set(change)
                if change < self.tolerance:
                    converged = True
                    if report:
                        m_iters.inc()
                        m_seconds.observe(time.perf_counter() - it_t0)
                        m_energy.set(float(np.dot(self.occ, energies)))
                        if flight_recorder is not None:
                            flight_recorder.mark_iteration(it)
                    break
            rho_old = rho.copy()

            # every group solves the identical Poisson problem on its own
            # domain decomposition (redundant but communication-local);
            # identical rho in, deterministic solver, identical v_h out
            v_h_new = self.poisson._rank_solve(
                gep, self._rho_blocks_for(domain, rho)
            )[0].interior
            v_h = (1 - self.mixing) * v_h + self.mixing * v_h_new
            if self.xc == "lda":
                from repro.dft.xc import lda_potential

                v_xc = (1 - self.mixing) * v_xc + self.mixing * lda_potential(rho)

            due = (
                self.checkpoint_store is not None
                and it % self.checkpoint_every == 0
            )
            if self.cadence is not None and self.checkpoint_store is not None:
                # adaptive cadence: rank 0's measured iteration wall time
                # is broadcast by one extra allreduce (only when a
                # cadence is attached — static runs keep their exact
                # transport op counts) so every rank takes the identical
                # Daly-interval decision
                elapsed = time.perf_counter() - it_t0 if rank == 0 else 0.0
                t_iter = float(ep.allreduce(elapsed)[0])
                due = self.cadence.due(it, t_iter)
            if due:
                # N-N checkpoint: every rank deposits its own interior
                # blocks; the store commits once all ranks arrive
                self.checkpoint_store.deposit(
                    iteration=it,
                    rank=rank,
                    n_domains=lay.n_ranks,
                    shape=self.grid.shape,
                    energies=energies,
                    fields={
                        "states": np.stack(
                            [states[b].interior for b in bands]
                        ),
                        "rho_old": rho_old,
                        "v_h": v_h,
                        "v_xc": v_xc,
                    },
                    n_band_groups=lay.n_groups,
                    jobspec=self._spec_dict,
                )

            if report:
                m_iters.inc()
                m_seconds.observe(time.perf_counter() - it_t0)
                m_energy.set(float(np.dot(self.occ, energies)))
                if flight_recorder is not None:
                    # rotate the flight window at the iteration boundary
                    # so the ring buffer holds whole iterations (the
                    # deltas include this iteration's counter increments)
                    flight_recorder.mark_iteration(it)

        # final Rayleigh-Ritz: report clean eigenvalues of the last
        # potential (the in-loop energies lag the post-line-step states)
        v_local = v_ext + v_h + v_xc
        h_states = self._apply_h(gep, states, v_local)
        interiors = {b: states[b].interior for b in states}
        h_sub = self._band_matrix(ep, ring, interiors, h_states)
        h_sub = 0.5 * (h_sub + h_sub.T)
        energies, u = np.linalg.eigh(h_sub)
        self._rotate(ep, ring, states, u.T)

        # total energy (allreduced pieces; group 0 contributes the grid
        # sums since every group holds the identical density)
        rho = np.zeros_like(v_ext)
        for b in bands:
            rho += self.occ[b] * states[b].interior ** 2
        rho = band_axis_sum(ep, lay, rho)
        local = np.array([
            float((rho * v_h).sum() * self.h3),
            float((rho * v_xc).sum() * self.h3),
        ]) if group == 0 else np.zeros(2)
        e_h2, e_vxc = ep.allreduce(local)
        total = float(np.dot(self.occ, energies)) - 0.5 * e_h2
        if self.xc == "lda":
            from repro.dft.xc import lda_energy

            local_exc = (
                lda_energy(rho, self.grid.spacing) if group == 0 else 0.0
            )
            total += float(ep.allreduce(local_exc)[0]) - e_vxc
        return states, energies, rho, total, it, converged

    def _rho_blocks_for(
        self, domain: int, rho_interior: np.ndarray
    ) -> list[LocalGrid]:
        """The blocks list the Poisson rank-solver expects.

        Its rank function only reads entry ``[domain]``; the other
        entries are placeholders (each rank builds its own list
        locally).  Indexing is by domain within the band group — the
        Poisson solve runs over the group endpoint."""
        blocks = [
            LocalGrid(self.decomp, r, self.poisson.halo)
            for r in range(self.decomp.n_domains)
        ]
        blocks[domain].interior[...] = rho_interior
        return blocks

    # -- public API --------------------------------------------------------------
    def run(
        self,
        transport=None,
        resume_from: SCFCheckpoint | None = None,
        step_tracer=None,
        flight_recorder=None,
    ) -> DistributedSCFResult:
        """Scatter, iterate on rank threads, gather.

        ``transport`` overrides the default in-process transport (e.g. a
        :class:`~repro.transport.faults.FaultyTransport` for chaos runs).
        ``resume_from`` restarts mid-SCF from a committed checkpoint —
        written by any ``(ranks, band groups)`` layout: a snapshot from
        a different layout is regrouped onto this instance's
        (recompiled) one via :func:`~repro.dft.checkpoint
        .regroup_checkpoint`.

        When this SCF carries a live metrics registry and no explicit
        transport is given, the default transport is built with the same
        registry, so one run reports SCF, checkpoint, *and* transport
        counters together.

        ``step_tracer`` (a :class:`~repro.obs.spans.SpanTracer`) records
        the executed ring-orthogonalization steps, with resources tagged
        by band group (``bg{group}.rank{domain}.w0``).

        ``flight_recorder`` (a :class:`~repro.obs.flightrec
        .FlightRecorder`) keeps the last K iterations of spans + metric
        deltas for post-mortem dumps; its tracer doubles as the
        ``step_tracer`` when none is given, and rank 0 rotates its
        window at every iteration boundary.
        """
        if flight_recorder is not None and step_tracer is None:
            step_tracer = flight_recorder.tracer
        if transport is None and self.metrics.enabled:
            from repro.transport.inproc import InprocTransport

            transport = InprocTransport(
                self.layout.n_ranks, metrics=self.metrics
            )
        if (
            step_tracer is not None
            and getattr(step_tracer, "config_hash", None) is None
        ):
            step_tracer.config_hash = self.spec.config_hash()
        v_ext_blocks = scatter(self.v_ext, self.decomp, self.halo)
        if resume_from is None:
            # every group draws the same full band set, then keeps its
            # slice — initial states are independent of n_band_groups
            rng = np.random.default_rng(self.seed)
            initial = [
                rng.standard_normal(self.grid.shape) for _ in range(self.n_bands)
            ]
            initial_blocks = [
                scatter(a, self.decomp, self.halo) for a in initial
            ]
            restore = None
        else:
            initial_blocks, restore = self._resume_state(resume_from)
        results = run_ranks(
            self.layout.n_ranks,
            self._rank_run,
            v_ext_blocks,
            initial_blocks,
            restore,
            step_tracer,
            flight_recorder,
            transport=transport,
        )
        lay = self.layout
        n_domains = self.decomp.n_domains
        _, energies, _, total, it, converged = results[0]
        gathered_states = np.stack([
            gather([
                results[lay.rank_of(lay.group_of_band(b), d)][0][b]
                for d in range(n_domains)
            ])
            for b in range(self.n_bands)
        ])
        # all groups hold the identical density; gather group 0's blocks
        density = gather([
            self._density_block(results[lay.rank_of(0, d)][2], d)
            for d in range(n_domains)
        ])
        return DistributedSCFResult(
            energies=energies,
            states=gathered_states,
            density=density,
            total_energy=total,
            iterations=it,
            converged=converged,
            final_ranks=lay.n_ranks,
            final_band_groups=lay.n_groups,
        )

    def _resume_state(self, ckpt: SCFCheckpoint):
        """Initial blocks + per-rank restore snapshot for a resume.

        Shrink/regroup path: a checkpoint committed under any other
        ``(ranks, band groups)`` layout is re-sliced onto this one —
        domains through the transfer plan, bands through the band
        regroup plan — before any rank thread starts.
        """
        lay = self.layout
        if ckpt.jobspec is not None:
            # version-2 snapshots carry the writing run's full JobSpec:
            # one typed comparison replaces the field-by-field checks
            # below (kept for version-1 markers without a spec)
            check_restart_compatible(self.spec, JobSpec.from_dict(ckpt.jobspec))
        if tuple(ckpt.shape) != tuple(self.grid.shape):
            raise ValueError(
                f"checkpoint grid {tuple(ckpt.shape)} does not match "
                f"SCF grid {tuple(self.grid.shape)}"
            )
        n_bands = ckpt.blocks[0]["states"].shape[0] * ckpt.n_band_groups
        if n_bands != self.n_bands:
            raise ValueError(
                f"checkpoint has {n_bands} bands, SCF wants {self.n_bands}"
            )
        if ckpt.n_domains != lay.n_ranks or ckpt.n_band_groups != lay.n_groups:
            ckpt = regroup_checkpoint(
                ckpt, self.grid, lay.n_ranks, lay.n_groups
            )
        initial_blocks = []
        for b in range(self.n_bands):
            g = lay.group_of_band(b)
            local_b = b - g * lay.bands_per_group
            band = []
            for d in range(self.decomp.n_domains):
                lg = LocalGrid(self.decomp, d, self.halo)
                lg.interior[...] = (
                    ckpt.blocks[lay.rank_of(g, d)]["states"][local_b]
                )
                band.append(lg)
            initial_blocks.append(band)
        return initial_blocks, ckpt

    def with_ranks(self, n_ranks: int) -> "DistributedSCF":
        """A copy of this SCF over ``n_ranks`` domains.

        Recompiles the kinetic schedule plan and the Poisson solver for
        the new layout; shares the checkpoint store, so a recovery can
        shrink onto surviving ranks and keep checkpointing.
        """
        spec = replace(
            self.spec, layout=replace(self.spec.layout, n_cores=n_ranks)
        )
        return DistributedSCF.from_spec(
            spec,
            self.v_ext,
            occupations=list(self.occ),
            checkpoint_store=self.checkpoint_store,
            metrics=self.metrics if self.metrics.enabled else None,
            cadence=self.cadence,
        )

    def run_with_recovery(
        self,
        max_restarts: int = 2,
        transport_factory=None,
        shrink_to: int | None = None,
        on_restart=None,
    ) -> DistributedSCFResult:
        """Run to convergence, restarting from checkpoints on rank loss.

        Each attempt gets a transport from ``transport_factory(attempt)``
        (default: a fresh in-process transport).  When an attempt dies
        with a :class:`~repro.transport.errors.TransportError`, the run
        resumes from the latest *committed* checkpoint — with
        ``shrink_to`` ranks if given (the node-loss scenario: the
        schedule is recompiled and all state redistributed) — up to
        ``max_restarts`` times before the error propagates.

        This is the *caller-configured* loop; :class:`repro.dft.recovery
        .RecoveryController` supersedes it with a planner-driven
        degradation ladder that picks the shrink target itself.
        """
        if self.checkpoint_store is None:
            raise ValueError("run_with_recovery needs a checkpoint_store")
        scf = self
        restarts = 0
        while True:
            transport = (
                transport_factory(restarts) if transport_factory is not None else None
            )
            resume = scf.checkpoint_store.latest()
            try:
                result = scf.run(transport=transport, resume_from=resume)
                result.restarts = restarts
                return result
            except TransportError as exc:
                restarts += 1
                if restarts > max_restarts:
                    raise
                scf.checkpoint_store.discard_pending()
                if on_restart is not None:
                    on_restart(restarts, exc)
                if (
                    shrink_to is not None
                    and scf.layout.n_ranks != shrink_to
                ):
                    scf = scf.with_ranks(shrink_to)

    def _density_block(self, rho_interior: np.ndarray, rank: int) -> LocalGrid:
        lg = LocalGrid(self.decomp, rank, self.halo)
        lg.interior[...] = rho_interior
        return lg
