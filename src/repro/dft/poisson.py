"""Finite-difference Poisson solvers: weighted Jacobi and multigrid.

Solves ``laplace(phi) = -4 pi rho`` (Gaussian units, GPAW's convention for
the Hartree potential).  Two solvers:

* weighted Jacobi — simple, used as the multigrid smoother and as a
  reference;
* a V-cycle multigrid — full-weighting restriction, trilinear
  prolongation, Jacobi smoothing on every level, coarsest level relaxed
  directly.  Converges in a handful of cycles on smooth problems.

Boundary conditions come from the grid descriptor: zero boundary for
finite systems, periodic for crystals.  A fully periodic problem is only
solvable when the total charge vanishes; the solver enforces a zero-mean
right-hand side (and potential) in that case, matching the physics of a
compensating background.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.workspace import Workspace
from repro.dft.operators import Laplacian
from repro.grid.grid import GridDescriptor


@dataclass
class PoissonResult:
    """Solution + convergence record."""

    potential: np.ndarray
    residual_norm: float
    iterations: int
    converged: bool


def _jacobi_sweeps(
    lap: Laplacian,
    phi: np.ndarray,
    rhs: np.ndarray,
    sweeps: int,
    omega: float = 2 / 3,
    workspace: Workspace | None = None,
) -> np.ndarray:
    """``sweeps`` weighted-Jacobi iterations on laplace(phi) = rhs.

    Updates ``phi`` in place (every caller owns its array) and runs the
    residual through one :class:`Workspace`-borrowed buffer instead of
    allocating a fresh array per sweep; numerically bit-identical to the
    allocating formulation it replaces.
    """
    coef = omega * (1.0 / lap.diagonal)
    ws = workspace if workspace is not None else Workspace()
    lap_buf = ws.borrow(phi.shape, phi.dtype)
    try:
        for _ in range(sweeps):
            lap.apply(phi, out=lap_buf, workspace=ws)
            np.subtract(rhs, lap_buf, out=lap_buf)
            lap_buf *= coef
            phi += lap_buf
    finally:
        ws.release(lap_buf)
    return phi


def _restrict(fine: np.ndarray) -> np.ndarray:
    """Full-weighting restriction by averaging 2^3 cells (even shapes)."""
    s = fine.shape
    return (
        fine.reshape(s[0] // 2, 2, s[1] // 2, 2, s[2] // 2, 2).mean(axis=(1, 3, 5))
    )


def _prolong_axis(a: np.ndarray, axis: int, periodic: bool) -> np.ndarray:
    """Cell-centered linear interpolation doubling one axis.

    Fine cell ``2i`` sits a quarter-cell below coarse centre ``i``, fine
    cell ``2i+1`` a quarter above: values are ``3/4 a_i + 1/4 a_{i -/+ 1}``.
    Outside a zero-boundary grid the correction is zero; periodic wraps.
    """
    n = a.shape[axis]
    idx = np.arange(n)
    if periodic:
        prev = np.take(a, (idx - 1) % n, axis=axis)
        nxt = np.take(a, (idx + 1) % n, axis=axis)
    else:
        prev = np.take(a, np.maximum(idx - 1, 0), axis=axis)
        nxt = np.take(a, np.minimum(idx + 1, n - 1), axis=axis)
        # zero outside the domain: edge cells have no outer neighbour
        edge_lo = [slice(None)] * a.ndim
        edge_lo[axis] = slice(0, 1)
        edge_hi = [slice(None)] * a.ndim
        edge_hi[axis] = slice(n - 1, n)
        prev = prev.copy()
        nxt = nxt.copy()
        prev[tuple(edge_lo)] = 0.0
        nxt[tuple(edge_hi)] = 0.0
    even = 0.75 * a + 0.25 * prev
    odd = 0.75 * a + 0.25 * nxt
    out_shape = list(a.shape)
    out_shape[axis] = 2 * n
    out = np.empty(out_shape, dtype=a.dtype)
    sl_even = [slice(None)] * a.ndim
    sl_even[axis] = slice(0, 2 * n, 2)
    sl_odd = [slice(None)] * a.ndim
    sl_odd[axis] = slice(1, 2 * n, 2)
    out[tuple(sl_even)] = even
    out[tuple(sl_odd)] = odd
    return out


def _prolong(coarse: np.ndarray, pbc: tuple[bool, bool, bool]) -> np.ndarray:
    """Trilinear cell-centered prolongation (order 2, stable V-cycles)."""
    out = coarse
    for axis in range(3):
        out = _prolong_axis(out, axis, pbc[axis])
    return out


class PoissonSolver:
    """Iterative solver for ``laplace(phi) = -4 pi rho``."""

    def __init__(
        self,
        grid: GridDescriptor,
        radius: int = 2,
        method: str = "multigrid",
        tolerance: float = 1e-8,
        max_iterations: int = 500,
    ):
        if method not in ("jacobi", "multigrid"):
            raise ValueError(f"method must be 'jacobi' or 'multigrid', got {method!r}")
        self.grid = grid
        self.radius = radius
        self.method = method
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.laplacian = Laplacian(grid, radius)
        #: the buffer arena every smoother sweep and residual borrows from
        self.workspace = Workspace()
        self._levels = self._build_levels() if method == "multigrid" else []

    # -- setup --------------------------------------------------------------
    def _build_levels(self) -> list[Laplacian]:
        """Coarser Laplacians for the V-cycle (shape halved per level)."""
        levels = []
        shape = self.grid.shape
        spacing = self.grid.spacing
        while all(s % 2 == 0 and s // 2 >= 4 for s in shape):
            shape = tuple(s // 2 for s in shape)
            spacing *= 2
            coarse = GridDescriptor(
                shape, pbc=self.grid.pbc, spacing=spacing, dtype=self.grid.dtype
            )
            # radius-1 stencils are enough on coarse correction grids
            levels.append(Laplacian(coarse, radius=1))
        return levels

    @property
    def fully_periodic(self) -> bool:
        return all(self.grid.pbc)

    # -- solving -------------------------------------------------------------
    def solve(
        self, rho: np.ndarray, initial: np.ndarray | None = None
    ) -> PoissonResult:
        """Solve for the potential of charge density ``rho``."""
        self.grid.check_array(rho, "rho")
        rhs = -4.0 * np.pi * rho
        if self.fully_periodic:
            mean = rhs.mean()
            if abs(mean) > 1e-12 * max(1.0, float(np.abs(rhs).max())):
                # neutralizing background: subtract the mean (G=0 term)
                rhs = rhs - mean
        phi = (
            np.zeros_like(rhs)
            if initial is None
            else np.array(initial, dtype=rhs.dtype, copy=True)
        )
        rhs_norm = float(np.linalg.norm(rhs))
        if rhs_norm == 0.0:
            return PoissonResult(phi, 0.0, 0, True)

        for it in range(1, self.max_iterations + 1):
            if self.method == "jacobi":
                phi = _jacobi_sweeps(self.laplacian, phi, rhs, sweeps=1,
                                     workspace=self.workspace)
            else:
                phi = self._v_cycle(0, phi, rhs)
            if self.fully_periodic:
                phi = phi - phi.mean()
            lap_buf = self.workspace.borrow(phi.shape, phi.dtype)
            try:
                self.laplacian.apply(phi, out=lap_buf,
                                     workspace=self.workspace)
                np.subtract(rhs, lap_buf, out=lap_buf)
                residual = float(np.linalg.norm(lap_buf))
            finally:
                self.workspace.release(lap_buf)
            if residual <= self.tolerance * rhs_norm:
                return PoissonResult(phi, residual, it, True)
        return PoissonResult(phi, residual, self.max_iterations, False)

    def _v_cycle(self, level: int, phi: np.ndarray, rhs: np.ndarray) -> np.ndarray:
        """One V-cycle starting at ``level`` (0 = finest)."""
        lap = self.laplacian if level == 0 else self._levels[level - 1]
        ws = self.workspace
        phi = _jacobi_sweeps(lap, phi, rhs, sweeps=2, workspace=ws)
        if level < len(self._levels):
            coarse_lap = self._levels[level]
            lap_buf = ws.borrow(phi.shape, phi.dtype)
            try:
                lap.apply(phi, out=lap_buf, workspace=ws)
                np.subtract(rhs, lap_buf, out=lap_buf)
                coarse_rhs = _restrict(lap_buf)
            finally:
                ws.release(lap_buf)
            if all(coarse_lap.grid.pbc):
                coarse_rhs = coarse_rhs - coarse_rhs.mean()
            correction = self._v_cycle(
                level + 1, np.zeros_like(coarse_rhs), coarse_rhs
            )
            phi = phi + _prolong(correction, self.grid.pbc)
        phi = _jacobi_sweeps(lap, phi, rhs, sweeps=2, workspace=ws)
        return phi
