"""Exchange-correlation functionals (local density approximation).

GPAW is a density-functional code; the SCF loop's effective potential is
``V_ext + V_Hartree + V_xc``.  We implement the two standard LDA pieces:

* **Dirac/Slater exchange** — exact for the homogeneous electron gas:
  ``e_x = -(3/4)(3/pi)^(1/3) rho^(4/3)``, ``v_x = -(3 rho/pi)^(1/3)``.
* **Perdew–Zunger-style correlation** (Wigner's simple closed form is
  used: ``e_c = -a rho/(1 + d rs)`` with ``rs`` the Wigner-Seitz radius) —
  small compared to exchange, kept analytic so tests can verify it.

Energies are per unit volume (multiply by ``h^3`` and sum to integrate).
"""

from __future__ import annotations

import numpy as np

#: Dirac exchange constant: (3/4)(3/pi)^(1/3)
_CX = 0.75 * (3.0 / np.pi) ** (1.0 / 3.0)
#: Wigner correlation parameters (atomic units)
_WIGNER_A = 0.44
_WIGNER_D = 7.8


def _guard(rho: np.ndarray) -> np.ndarray:
    rho = np.asarray(rho, dtype=np.float64)
    if np.any(rho < -1e-12):
        raise ValueError("density must be non-negative")
    return np.maximum(rho, 0.0)


def lda_exchange_energy_density(rho: np.ndarray) -> np.ndarray:
    """Exchange energy per volume: ``-C_x rho^(4/3)``."""
    rho = _guard(rho)
    return -_CX * rho ** (4.0 / 3.0)


def lda_exchange_potential(rho: np.ndarray) -> np.ndarray:
    """``v_x = d e_x / d rho = -(3 rho / pi)^(1/3)``."""
    rho = _guard(rho)
    return -((3.0 * rho / np.pi) ** (1.0 / 3.0))


def _rs(rho: np.ndarray) -> np.ndarray:
    """Wigner-Seitz radius of a (guarded) density."""
    safe = np.maximum(rho, 1e-30)
    return (3.0 / (4.0 * np.pi * safe)) ** (1.0 / 3.0)


def wigner_correlation_energy_density(rho: np.ndarray) -> np.ndarray:
    """Wigner correlation energy per volume: ``-a rho / (1 + d rs)``."""
    rho = _guard(rho)
    return -_WIGNER_A * rho / (1.0 + _WIGNER_D * _rs(rho))


def wigner_correlation_potential(rho: np.ndarray) -> np.ndarray:
    """``v_c = d e_c / d rho`` for the Wigner form (analytic)."""
    rho = _guard(rho)
    rs = _rs(rho)
    denom = 1.0 + _WIGNER_D * rs
    # e_c/rho = -a/denom; d rs/d rho = -rs/(3 rho)
    # v_c = -a/denom - a d rs/(3 denom^2) ... worked out:
    v = -_WIGNER_A / denom - _WIGNER_A * _WIGNER_D * rs / (3.0 * denom**2)
    return np.where(rho > 0, v, 0.0)


def lda_potential(rho: np.ndarray, correlation: bool = True) -> np.ndarray:
    """The full LDA potential ``v_x (+ v_c)``."""
    v = lda_exchange_potential(rho)
    if correlation:
        v = v + wigner_correlation_potential(rho)
    return v


def lda_energy(rho: np.ndarray, spacing: float, correlation: bool = True) -> float:
    """Integrated LDA energy over the grid."""
    e = lda_exchange_energy_density(rho)
    if correlation:
        e = e + wigner_correlation_energy_density(rho)
    return float(e.sum() * spacing**3)
