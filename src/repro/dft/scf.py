"""A small self-consistent field loop.

Model: interacting electrons in an external potential, Hartree mean field
(no exchange-correlation — this is a Hartree loop, the structural twin of
GPAW's SCF cycle and enough to exercise every substrate: the eigensolver
applies the FD stencil to every band, the Poisson solver applies it to the
potential grid, and the density/orthogonalization steps tie the bands
together).

Algorithm per iteration:

1. diagonalize ``H[V_ext + V_H]`` for the lowest bands,
2. build the density from the occupied states,
3. solve Poisson for the new Hartree potential,
4. mix linearly with the previous potential,
5. stop when the density change drops below tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.jobspec import JobSpec, ProblemSpec, RuntimeSpec
from repro.dft.density import density_from_states
from repro.dft.eigensolver import lowest_eigenstates
from repro.dft.hamiltonian import Hamiltonian
from repro.dft.poisson import PoissonSolver
from repro.grid.grid import GridDescriptor


@dataclass
class SCFResult:
    """Converged (or last) state of the loop."""

    energies: np.ndarray  # band energies of the final iteration
    states: np.ndarray  # final wave functions
    density: np.ndarray
    hartree_potential: np.ndarray
    iterations: int
    converged: bool
    density_change_history: list[float] = field(default_factory=list)
    #: total energy with double-counting corrections:
    #: sum_n f_n eps_n - E_Hartree + (E_xc - int v_xc rho)
    total_energy: float = 0.0


class SCFLoop:
    """Self-consistent Hartree loop on a real-space grid."""

    def __init__(
        self,
        grid: GridDescriptor,
        external_potential: np.ndarray,
        n_bands: int,
        occupations: np.ndarray | list[float] | None = None,
        mixing: float = 0.5,
        tolerance: float = 1e-5,
        max_iterations: int = 50,
        eig_tol: float = 1e-7,
        xc: str = "none",
        eigensolver: str = "arpack",
    ):
        grid.check_array(external_potential, "external_potential")
        # The shared spec constructors carry all the validation (positive
        # band count, mixing in (0, 1], known xc, known eigensolver) —
        # eig_tol/eigensolver are RuntimeSpec fields, so a restart
        # reconstructs them from the snapshot's embedded spec.
        self.spec = JobSpec(
            problem=ProblemSpec.from_grid(grid, n_bands),
            runtime=RuntimeSpec(
                tolerance=tolerance,
                max_iterations=max_iterations,
                mixing=mixing,
                xc=xc,
                eig_tol=eig_tol,
                eigensolver=eigensolver,
            ),
        )
        self.eigensolver = self.spec.runtime.eigensolver
        self.grid = grid
        self.v_ext = external_potential
        self.n_bands = n_bands
        self.occupations = occupations
        self.mixing = mixing
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.eig_tol = eig_tol
        self.xc = xc
        self.poisson = PoissonSolver(grid, tolerance=1e-8)

    @classmethod
    def from_spec(
        cls,
        spec: JobSpec,
        external_potential: np.ndarray,
        *,
        occupations: np.ndarray | list[float] | None = None,
    ) -> "SCFLoop":
        """Build the sequential loop from a :class:`JobSpec`.

        Layout fields are ignored (this loop is single-rank); the
        problem and runtime sections — including ``eig_tol`` and
        ``eigensolver`` — map directly.
        """
        scf = cls(
            spec.grid(),
            external_potential,
            spec.problem.n_grids,
            occupations=occupations,
            mixing=spec.runtime.mixing,
            tolerance=spec.runtime.tolerance,
            max_iterations=spec.runtime.max_iterations,
            eig_tol=spec.runtime.eig_tol,
            xc=spec.runtime.xc,
            eigensolver=spec.runtime.eigensolver,
        )
        scf.spec = spec
        return scf

    def _xc_potential(self, rho: np.ndarray) -> np.ndarray:
        if self.xc == "lda":
            from repro.dft.xc import lda_potential

            return lda_potential(rho)
        return np.zeros_like(rho)

    def run(self) -> SCFResult:
        """Iterate to self-consistency."""
        v_hartree = self.grid.zeros()
        rho_old: np.ndarray | None = None
        history: list[float] = []
        h3 = self.grid.spacing ** 3
        base = Hamiltonian(self.grid, self.v_ext)

        energies = np.zeros(self.n_bands)
        states = np.zeros((self.n_bands,) + self.grid.shape)
        rho = self.grid.zeros()
        v_xc = self.grid.zeros()
        prev_states: np.ndarray | None = None
        for it in range(1, self.max_iterations + 1):
            h = base.with_potential(self.v_ext + v_hartree + v_xc)
            if self.eigensolver == "rmm-diis":
                from repro.dft.rmm_diis import RmmDiis

                solver = RmmDiis(
                    h, self.n_bands, tolerance=max(self.eig_tol, 1e-8),
                    max_iterations=400 if prev_states is None else 60,
                    initial_states=prev_states,
                )
                result = solver.run()
                energies, states = result.energies, result.states
            else:
                eig = lowest_eigenstates(h, self.n_bands, tol=self.eig_tol)
                energies, states = eig.energies, eig.states
            prev_states = states
            rho = density_from_states(self.grid, states, self.occupations)

            if rho_old is not None:
                change = float(np.abs(rho - rho_old).sum() * h3)
                history.append(change)
                if change < self.tolerance:
                    return SCFResult(
                        energies, states, rho, v_hartree, it, True, history,
                        self._total_energy(energies, rho, v_hartree, v_xc),
                    )
            rho_old = rho

            target = self.poisson.solve(rho, initial=v_hartree).potential
            v_hartree = (1 - self.mixing) * v_hartree + self.mixing * target
            v_xc = (1 - self.mixing) * v_xc + self.mixing * self._xc_potential(rho)

        return SCFResult(
            energies, states, rho, v_hartree, self.max_iterations, False, history,
            self._total_energy(energies, rho, v_hartree, v_xc),
        )

    def _total_energy(
        self,
        energies: np.ndarray,
        rho: np.ndarray,
        v_hartree: np.ndarray,
        v_xc: np.ndarray,
    ) -> float:
        """Band-sum energy with the standard double-counting corrections.

        The band eigenvalues count the Hartree interaction twice (each
        electron sees the full density including itself-as-part-of-rho),
        so half the Hartree integral is subtracted; the XC potential term
        is replaced by the XC energy.
        """
        h3 = self.grid.spacing ** 3
        occ = (
            np.full(self.n_bands, 2.0)
            if self.occupations is None
            else np.asarray(self.occupations, dtype=float)
        )
        band_sum = float(np.dot(occ, energies))
        e_hartree = 0.5 * float((rho * v_hartree).sum() * h3)
        correction = -e_hartree
        if self.xc == "lda":
            from repro.dft.xc import lda_energy

            correction += lda_energy(rho, self.grid.spacing) - float(
                (v_xc * rho).sum() * h3
            )
        return band_sum + correction
