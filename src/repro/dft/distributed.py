"""Distributed Poisson solving on top of the FD engine.

GPAW's Poisson equation is the *other* consumer of the paper's stencil
(section II) — and unlike the wave-function workload it has exactly one
grid, so batching cannot help and every smoothing sweep pays its halo
exchange in line.  This module composes the library's pieces into a
distributed weighted-Jacobi solver:

* the :class:`~repro.core.engine.DistributedStencil` applies the Laplacian
  per sweep (any approach's exchange schedule works; results are
  identical),
* the in-process transport's allreduce computes global residual norms,
* convergence decisions are taken collectively, so all ranks stop on the
  same sweep.

It is the library's end-to-end composition test: a real PDE solved by the
distributed engine must match the sequential solver bit-for-bit in exact
arithmetic (same operations, same order per block).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.approaches import Approach, FLAT_OPTIMIZED
from repro.core.engine import DistributedStencil
from repro.grid.array import LocalGrid, gather, scatter
from repro.grid.decompose import Decomposition
from repro.grid.grid import GridDescriptor
from repro.grid.halo import HaloSpec
from repro.stencil.coefficients import laplacian_coefficients
from repro.transport.inproc import RankEndpoint, run_ranks


@dataclass
class DistributedPoissonResult:
    """Gathered solution + convergence record."""

    potential: np.ndarray
    residual_norm: float
    sweeps: int
    converged: bool


class DistributedPoissonSolver:
    """Weighted-Jacobi Poisson solver over a rank set.

    Solves ``laplace(phi) = -4 pi rho`` with the distributed stencil.
    Jacobi (not multigrid) keeps every sweep a pure stencil application —
    the exact workload profile the paper's Poisson discussion assumes.
    """

    def __init__(
        self,
        grid: GridDescriptor,
        n_ranks: int,
        radius: int = 2,
        omega: float = 2 / 3,
        tolerance: float = 1e-6,
        max_sweeps: int = 5000,
        approach: Approach = FLAT_OPTIMIZED,
    ):
        if not 0 < omega <= 1:
            raise ValueError(f"omega must be in (0, 1], got {omega}")
        self.grid = grid
        self.decomp = Decomposition(grid, n_ranks)
        self.coeffs = laplacian_coefficients(radius, spacing=grid.spacing)
        self.engine = DistributedStencil(self.decomp, self.coeffs)
        self.halo = HaloSpec(radius)
        self.omega = omega
        self.tolerance = tolerance
        self.max_sweeps = max_sweeps
        self.approach = approach
        # Compile the exchange schedule once up front; every sweep's
        # apply() re-executes this plan via the cache (one grid: the
        # Poisson workload batching cannot help).
        self.plan = self.engine.plan_for(approach, 1)

    @property
    def fully_periodic(self) -> bool:
        return all(self.grid.pbc)

    # -- per-rank worker ---------------------------------------------------------
    def _rank_solve(
        self, ep: RankEndpoint, rho_blocks: list[LocalGrid]
    ) -> tuple[LocalGrid, float, int, bool]:
        rank = ep.rank
        rhs = -4.0 * np.pi * rho_blocks[rank].interior.copy()
        if self.fully_periodic:
            # neutralizing background: subtract the global mean of the rhs
            local = np.array([rhs.sum(), rhs.size], dtype=np.float64)
            total, count = ep.allreduce(local)
            rhs -= total / count
        rhs_norm2_local = float(np.sum(rhs * rhs))
        rhs_norm = float(np.sqrt(ep.allreduce(rhs_norm2_local)[0]))

        phi = LocalGrid(self.decomp, rank, self.halo)
        if rhs_norm == 0.0:
            return phi, 0.0, 0, True

        inv_diag = 1.0 / self.coeffs.center
        residual_norm = rhs_norm
        for sweep in range(1, self.max_sweeps + 1):
            lap = self.engine.apply(
                ep, {0: phi}, approach=self.approach
            )[0].interior
            residual = rhs - lap
            phi.interior[...] += self.omega * inv_diag * residual
            if self.fully_periodic:
                local = np.array(
                    [phi.interior.sum(), phi.interior.size], dtype=np.float64
                )
                total, count = ep.allreduce(local)
                phi.interior[...] -= total / count
            local_r2 = float(np.sum(residual * residual))
            residual_norm = float(np.sqrt(ep.allreduce(local_r2)[0]))
            if residual_norm <= self.tolerance * rhs_norm:
                return phi, residual_norm, sweep, True
        return phi, residual_norm, self.max_sweeps, False

    # -- public API --------------------------------------------------------------
    def solve(self, rho: np.ndarray) -> DistributedPoissonResult:
        """Scatter, iterate on rank threads, gather the converged potential."""
        self.grid.check_array(rho, "rho")
        rho_blocks = scatter(rho, self.decomp, self.halo)
        results = run_ranks(self.decomp.n_domains, self._rank_solve, rho_blocks)
        phis = [r[0] for r in results]
        residual, sweeps, converged = results[0][1], results[0][2], results[0][3]
        # collective decisions must agree across ranks
        assert all(r[2] == sweeps and r[3] == converged for r in results)
        return DistributedPoissonResult(
            potential=gather(phis),
            residual_norm=residual,
            sweeps=sweeps,
            converged=converged,
        )
