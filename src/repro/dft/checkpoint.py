"""Checkpoint/restart for the distributed SCF.

The paper's target machine schedules jobs in multi-hour blocks on tens
of thousands of cores; a rank lost mid-run must not cost the whole SCF.
This module provides the classic N-N checkpointing scheme GPAW's restart
files implement, scaled down to this library's functional plane:

* :class:`SCFCheckpoint` — one committed snapshot of SCF state: per-rank
  interior blocks of every wave function, the mixed density history and
  potentials, plus the iteration counter and band energies.
* Stores — :class:`MemoryCheckpointStore` (in-process, used by the test
  suite and chaos runs) and :class:`FileCheckpointStore` (one ``.npz``
  per rank per snapshot, the on-disk restart-file format described in
  docs/ROBUSTNESS.md).  Both commit *atomically*: a snapshot becomes
  visible only once every rank has deposited its block, so a rank dying
  mid-checkpoint can never produce a half-written restart point.
* :func:`redistribute_blocks` — pure-numpy execution of
  :func:`repro.grid.redistribute.transfer_plan`, so a checkpoint written
  by ``N`` ranks can be resumed by ``M`` ranks (shrink-to-fewer-ranks
  recovery after a node loss: the schedule plan is recompiled for the
  new layout and every field is re-sliced through the transfer plan).
* :func:`regroup_checkpoint` — the band-group-aware generalization: a
  snapshot written by ``nb`` band groups over ``P`` ranks becomes valid
  initial state for ``nb'`` groups over ``P'`` ranks.  Domains move
  through the same transfer plan per group; the band axis follows
  :func:`repro.grid.redistribute.band_regroup_plan`.  Pure numpy, so
  recovery can regroup after the writing ranks are gone.

Checkpoint traffic uses the ``CHECKPOINT_TAG_BASE`` tag space reserved
in :mod:`repro.transport.errors` when a store routes blocks over a
transport; the in-process stores deposit directly (each rank writes its
own block — N-N checkpointing — so no gather bottleneck exists).
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.grid.bandgroups import BandGroups
from repro.grid.decompose import Decomposition
from repro.grid.redistribute import Transfer, band_regroup_plan, transfer_plan

#: fields every rank deposits per snapshot
CHECKPOINT_FIELDS = ("states", "rho_old", "v_h", "v_xc")

#: bump when the snapshot layout changes (2: snapshots embed the
#: serialized JobSpec; version-1 snapshots still load, without one)
CHECKPOINT_VERSION = 2


@dataclass(frozen=True)
class SCFCheckpoint:
    """One committed snapshot of distributed SCF state.

    ``blocks[rank]`` maps each of :data:`CHECKPOINT_FIELDS` to the
    rank's *interior* array (halo shells are recomputed on resume):
    ``states`` is ``(n_bands, *block_shape)``, the rest ``block_shape``.
    """

    iteration: int
    n_domains: int
    shape: tuple[int, int, int]
    energies: np.ndarray
    blocks: dict[int, dict[str, np.ndarray]]
    #: band groups of the run that wrote the snapshot; with ``nb > 1``
    #: ``n_domains`` counts *all* ranks of the 2D grid x band layout and
    #: each rank's ``states`` stack holds only its group's bands
    n_band_groups: int = 1
    #: serialized :class:`~repro.core.jobspec.JobSpec` of the writing run
    #: (``JobSpec.to_dict()``); ``None`` for pre-version-2 snapshots.
    #: Resume validates it with :func:`~repro.core.jobspec
    #: .check_restart_compatible` so a mismatched restart is a typed
    #: error instead of silent state corruption.
    jobspec: dict | None = None

    def field_blocks(self, name: str) -> dict[int, np.ndarray]:
        """Per-rank blocks of one field, e.g. ``field_blocks('v_h')``."""
        if name not in CHECKPOINT_FIELDS:
            raise KeyError(f"unknown checkpoint field {name!r}")
        return {rank: fields[name] for rank, fields in self.blocks.items()}

    def nbytes(self) -> int:
        """Total payload size of the snapshot."""
        return sum(
            arr.nbytes for fields in self.blocks.values() for arr in fields.values()
        )


def _interior_slices(t: Transfer, decomp: Decomposition, rank: int):
    """Global slab -> slab inside the rank's *interior* (no halo) block."""
    block = decomp.block_slices(rank)
    return tuple(
        slice(g.start - b.start, g.stop - b.start)
        for g, b in zip(t.global_slices, block)
    )


def redistribute_blocks(
    blocks: dict[int, np.ndarray],
    old: Decomposition,
    new: Decomposition,
) -> dict[int, np.ndarray]:
    """Re-slice per-rank interior blocks from layout ``old`` to ``new``.

    Pure numpy — no transport, no live ranks — because this runs during
    *recovery*, when the old ranks may no longer exist.  Arrays may carry
    leading axes (e.g. a band axis); only the trailing three dimensions
    are grid dimensions.  This is the shrink path: a 4-rank checkpoint
    becomes valid 2-rank initial state by executing the same
    :func:`~repro.grid.redistribute.transfer_plan` the live
    redistribution uses, as slab copies.
    """
    if set(blocks) != set(range(old.n_domains)):
        raise ValueError(
            f"need a block for each of {old.n_domains} old ranks, "
            f"got ranks {sorted(blocks)}"
        )
    plan = transfer_plan(old, new)
    lead = blocks[0].shape[:-3]
    out = {
        dst: np.zeros(lead + new.block_shape(dst), dtype=blocks[0].dtype)
        for dst in range(new.n_domains)
    }
    for t in plan:
        src_sl = (Ellipsis,) + _interior_slices(t, old, t.src)
        dst_sl = (Ellipsis,) + _interior_slices(t, new, t.dst)
        out[t.dst][dst_sl] = blocks[t.src][src_sl]
    return out


def regroup_checkpoint(
    ckpt: SCFCheckpoint,
    grid,
    n_ranks: int,
    n_band_groups: int = 1,
) -> SCFCheckpoint:
    """Re-slice a committed snapshot onto a new ``(ranks, groups)`` layout.

    This is the shrink/regroup restart: a checkpoint deposited by ``nb``
    band groups over ``P`` ranks becomes valid initial state for ``nb'``
    groups over ``P'`` ranks (typically ``nb' <= nb`` on fewer ranks
    after a node loss, but any layout over the same grid and band count
    works).  Three pure-numpy moves, no transport:

    * each old group's band stack is re-sliced from the old domain
      decomposition to the new one (:func:`redistribute_blocks` carries
      the band axis as a leading dimension);
    * the band axis is re-gathered per :func:`~repro.grid.redistribute
      .band_regroup_plan`, so every new rank stacks exactly its group's
      contiguous bands;
    * the scalar fields (density history, potentials) are identical
      across groups by construction, so group 0's blocks are re-sliced
      once and replicated into every new group.

    The result keeps the writing run's iteration, energies and embedded
    jobspec — resume re-validates those exactly as for a same-layout
    snapshot.
    """
    old_nb = ckpt.n_band_groups
    if ckpt.n_domains % old_nb:
        raise ValueError(
            f"corrupt checkpoint: {ckpt.n_domains} ranks not divisible "
            f"by {old_nb} band groups"
        )
    old_rpg = ckpt.n_domains // old_nb
    bands_per_old = ckpt.blocks[0]["states"].shape[0]
    n_bands = bands_per_old * old_nb
    # the two layouts raise the typed divisibility errors (bands % nb',
    # ranks % nb') before any array moves
    old_lay = BandGroups(n_ranks=ckpt.n_domains, n_bands=n_bands, n_groups=old_nb)
    new_lay = BandGroups(n_ranks=n_ranks, n_bands=n_bands, n_groups=n_band_groups)
    old_decomp = Decomposition(grid, old_rpg)
    new_decomp = Decomposition(grid, new_lay.ranks_per_group)
    # domain re-slice: one redistribution per old group for the band
    # stacks, one (group 0) for the shared scalars
    states_by_group = [
        redistribute_blocks(
            {
                d: ckpt.blocks[old_lay.rank_of(g, d)]["states"]
                for d in range(old_rpg)
            },
            old_decomp,
            new_decomp,
        )
        for g in range(old_nb)
    ]
    scalars = {
        name: redistribute_blocks(
            {d: ckpt.blocks[d][name] for d in range(old_rpg)},
            old_decomp,
            new_decomp,
        )
        for name in ("rho_old", "v_h", "v_xc")
    }
    moves = band_regroup_plan(old_lay, new_lay)
    blocks: dict[int, dict[str, np.ndarray]] = {}
    for rank in range(n_ranks):
        g = new_lay.group_of(rank)
        d = new_lay.domain_of(rank)
        stack = np.stack([
            states_by_group[m.src_group][d][m.src_index]
            for m in moves
            if m.dst_group == g
        ])
        blocks[rank] = {"states": stack}
        for name, per_domain in scalars.items():
            blocks[rank][name] = per_domain[d].copy()
    return SCFCheckpoint(
        iteration=ckpt.iteration,
        n_domains=n_ranks,
        shape=ckpt.shape,
        energies=ckpt.energies,
        blocks=blocks,
        n_band_groups=n_band_groups,
        jobspec=ckpt.jobspec,
    )


def _validate_payload(fields: dict[str, np.ndarray]) -> None:
    missing = set(CHECKPOINT_FIELDS) - set(fields)
    if missing:
        raise ValueError(f"checkpoint deposit missing fields {sorted(missing)}")


class _DepositTelemetry:
    """Shared store instrumentation: bytes, latency, commits.

    Both stores time every :meth:`deposit` into the
    ``checkpoint_deposit_seconds`` histogram, count the deposited payload
    into ``checkpoint_bytes_total`` and count committed snapshots into
    ``checkpoint_commits_total`` — on the registry passed at construction
    (the null registry by default, so untelemetered stores pay only the
    no-op calls).
    """

    def _init_metrics(self, metrics) -> None:
        from repro.obs.metrics import resolve_registry

        self.metrics = resolve_registry(metrics)
        self._m_bytes = self.metrics.counter("checkpoint_bytes_total")
        self._m_commits = self.metrics.counter("checkpoint_commits_total")
        self._m_latency = self.metrics.histogram("checkpoint_deposit_seconds")

    def _record_deposit(
        self, fields: dict[str, np.ndarray], elapsed: float, committed: bool
    ) -> None:
        self._m_bytes.inc(sum(arr.nbytes for arr in fields.values()))
        self._m_latency.observe(elapsed)
        if committed:
            self._m_commits.inc()


class MemoryCheckpointStore(_DepositTelemetry):
    """In-process checkpoint store with atomic commit.

    Each rank deposits its own blocks (N-N checkpointing); a snapshot for
    iteration ``k`` is committed — becomes visible to :meth:`latest` —
    only once all ``n_domains`` ranks have deposited.  Thread-safe: the
    rank threads of the in-process transport deposit concurrently.
    """

    def __init__(self, keep: int = 2, metrics=None):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.keep = keep
        self._init_metrics(metrics)
        self._lock = threading.Lock()
        self._pending: dict[int, dict] = {}  # iteration -> partial snapshot
        self._committed: dict[int, SCFCheckpoint] = {}

    @classmethod
    def from_spec(cls, spec, metrics=None) -> "MemoryCheckpointStore":
        """Retention window from ``spec.runtime.checkpoint_keep``."""
        return cls(keep=spec.runtime.checkpoint_keep, metrics=metrics)

    def deposit(
        self,
        iteration: int,
        rank: int,
        n_domains: int,
        shape: tuple[int, int, int],
        energies: np.ndarray,
        fields: dict[str, np.ndarray],
        n_band_groups: int = 1,
        jobspec: dict | None = None,
    ) -> bool:
        """Deposit one rank's blocks; True if this commits the snapshot."""
        _validate_payload(fields)
        t0 = time.perf_counter()
        copied = {k: np.array(v, copy=True) for k, v in fields.items()}
        with self._lock:
            slot = self._pending.setdefault(
                iteration,
                {
                    "n_domains": n_domains,
                    "n_band_groups": n_band_groups,
                    "shape": tuple(shape),
                    "energies": np.array(energies, copy=True),
                    "jobspec": jobspec,
                    "blocks": {},
                },
            )
            if slot["n_domains"] != n_domains:
                raise ValueError(
                    f"iteration {iteration}: deposits disagree on rank count "
                    f"({slot['n_domains']} vs {n_domains})"
                )
            if slot["n_band_groups"] != n_band_groups:
                raise ValueError(
                    f"iteration {iteration}: deposits disagree on band "
                    f"groups ({slot['n_band_groups']} vs {n_band_groups})"
                )
            slot["blocks"][rank] = copied
            committed = len(slot["blocks"]) == n_domains
            if committed:
                ckpt = SCFCheckpoint(
                    iteration=iteration,
                    n_domains=n_domains,
                    shape=slot["shape"],
                    energies=slot["energies"],
                    blocks=slot["blocks"],
                    n_band_groups=slot["n_band_groups"],
                    jobspec=slot["jobspec"],
                )
                del self._pending[iteration]
                self._committed[iteration] = ckpt
                for it in sorted(self._committed)[: -self.keep]:
                    del self._committed[it]
        self._record_deposit(fields, time.perf_counter() - t0, committed)
        return committed

    def iterations(self) -> list[int]:
        """Committed snapshot iterations, ascending."""
        with self._lock:
            return sorted(self._committed)

    def latest(self) -> SCFCheckpoint | None:
        with self._lock:
            if not self._committed:
                return None
            return self._committed[max(self._committed)]

    def load(self, iteration: int) -> SCFCheckpoint:
        with self._lock:
            if iteration not in self._committed:
                raise KeyError(f"no committed checkpoint for iteration {iteration}")
            return self._committed[iteration]

    def discard_pending(self) -> int:
        """Drop partial (uncommitted) deposits; returns how many slots.

        Called by recovery before a retry: a failed attempt may have left
        half-deposited iterations that must not mix with the rerun's.
        """
        with self._lock:
            n = len(self._pending)
            self._pending.clear()
            return n


class FileCheckpointStore(_DepositTelemetry):
    """On-disk checkpoint store: one ``.npz`` per rank per snapshot.

    Layout under ``root``::

        it00007_rank0.npz   # fields of rank 0 at iteration 7
        it00007_rank1.npz
        it00007.json        # commit marker, written last (atomic commit)

    The marker carries the snapshot metadata; a snapshot without its
    marker is invisible to :meth:`latest` — exactly the crash-consistency
    rule real restart writers follow.
    """

    def __init__(self, root: str | Path, keep: int = 2, metrics=None):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.keep = keep
        self._init_metrics(metrics)
        self._lock = threading.Lock()

    @classmethod
    def from_spec(cls, spec, root: str | Path, metrics=None) -> "FileCheckpointStore":
        """Retention window from ``spec.runtime.checkpoint_keep``."""
        return cls(root, keep=spec.runtime.checkpoint_keep, metrics=metrics)

    def _rank_path(self, iteration: int, rank: int) -> Path:
        return self.root / f"it{iteration:05d}_rank{rank}.npz"

    def _marker_path(self, iteration: int) -> Path:
        return self.root / f"it{iteration:05d}.json"

    def deposit(
        self,
        iteration: int,
        rank: int,
        n_domains: int,
        shape: tuple[int, int, int],
        energies: np.ndarray,
        fields: dict[str, np.ndarray],
        n_band_groups: int = 1,
        jobspec: dict | None = None,
    ) -> bool:
        _validate_payload(fields)
        t0 = time.perf_counter()
        np.savez(self._rank_path(iteration, rank), **fields)
        with self._lock:
            have = [
                r for r in range(n_domains)
                if self._rank_path(iteration, r).exists()
            ]
            committed = len(have) == n_domains
            if committed:
                marker = {
                    "version": CHECKPOINT_VERSION,
                    "iteration": iteration,
                    "n_domains": n_domains,
                    "n_band_groups": n_band_groups,
                    "shape": list(shape),
                    "energies": [float(e) for e in np.atleast_1d(energies)],
                }
                if jobspec is not None:
                    marker["jobspec"] = jobspec
                self._marker_path(iteration).write_text(json.dumps(marker))
                self._prune()
        self._record_deposit(fields, time.perf_counter() - t0, committed)
        return committed

    def _prune(self) -> None:
        committed = sorted(self._iterations_unlocked())
        for it in committed[: -self.keep]:
            self._marker_path(it).unlink(missing_ok=True)
            for p in self.root.glob(f"it{it:05d}_rank*.npz"):
                p.unlink(missing_ok=True)

    def _iterations_unlocked(self) -> list[int]:
        return sorted(
            int(p.stem[2:]) for p in self.root.glob("it*.json")
        )

    def iterations(self) -> list[int]:
        with self._lock:
            return self._iterations_unlocked()

    def latest(self) -> SCFCheckpoint | None:
        its = self.iterations()
        if not its:
            return None
        return self.load(its[-1])

    def load(self, iteration: int) -> SCFCheckpoint:
        marker_path = self._marker_path(iteration)
        if not marker_path.exists():
            raise KeyError(f"no committed checkpoint for iteration {iteration}")
        marker = json.loads(marker_path.read_text())
        blocks: dict[int, dict[str, np.ndarray]] = {}
        for rank in range(marker["n_domains"]):
            with np.load(self._rank_path(iteration, rank)) as npz:
                blocks[rank] = {name: npz[name] for name in CHECKPOINT_FIELDS}
        return SCFCheckpoint(
            iteration=marker["iteration"],
            n_domains=marker["n_domains"],
            shape=tuple(marker["shape"]),
            energies=np.asarray(marker["energies"]),
            blocks=blocks,
            n_band_groups=marker.get("n_band_groups", 1),
            jobspec=marker.get("jobspec"),
        )

    def discard_pending(self) -> int:
        """Remove rank files of snapshots that never got their marker."""
        with self._lock:
            committed = set(self._iterations_unlocked())
            n = 0
            for p in self.root.glob("it*_rank*.npz"):
                it = int(p.stem.split("_")[0][2:])
                if it not in committed:
                    p.unlink(missing_ok=True)
                    n += 1
            return n
