"""Functional-plane executor for the band-ring orthogonalization plan.

The subspace steps of a band-parallel SCF — overlap/Hamiltonian matrix
builds and subspace rotations — need data from *every* band group, but
each rank only holds its own group's ``G/nb`` wave-function blocks.  The
compiled :class:`repro.core.schedule.BandSchedulePlan` prescribes the
classic systolic ring: ``nb - 1`` stages, each posting a non-blocking
block exchange with the neighbouring groups *before* running the blocked
GEMM on the block currently held, so the transfer hides behind the
matrix multiply.  This module interprets that plan on real NumPy blocks
over the in-process transport — the same step sequence the DES replay
(:func:`repro.core.simrun.simulate_band_plan`) and the analytic model
(:class:`repro.core.bandpar.BandParallelModel`) walk.

Two entry points mirror the plan's two phases:

* :meth:`BandRingExecutor.band_matrix` — the overlap phase.  Each rank
  computes its group's *row strip* of a ``G x G`` matrix
  ``M[i, j] = <left_i | right_j>`` as one blocked GEMM per ring stage
  (partial over the rank's domain points); a global all-reduce of the
  zero-padded matrix completes it everywhere, summing domains within a
  group and merging row strips across groups.
* :meth:`BandRingExecutor.rotate` — the rotate phase.  Each rank
  accumulates its group's rows of ``R @ states`` from the circulating
  blocks; no reduction is needed since rotation is local to each domain.

:func:`band_axis_sum` handles the remaining cross-group reduction the
SCF needs (e.g. the density, which every group only knows its own bands'
share of): an exchange among a rank's *band peers* — the same domain in
every group — summed in group-index order so all peers end up with
bitwise-identical results.

Everything degenerates cleanly at ``nb = 1``: the plan holds a single
:class:`PartialGemm` per phase and no ring steps, so ``band_matrix`` is
one local GEMM + all-reduce and ``rotate`` one local GEMM.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

import numpy as np

from repro.core.schedule import (
    OVERLAP_PHASE,
    ROTATE_PHASE,
    BandSchedulePlan,
    PartialGemm,
    RingSendRecv,
    ring_tag,
)
from repro.core.workspace import Workspace
from repro.grid.bandgroups import BandGroups

__all__ = [
    "BAND_REDUCE_PHASE",
    "BandRingExecutor",
    "band_axis_sum",
]

#: tag-space phase for :func:`band_axis_sum` exchanges (the plan's ring
#: phases use 0 and 1)
BAND_REDUCE_PHASE = 2


class BandRingExecutor:
    """Runs the compiled band plan's ring passes on real blocks.

    One executor serves one rank for a whole SCF run; the GEMM tiles go
    through a :class:`Workspace` arena so repeated subspace steps are
    allocation-free.  ``on_step`` (same signature as the stencil
    engine's hook: ``hook(step, worker, start, end)``) lets a
    :class:`repro.obs.spans.SpanTracer` record the executed steps.
    """

    def __init__(
        self,
        layout: BandGroups,
        plan: BandSchedulePlan,
        workspace: Optional[Workspace] = None,
        on_step: Optional[Callable] = None,
    ):
        if plan.layout != layout:
            raise ValueError(
                f"plan was compiled for {plan.layout.describe()}, "
                f"not {layout.describe()}"
            )
        self.layout = layout
        self.plan = plan
        self.workspace = workspace if workspace is not None else Workspace()
        self.on_step = on_step

    # -- overlap phase ------------------------------------------------------
    def band_matrix(
        self, ep, left: np.ndarray, right: np.ndarray, h3: float
    ) -> np.ndarray:
        """This rank's partial of ``M[i, j] = <left_i | right_j> h3``.

        ``left`` and ``right`` are ``(bands_per_group, points)`` row
        stacks of the rank's own band blocks; ``left`` stays put while
        ``right`` circulates the ring.  Returns a zero-padded ``G x G``
        array with only this group's rows filled and only this domain's
        points summed — callers complete it with one *global* all-reduce
        over every rank.
        """
        lay = self.layout
        group = lay.group_of(ep.rank)
        domain = lay.domain_of(ep.rank)
        m = lay.bands_per_group
        my = lay.bands_of(group)
        out = np.zeros((lay.n_bands, lay.n_bands), dtype=left.dtype)
        held = right
        pending = None
        tile = self.workspace.borrow((m, m), left.dtype)
        try:
            for st in self.plan.phase_steps(group, OVERLAP_PHASE):
                t0 = time.perf_counter() if self.on_step else 0.0
                if isinstance(st, RingSendRecv):
                    ep.isend(lay.rank_of(st.dst_group, domain), held, tag=st.tag)
                    pending = ep.irecv(
                        src=lay.rank_of(st.src_group, domain), tag=st.tag
                    )
                elif isinstance(st, PartialGemm):
                    src = lay.bands_of(st.src_group)
                    np.matmul(left, held.T, out=tile)
                    tile *= h3
                    out[my.start : my.stop, src.start : src.stop] = tile
                else:  # WaitAll: the next block has to be in hand
                    held = pending.wait().reshape(m, -1)
                    pending = None
                if self.on_step:
                    self.on_step(st, 0, t0, time.perf_counter())
        finally:
            self.workspace.release(tile)
        return out

    # -- rotate phase --------------------------------------------------------
    def rotate(self, ep, rotation: np.ndarray, local: np.ndarray) -> np.ndarray:
        """This group's rows of ``rotation @ states``.

        ``rotation`` is the full ``G x G`` matrix (identical on every
        rank after the eigensolve of an all-reduced band matrix);
        ``local`` is the ``(bands_per_group, points)`` stack of the
        rank's current blocks, which circulates the ring while each
        stage accumulates ``rotation[my rows, held rows] @ held``.  The
        result is complete without any reduction — rotation mixes bands,
        not domains.
        """
        lay = self.layout
        group = lay.group_of(ep.rank)
        domain = lay.domain_of(ep.rank)
        m = lay.bands_per_group
        my = lay.bands_of(group)
        acc = np.zeros_like(local)
        held = local
        pending = None
        tmp = self.workspace.borrow(local.shape, local.dtype)
        try:
            for st in self.plan.phase_steps(group, ROTATE_PHASE):
                t0 = time.perf_counter() if self.on_step else 0.0
                if isinstance(st, RingSendRecv):
                    ep.isend(lay.rank_of(st.dst_group, domain), held, tag=st.tag)
                    pending = ep.irecv(
                        src=lay.rank_of(st.src_group, domain), tag=st.tag
                    )
                elif isinstance(st, PartialGemm):
                    src = lay.bands_of(st.src_group)
                    u = rotation[my.start : my.stop, src.start : src.stop]
                    np.matmul(u, held, out=tmp)
                    acc += tmp
                else:  # WaitAll
                    held = pending.wait().reshape(m, -1)
                    pending = None
                if self.on_step:
                    self.on_step(st, 0, t0, time.perf_counter())
        finally:
            self.workspace.release(tmp)
        return acc


def band_axis_sum(
    ep, layout: BandGroups, array: np.ndarray, round_id: int = 0
) -> np.ndarray:
    """Sum ``array`` across the rank's band peers, deterministically.

    Band peers are the ranks holding the *same domain* in every band
    group (:meth:`BandGroups.band_peers`).  Each peer contributes its
    partial and all of them accumulate the ``nb`` pieces in group-index
    order, so every peer produces a bitwise-identical total — the
    property the redundant per-group Poisson solves rely on to stay in
    lockstep.  With one group this is the identity.
    """
    if layout.n_groups == 1:
        return array
    rank = ep.rank
    tag = ring_tag(BAND_REDUCE_PHASE, round_id % (1 << 12))
    peers = layout.band_peers(rank)
    for peer in peers:
        if peer != rank:
            ep.isend(peer, array, tag=tag)
    parts = {layout.group_of(rank): array}
    for peer in peers:
        if peer != rank:
            parts[layout.group_of(peer)] = ep.recv(src=peer, tag=tag)
    total = np.zeros_like(array)
    for group in sorted(parts):
        total += parts[group]
    return total
