"""RMM-DIIS: GPAW's residual-minimization eigensolver.

GPAW does not Lanczos-diagonalize its Hamiltonian; it iterates a band set
with *residual minimization* (RMM-DIIS), which is why the FD stencil is
applied to every wave function several times per SCF step — the workload
profile the whole-application model (:mod:`repro.core.wholeapp`)
parameterizes.  The structure per iteration:

1. **Rayleigh-Ritz** in the current band subspace: build
   ``H_sub = <psi_i|H|psi_j>``, diagonalize, rotate bands and ``H psi``.
2. **Residuals** ``R_n = H psi_n - eps_n psi_n`` per band.
3. **Precondition**: a few damped-Jacobi sweeps of the kinetic operator
   approximate ``(T + shift)^-1 R`` — the smooth, low-pass step direction
   GPAW's multigrid preconditioner produces.
4. **Line step** ``psi_n += lambda_n PR_n`` with the residual-minimizing
   step length, then re-orthonormalize (Löwdin).

Exact numerics (ARPACK) live in :mod:`repro.dft.eigensolver`; this module
is the faithful *algorithmic* counterpart and is validated against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dft.hamiltonian import Hamiltonian
from repro.dft.operators import Kinetic
from repro.dft.orthogonalize import lowdin
from repro.grid.grid import GridDescriptor


class KineticPreconditioner:
    """Approximate ``(T + shift)^-1`` by damped Jacobi sweeps.

    The kinetic operator's diagonal dominates at high frequency, so a few
    damped sweeps strongly attenuate exactly the residual components that
    make plain gradient steps diverge on fine grids.
    """

    def __init__(self, grid: GridDescriptor, shift: float = 1.0, sweeps: int = 3,
                 omega: float = 2 / 3):
        if shift <= 0:
            raise ValueError(f"shift must be > 0, got {shift}")
        if sweeps < 1:
            raise ValueError(f"sweeps must be >= 1, got {sweeps}")
        self.kinetic = Kinetic(grid)
        self.shift = shift
        self.sweeps = sweeps
        self.omega = omega
        self._inv_diag = 1.0 / (self.kinetic.coeffs.center + shift)

    def apply(self, residual: np.ndarray) -> np.ndarray:
        """A smooth approximation to ``(T + shift)^-1 residual``."""
        x = self.omega * self._inv_diag * residual
        for _ in range(self.sweeps - 1):
            r = residual - (self.kinetic.apply(x) + self.shift * x)
            x = x + self.omega * self._inv_diag * r
        return x


@dataclass
class RmmDiisResult:
    """Converged (or last) band set."""

    energies: np.ndarray
    states: np.ndarray
    iterations: int
    converged: bool
    residual_history: list[float] = field(default_factory=list)


class RmmDiis:
    """Residual-minimization iteration for the lowest ``k`` bands."""

    def __init__(
        self,
        hamiltonian: Hamiltonian,
        n_bands: int,
        tolerance: float = 1e-5,
        max_iterations: int = 200,
        preconditioner: KineticPreconditioner | None = None,
        seed: int = 0,
        initial_states: np.ndarray | None = None,
    ):
        """``initial_states`` warm-starts the iteration — the SCF loop
        feeds back the previous cycle's bands, which is how GPAW keeps
        RMM-DIIS cheap (a handful of sweeps per SCF step instead of a
        from-scratch diagonalization)."""
        if n_bands < 1:
            raise ValueError(f"n_bands must be >= 1, got {n_bands}")
        self.h = hamiltonian
        self.grid = hamiltonian.grid
        self.n_bands = n_bands
        self.tolerance = tolerance
        self.max_iterations = max_iterations
        self.precond = (
            preconditioner
            if preconditioner is not None
            else KineticPreconditioner(self.grid)
        )
        self.seed = seed
        if initial_states is not None:
            expected = (n_bands,) + self.grid.shape
            if initial_states.shape != expected:
                raise ValueError(
                    f"initial_states must have shape {expected}, "
                    f"got {initial_states.shape}"
                )
        self.initial_states = initial_states

    # -- pieces --------------------------------------------------------------
    def _initial_states(self) -> np.ndarray:
        if self.initial_states is not None:
            return lowdin(self.grid, self.initial_states.copy())
        rng = np.random.default_rng(self.seed)
        states = rng.standard_normal((self.n_bands,) + self.grid.shape)
        # Pre-smooth the random start: random noise is almost entirely
        # high-frequency, which converges slowest.
        states = np.stack([self.precond.apply(s) for s in states])
        return lowdin(self.grid, states)

    def _rayleigh_ritz(
        self, states: np.ndarray, h_states: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        h3 = self.grid.spacing ** 3
        flat = states.reshape(self.n_bands, -1)
        h_flat = h_states.reshape(self.n_bands, -1)
        h_sub = (flat.conj() @ h_flat.T) * h3
        h_sub = 0.5 * (h_sub + h_sub.conj().T)
        eps, u = np.linalg.eigh(h_sub)
        rotated = (u.T @ flat).reshape(states.shape)
        h_rotated = (u.T @ h_flat).reshape(states.shape)
        return eps, rotated, h_rotated

    def _line_minimize(self, psi: np.ndarray, direction: np.ndarray) -> np.ndarray:
        """Exact Rayleigh-quotient line search in ``span{psi, direction}``.

        Solves the 2x2 generalized eigenproblem in that span and returns
        the combination with the *lower* Rayleigh quotient — a guaranteed
        downhill step, which is what keeps the iteration anchored to the
        bottom of the spectrum (pure residual minimization would lock onto
        whichever eigenpair is closest, including the top).
        """
        h3 = self.grid.spacing ** 3
        basis = [psi, direction]
        h_basis = [self.h.apply(b) for b in basis]
        a = np.empty((2, 2))
        s = np.empty((2, 2))
        for i in range(2):
            for j in range(2):
                a[i, j] = np.vdot(basis[i], h_basis[j]).real * h3
                s[i, j] = np.vdot(basis[i], basis[j]).real * h3
        a = 0.5 * (a + a.T)
        s = 0.5 * (s + s.T)
        # Guard: a (near-)dependent direction makes S singular.
        if np.linalg.det(s) < 1e-14 * s[0, 0] * max(s[1, 1], 1e-300):
            return psi
        from scipy.linalg import eigh as generalized_eigh

        _, vecs = generalized_eigh(a, s)
        c0, c1 = vecs[:, 0]  # lowest root
        return c0 * psi + c1 * direction

    # -- driver ----------------------------------------------------------------
    def run(self) -> RmmDiisResult:
        """Iterate until the largest band residual drops below tolerance."""
        h3 = self.grid.spacing ** 3
        states = self._initial_states()
        history: list[float] = []
        eps = np.zeros(self.n_bands)
        for it in range(1, self.max_iterations + 1):
            h_states = self.h.apply_all(states)
            eps, states, h_states = self._rayleigh_ritz(states, h_states)

            residuals = h_states - eps[:, None, None, None] * states
            r_norms = np.sqrt(
                np.sum(np.abs(residuals.reshape(self.n_bands, -1)) ** 2, axis=1) * h3
            )
            worst = float(r_norms.max())
            history.append(worst)
            if worst < self.tolerance:
                return RmmDiisResult(eps, states, it, True, history)

            for n in range(self.n_bands):
                direction = self.precond.apply(residuals[n])
                states[n] = self._line_minimize(states[n], direction)
            states = lowdin(self.grid, states)
        return RmmDiisResult(eps, states, self.max_iterations, False, history)
