"""Electron density from occupied states."""

from __future__ import annotations

import numpy as np

from repro.grid.grid import GridDescriptor


def density_from_states(
    grid: GridDescriptor,
    states: np.ndarray,
    occupations: np.ndarray | list[float] | None = None,
) -> np.ndarray:
    """``rho(r) = sum_n f_n |psi_n(r)|^2``.

    ``occupations`` defaults to 2 per band (closed-shell filling).  The
    result is real regardless of wave-function dtype.
    """
    if states.ndim != 4 or states.shape[1:] != grid.shape:
        raise ValueError(
            f"states must be (bands, {grid.shape}); got {states.shape}"
        )
    n_bands = states.shape[0]
    if occupations is None:
        occ = np.full(n_bands, 2.0)
    else:
        occ = np.asarray(occupations, dtype=float)
        if occ.shape != (n_bands,):
            raise ValueError(
                f"occupations must have shape ({n_bands},), got {occ.shape}"
            )
        if np.any(occ < 0):
            raise ValueError("occupations must be non-negative")
    rho = np.einsum("n,nxyz->xyz", occ, np.abs(states) ** 2)
    return rho.astype(np.float64)


def total_charge(grid: GridDescriptor, rho: np.ndarray) -> float:
    """Integral of the density over the grid."""
    grid.check_array(rho.astype(grid.dtype) if rho.dtype != grid.dtype else rho, "rho")
    return float(rho.sum() * grid.spacing ** 3)
