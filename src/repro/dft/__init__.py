"""A miniature real-space DFT layer — the application GPAW embeds the FD
operation in.

The paper's kernel is motivated by two consumers (section II): the Poisson
equation for the electrostatic potential and the Kohn-Sham equations for
the wave functions.  This package implements both on top of the library's
grid/stencil substrate, faithfully enough to run real physics in the
examples and integration tests:

* :mod:`repro.dft.operators` — Laplacian and kinetic-energy operators on a
  grid descriptor.
* :mod:`repro.dft.poisson` — weighted-Jacobi and multigrid solvers for
  ``laplace(phi) = -4 pi rho``.
* :mod:`repro.dft.hamiltonian` — ``H = -1/2 laplace + V(r)``.
* :mod:`repro.dft.eigensolver` — lowest eigenpairs of the FD Hamiltonian.
* :mod:`repro.dft.orthogonalize` — Gram-Schmidt and Löwdin
  orthogonalization of wave-function sets (the operation that forces
  GPAW's same-subset-everywhere decomposition).
* :mod:`repro.dft.density` — electron density from occupied states.
* :mod:`repro.dft.scf` — a small self-consistent field loop (Hartree
  interaction via the Poisson solver).
* :mod:`repro.dft.checkpoint` — atomic N-N checkpoint/restart of the
  distributed SCF, including shrink-to-fewer-ranks resume
  (docs/ROBUSTNESS.md).
* :mod:`repro.dft.band_ortho` — the functional executor of the band-ring
  orthogonalization plan (2D grid x band decomposition,
  ``DistributedSCF(n_band_groups=...)``).
"""

from repro.dft.band_ortho import BandRingExecutor, band_axis_sum
from repro.dft.checkpoint import (
    FileCheckpointStore,
    MemoryCheckpointStore,
    SCFCheckpoint,
    redistribute_blocks,
    regroup_checkpoint,
)
from repro.dft.operators import Laplacian, Kinetic
from repro.dft.poisson import PoissonSolver, PoissonResult
from repro.dft.hamiltonian import Hamiltonian
from repro.dft.eigensolver import lowest_eigenstates, EigenResult
from repro.dft.orthogonalize import gram_schmidt, lowdin, overlap_matrix
from repro.dft.density import density_from_states
from repro.dft.scf import SCFLoop, SCFResult
from repro.dft.rmm_diis import KineticPreconditioner, RmmDiis, RmmDiisResult
from repro.dft.distributed import DistributedPoissonSolver, DistributedPoissonResult
from repro.dft.distributed_scf import DistributedSCF, DistributedSCFResult
from repro.dft.recovery import RecoveryController
from repro.dft.xc import lda_energy, lda_potential

__all__ = [
    "BandRingExecutor",
    "band_axis_sum",
    "Laplacian",
    "Kinetic",
    "PoissonSolver",
    "PoissonResult",
    "Hamiltonian",
    "lowest_eigenstates",
    "EigenResult",
    "gram_schmidt",
    "lowdin",
    "overlap_matrix",
    "density_from_states",
    "SCFLoop",
    "SCFResult",
    "KineticPreconditioner",
    "RmmDiis",
    "RmmDiisResult",
    "DistributedPoissonSolver",
    "DistributedPoissonResult",
    "DistributedSCF",
    "DistributedSCFResult",
    "FileCheckpointStore",
    "MemoryCheckpointStore",
    "SCFCheckpoint",
    "RecoveryController",
    "lda_energy",
    "lda_potential",
    "redistribute_blocks",
    "regroup_checkpoint",
]
