"""The self-healing recovery controller: observe, replan, regroup, resume.

PR 3 gave the library typed failures and checkpoint/restart; PR 6 a
planner that prices every feasible layout.  This module closes the loop
between them.  :class:`RecoveryController` wraps a
:class:`~repro.dft.distributed_scf.DistributedSCF` and turns failure
handling into a policy-driven **degradation ladder**:

1. **Observe** — a :class:`~repro.transport.errors.TransportError`
   raised by an attempt is attributed via :func:`~repro.transport
   .supervisor.crash_report_from` (failed rank, transient vs fatal,
   schedule-step info, injected fault events).
2. **Decide** — a transient failure retries in place; a fatal one
   shrinks the resource set by the policy's blast radius and asks
   :meth:`~repro.core.planner.Planner.degrade` for the best feasible
   layout on the survivors, walking candidate core counts downward.
   Typed :class:`~repro.core.planner.Rejection`\\ s explain every layout
   it could not use; running out of rungs raises
   :class:`~repro.core.recovery_policy.DegradationError`.
3. **Regroup** — the rebuilt :class:`DistributedSCF` resumes from the
   latest committed checkpoint; :func:`~repro.dft.checkpoint
   .regroup_checkpoint` re-slices the band axis and the domains onto the
   planner-chosen ``(ranks, band groups)`` layout.
4. **Adapt** — between attempts the controller feeds the measured
   per-iteration wall time (``scf_iteration_seconds``), per-deposit cost
   (``checkpoint_deposit_seconds``) and observed failure rate into
   :class:`~repro.core.recovery_policy.AdaptiveCadence`, which applies
   Daly's :func:`~repro.analysis.resilience.optimal_checkpoint_interval`
   live instead of trusting a constructor constant.

Everything is deterministic under a seeded
:class:`~repro.transport.faults.FaultPlan` and observable: attempts are
``recovery.attempt{k}`` spans on the tracer, and the ``recovery_*``
counters/gauges/histograms land in the metrics registry.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.core.planner import Planner
from repro.core.recovery_policy import (
    AdaptiveCadence,
    DegradationError,
    DegradationPolicy,
    DegradationStep,
)
from repro.dft.distributed_scf import DistributedSCF, DistributedSCFResult
from repro.transport.errors import TransportError
from repro.transport.supervisor import CrashReport, crash_report_from

__all__ = ["RecoveryController"]


class RecoveryController:
    """Drive a :class:`DistributedSCF` to completion through failures.

    ``transport_factory(attempt, n_ranks)`` builds each attempt's
    transport for the *current* layout (default: the SCF's own default
    transport) — a recovery that shrank the run needs a smaller
    transport, which is why the factory takes the rank count.

    The controller owns no numerical state: all state flows through the
    shared checkpoint store, so the ladder can rebuild the SCF object
    freely.  After :meth:`run` returns, :attr:`steps` records every rung
    taken and :attr:`scf` is the instance that finished.
    """

    def __init__(
        self,
        scf: DistributedSCF,
        policy: Optional[DegradationPolicy] = None,
        planner: Optional[Planner] = None,
        transport_factory: Optional[Callable[[int, int], object]] = None,
        metrics=None,
        tracer=None,
        flight_recorder=None,
    ) -> None:
        if scf.checkpoint_store is None:
            raise ValueError(
                "RecoveryController needs an SCF with a checkpoint_store "
                "(recovery resumes from committed snapshots)"
            )
        from repro.obs.metrics import resolve_registry

        self.scf = scf
        self.policy = policy if policy is not None else DegradationPolicy()
        self.planner = planner if planner is not None else Planner()
        self.transport_factory = transport_factory
        self.metrics = resolve_registry(
            metrics if metrics is not None
            else (scf.metrics if scf.metrics.enabled else None)
        )
        self.tracer = tracer
        #: :class:`~repro.obs.flightrec.FlightRecorder` fed to every
        #: attempt's :meth:`DistributedSCF.run`; dumped on each crash and
        #: before a fatal degradation (see :attr:`flight_dumps`)
        self.flight_recorder = flight_recorder
        #: post-mortem artifacts, one per crash/fatal event, in order
        self.flight_dumps: list[dict] = []
        self.steps: list[DegradationStep] = []
        self.reports: list[CrashReport] = []
        self._m_attempts = self.metrics.counter("recovery_attempts_total")
        self._m_replans = self.metrics.counter("recovery_replans_total")
        self._m_transient = self.metrics.counter(
            "recovery_transient_retries_total"
        )
        self._m_downtime = self.metrics.histogram("recovery_downtime_seconds")
        self._m_ranks = self.metrics.gauge("recovery_ranks")
        self._m_groups = self.metrics.gauge("recovery_band_groups")
        self._m_interval = self.metrics.gauge(
            "recovery_checkpoint_interval_iterations"
        )

    # -- cadence -----------------------------------------------------------
    def _measured_checkpoint_seconds(self) -> float:
        """Per-snapshot cost: mean deposit latency, policy prior fallback."""
        hist = self.metrics.histogram("checkpoint_deposit_seconds")
        if hist.count > 0 and hist.mean > 0:
            return float(hist.mean)
        store_hist = self.scf.checkpoint_store.metrics.histogram(
            "checkpoint_deposit_seconds"
        )
        if store_hist.count > 0 and store_hist.mean > 0:
            return float(store_hist.mean)
        return self.policy.checkpoint_seconds

    def _mtbf_estimate(self, wall_elapsed: float, fatal_failures: int):
        """Observed MTBF; the policy prior until a failure has been seen."""
        if fatal_failures > 0 and wall_elapsed > 0:
            return wall_elapsed / fatal_failures
        return self.policy.expected_mtbf

    def _apply_cadence(self, wall_elapsed: float, fatal_failures: int) -> None:
        """Attach/update the adaptive cadence on the current SCF."""
        if not self.policy.adaptive_cadence:
            self.scf.cadence = None
            return
        mtbf = self._mtbf_estimate(wall_elapsed, fatal_failures)
        if mtbf is None:
            # no failure-rate signal yet: keep the static cadence
            self.scf.cadence = None
            return
        cadence = AdaptiveCadence(
            checkpoint_seconds=self._measured_checkpoint_seconds(),
            mtbf=mtbf,
            min_every=self.policy.min_checkpoint_every,
            max_every=self.policy.max_checkpoint_every,
        )
        self.scf.cadence = cadence
        iter_hist = self.metrics.histogram("scf_iteration_seconds")
        if iter_hist.count > 0 and iter_hist.mean > 0:
            self._m_interval.set(
                float(cadence.interval_iterations(iter_hist.mean))
            )

    # -- the ladder --------------------------------------------------------
    def _degrade(self, report: CrashReport, attempt: int) -> None:
        """Replace :attr:`scf` with the best feasible smaller layout."""
        old_spec = self.scf.spec
        from_ranks = old_spec.layout.n_cores
        from_groups = old_spec.layout.n_band_groups
        survivors = from_ranks - self.policy.ranks_lost_per_failure
        rejections: list = []
        for cores in range(survivors, self.policy.min_ranks - 1, -1):
            result = self.planner.degrade(old_spec, cores)
            if result.choices:
                best = result.best()
                rejections.extend(result.rejected)
                self._rebuild(best.spec)
                self._m_replans.inc()
                self._m_ranks.set(float(best.spec.layout.n_cores))
                self._m_groups.set(float(best.spec.layout.n_band_groups))
                latest = self.scf.checkpoint_store.latest()
                self.steps.append(DegradationStep(
                    attempt=attempt,
                    failed_rank=report.failed_rank,
                    error_type=report.error_type,
                    transient=report.transient,
                    from_ranks=from_ranks,
                    from_groups=from_groups,
                    to_ranks=best.spec.layout.n_cores,
                    to_groups=best.spec.layout.n_band_groups,
                    batch_size=best.spec.layout.batch_size,
                    resumed_iteration=latest.iteration if latest else 0,
                    checkpoint_every=(
                        self.scf.cadence.last_interval
                        if self.scf.cadence is not None
                        else self.scf.checkpoint_every
                    ),
                    rejections=tuple(rejections),
                ))
                return
            rejections.extend(result.rejected)
        if self.flight_recorder is not None:
            # fatal: no feasible layout remains — preserve the window
            # before the exception unwinds past the caller
            self.flight_dumps.append(self.flight_recorder.dump(
                f"fatal degradation: no layout for <= {survivors} ranks",
                crash_report=report,
            ))
        raise DegradationError(survivors, rejections)

    def _rebuild(self, spec) -> None:
        """A fresh SCF for the degraded spec, sharing stores/telemetry."""
        old = self.scf
        self.scf = DistributedSCF.from_spec(
            spec,
            old.v_ext,
            occupations=list(old.occ),
            checkpoint_store=old.checkpoint_store,
            metrics=old.metrics if old.metrics.enabled else None,
            cadence=old.cadence,
        )

    # -- the loop ----------------------------------------------------------
    def run(self, step_tracer=None) -> DistributedSCFResult:
        """Run to completion, degrading on fatal failures.

        Raises the final :class:`TransportError` once the restart budget
        is exhausted, or :class:`DegradationError` when no surviving
        resource count admits a feasible layout.
        """
        policy = self.policy
        attempt = 0
        fatal_failures = 0
        t_run0 = time.perf_counter()
        while True:
            self._apply_cadence(time.perf_counter() - t_run0, fatal_failures)
            transport = None
            if self.transport_factory is not None:
                transport = self.transport_factory(
                    attempt, self.scf.layout.n_ranks
                )
            resume = self.scf.checkpoint_store.latest()
            self._m_attempts.inc()
            t0 = time.perf_counter()
            try:
                result = self.scf.run(
                    transport=transport,
                    resume_from=resume,
                    step_tracer=step_tracer,
                    flight_recorder=self.flight_recorder,
                )
            except TransportError as exc:
                t1 = time.perf_counter()
                attempt += 1
                report = getattr(exc, "crash_report", None)
                if report is None:
                    plan = getattr(transport, "plan", None)
                    report = crash_report_from(
                        exc, attempt, plan.events if plan is not None else ()
                    )
                self.reports.append(report)
                if self.flight_recorder is not None:
                    self.flight_dumps.append(self.flight_recorder.dump(
                        f"crash: attempt {attempt}", crash_report=report
                    ))
                self.metrics.counter(
                    "recovery_failures_total", error=report.error_type
                ).inc()
                self._m_downtime.observe(t1 - t0)
                if self.tracer is not None:
                    self.tracer.record(
                        f"recovery.attempt{attempt}", t0 - t_run0, t1 - t_run0,
                        f"crashed: {report.error_type} rank "
                        f"{report.failed_rank}",
                    )
                if attempt > policy.max_restarts:
                    raise
                self.scf.checkpoint_store.discard_pending()
                if report.transient and policy.retry_transient_in_place:
                    self._m_transient.inc()
                    latest = self.scf.checkpoint_store.latest()
                    self.steps.append(DegradationStep(
                        attempt=attempt,
                        failed_rank=report.failed_rank,
                        error_type=report.error_type,
                        transient=True,
                        from_ranks=self.scf.layout.n_ranks,
                        from_groups=self.scf.layout.n_groups,
                        to_ranks=self.scf.layout.n_ranks,
                        to_groups=self.scf.layout.n_groups,
                        batch_size=self.scf.spec.layout.batch_size,
                        resumed_iteration=latest.iteration if latest else 0,
                        checkpoint_every=(
                            self.scf.cadence.last_interval
                            if self.scf.cadence is not None
                            else self.scf.checkpoint_every
                        ),
                    ))
                    continue
                fatal_failures += 1
                self._degrade(report, attempt)
                continue
            t1 = time.perf_counter()
            if self.tracer is not None:
                self.tracer.record(
                    f"recovery.attempt{attempt + 1}",
                    t0 - t_run0, t1 - t_run0,
                    f"completed on {self.scf.layout.n_ranks} ranks",
                )
            result.restarts = attempt
            self._m_ranks.set(float(self.scf.layout.n_ranks))
            self._m_groups.set(float(self.scf.layout.n_groups))
            return result
