"""Shared datatypes of the simulated MPI layer."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.des.core import Event

#: MPI_ANY_SOURCE / MPI_ANY_TAG wildcards
ANY_SOURCE = -1
ANY_TAG = -1


class ThreadMode(enum.Enum):
    """MPI-2 thread support levels (section III-A of the paper).

    Only the two levels the paper contrasts carry a behavioural difference
    in the model: ``MULTIPLE`` pays per-call locking, ``SINGLE`` (and the
    intermediate levels) do not — but FUNNELED/SERIALIZED are represented
    so user code can declare intent and be validated against it.
    """

    SINGLE = "single"
    FUNNELED = "funneled"
    SERIALIZED = "serialized"
    MULTIPLE = "multiple"

    @property
    def pays_lock_overhead(self) -> bool:
        return self is ThreadMode.MULTIPLE

    @property
    def allows_concurrent_calls(self) -> bool:
        return self is ThreadMode.MULTIPLE


@dataclass
class Message:
    """An in-flight or delivered message."""

    src: int
    dst: int
    tag: int
    nbytes: float
    payload: Any = None
    #: fires when the payload has physically arrived at the destination
    arrival: Optional[Event] = None

    def matches(self, src: int, tag: int) -> bool:
        """Does this message satisfy a recv posted with (src, tag)?"""
        return (src in (ANY_SOURCE, self.src)) and (tag in (ANY_TAG, self.tag))


@dataclass
class Status:
    """Completion information of a receive (MPI_Status)."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    nbytes: float = 0.0


@dataclass
class Request:
    """Handle for a non-blocking operation (MPI_Request).

    ``event`` fires when the operation completes; its value is a
    :class:`Status` for receives and None for sends.
    """

    event: Event
    kind: str  # "send" | "recv"
    status: Status = field(default_factory=Status)

    @property
    def complete(self) -> bool:
        return self.event.triggered
