"""Cartesian communicator with BG/P rank reordering (MPI_Cart_create).

On BG/P, ``MPI_Cart_create`` with ``reorder=1`` maps the Cartesian process
grid onto the physical torus so that grid neighbours are wired neighbours.
The paper uses this in all experiments (section III-A).

The simulated machine makes this easy: :class:`~repro.machine.partition.
Partition` already exposes the physical rank grid (node grid, with
virtual-node ranks extending Z), so the *default* Cartesian layout is the
identity mapping onto it — Cartesian neighbours are then at most one
physical hop apart, which tests assert.  Custom ``dims`` are accepted
(their product must equal the communicator size) but may not be physical;
the torus network still charges the true multi-hop routes, so a bad layout
costs simulated time exactly as it would on the real machine.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.smpi.comm import SimComm
from repro.util.validation import check_shape3


class CartComm:
    """A 3D Cartesian view of a :class:`~repro.smpi.comm.SimComm`."""

    def __init__(
        self,
        comm: SimComm,
        dims: Optional[Sequence[int]] = None,
        periodic: tuple[bool, bool, bool] = (True, True, True),
    ) -> None:
        self.comm = comm
        if dims is None:
            dims = comm.machine.partition.rank_grid_shape
        self.dims = check_shape3(dims, "dims")
        if math.prod(self.dims) != comm.size:
            raise ValueError(
                f"dims {self.dims} do not cover the communicator "
                f"(product {math.prod(self.dims)} != size {comm.size})"
            )
        self.periodic = tuple(bool(p) for p in periodic)

    # -- coordinates ---------------------------------------------------------
    def coords(self, rank: int) -> tuple[int, int, int]:
        """Cartesian coordinates of ``rank`` (C order, x slowest)."""
        if not 0 <= rank < self.comm.size:
            raise ValueError(f"rank {rank} outside 0..{self.comm.size - 1}")
        dx, dy, dz = self.dims
        x, rem = divmod(rank, dy * dz)
        y, z = divmod(rem, dz)
        return (x, y, z)

    def rank_at(self, coords: Sequence[int]) -> Optional[int]:
        """Rank at ``coords``; wraps periodic dims, None off a wall."""
        c = list(coords)
        for d in range(3):
            size = self.dims[d]
            if self.periodic[d]:
                c[d] %= size
            elif not 0 <= c[d] < size:
                return None
        return (c[0] * self.dims[1] + c[1]) * self.dims[2] + c[2]

    def shift(self, rank: int, dim: int, disp: int) -> tuple[Optional[int], Optional[int]]:
        """MPI_Cart_shift: returns ``(source, dest)`` for a shift of ``disp``.

        ``dest`` is the rank ``disp`` steps up dimension ``dim``; ``source``
        is the rank the same distance down (the one whose shifted data ends
        up here).  Either is None past a non-periodic wall (MPI_PROC_NULL).
        """
        if dim not in (0, 1, 2):
            raise ValueError(f"dim must be 0, 1 or 2, got {dim}")
        c = list(self.coords(rank))
        up, down = list(c), list(c)
        up[dim] += disp
        down[dim] -= disp
        return self.rank_at(down), self.rank_at(up)

    def neighbors(self, rank: int) -> list[tuple[int, int, Optional[int]]]:
        """All six (dim, step, neighbour-rank) entries for ``rank``."""
        out = []
        for dim in range(3):
            for step in (+1, -1):
                _, dst = self.shift(rank, dim, step)
                out.append((dim, step, dst))
        return out

    # -- physical mapping quality ------------------------------------------------
    def hops_to(self, rank: int, other: int) -> int:
        """Physical torus hops between the *nodes* of two ranks."""
        part = self.comm.machine.partition
        topo = self.comm.machine.topology
        return topo.hop_distance(part.node_of_rank(rank), part.node_of_rank(other))

    def max_neighbor_hops(self) -> int:
        """Worst physical distance of any Cartesian neighbour pair.

        1 means the layout is perfectly embedded in the torus (what BG/P's
        reordering achieves); larger values flag a non-physical layout.
        """
        worst = 0
        for rank in range(self.comm.size):
            for _, _, dst in self.neighbors(rank):
                if dst is not None and dst != rank:
                    worst = max(worst, self.hops_to(rank, dst))
        return worst
