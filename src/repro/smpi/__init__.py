"""Simulated MPI over the DES Blue Gene/P machine.

This package reproduces the MPI semantics the paper's optimizations rely
on, at message granularity, on simulated time:

* point-to-point: ``Send``/``Recv``/``Isend``/``Irecv``/``Wait``/``Waitall``
  with (source, tag) matching — non-blocking operations progress via the
  node's DMA engine without occupying a core (the property that makes
  latency-hiding work on BG/P);
* thread support levels: ``SINGLE`` vs ``MULTIPLE`` — in MULTIPLE every
  call pays a lock overhead and contends on a per-rank lock (the cost the
  paper weighs against the master-only approach);
* ``MPI_Cart_create`` with BG/P's rank reordering: Cartesian neighbours
  become physical torus neighbours (single-hop);
* collectives and barriers routed over the dedicated tree network.

The API is generator-based: rank code is a DES process yielding on the
:class:`~repro.smpi.comm.RankContext` methods.
"""

from repro.smpi.datatypes import Message, Request, Status, ThreadMode
from repro.smpi.comm import RankContext, SimComm
from repro.smpi.cart import CartComm

__all__ = [
    "Message",
    "Request",
    "Status",
    "ThreadMode",
    "RankContext",
    "SimComm",
    "CartComm",
]
