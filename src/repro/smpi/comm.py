"""Simulated MPI communicator and per-rank call contexts.

Execution model
---------------

Every MPI rank (and, in hybrid mode, every thread of a rank) is a DES
process.  Rank code obtains a :class:`RankContext` and drives communication
with ``yield from``::

    def worker(ctx):
        req = yield from ctx.irecv(src=left, tag=0)
        yield from ctx.send(right, nbytes, tag=0)
        status = yield from ctx.wait(req)
        yield from ctx.compute(kernel_seconds)

Semantics implemented:

* **Non-blocking progress without CPU** — a transfer runs as its own DES
  process on the torus/DMA; the initiating thread only pays the call
  overhead.  This mirrors the paper's observation that BG/P's DMA engine
  advances ``Isend``/``Irecv`` asynchronously.
* **(source, tag) matching with wildcards** and FIFO non-overtaking per
  ordered pair, via an unexpected-message queue and a posted-receive list.
* **Thread modes** — in ``MULTIPLE`` every call acquires the rank's MPI
  lock for :attr:`~repro.machine.spec.ThreadSpec.mpi_multiple_overhead`
  seconds; concurrent calls from threads of one rank serialize on it.  In
  ``SINGLE`` calls are free (their fixed cost is already inside the
  network model's per-message overhead), but concurrent calls are a user
  error that the communicator *detects* and reports.
* **Collectives over the tree network** — barrier and allreduce wait for
  all ranks, then pay the tree traversal once.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional

from repro.des import Resource, Simulator
from repro.des.core import Event, SimulationError
from repro.machine.machine import Machine
from repro.smpi.datatypes import (
    ANY_SOURCE,
    ANY_TAG,
    Message,
    Request,
    Status,
    ThreadMode,
)

Proc = Generator[Event, Any, Any]


class SimComm:
    """A communicator spanning all ranks of a simulated machine."""

    def __init__(self, machine: Machine, thread_mode: ThreadMode = ThreadMode.SINGLE):
        self.machine = machine
        self.thread_mode = thread_mode
        self.size = machine.n_ranks
        self._unexpected: dict[int, list[Message]] = {}
        self._posted: dict[int, list[tuple[int, int, Request]]] = {}
        self._locks: dict[int, Resource] = {}
        self._in_call: dict[int, int] = {}  # concurrent-call detector (SINGLE)
        # barrier / collective rendezvous state
        self._coll_waiting: dict[str, list[Event]] = {}
        self._coll_bytes: dict[str, float] = {}
        self._coll_generation: dict[str, int] = {}
        # accounting
        self.messages_sent = 0
        self.bytes_sent = 0.0

    @property
    def sim(self) -> Simulator:
        return self.machine.sim

    def context(self, rank: int, core: Optional[int] = None) -> "RankContext":
        """A call context for ``rank``; ``core`` pins the computing core."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside 0..{self.size - 1}")
        part = self.machine.partition
        node = part.node_of_rank(rank)
        if core is None:
            core = part.core_slot_of_rank(rank) * part.mode.cores_per_rank
        return RankContext(self, rank, node, core)

    # -- internals ------------------------------------------------------------
    def _lock(self, rank: int) -> Resource:
        res = self._locks.get(rank)
        if res is None:
            res = Resource(self.sim, capacity=1, name=f"mpilock{rank}")
            self._locks[rank] = res
        return res

    def _call_overhead(self, rank: int) -> Proc:
        """The per-call cost of entering the MPI library from one thread."""
        if self.thread_mode.pays_lock_overhead:
            yield from self._lock(rank).use(
                self.machine.spec.threads.mpi_multiple_overhead
            )
        else:
            depth = self._in_call.get(rank, 0)
            if depth and not self.thread_mode.allows_concurrent_calls:
                raise SimulationError(
                    f"concurrent MPI calls from rank {rank} in "
                    f"{self.thread_mode.value!r} mode; use ThreadMode.MULTIPLE"
                )
            self._in_call[rank] = depth + 1
            try:
                yield self.sim.timeout(0.0)
            finally:
                self._in_call[rank] = self._in_call.get(rank, 1) - 1

    def _deliver(self, msg: Message) -> None:
        """Payload physically arrived: match a posted recv or queue it."""
        posted = self._posted.get(msg.dst, [])
        for i, (src, tag, req) in enumerate(posted):
            if msg.matches(src, tag):
                posted.pop(i)
                self._complete_recv(req, msg)
                return
        self._unexpected.setdefault(msg.dst, []).append(msg)

    @staticmethod
    def _complete_recv(req: Request, msg: Message) -> None:
        req.status.source = msg.src
        req.status.tag = msg.tag
        req.status.nbytes = msg.nbytes
        req.event.succeed(msg.payload)

    def _transfer_and_deliver(self, msg: Message) -> Proc:
        src_node = self.machine.partition.node_of_rank(msg.src)
        dst_node = self.machine.partition.node_of_rank(msg.dst)
        yield from self.machine.transfer(src_node, dst_node, msg.nbytes)
        self.messages_sent += 1
        self.bytes_sent += msg.nbytes
        self._deliver(msg)

    # -- collective rendezvous ---------------------------------------------
    def _rendezvous(self, name: str, rank: int, nbytes: float) -> Proc:
        """Wait until all ranks enter collective ``name``; last one pays tree."""
        key = f"{name}:{self._coll_generation.get(name, 0)}"
        waiting = self._coll_waiting.setdefault(key, [])
        self._coll_bytes[key] = max(self._coll_bytes.get(key, 0.0), nbytes)
        ev = self.sim.event(name=f"{key}@{rank}")
        waiting.append(ev)
        if len(waiting) == self.size:
            # Last arriver: advance the generation and schedule the release.
            self._coll_generation[name] = self._coll_generation.get(name, 0) + 1
            payload = self._coll_bytes.pop(key)
            release = list(self._coll_waiting.pop(key))

            def releaser() -> Proc:
                if name == "barrier":
                    yield from self.machine.tree.barrier()
                else:
                    yield from self.machine.tree.collective(payload)
                for w in release:
                    w.succeed(None)

            self.sim.spawn(releaser(), name=f"release-{key}")
        result = yield ev
        return result


class RankContext:
    """MPI calls bound to one rank (and one computing core)."""

    def __init__(self, comm: SimComm, rank: int, node: int, core: int):
        self.comm = comm
        self.rank = rank
        self.node = node
        self.core = core

    @property
    def sim(self) -> Simulator:
        return self.comm.sim

    def on_core(self, core: int) -> "RankContext":
        """The same rank's context pinned to another core (hybrid threads)."""
        return RankContext(self.comm, self.rank, self.node, core)

    # -- point-to-point -------------------------------------------------------
    def isend(
        self, dst: int, nbytes: float, tag: int = 0, payload: Any = None
    ) -> Generator[Event, Any, Request]:
        """Start a non-blocking send; returns its :class:`Request`."""
        if not 0 <= dst < self.comm.size:
            raise ValueError(f"dst {dst} outside 0..{self.comm.size - 1}")
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        yield from self.comm._call_overhead(self.rank)
        msg = Message(src=self.rank, dst=dst, tag=tag, nbytes=nbytes, payload=payload)
        proc = self.sim.spawn(
            self.comm._transfer_and_deliver(msg),
            name=f"send {self.rank}->{dst} tag{tag}",
        )
        return Request(event=proc, kind="send")

    def irecv(
        self, src: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator[Event, Any, Request]:
        """Post a non-blocking receive; returns its :class:`Request`."""
        yield from self.comm._call_overhead(self.rank)
        req = Request(event=self.sim.event(f"recv@{self.rank}"), kind="recv")
        queue = self.comm._unexpected.get(self.rank, [])
        for i, msg in enumerate(queue):
            if msg.matches(src, tag):
                queue.pop(i)
                SimComm._complete_recv(req, msg)
                return req
        self.comm._posted.setdefault(self.rank, []).append((src, tag, req))
        return req

    def wait(self, req: Request) -> Generator[Event, Any, Status]:
        """Block until ``req`` completes; returns its :class:`Status`."""
        yield req.event
        return req.status

    def waitall(self, reqs: Iterable[Request]) -> Generator[Event, Any, list[Status]]:
        """Block until every request completes."""
        reqs = list(reqs)
        yield self.sim.all_of([r.event for r in reqs])
        return [r.status for r in reqs]

    def send(
        self, dst: int, nbytes: float, tag: int = 0, payload: Any = None
    ) -> Generator[Event, Any, None]:
        """Blocking send: returns when the payload has been delivered."""
        req = yield from self.isend(dst, nbytes, tag, payload)
        yield req.event

    def recv(
        self, src: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> Generator[Event, Any, Status]:
        """Blocking receive."""
        req = yield from self.irecv(src, tag)
        return (yield from self.wait(req))

    def sendrecv(
        self,
        dst: int,
        send_bytes: float,
        src: int,
        send_tag: int = 0,
        recv_tag: Optional[int] = None,
        payload: Any = None,
    ) -> Generator[Event, Any, Status]:
        """MPI_Sendrecv: a combined shift — send to ``dst`` while
        receiving from ``src``; completes when both finish.

        The canonical halo-exchange call; unlike a send followed by a
        blocking recv it cannot deadlock when every rank shifts the same
        way.
        """
        recv_tag = send_tag if recv_tag is None else recv_tag
        send_req = yield from self.isend(dst, send_bytes, send_tag, payload)
        recv_req = yield from self.irecv(src, recv_tag)
        yield self.sim.all_of([send_req.event, recv_req.event])
        return recv_req.status

    # -- collectives ------------------------------------------------------------
    def barrier(self) -> Proc:
        """Global barrier over the dedicated interrupt network."""
        yield from self.comm._call_overhead(self.rank)
        yield from self.comm._rendezvous("barrier", self.rank, 0.0)

    def allreduce(self, nbytes: float) -> Proc:
        """An allreduce of ``nbytes`` over the collective tree network."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        yield from self.comm._call_overhead(self.rank)
        yield from self.comm._rendezvous("allreduce", self.rank, nbytes)

    def bcast(self, nbytes: float) -> Proc:
        """A broadcast of ``nbytes`` over the tree network.

        BG/P routes broadcasts down the same hardware tree as reductions,
        so the timing model is shared; all ranks (root included) return
        together after one pipelined traversal.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        yield from self.comm._call_overhead(self.rank)
        yield from self.comm._rendezvous("bcast", self.rank, nbytes)

    def reduce(self, nbytes: float) -> Proc:
        """A reduction of ``nbytes`` to a root over the tree network."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        yield from self.comm._call_overhead(self.rank)
        yield from self.comm._rendezvous("reduce", self.rank, nbytes)

    # -- computation ------------------------------------------------------------
    def compute(self, seconds: float, core: Optional[int] = None) -> Proc:
        """Occupy this context's core (or ``core``) for ``seconds``."""
        yield from self.comm.machine.compute(
            self.node, self.core if core is None else core, seconds
        )
