"""The functional distributed FD engine: real numerics, any approach.

Every rank holds the *same subset of every grid* (GPAW's requirement,
section IV): a ``dict[grid_id, LocalGrid]``.  ``DistributedStencil.apply``
executes the chosen approach's communication schedule over a transport
endpoint and returns the output blocks.  All four approaches must produce
results bit-identical to :class:`SequentialStencil` — the central
correctness property of the library, enforced by the integration tests.

The schedules themselves — serialized blocking exchange, simultaneous
non-blocking exchange, double buffering, batching with ramp-up, per-worker
grid ownership and per-grid synchronization points (sections V / VI) — are
*not* implemented here.  They are compiled once by
:func:`repro.core.schedule.compile_schedule` into an explicit step IR, and
``apply`` interprets the resulting per-rank step lists over the transport.
The DES runner and the analytic model consume the *same* compiled plan, so
the three planes cannot drift apart.

In this functional plane, "threads" are executed as deterministic worker
loops inside the rank — the numerics are identical, and the *timing*
differences between threads and ranks are the business of the performance
plane (:mod:`repro.core.perfmodel`, :mod:`repro.core.simrun`).

``apply`` accepts an ``on_step`` hook called with ``(step, worker, start,
end)`` wall-clock timestamps around every interpreted step;
:func:`repro.core.schedule.tracer_hook` adapts it to a
:class:`repro.des.trace.Tracer`, so a real run can emit the same Gantt
chart as the simulator.  For the unified telemetry plane use
:func:`repro.obs.spans.engine_hook` instead: it records typed
:class:`repro.obs.spans.StepSpan` objects (step kind, worker, grid batch,
seq) into a thread-safe :class:`repro.obs.spans.SpanTracer` shared by all
ranks, which the exporters in :mod:`repro.obs.export` turn into Chrome
traces, utilization reports, and real-vs-sim diffs.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping, Optional

import numpy as np

from repro.core.approaches import Approach, FLAT_OPTIMIZED
from repro.core.schedule import (
    ApplyLocalWraps as _ApplyLocalWraps,
    ComputeBoundary as _ComputeBoundary,
    ComputeInterior as _ComputeInterior,
    PostRecv as _PostRecv,
    PostSend as _PostSend,
    SchedulePlan,
    WaitAll as _WaitAll,
    WorkerPlan,
    compile_schedule,
)
from repro.core.workspace import Workspace
from repro.transport.errors import StepInfo, TransportError
from repro.grid.array import LocalGrid
from repro.grid.decompose import Decomposition
from repro.grid.grid import GridDescriptor
from repro.grid.halo import (
    HaloMessage,
    HaloSpec,
    apply_local_wraps,
    halo_messages,
    pack_slabs,
    unpack_slabs,
    zero_boundary_ghosts,
)
from repro.stencil.coefficients import StencilCoefficients, laplacian_coefficients
from repro.stencil.kernel import apply_stencil_global, apply_stencil_padded
from repro.transport.inproc import RankEndpoint


class SequentialStencil:
    """The single-process oracle: apply the stencil to whole grids."""

    def __init__(self, grid: GridDescriptor, coeffs: StencilCoefficients):
        self.grid = grid
        self.coeffs = coeffs

    def apply(self, arrays: Mapping[int, np.ndarray]) -> dict[int, np.ndarray]:
        """Apply the stencil to every grid in ``arrays``."""
        out = {}
        for gid, a in arrays.items():
            self.grid.check_array(a, f"grid {gid}")
            out[gid] = apply_stencil_global(a, self.coeffs, pbc=self.grid.pbc)
        return out


class DistributedStencil:
    """Distributed application of one stencil under a given decomposition.

    One instance serves any number of ``apply`` calls and all approaches;
    per-domain halo geometry is precomputed once.
    """

    def __init__(
        self,
        decomp: Decomposition,
        coeffs: StencilCoefficients,
        compute_fn: "Callable[[np.ndarray, np.ndarray], None] | None" = None,
        workspace: Optional[Workspace] = None,
    ):
        """``compute_fn(padded, out_interior)`` may replace the default
        Laplacian kernel by any operator of the same halo radius (e.g. a
        gradient component) — the exchange schedules are operator-agnostic.

        ``workspace`` is the buffer arena every scratch and halo message
        buffer is borrowed from; it is shared by all rank threads (a
        received zero-copy message buffer is recycled by the *receiving*
        rank).  One is created if not supplied.  After one warm-up
        ``apply``, steady-state calls that reuse their output blocks
        (``out=``) perform zero array allocations.
        """
        self.decomp = decomp
        self.coeffs = coeffs
        self.halo = HaloSpec(coeffs.radius)
        self.workspace = workspace if workspace is not None else Workspace()
        if compute_fn is None:
            def compute_fn(padded: np.ndarray, out: np.ndarray) -> None:
                with self.workspace.borrowing(out.shape, out.dtype) as scratch:
                    apply_stencil_padded(
                        padded, self.coeffs, out=out, scratch=scratch
                    )

        self._compute_fn = compute_fn
        self._outgoing: dict[int, list[HaloMessage]] = {}
        self._incoming: dict[int, list[HaloMessage]] = {}

    @classmethod
    def gradient(
        cls, decomp: Decomposition, axis: int, radius: int = 2
    ) -> "DistributedStencil":
        """An engine computing d/dx_axis instead of the Laplacian.

        Same halo traffic, same schedules — only the arithmetic differs,
        which is exactly why the paper's optimizations generalize to
        "other finite difference codes" (abstract).
        """
        from repro.stencil.gradient import apply_gradient_padded

        coeffs = laplacian_coefficients(radius, spacing=decomp.grid.spacing)
        workspace = Workspace()

        def compute_fn(padded: np.ndarray, out: np.ndarray) -> None:
            with workspace.borrowing(out.shape, out.dtype) as scratch:
                apply_gradient_padded(
                    padded, axis, radius=radius, spacing=decomp.grid.spacing,
                    out=out, scratch=scratch,
                )

        return cls(decomp, coeffs, compute_fn=compute_fn, workspace=workspace)

    # -- geometry caches ---------------------------------------------------
    def outgoing(self, rank: int) -> list[HaloMessage]:
        """This rank's outgoing remote messages (local wraps excluded)."""
        if rank not in self._outgoing:
            self._outgoing[rank] = [
                m
                for m in halo_messages(self.decomp, rank, self.halo.width)
                if not m.is_local_wrap
            ]
        return self._outgoing[rank]

    def incoming(self, rank: int) -> list[HaloMessage]:
        """Remote messages that will arrive at this rank."""
        if rank not in self._incoming:
            found: list[HaloMessage] = []
            for dim in range(3):
                for step in (+1, -1):
                    src = self.decomp.neighbor(rank, dim, -step)
                    if src is None or src == rank:
                        continue
                    for m in halo_messages(self.decomp, src, self.halo.width):
                        if m.dim == dim and m.step == step and m.dst_domain == rank:
                            found.append(m)
            self._incoming[rank] = found
        return self._incoming[rank]

    def local_wraps(self, rank: int) -> list[HaloMessage]:
        """Periodic wraps of this rank onto itself (plain memcpys)."""
        return [
            m
            for m in halo_messages(self.decomp, rank, self.halo.width)
            if m.is_local_wrap
        ]

    # -- plan access -------------------------------------------------------
    def plan_for(
        self,
        approach: Approach,
        n_grids: int,
        batch_size: int = 1,
        ramp_up: bool = False,
    ) -> SchedulePlan:
        """The compiled plan ``apply`` will execute for this configuration.

        Compilation is cached on (approach, decomposition, n_grids,
        batch_size, ...) — an SCF loop pays it once and re-executes the
        same plan every iteration.
        """
        return compile_schedule(
            approach,
            self.decomp,
            n_grids,
            batch_size,
            ramp_up,
            halo_width=self.halo.width,
        )

    # -- the public entry point ------------------------------------------------
    def apply(
        self,
        ep: RankEndpoint,
        grids: Mapping[int, LocalGrid],
        approach: Approach = FLAT_OPTIMIZED,
        batch_size: int = 1,
        ramp_up: bool = False,
        out: "Optional[dict[int, LocalGrid]]" = None,
        on_step: "Optional[Callable[[object, int, float, float], None]]" = None,
    ) -> dict[int, LocalGrid]:
        """Apply the stencil to every grid, using ``approach``'s schedule.

        ``ep`` is this rank's transport endpoint; ``grids`` maps grid ids to
        this rank's padded blocks.  Returns output blocks (ghosts zero).
        All ranks must call with the same grid ids and parameters.

        ``out`` may pass the previous call's result back in to be
        overwritten — with it, steady-state calls allocate no arrays at
        all (SCF iterations apply the same operator to the same grid set
        thousands of times; this is where the allocator traffic goes).

        ``on_step(step, worker, start, end)`` is called around every
        interpreted schedule step with wall-clock timestamps — see
        :func:`repro.core.schedule.tracer_hook`.
        """
        if ep.size != self.decomp.n_domains:
            raise ValueError(
                f"transport has {ep.size} ranks, decomposition has "
                f"{self.decomp.n_domains} domains"
            )
        approach.validate_batch_size(batch_size)
        for gid, lg in grids.items():
            if lg.domain != ep.rank:
                raise ValueError(
                    f"grid {gid}: LocalGrid belongs to domain {lg.domain}, "
                    f"endpoint is rank {ep.rank}"
                )

        grid_ids = sorted(grids)
        if out is None:
            out = {
                gid: LocalGrid(self.decomp, ep.rank, self.halo)
                for gid in grid_ids
            }
        else:
            if sorted(out) != grid_ids:
                raise ValueError(
                    f"out grid ids {sorted(out)} != input grid ids {grid_ids}"
                )
            for gid, lg in out.items():
                if lg.domain != ep.rank:
                    raise ValueError(
                        f"out grid {gid}: LocalGrid belongs to domain "
                        f"{lg.domain}, endpoint is rank {ep.rank}"
                    )
        if not grid_ids:
            return out

        plan = self.plan_for(approach, len(grid_ids), batch_size, ramp_up)
        # Workers run sequentially inside the rank: sends are eager, so a
        # later worker can never block an earlier worker's receives.
        for wp in plan.rank_plan(ep.rank).workers:
            self._execute_worker(ep, wp, grids, grid_ids, out, on_step)
        return out

    # -- the IR interpreter ----------------------------------------------------
    def _execute_worker(
        self,
        ep: RankEndpoint,
        wp: WorkerPlan,
        grids: Mapping[int, LocalGrid],
        grid_ids: list[int],
        out: dict[int, LocalGrid],
        on_step: "Optional[Callable[[object, int, float, float], None]]",
    ) -> None:
        """Interpret one worker's compiled step list over the transport.

        Plan steps name grids by logical index; ``grid_ids`` maps them to
        the caller's ids.  Send buffers are borrowed from the arena and
        handed to the transport without a copy; over a zero-copy transport
        the receiving rank recycles them after unpacking (the arena is
        shared), otherwise the sender reclaims them as soon as the
        transport has snapshotted the payload.
        """
        ws = self.workspace
        zero_copy = getattr(ep, "zero_copy_sends", False)
        send_geom = {(m.dim, m.step): m for m in self.outgoing(ep.rank)}
        recv_geom = {(m.dim, m.step): m for m in self.incoming(ep.rank)}
        wraps = self.local_wraps(ep.rank)
        # in-flight receives per seq: (handle, geometry, logical grid ids)
        pending: dict[int, list[tuple[object, HaloMessage, tuple[int, ...]]]] = {}
        clock = time.perf_counter
        for st in wp.steps:
            t0 = clock() if on_step is not None else 0.0
            try:
                self._execute_step(
                    ep, st, grids, grid_ids, out, send_geom, recv_geom,
                    wraps, pending, zero_copy,
                )
            except TransportError as exc:
                # Attribute the failure to the compiled step being
                # interpreted: rank, worker, round, direction, grids.
                exc.attach_step(_step_info(ep.rank, wp.index, st, grid_ids))
                raise
            if on_step is not None:
                on_step(st, wp.index, t0, clock())

    def _execute_step(
        self, ep, st, grids, grid_ids, out, send_geom, recv_geom,
        wraps, pending, zero_copy,
    ) -> None:
        """Interpret a single compiled step (see ``_execute_worker``)."""
        ws = self.workspace
        if isinstance(st, _PostSend):
            m = send_geom[(st.dim, st.step)]
            sources = [grids[grid_ids[i]].data for i in st.grid_ids]
            slab_shape = sources[0][m.send_slices].shape
            buf = ws.borrow((len(sources),) + slab_shape, sources[0].dtype)
            pack_slabs(sources, m.send_slices, buf)
            ep.isend(m.dst_domain, buf, tag=st.tag, copy=False)
            if not zero_copy:
                ws.release(buf)
        elif isinstance(st, _PostRecv):
            m = recv_geom[(st.dim, st.step)]
            handle = ep.irecv(src=m.src_domain, tag=st.tag)
            pending.setdefault(st.seq, []).append((handle, m, st.grid_ids))
        elif isinstance(st, _WaitAll):
            for handle, m, idxs in pending.pop(st.seq, ()):
                payload = handle.wait()
                unpack_slabs(
                    payload,
                    [grids[grid_ids[i]].data for i in idxs],
                    m.recv_slices,
                )
                ws.release(payload)
        elif isinstance(st, _ApplyLocalWraps):
            apply_local_wraps(grids[grid_ids[st.grid_id]].data, wraps)
        elif isinstance(st, _ComputeBoundary):
            zero_boundary_ghosts(
                grids[grid_ids[st.grid_id]].data,
                self.decomp,
                ep.rank,
                self.halo.width,
            )
        elif isinstance(st, _ComputeInterior):
            gid = grid_ids[st.grid_id]
            self._compute_fn(grids[gid].data, out[gid].interior)
        # GridBarrier / JoinBarrier: timing-plane markers; the
        # functional rank runs its workers sequentially, so there is
        # nothing to synchronize here.


def _step_info(rank: int, worker: int, st: object, grid_ids: list[int]) -> StepInfo:
    """Schedule-IR coordinates of ``st`` for failure attribution."""
    logical = getattr(st, "grid_ids", None)
    if logical is None:
        gid = getattr(st, "grid_id", None)
        logical = () if gid is None else (gid,)
    direction = getattr(st, "step", None)
    return StepInfo(
        rank=rank,
        worker=worker,
        step_kind=type(st).__name__,
        seq=getattr(st, "seq", None),
        dim=getattr(st, "dim", None),
        direction=direction if direction in (+1, -1) else None,
        peer=getattr(st, "dst", None) if isinstance(st, _PostSend)
        else getattr(st, "src", None),
        grid_ids=tuple(grid_ids[i] for i in logical if i < len(grid_ids)),
    )
