"""The functional distributed FD engine: real numerics, any approach.

Every rank holds the *same subset of every grid* (GPAW's requirement,
section IV): a ``dict[grid_id, LocalGrid]``.  ``DistributedStencil.apply``
executes the chosen approach's communication schedule over a transport
endpoint and returns the output blocks.  All four approaches must produce
results bit-identical to :class:`SequentialStencil` — the central
correctness property of the library, enforced by the integration tests.

Schedules implemented (section V / VI):

* serialized dimension-by-dimension blocking exchange (Flat original),
* simultaneous non-blocking exchange in all six directions,
* double buffering across grids/batches (exchange of batch *k+1* is in
  flight while batch *k* computes),
* batching with optional ramp-up,
* per-worker grid ownership (Hybrid multiple) and shared-grid computation
  with per-grid synchronization points (Hybrid master-only).

In this functional plane, "threads" are executed as deterministic worker
loops inside the rank — the numerics are identical, and the *timing*
differences between threads and ranks are the business of the performance
plane (:mod:`repro.core.perfmodel`, :mod:`repro.core.simrun`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Sequence

import numpy as np

from repro.core.approaches import Approach, FLAT_OPTIMIZED
from repro.core.batching import batch_schedule, split_among_workers
from repro.core.workspace import Workspace
from repro.grid.array import LocalGrid
from repro.grid.decompose import Decomposition
from repro.grid.grid import GridDescriptor
from repro.grid.halo import (
    HaloMessage,
    HaloSpec,
    apply_local_wraps,
    halo_messages,
    pack_slabs,
    zero_boundary_ghosts,
)
from repro.stencil.coefficients import StencilCoefficients, laplacian_coefficients
from repro.stencil.kernel import apply_stencil_global, apply_stencil_padded
from repro.transport.inproc import RankEndpoint


class SequentialStencil:
    """The single-process oracle: apply the stencil to whole grids."""

    def __init__(self, grid: GridDescriptor, coeffs: StencilCoefficients):
        self.grid = grid
        self.coeffs = coeffs

    def apply(self, arrays: Mapping[int, np.ndarray]) -> dict[int, np.ndarray]:
        """Apply the stencil to every grid in ``arrays``."""
        out = {}
        for gid, a in arrays.items():
            self.grid.check_array(a, f"grid {gid}")
            out[gid] = apply_stencil_global(a, self.coeffs, pbc=self.grid.pbc)
        return out


def _tag(seq: int, dirtag: int) -> int:
    """Compose a unique tag from a schedule sequence number + direction."""
    return seq * 8 + dirtag


@dataclass
class _Exchange:
    """One in-flight batched exchange."""

    grid_ids: list[int]
    recvs: list[tuple[object, HaloMessage]]  # (handle, message geometry)


class DistributedStencil:
    """Distributed application of one stencil under a given decomposition.

    One instance serves any number of ``apply`` calls and all approaches;
    per-domain halo geometry is precomputed once.
    """

    def __init__(
        self,
        decomp: Decomposition,
        coeffs: StencilCoefficients,
        compute_fn: "Callable[[np.ndarray, np.ndarray], None] | None" = None,
        workspace: Optional[Workspace] = None,
    ):
        """``compute_fn(padded, out_interior)`` may replace the default
        Laplacian kernel by any operator of the same halo radius (e.g. a
        gradient component) — the exchange schedules are operator-agnostic.

        ``workspace`` is the buffer arena every scratch and halo message
        buffer is borrowed from; it is shared by all rank threads (a
        received zero-copy message buffer is recycled by the *receiving*
        rank).  One is created if not supplied.  After one warm-up
        ``apply``, steady-state calls that reuse their output blocks
        (``out=``) perform zero array allocations.
        """
        self.decomp = decomp
        self.coeffs = coeffs
        self.halo = HaloSpec(coeffs.radius)
        self.workspace = workspace if workspace is not None else Workspace()
        if compute_fn is None:
            def compute_fn(padded: np.ndarray, out: np.ndarray) -> None:
                with self.workspace.borrowing(out.shape, out.dtype) as scratch:
                    apply_stencil_padded(
                        padded, self.coeffs, out=out, scratch=scratch
                    )

        self._compute_fn = compute_fn
        self._outgoing: dict[int, list[HaloMessage]] = {}
        self._incoming: dict[int, list[HaloMessage]] = {}

    @classmethod
    def gradient(
        cls, decomp: Decomposition, axis: int, radius: int = 2
    ) -> "DistributedStencil":
        """An engine computing d/dx_axis instead of the Laplacian.

        Same halo traffic, same schedules — only the arithmetic differs,
        which is exactly why the paper's optimizations generalize to
        "other finite difference codes" (abstract).
        """
        from repro.stencil.gradient import apply_gradient_padded

        coeffs = laplacian_coefficients(radius, spacing=decomp.grid.spacing)
        workspace = Workspace()

        def compute_fn(padded: np.ndarray, out: np.ndarray) -> None:
            with workspace.borrowing(out.shape, out.dtype) as scratch:
                apply_gradient_padded(
                    padded, axis, radius=radius, spacing=decomp.grid.spacing,
                    out=out, scratch=scratch,
                )

        return cls(decomp, coeffs, compute_fn=compute_fn, workspace=workspace)

    # -- geometry caches ---------------------------------------------------
    def outgoing(self, rank: int) -> list[HaloMessage]:
        """This rank's outgoing remote messages (local wraps excluded)."""
        if rank not in self._outgoing:
            self._outgoing[rank] = [
                m
                for m in halo_messages(self.decomp, rank, self.halo.width)
                if not m.is_local_wrap
            ]
        return self._outgoing[rank]

    def incoming(self, rank: int) -> list[HaloMessage]:
        """Remote messages that will arrive at this rank."""
        if rank not in self._incoming:
            found: list[HaloMessage] = []
            for dim in range(3):
                for step in (+1, -1):
                    src = self.decomp.neighbor(rank, dim, -step)
                    if src is None or src == rank:
                        continue
                    for m in halo_messages(self.decomp, src, self.halo.width):
                        if m.dim == dim and m.step == step and m.dst_domain == rank:
                            found.append(m)
            self._incoming[rank] = found
        return self._incoming[rank]

    def local_wraps(self, rank: int) -> list[HaloMessage]:
        """Periodic wraps of this rank onto itself (plain memcpys)."""
        return [
            m
            for m in halo_messages(self.decomp, rank, self.halo.width)
            if m.is_local_wrap
        ]

    # -- the public entry point ------------------------------------------------
    def apply(
        self,
        ep: RankEndpoint,
        grids: Mapping[int, LocalGrid],
        approach: Approach = FLAT_OPTIMIZED,
        batch_size: int = 1,
        ramp_up: bool = False,
        out: "Optional[dict[int, LocalGrid]]" = None,
    ) -> dict[int, LocalGrid]:
        """Apply the stencil to every grid, using ``approach``'s schedule.

        ``ep`` is this rank's transport endpoint; ``grids`` maps grid ids to
        this rank's padded blocks.  Returns output blocks (ghosts zero).
        All ranks must call with the same grid ids and parameters.

        ``out`` may pass the previous call's result back in to be
        overwritten — with it, steady-state calls allocate no arrays at
        all (SCF iterations apply the same operator to the same grid set
        thousands of times; this is where the allocator traffic goes).
        """
        if ep.size != self.decomp.n_domains:
            raise ValueError(
                f"transport has {ep.size} ranks, decomposition has "
                f"{self.decomp.n_domains} domains"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if not approach.supports_batching and batch_size != 1:
            raise ValueError(f"{approach.name} does not support batching")
        for gid, lg in grids.items():
            if lg.domain != ep.rank:
                raise ValueError(
                    f"grid {gid}: LocalGrid belongs to domain {lg.domain}, "
                    f"endpoint is rank {ep.rank}"
                )

        grid_ids = sorted(grids)
        if out is None:
            out = {
                gid: LocalGrid(self.decomp, ep.rank, self.halo)
                for gid in grid_ids
            }
        else:
            if sorted(out) != grid_ids:
                raise ValueError(
                    f"out grid ids {sorted(out)} != input grid ids {grid_ids}"
                )
            for gid, lg in out.items():
                if lg.domain != ep.rank:
                    raise ValueError(
                        f"out grid {gid}: LocalGrid belongs to domain "
                        f"{lg.domain}, endpoint is rank {ep.rank}"
                    )
        if not grid_ids:
            return out

        if approach.serialized_exchange:
            self._apply_serialized(ep, grids, out, grid_ids)
        else:
            self._apply_pipelined(
                ep, grids, out, grid_ids, approach, batch_size, ramp_up
            )
        return out

    # -- Flat original: dimension-serialized blocking exchange -----------------
    def _apply_serialized(
        self,
        ep: RankEndpoint,
        grids: Mapping[int, LocalGrid],
        out: dict[int, LocalGrid],
        grid_ids: Sequence[int],
    ) -> None:
        outgoing = self.outgoing(ep.rank)
        incoming = self.incoming(ep.rank)
        ws = self.workspace
        zero_copy = getattr(ep, "zero_copy_sends", False)
        for gid in grid_ids:
            lg = grids[gid]
            for dim in range(3):
                # 1) post this dimension's sends, 2) block on its receives.
                for m in outgoing:
                    if m.dim == dim:
                        slab = lg.data[m.send_slices]
                        buf = ws.borrow(slab.shape, slab.dtype)
                        np.copyto(buf, slab)
                        ep.isend(
                            m.dst_domain, buf, tag=_tag(gid, m.tag), copy=False
                        )
                        if not zero_copy:
                            ws.release(buf)
                for m in incoming:
                    if m.dim == dim:
                        payload = ep.recv(src=m.src_domain, tag=_tag(gid, m.tag))
                        lg.data[m.recv_slices] = payload.reshape(
                            lg.data[m.recv_slices].shape
                        )
                        ws.release(payload)
            self._compute_one(lg, out[gid], ep.rank)

    # -- optimized approaches: concurrent exchange + double buffering ---------
    def _apply_pipelined(
        self,
        ep: RankEndpoint,
        grids: Mapping[int, LocalGrid],
        out: dict[int, LocalGrid],
        grid_ids: Sequence[int],
        approach: Approach,
        batch_size: int,
        ramp_up: bool,
    ) -> None:
        # Hybrid multiple deals whole grids to workers; each worker runs its
        # own batched pipeline.  Other approaches are a single worker.
        if approach.decompose_per_rank or approach.sync_per_grid:
            worker_grid_ids = [list(grid_ids)]
        else:
            worker_grid_ids = split_among_workers(list(grid_ids), approach.compute_threads)

        # Build the global batch list; seq numbers are unique across workers
        # because every rank derives them from the same deterministic layout.
        all_batches: list[tuple[int, list[int]]] = []  # (seq, grid ids)
        seq = 0
        for wids in worker_grid_ids:
            if not wids:
                continue
            for batch_idx in batch_schedule(len(wids), batch_size, ramp_up):
                all_batches.append((seq, [wids[i] for i in batch_idx]))
                seq += 1

        pending: Optional[_Exchange] = None
        for seq_no, batch in all_batches:
            started = self._start_exchange(ep, grids, batch, seq_no)
            if approach.double_buffering:
                if pending is not None:
                    self._finish_and_compute(ep, grids, out, pending)
                pending = started
            else:
                self._finish_and_compute(ep, grids, out, started)
        if pending is not None:
            self._finish_and_compute(ep, grids, out, pending)

    def _start_exchange(
        self,
        ep: RankEndpoint,
        grids: Mapping[int, LocalGrid],
        batch: list[int],
        seq: int,
    ) -> _Exchange:
        """Initiate the exchange of one batch in all six directions.

        Each direction's slabs are packed into one message buffer borrowed
        from the arena and handed to the transport without a copy; over a
        zero-copy transport the receiving rank recycles the buffer after
        unpacking it (the arena is shared), otherwise the sender reclaims
        it as soon as the transport has snapshotted the payload.
        """
        ws = self.workspace
        zero_copy = getattr(ep, "zero_copy_sends", False)
        for m in self.outgoing(ep.rank):
            slab = grids[batch[0]].data[m.send_slices]
            buf = ws.borrow((len(batch),) + slab.shape, slab.dtype)
            pack_slabs([grids[gid].data for gid in batch], m.send_slices, buf)
            ep.isend(m.dst_domain, buf, tag=_tag(seq, m.tag), copy=False)
            if not zero_copy:
                ws.release(buf)
        recvs = [
            (ep.irecv(src=m.src_domain, tag=_tag(seq, m.tag)), m)
            for m in self.incoming(ep.rank)
        ]
        return _Exchange(grid_ids=batch, recvs=recvs)

    def _finish_and_compute(
        self,
        ep: RankEndpoint,
        grids: Mapping[int, LocalGrid],
        out: dict[int, LocalGrid],
        exch: _Exchange,
    ) -> None:
        """Wait for a batch's ghosts, then run the stencil on its grids."""
        for handle, m in exch.recvs:
            payload = handle.wait()
            slab_shape = grids[exch.grid_ids[0]].data[m.recv_slices].shape
            per_grid = payload.reshape((len(exch.grid_ids),) + slab_shape)
            for i, gid in enumerate(exch.grid_ids):
                grids[gid].data[m.recv_slices] = per_grid[i]
            self.workspace.release(payload)
        for gid in exch.grid_ids:
            self._compute_one(grids[gid], out[gid], ep.rank)

    def _compute_one(self, lg: LocalGrid, out_lg: LocalGrid, rank: int) -> None:
        """Ghost finalization + stencil for one grid."""
        apply_local_wraps(lg.data, self.local_wraps(rank))
        zero_boundary_ghosts(lg.data, self.decomp, rank, self.halo.width)
        self._compute_fn(lg.data, out_lg.interior)
