"""A shape/dtype-keyed buffer arena for zero-allocation steady state.

The paper's hot path applies one stencil to thousands of grids per SCF
iteration.  At NumPy level the avoidable cost is allocator traffic: fresh
padded blocks, output blocks, kernel scratch and halo message buffers on
every call.  :class:`Workspace` is a small pool that the engine, the
gradient path and the halo pack/unpack borrow those buffers from — after
one warm-up pass the pool holds every buffer the schedule needs and
steady-state iterations allocate nothing (asserted by the allocation
counter in the tests).

Design notes
------------

* **Keyed free lists.**  Buffers are pooled by exact ``(shape, dtype)``.
  The FD schedules are shape-periodic — every iteration borrows the same
  handful of shapes — so exact matching gives a 100% hit rate after
  warm-up without any size-class bookkeeping.
* **Thread-safe.**  The functional engine runs its ranks as threads in
  one process; a single arena may be shared by all of them (that is what
  lets a halo buffer be released by the *receiving* rank and re-borrowed
  by any sender).  ``borrow``/``release`` are a mutex-guarded list pop /
  append — nanoseconds next to a grid-sized memcpy.
* **No zeroing.**  Borrowed buffers contain stale data (``np.empty``
  semantics); every caller fully overwrites what it borrows.
* **Accounting.**  ``allocations`` counts real ``np.empty`` calls,
  ``reuses`` counts pool hits; the zero-allocation property is asserted
  as "``allocations`` stops growing after warm-up".
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

import numpy as np

_Key = tuple[tuple[int, ...], np.dtype]


class Workspace:
    """A thread-safe pool of reusable ndarray buffers.

    >>> ws = Workspace()
    >>> a = ws.borrow((4, 4), np.float64)   # allocates
    >>> ws.release(a)
    True
    >>> b = ws.borrow((4, 4), np.float64)   # reuses the same memory
    >>> b is a
    True
    >>> ws.allocations, ws.reuses
    (1, 1)
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._free: dict[_Key, list[np.ndarray]] = {}
        self._issued: dict[int, _Key] = {}
        self._allocations = 0
        self._reuses = 0

    # -- core API ----------------------------------------------------------
    def borrow(self, shape: tuple[int, ...], dtype: "np.typing.DTypeLike" = np.float64) -> np.ndarray:
        """Return a buffer of exactly ``shape``/``dtype`` (stale contents).

        Pops from the pool when a match is free, otherwise allocates.  The
        buffer is owned by the caller until :meth:`release`.
        """
        key: _Key = (tuple(shape), np.dtype(dtype))
        with self._lock:
            stack = self._free.get(key)
            if stack:
                buf = stack.pop()
                self._reuses += 1
            else:
                buf = np.empty(key[0], dtype=key[1])
                self._allocations += 1
            self._issued[id(buf)] = key
            return buf

    def release(self, buf: np.ndarray) -> bool:
        """Return a borrowed buffer to the pool.

        Returns ``True`` if the buffer was issued by this arena (and is now
        pooled again), ``False`` otherwise — unknown arrays are ignored, so
        callers may release unconditionally (e.g. a received halo payload
        that may or may not have come from the arena).
        """
        with self._lock:
            key = self._issued.pop(id(buf), None)
            if key is None:
                return False
            self._free.setdefault(key, []).append(buf)
            return True

    def owns(self, buf: np.ndarray) -> bool:
        """True if ``buf`` is currently borrowed from this arena."""
        with self._lock:
            return id(buf) in self._issued

    @contextmanager
    def borrowing(
        self, shape: tuple[int, ...], dtype: "np.typing.DTypeLike" = np.float64
    ) -> Iterator[np.ndarray]:
        """``with ws.borrowing(shape) as buf: ...`` — release on exit."""
        buf = self.borrow(shape, dtype)
        try:
            yield buf
        finally:
            self.release(buf)

    def clear(self) -> None:
        """Drop all pooled buffers (outstanding borrows stay valid)."""
        with self._lock:
            self._free.clear()

    # -- accounting --------------------------------------------------------
    @property
    def allocations(self) -> int:
        """Number of real ``np.empty`` allocations performed so far."""
        return self._allocations

    @property
    def reuses(self) -> int:
        """Number of borrows served from the pool."""
        return self._reuses

    @property
    def n_free(self) -> int:
        """Buffers currently sitting in the pool."""
        with self._lock:
            return sum(len(v) for v in self._free.values())

    @property
    def n_issued(self) -> int:
        """Buffers currently borrowed and not yet released."""
        with self._lock:
            return len(self._issued)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Workspace(allocations={self._allocations}, "
            f"reuses={self._reuses}, free={self.n_free}, "
            f"issued={self.n_issued})"
        )
