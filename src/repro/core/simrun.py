"""Message-level simulation of the FD schedules on the DES machine.

Where :mod:`repro.core.perfmodel` is closed-form, this module *executes*
the four schedules: every rank (or hybrid thread) is a DES process issuing
simulated-MPI calls and core computations, with exact link contention and
lock serialization.  It is exact but O(ranks x grids x messages) in events,
so it is meant for small configurations — the test suite uses it to
validate the analytic model, which then extrapolates to paper scale.

Domain placement
----------------

Flat (virtual-node) ranks are placed *cyclically*: domain coordinates are
taken modulo the node grid, so neighbouring domains always sit on
neighbouring (or the same-distance) nodes and — matching the paper's
measured per-node communication — no FD neighbours share a node.  When the
domain grid is not component-wise divisible by the node grid, a spread
mapping (round-robin over nodes) is used instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator, Optional

from repro.core.approaches import Approach
from repro.core.batching import batch_schedule, split_among_workers
from repro.core.perfmodel import FDJob
from repro.des.core import Event
from repro.des.trace import Tracer
from repro.grid.decompose import Decomposition
from repro.machine.machine import Machine
from repro.machine.partition import NodeMode
from repro.machine.spec import BGP_SPEC, MachineSpec
from repro.smpi.comm import RankContext, SimComm
from repro.util.validation import check_positive_int

Proc = Generator[Event, object, None]

HALO_WIDTH = 2  # the paper's stencil radius


@dataclass
class SimResult:
    """Outcome of one simulated FD invocation."""

    approach_name: str
    n_cores: int
    batch_size: int
    total: float
    utilization: float
    comm_bytes_per_node: float
    messages: int
    #: activity trace (compute spans per core, transfers per link); only
    #: populated when ``simulate_fd(..., trace=True)``
    trace: Optional[Tracer] = None


def _node_mode_for(approach: Approach, n_cores: int) -> tuple[NodeMode, int]:
    """(node mode, node count) realizing ``n_cores`` for an approach."""
    if n_cores >= 4:
        if n_cores % 4:
            raise ValueError(f"n_cores must be 1, 2 or a multiple of 4, got {n_cores}")
        n_nodes = n_cores // 4
        mode = NodeMode.SMP if approach.is_hybrid else NodeMode.VN
    elif n_cores == 2:
        n_nodes, mode = 1, (NodeMode.SMP if approach.is_hybrid else NodeMode.DUAL)
    elif n_cores == 1:
        n_nodes, mode = 1, NodeMode.SMP
    else:
        raise ValueError(f"n_cores must be >= 1, got {n_cores}")
    return mode, n_nodes


def _domain_to_rank(
    decomp: Decomposition, machine: Machine, placement: str = "auto"
) -> list[int]:
    """Place domains on ranks.

    ``cyclic`` folds domain coordinates modulo the node grid — every FD
    neighbour pair lands on adjacent nodes and wrap traffic balances onto
    reverse links (the placement a tuned BG/P mapfile achieves).
    ``spread`` deals domains round-robin over nodes — a naive placement
    whose neighbours can be many hops apart; kept for the placement
    ablation.  ``auto`` uses cyclic when the domain grid divides the node
    grid component-wise, else spread.
    """
    if placement not in ("auto", "cyclic", "spread"):
        raise ValueError(
            f"placement must be 'auto', 'cyclic' or 'spread', got {placement!r}"
        )
    n_nodes = machine.n_nodes
    rpn = machine.mode.ranks_per_node
    dshape = decomp.domains_shape
    nshape = machine.partition.shape
    divisible = (
        all(d % n == 0 for d, n in zip(dshape, nshape))
        and decomp.n_domains == n_nodes * rpn
    )
    if placement == "cyclic" and not divisible:
        raise ValueError(
            f"cyclic placement needs the domain grid {dshape} to divide the "
            f"node grid {nshape} component-wise"
        )
    cyclic = divisible if placement == "auto" else placement == "cyclic"
    mapping: list[int] = [0] * decomp.n_domains
    slots = [0] * n_nodes
    for domain in range(decomp.n_domains):
        if cyclic:
            c = decomp.coords_of(domain)
            node = machine.topology.node_at(tuple(ci % ni for ci, ni in zip(c, nshape)))
        else:
            node = domain % n_nodes
        slot = slots[node]
        if slot >= rpn:
            raise ValueError(
                f"placement overflow: node {node} already has {rpn} ranks "
                f"(domains {decomp.n_domains}, nodes {n_nodes})"
            )
        slots[node] = slot + 1
        mapping[domain] = node * rpn + slot
    return mapping


class _FDSimulation:
    """Shared state of one simulated invocation."""

    def __init__(
        self,
        job: FDJob,
        approach: Approach,
        n_cores: int,
        batch_size: int,
        ramp_up: bool,
        spec: MachineSpec,
        placement: str = "auto",
        trace: bool = False,
    ) -> None:
        check_positive_int(n_cores, "n_cores")
        check_positive_int(batch_size, "batch_size")
        if not approach.supports_batching and batch_size != 1:
            raise ValueError(f"{approach.name} does not support batching")
        self.job = job
        self.approach = approach
        self.n_cores = n_cores
        self.batch_size = batch_size
        self.ramp_up = ramp_up
        self.spec = spec
        mode, n_nodes = _node_mode_for(approach, n_cores)
        self.tracer = Tracer() if trace else None
        self.machine = Machine(n_nodes, mode, spec, tracer=self.tracer)
        self.comm = SimComm(self.machine, approach.thread_mode)
        self.decomp = Decomposition(job.grid, approach.domains_for(n_cores))
        if self.decomp.n_domains != self.comm.size and approach.is_hybrid:
            # hybrid: one domain per node; ranks == nodes in SMP mode.
            assert self.decomp.n_domains == n_nodes
        self.rank_of_domain = _domain_to_rank(self.decomp, self.machine, placement)
        self.block_points = self.decomp.max_block_points()
        # Small-block halo penalty, identical to the analytic model's.
        def halo_point_time(shape: list[int]) -> float:
            padded = math.prod(b + 2 * HALO_WIDTH for b in shape)
            factor = (padded / math.prod(shape)) ** spec.halo_compute_exponent
            return spec.stencil_point_time * factor

        block = list(self.decomp.block_shape(0))
        self.t_point = halo_point_time(block)
        # master-only threads each stream a quarter block plus its halo
        threads = min(4, n_cores)
        quarter = list(block)
        axis = quarter.index(max(quarter))
        quarter[axis] = max(1, math.ceil(quarter[axis] / threads))
        self.t_point_quarter = halo_point_time(quarter)
        # remote directions: (dim, step, dst_domain, nbytes)
        self.directions: dict[int, list[tuple[int, int, int, int]]] = {}

    def remote_dirs(self, domain: int) -> list[tuple[int, int, int, int]]:
        """Outgoing remote (dim, step, dst_domain, bytes) for a domain."""
        if domain not in self.directions:
            dirs = []
            for dim in range(3):
                for step in (+1, -1):
                    nbytes = self.decomp.send_bytes(domain, dim, step, HALO_WIDTH)
                    if nbytes > 0:
                        dirs.append(
                            (dim, step, self.decomp.neighbor(domain, dim, step), nbytes)
                        )
            self.directions[domain] = dirs
        return self.directions[domain]

    @staticmethod
    def _dirtag(dim: int, step: int) -> int:
        return dim * 2 + (0 if step > 0 else 1)

    def _tag(self, seq: int, dim: int, step: int) -> int:
        return seq * 8 + self._dirtag(dim, step)

    # -- schedule fragments ---------------------------------------------------
    def _call_cpu_seconds(self, domain: int) -> float:
        """CPU burned by one round's MPI calls (sends + recvs + waitall)."""
        calls = 2 * len(self.remote_dirs(domain)) + 1
        return calls * self.spec.threads.mpi_call_cpu_time

    def _start_exchange(
        self, ctx: RankContext, domain: int, n_grids: int, seq: int, slot: int = 0
    ) -> Proc:
        """Initiate a batch exchange; returns the recv requests to wait on.

        ``slot`` offsets the peer rank within its node — the flat
        sub-groups variant runs four ranks per node-level domain, and each
        slot exchanges with the *same* slot on the neighbouring node.
        """
        recvs = []
        for dim, step, dst, nbytes in self.remote_dirs(domain):
            yield from ctx.isend(
                self.rank_of_domain[dst] + slot,
                nbytes * n_grids,
                self._tag(seq, dim, step),
            )
        for dim, step, _, nbytes in self.remote_dirs(domain):
            src = self.decomp.neighbor(domain, dim, -step)
            assert src is not None
            req = yield from ctx.irecv(
                self.rank_of_domain[src] + slot, self._tag(seq, dim, step)
            )
            recvs.append(req)
        return recvs

    def _compute(self, ctx: RankContext, n_grids: int, points: Optional[int] = None) -> Proc:
        points = self.block_points if points is None else points
        yield from ctx.compute(n_grids * points * self.t_point)

    # -- per-approach rank/thread programs -----------------------------------
    def flat_original_rank(self, ctx: RankContext, domain: int) -> Proc:
        """Serialized per-dimension blocking exchange, grid by grid.

        Within a dimension the two directions are blocking send/receive
        pairs executed one after the other (the original code has no
        DMA-driven overlap), mirroring the analytic model's factor two.
        """
        for gid in range(self.job.n_grids):
            for dim in range(3):
                dirs = [d for d in self.remote_dirs(domain) if d[0] == dim]
                for _, step, dst, nbytes in dirs:
                    yield from ctx.isend(
                        self.rank_of_domain[dst], nbytes, self._tag(gid, dim, step)
                    )
                    src = self.decomp.neighbor(domain, dim, -step)
                    assert src is not None
                    req = yield from ctx.irecv(
                        self.rank_of_domain[src], self._tag(gid, dim, step)
                    )
                    yield from ctx.wait(req)
            yield from self._compute(ctx, 1)

    def pipelined_rank(
        self,
        ctx: RankContext,
        domain: int,
        grid_ids: list[int],
        seq_base: int,
        slot: int = 0,
    ) -> Proc:
        """Double-buffered batch pipeline (flat optimized / one hybrid thread)."""
        if not grid_ids:
            return
        batches = batch_schedule(len(grid_ids), self.batch_size, self.ramp_up)
        call_cpu = self._call_cpu_seconds(domain)
        pending: Optional[tuple[list, int]] = None
        for i, batch in enumerate(batches):
            if call_cpu:
                yield from ctx.compute(call_cpu)
            reqs = yield from self._start_exchange(
                ctx, domain, len(batch), seq_base + i, slot
            )
            if pending is not None:
                prev_reqs, prev_n = pending
                if prev_reqs:
                    yield from ctx.waitall(prev_reqs)
                yield from self._compute(ctx, prev_n)
            pending = (reqs, len(batch))
        prev_reqs, prev_n = pending  # type: ignore[misc]
        if prev_reqs:
            yield from ctx.waitall(prev_reqs)
        yield from self._compute(ctx, prev_n)

    def master_only_node(self, ctx: RankContext, domain: int) -> Proc:
        """Master thread exchanges; four cores split each grid; per-grid barrier."""
        threads = min(4, self.n_cores)
        spawn = self.spec.threads.spawn_time
        join = self.spec.threads.join_time
        barrier = self.spec.threads.barrier_time
        yield ctx.sim.timeout(spawn)
        batches = batch_schedule(self.job.n_grids, self.batch_size, self.ramp_up)
        call_cpu = self._call_cpu_seconds(domain)
        pending: Optional[tuple[list, int]] = None
        for i, batch in enumerate(batches):
            if call_cpu:
                yield from ctx.compute(call_cpu)
            reqs = yield from self._start_exchange(ctx, domain, len(batch), i)
            if pending is not None:
                yield from self._master_compute(ctx, pending, threads, barrier)
            pending = (reqs, len(batch))
        yield from self._master_compute(ctx, pending, threads, barrier)  # type: ignore[arg-type]
        yield ctx.sim.timeout(join)

    def _master_compute(
        self, ctx: RankContext, pending: tuple[list, int], threads: int, barrier: float
    ) -> Proc:
        reqs, n_grids = pending
        if reqs:
            yield from ctx.waitall(reqs)
        per_thread_points = math.ceil(self.block_points / threads)
        for _ in range(n_grids):
            workers = [
                ctx.sim.spawn(
                    ctx.on_core(t).compute(per_thread_points * self.t_point_quarter),
                    name=f"mo-compute-core{t}",
                )
                for t in range(threads)
            ]
            yield ctx.sim.all_of(workers)
            yield ctx.sim.timeout(barrier)

    def hybrid_multiple_node(self, ctx: RankContext, domain: int) -> Proc:
        """Four threads, each communicating for its own whole grids."""
        threads = min(4, self.n_cores)
        yield ctx.sim.timeout(self.spec.threads.spawn_time)
        groups = split_among_workers(list(range(self.job.n_grids)), threads)
        seq_stride = max(1, math.ceil(self.job.n_grids / self.batch_size) + 2)
        workers = [
            ctx.sim.spawn(
                self.pipelined_rank(
                    ctx.on_core(t), domain, groups[t], seq_base=t * seq_stride
                ),
                name=f"hm-thread{t}",
            )
            for t in range(threads)
            if groups[t]
        ]
        yield ctx.sim.all_of(workers)
        yield ctx.sim.timeout(self.spec.threads.join_time)

    # -- orchestration --------------------------------------------------------
    def run(self) -> SimResult:
        for domain in range(self.decomp.n_domains):
            rank = self.rank_of_domain[domain]
            ctx = self.comm.context(rank)
            if self.approach.serialized_exchange:
                progs = [self.flat_original_rank(ctx, domain)]
            elif self.approach.sync_per_grid:
                progs = [self.master_only_node(ctx, domain)]
            elif self.approach.is_hybrid:
                progs = [self.hybrid_multiple_node(ctx, domain)]
            elif not self.approach.decompose_per_rank:
                # flat sub-groups (section VII-A): the node's four ranks
                # each pipeline their own grid sub-group on the shared
                # node-level domain.
                workers = min(4, self.n_cores)
                groups = split_among_workers(
                    list(range(self.job.n_grids)), workers
                )
                stride = max(1, math.ceil(self.job.n_grids / self.batch_size) + 2)
                progs = [
                    self.pipelined_rank(
                        self.comm.context(rank + slot),
                        domain,
                        groups[slot],
                        seq_base=slot * stride,
                        slot=slot,
                    )
                    for slot in range(workers)
                    if groups[slot]
                ]
            else:
                progs = [
                    self.pipelined_rank(
                        ctx, domain, list(range(self.job.n_grids)), seq_base=0
                    )
                ]
            for k, prog in enumerate(progs):
                self.machine.sim.spawn(
                    prog, name=f"{self.approach.name}-d{domain}.{k}"
                )
        total = self.machine.sim.run()
        inter_bytes = sum(self.machine.torus.bytes_sent.values())
        return SimResult(
            approach_name=self.approach.name,
            n_cores=self.n_cores,
            batch_size=self.batch_size,
            total=total,
            utilization=self.machine.utilization(total),
            comm_bytes_per_node=inter_bytes / self.machine.n_nodes,
            messages=self.comm.messages_sent,
            trace=self.tracer,
        )


def simulate_fd(
    job: FDJob,
    approach: Approach,
    n_cores: int,
    batch_size: int = 1,
    ramp_up: bool = False,
    spec: MachineSpec = BGP_SPEC,
    placement: str = "auto",
    trace: bool = False,
) -> SimResult:
    """Simulate one FD invocation at message level on the DES machine.

    Exact but event-heavy: intended for <= a few hundred cores and a few
    hundred grids.  For paper-scale configurations use
    :class:`~repro.core.perfmodel.PerformanceModel`.
    """
    return _FDSimulation(
        job, approach, n_cores, batch_size, ramp_up, spec, placement, trace
    ).run()
