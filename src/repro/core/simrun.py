"""Message-level replay of compiled schedule plans on the DES machine.

Where :mod:`repro.core.perfmodel` is closed-form, this module *executes*
the schedules: every rank (or hybrid thread) is a DES process issuing
simulated-MPI calls and core computations, with exact link contention and
lock serialization.  The schedule itself is not built here — the runner
replays the same :class:`repro.core.schedule.SchedulePlan` the functional
engine interprets, mapping each step to simulated calls with timing
(``PostSend``/``PostRecv`` to ``isend``/``irecv``, ``ComputeInterior`` to
core occupancy, ``GridBarrier`` to the thread-barrier cost).  It is exact
but O(ranks x grids x messages) in events, so it is meant for small
configurations — the test suite uses it to validate the analytic model,
which then extrapolates to paper scale.

Domain placement
----------------

Flat (virtual-node) ranks are placed *cyclically*: domain coordinates are
taken modulo the node grid, so neighbouring domains always sit on
neighbouring (or the same-distance) nodes and — matching the paper's
measured per-node communication — no FD neighbours share a node.  When the
domain grid is not component-wise divisible by the node grid, a spread
mapping (round-robin over nodes) is used instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Generator, Optional

from repro.core.approaches import Approach
from repro.core.perfmodel import FDJob
from repro.core.schedule import (
    ApplyLocalWraps,
    BandSchedulePlan,
    ComputeBoundary,
    ComputeInterior,
    GridBarrier,
    PartialGemm,
    PostRecv,
    PostSend,
    RankPlan,
    RingSendRecv,
    WaitAll,
    WorkerPlan,
    compile_schedule,
    message_tag,
    timing_plane_workers,
)
from repro.des.core import Event
from repro.des.trace import Tracer
from repro.obs.spans import SpanTracer
from repro.grid.decompose import Decomposition
from repro.transport.faults import FaultPlan
from repro.machine.machine import Machine
from repro.machine.partition import NodeMode
from repro.machine.spec import BGP_SPEC, MachineSpec
from repro.smpi.comm import RankContext, SimComm
from repro.util.validation import check_positive_int

Proc = Generator[Event, object, None]

HALO_WIDTH = 2  # the paper's stencil radius

#: tag offset for wire copies the receiver discards (corrupt originals,
#: spurious duplicates): they occupy links and counters but match no
#: posted receive.  Far above every real tag space (collectives end at
#: ``1 << 28`` + rounds).
_GHOST_TAG_OFFSET = 1 << 30


@dataclass
class SimResult:
    """Outcome of one simulated FD invocation."""

    approach_name: str
    n_cores: int
    batch_size: int
    total: float
    utilization: float
    comm_bytes_per_node: float
    messages: int
    #: activity trace (compute spans per core, transfers per link); only
    #: populated when ``simulate_fd(..., trace=True)``
    trace: Optional[Tracer] = None
    #: schedule-step trace in the unified span schema (one StepSpan per
    #: replayed IR step, simulated time); only populated when
    #: ``simulate_fd(..., step_tracer=...)`` — diffable against a real
    #: engine trace of the same plan
    step_trace: Optional[SpanTracer] = None
    #: faults the fault plan injected during the replay (0 without one)
    fault_events: int = 0
    #: which engine produced this result: "reference" (generator processes)
    #: or "compiled" (table-driven state machines, simrun_compiled)
    engine: str = ""
    #: schedule-IR steps replayed across all ranks (plan size metric)
    ir_steps: int = 0
    #: heap entries the DES fired during the replay (throughput metric)
    events: int = 0


def _node_mode_for(approach: Approach, n_cores: int) -> tuple[NodeMode, int]:
    """(node mode, node count) realizing ``n_cores`` for an approach."""
    if n_cores >= 4:
        if n_cores % 4:
            raise ValueError(f"n_cores must be 1, 2 or a multiple of 4, got {n_cores}")
        n_nodes = n_cores // 4
        mode = NodeMode.SMP if approach.is_hybrid else NodeMode.VN
    elif n_cores == 2:
        n_nodes, mode = 1, (NodeMode.SMP if approach.is_hybrid else NodeMode.DUAL)
    elif n_cores == 1:
        n_nodes, mode = 1, NodeMode.SMP
    else:
        raise ValueError(f"n_cores must be >= 1, got {n_cores}")
    return mode, n_nodes


def _domain_to_rank(
    decomp: Decomposition, machine: Machine, placement: str = "auto"
) -> list[int]:
    """Place domains on ranks.

    ``cyclic`` folds domain coordinates modulo the node grid — every FD
    neighbour pair lands on adjacent nodes and wrap traffic balances onto
    reverse links (the placement a tuned BG/P mapfile achieves).
    ``spread`` deals domains round-robin over nodes — a naive placement
    whose neighbours can be many hops apart; kept for the placement
    ablation.  ``auto`` uses cyclic when the domain grid divides the node
    grid component-wise, else spread.
    """
    if placement not in ("auto", "cyclic", "spread"):
        raise ValueError(
            f"placement must be 'auto', 'cyclic' or 'spread', got {placement!r}"
        )
    n_nodes = machine.n_nodes
    rpn = machine.mode.ranks_per_node
    dshape = decomp.domains_shape
    nshape = machine.partition.shape
    divisible = (
        all(d % n == 0 for d, n in zip(dshape, nshape))
        and decomp.n_domains == n_nodes * rpn
    )
    if placement == "cyclic" and not divisible:
        raise ValueError(
            f"cyclic placement needs the domain grid {dshape} to divide the "
            f"node grid {nshape} component-wise"
        )
    cyclic = divisible if placement == "auto" else placement == "cyclic"
    mapping: list[int] = [0] * decomp.n_domains
    slots = [0] * n_nodes
    for domain in range(decomp.n_domains):
        if cyclic:
            c = decomp.coords_of(domain)
            node = machine.topology.node_at(tuple(ci % ni for ci, ni in zip(c, nshape)))
        else:
            node = domain % n_nodes
        slot = slots[node]
        if slot >= rpn:
            raise ValueError(
                f"placement overflow: node {node} already has {rpn} ranks "
                f"(domains {decomp.n_domains}, nodes {n_nodes})"
            )
        slots[node] = slot + 1
        mapping[domain] = node * rpn + slot
    return mapping


class _FDSimulation:
    """Shared state of one simulated invocation."""

    def __init__(
        self,
        job: FDJob,
        approach: Approach,
        n_cores: int,
        batch_size: int,
        ramp_up: bool,
        spec: MachineSpec,
        placement: str = "auto",
        trace: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        step_tracer: Optional[SpanTracer] = None,
    ) -> None:
        check_positive_int(n_cores, "n_cores")
        approach.validate_batch_size(batch_size)
        self.job = job
        self.approach = approach
        self.n_cores = n_cores
        self.batch_size = batch_size
        self.ramp_up = ramp_up
        self.spec = spec
        self.fault_plan = fault_plan
        self.step_tracer = step_tracer
        mode, n_nodes = _node_mode_for(approach, n_cores)
        self.tracer = Tracer() if trace else None
        self.machine = Machine(n_nodes, mode, spec, tracer=self.tracer)
        self.comm = SimComm(self.machine, approach.thread_mode)
        self.decomp = Decomposition(job.grid, approach.domains_for(n_cores))
        if self.decomp.n_domains != self.comm.size and approach.is_hybrid:
            # hybrid: one domain per node; ranks == nodes in SMP mode.
            assert self.decomp.n_domains == n_nodes
        self.rank_of_domain = _domain_to_rank(self.decomp, self.machine, placement)
        self.block_points = self.decomp.max_block_points()
        # Small-block halo penalty, identical to the analytic model's.
        def halo_point_time(shape: list[int]) -> float:
            padded = math.prod(b + 2 * HALO_WIDTH for b in shape)
            factor = (padded / math.prod(shape)) ** spec.halo_compute_exponent
            return spec.stencil_point_time * factor

        block = list(self.decomp.block_shape(0))
        self.t_point = halo_point_time(block)
        # master-only threads each stream a quarter block plus its halo
        threads = min(4, n_cores)
        quarter = list(block)
        axis = quarter.index(max(quarter))
        quarter[axis] = max(1, math.ceil(quarter[axis] / threads))
        self.t_point_quarter = halo_point_time(quarter)
        # The schedule is not built here: compile (or fetch from cache)
        # the same plan the functional engine interprets and replay it.
        self.plan = compile_schedule(
            approach,
            self.decomp,
            job.n_grids,
            batch_size,
            ramp_up,
            halo_width=HALO_WIDTH,
            n_workers=timing_plane_workers(approach, n_cores),
        )

    # -- fault modeling --------------------------------------------------------
    def _fault_clock(self, ctx: RankContext) -> Proc:
        """Advance the kill clock; a killed rank pays the restart time.

        The DES models the *recovery overhead*, not the crash itself: the
        supervisor restarts the rank from its last checkpoint, so the
        rank (and, through stalled messages, its neighbours) loses
        ``restart_time`` simulated seconds — the cost the MTBF sweep in
        :mod:`repro.analysis.resilience` integrates over a run.
        """
        fp = self.fault_plan
        idx = fp.next_op(ctx.rank)
        if fp.should_kill(ctx.rank, idx):
            yield ctx.sim.timeout(fp.restart_time)

    def _faulty_send(self, ctx: RankContext, dst: int, nbytes: float, tag: int) -> Proc:
        """A PostSend under the fault plan.

        * *delay* — the message leaves late.
        * *drop* — the receiver times out after ``retransmit_timeout``
          and the sender retransmits: one copy travels, late.
        * *corrupt* — the corrupt copy travels (ghost tag: it reaches the
          wire and the byte counters but matches no receive — the
          receiver rejects its checksum), then the good copy follows
          after the retransmit window.
        * *duplicate* — a spurious extra copy travels alongside.
        """
        fp = self.fault_plan
        yield from self._fault_clock(ctx)
        kind = fp.take_fault(ctx.rank, fp.next_send(ctx.rank), "isend")
        if kind == "delay":
            yield ctx.sim.timeout(fp.delay)
        elif kind == "drop":
            yield ctx.sim.timeout(fp.retransmit_timeout)
        elif kind == "corrupt":
            yield from ctx.isend(dst, nbytes, tag + _GHOST_TAG_OFFSET)
            yield ctx.sim.timeout(fp.retransmit_timeout)
        elif kind == "duplicate":
            yield from ctx.isend(dst, nbytes, tag + _GHOST_TAG_OFFSET)
        yield from ctx.isend(dst, nbytes, tag)

    # -- step replay ----------------------------------------------------------
    def replay_worker(
        self, ctx: RankContext, wp: WorkerPlan, domain: int = 0
    ) -> Proc:
        """Replay one worker's compiled steps as timed simulated-MPI calls.

        Besides the steps themselves, the worker pays the per-round CPU
        cost of entering the MPI library (sends + recvs + one waitall per
        exchange round) — charged when a round's calls are issued, which
        under double buffering is one round ahead of the ``WaitAll`` being
        replayed.  Blocking plans pay no separate call CPU (the fixed cost
        sits inside the network model's per-message overhead).

        With a ``step_tracer``, every replayed step also lands as a
        :class:`~repro.obs.spans.StepSpan` at simulated time on resource
        ``rank{domain}.w{worker}`` — the same naming the real engine's
        :func:`repro.obs.spans.engine_hook` uses, so the two traces diff
        step-for-step.
        """
        plan = self.plan
        rounds = wp.rounds
        tracer = self.step_tracer
        resource = f"rank{domain}.w{wp.index}"
        t_call = self.spec.threads.mpi_call_cpu_time
        lookahead = 1 if plan.double_buffered else 0
        next_round = 0
        pending: dict[int, list] = {}
        for st in wp.steps:
            step_t0 = ctx.sim.now
            if (
                not plan.blocking
                and t_call
                and isinstance(st, (PostSend, PostRecv, WaitAll))
            ):
                limit = st.seq + (lookahead if isinstance(st, WaitAll) else 0)
                while next_round < len(rounds) and rounds[next_round].seq <= limit:
                    r = rounds[next_round]
                    next_round += 1
                    yield from ctx.compute(
                        (len(r.sends) + len(r.recvs) + 1) * t_call
                    )
            if isinstance(st, PostSend):
                dst = self.rank_of_domain[st.dst] + st.slot
                tag = message_tag(st.seq, st.dim, st.step)
                if self.fault_plan is not None:
                    yield from self._faulty_send(ctx, dst, st.nbytes, tag)
                else:
                    yield from ctx.isend(dst, st.nbytes, tag)
            elif isinstance(st, PostRecv):
                if self.fault_plan is not None:
                    yield from self._fault_clock(ctx)
                req = yield from ctx.irecv(
                    self.rank_of_domain[st.src] + st.slot,
                    message_tag(st.seq, st.dim, st.step),
                )
                pending.setdefault(st.seq, []).append(req)
            elif isinstance(st, WaitAll):
                if self.fault_plan is not None:
                    yield from self._fault_clock(ctx)
                reqs = pending.pop(st.seq, [])
                if reqs:
                    yield from ctx.waitall(reqs)
            elif isinstance(st, ComputeInterior):
                if plan.sync_per_grid:
                    yield from self._quarter_compute(ctx)
                else:
                    yield from ctx.compute(self.block_points * self.t_point)
            elif isinstance(st, GridBarrier):
                yield ctx.sim.timeout(self.spec.threads.barrier_time)
            elif isinstance(st, (ApplyLocalWraps, ComputeBoundary)):
                # in-block memcpys/zeroing: free at this fidelity (their
                # cost is inside the calibrated per-point compute time)
                pass
            # JoinBarrier: the node wrapper pays the join cost once
            if tracer is not None:
                tracer.record_step(resource, st, wp.index, step_t0, ctx.sim.now)

    def _quarter_compute(self, ctx: RankContext) -> Proc:
        """Master-only's shared-grid kernel: four cores split one grid."""
        threads = min(4, self.n_cores)
        per_thread_points = math.ceil(self.block_points / threads)
        workers = [
            ctx.sim.spawn(
                ctx.on_core(t).compute(per_thread_points * self.t_point_quarter),
                name=f"mo-compute-core{t}",
            )
            for t in range(threads)
        ]
        yield ctx.sim.all_of(workers)

    def node_program(self, ctx: RankContext, rp: RankPlan) -> Proc:
        """One rank's program: its workers, plus thread team spawn/join."""
        if self.plan.uses_thread_team:
            yield ctx.sim.timeout(self.spec.threads.spawn_time)
            team = [
                ctx.sim.spawn(
                    self.replay_worker(ctx.on_core(wp.index), wp, rp.domain),
                    name=f"{self.approach.name}-d{rp.domain}.t{wp.index}",
                )
                for wp in rp.workers
                if wp.steps
            ]
            if team:
                yield ctx.sim.all_of(team)
            yield ctx.sim.timeout(self.spec.threads.join_time)
        else:
            for wp in rp.workers:
                yield from self.replay_worker(ctx, wp, rp.domain)

    # -- orchestration --------------------------------------------------------
    def run(self) -> SimResult:
        ir_steps = 0
        for domain in range(self.decomp.n_domains):
            rank = self.rank_of_domain[domain]
            rp = self.plan.rank_plan(domain)
            ir_steps += sum(len(wp.steps) for wp in rp.workers)
            if self.plan.workers_are_ranks:
                # flat sub-groups (section VII-A): the node's virtual-mode
                # ranks each replay their own worker, offset by slot.
                for wp in rp.workers:
                    if wp.steps:
                        self.machine.sim.spawn(
                            self.replay_worker(
                                self.comm.context(rank + wp.slot), wp, domain
                            ),
                            name=f"{self.approach.name}-d{domain}.{wp.slot}",
                        )
            else:
                self.machine.sim.spawn(
                    self.node_program(self.comm.context(rank), rp),
                    name=f"{self.approach.name}-d{domain}",
                )
        total = self.machine.sim.run()
        inter_bytes = sum(self.machine.torus.bytes_sent.values())
        return SimResult(
            approach_name=self.approach.name,
            n_cores=self.n_cores,
            batch_size=self.batch_size,
            total=total,
            utilization=self.machine.utilization(total),
            comm_bytes_per_node=inter_bytes / self.machine.n_nodes,
            messages=self.comm.messages_sent,
            trace=self.tracer,
            step_trace=self.step_tracer,
            fault_events=(
                len(self.fault_plan.events) if self.fault_plan is not None else 0
            ),
            engine="reference",
            ir_steps=ir_steps,
            events=self.machine.sim.events_processed,
        )


def simulate_fd(
    job: FDJob,
    approach: Approach,
    n_cores: int,
    batch_size: int = 1,
    ramp_up: bool = False,
    spec: MachineSpec = BGP_SPEC,
    placement: str = "auto",
    trace: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    step_tracer: Optional[SpanTracer] = None,
    engine: str = "compiled",
) -> SimResult:
    """Simulate one FD invocation at message level on the DES machine.

    Message-level exact.  The default ``engine="compiled"``
    (:mod:`repro.core.simrun_compiled`) deduplicates per-rank plans and
    replays micro-op tables on the DES callback fast path, which keeps
    exact replay feasible at paper-scale rank counts;
    ``engine="reference"`` runs the original generator-process
    interpreter, kept as the canonical semantics the compiled engine is
    diffed against bit-for-bit (``tests/test_engine_equivalence.py``).

    ``fault_plan`` replays the same :class:`~repro.transport.faults.FaultPlan`
    the functional plane injects, as *timing* perturbations: delays,
    retransmit windows, spurious wire copies, and restart penalties for
    killed ranks.  The plan's counters advance during the replay — pass
    ``plan.replica()`` to keep the original pristine.

    ``step_tracer`` (a :class:`~repro.obs.spans.SpanTracer`, typically
    ``SpanTracer(plane="sim")``) records every replayed schedule-IR step
    as a unified span at simulated time; the result's ``step_trace``
    carries it for export/diffing against the other planes.
    """
    if engine == "compiled":
        # deferred import: simrun_compiled imports from this module
        from repro.core.simrun_compiled import _CompiledFDSimulation

        cls = _CompiledFDSimulation
    elif engine == "reference":
        cls = _FDSimulation
    else:
        raise ValueError(
            f"engine must be 'compiled' or 'reference', got {engine!r}"
        )
    return cls(
        job, approach, n_cores, batch_size, ramp_up, spec, placement, trace,
        fault_plan, step_tracer,
    ).run()


def simulate_spec(
    jobspec,
    spec: MachineSpec = BGP_SPEC,
    placement: Optional[str] = None,
    trace: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    step_tracer: Optional[SpanTracer] = None,
    engine: str = "compiled",
) -> SimResult:
    """Replay one FD invocation of a :class:`~repro.core.jobspec.JobSpec`.

    For ``n_band_groups > 1`` the replayed invocation is one band
    group's (``G/nb`` grids on ``P/nb`` cores — groups run concurrently,
    so that *is* the step's FD wall time); the ring pass is priced
    separately via :func:`simulate_band_plan`, which is how
    :meth:`~repro.core.planner.Planner.cross_check` combines the two.

    ``placement`` defaults to the spec's own serialized
    ``runtime.placement``; pass a strategy name to override it for one
    replay without rewriting the spec.
    """
    if step_tracer is not None and getattr(step_tracer, "config_hash", None) is None:
        step_tracer.config_hash = jobspec.config_hash()
    if placement is None:
        placement = jobspec.runtime.placement
    return simulate_fd(
        jobspec.group_job(),
        jobspec.approach_obj(),
        jobspec.group_cores,
        batch_size=jobspec.layout.batch_size,
        ramp_up=jobspec.layout.ramp_up,
        spec=spec,
        placement=placement,
        trace=trace,
        fault_plan=fault_plan,
        step_tracer=step_tracer,
        engine=engine,
    )


# -- band-parallel replay -----------------------------------------------------
@dataclass
class BandSimResult:
    """Outcome of one simulated band-orthogonalization (ring) pass."""

    n_groups: int
    total: float
    messages: int
    step_trace: Optional[SpanTracer] = None


@dataclass
class BandStepSimResult:
    """One full simulated SCF-relevant step under band parallelization."""

    n_groups: int
    fd: float
    subspace: float
    total: float


def simulate_band_plan(
    plan: "BandSchedulePlan",
    spec: MachineSpec = BGP_SPEC,
    step_tracer: Optional[SpanTracer] = None,
) -> BandSimResult:
    """Replay one compiled :class:`BandSchedulePlan` on the DES machine.

    The ring only talks *between* groups — every rank exchanges with the
    same-domain peer of the neighbouring group and all domains of a group
    progress in lockstep — so one representative rank per group (domain
    0) reproduces the critical path: ``nb`` SMP nodes, each a DES process
    walking its group's step list.  :class:`PartialGemm` steps occupy the
    core at the calibrated GEMM rate; :class:`RingSendRecv` posts the
    non-blocking pair that the following GEMM overlaps; ``WaitAll``
    completes the stage.  This is the same step sequence the functional
    executor interprets and the analytic model walks.
    """
    from repro.core.wholeapp import WholeAppModel

    nb = plan.n_groups
    machine = Machine(nb, NodeMode.SMP, spec)
    comm = SimComm(machine)
    rate = spec.node.core.peak_flops * WholeAppModel.GEMM_EFFICIENCY

    def group_program(group: int) -> Proc:
        ctx = comm.context(group)
        # at most one ring stage is in flight at a time: the plan posts
        # RingSendRecv, overlaps one PartialGemm, then WaitAll completes
        pending: list = []
        for st in plan.group_steps(group):
            t0 = machine.sim.now
            if isinstance(st, RingSendRecv):
                yield from ctx.isend(st.dst_group, st.nbytes, tag=st.tag)
                req = yield from ctx.irecv(src=st.src_group, tag=st.tag)
                pending.append(req)
            elif isinstance(st, PartialGemm):
                yield from ctx.compute(st.flops / rate)
            elif isinstance(st, WaitAll):
                reqs, pending = pending, []
                yield from ctx.waitall(reqs)
            else:  # pragma: no cover - the compiler emits no other kinds
                continue
            if step_tracer is not None:
                step_tracer.record_step(
                    f"bg{group}.rank0.w0", st, 0, t0, machine.sim.now
                )

    for g in range(nb):
        machine.sim.spawn(group_program(g), name=f"band-group-{g}")
    total = machine.sim.run()
    return BandSimResult(
        n_groups=nb,
        total=total,
        messages=comm.messages_sent,
        step_trace=step_tracer,
    )


def simulate_band_step(
    job: FDJob,
    n_cores: int,
    n_band_groups: int,
    spec: MachineSpec = BGP_SPEC,
) -> BandStepSimResult:
    """DES counterpart of :meth:`BandParallelModel.evaluate`.

    Simulates one group's FD work (``G/nb`` grids on ``P/nb`` cores,
    hybrid multiple, at the batch size the analytic model would pick)
    plus the ring orthogonalization replay of the *same* compiled band
    plan the model walks — the cross-plane agreement test pins the two
    totals to <= 5%.
    """
    from repro.core.approaches import HYBRID_MULTIPLE
    from repro.core.bandpar import BandParallelModel
    from repro.core.wholeapp import WholeAppModel

    model = BandParallelModel(spec)
    layout = model.layout(job, n_cores, n_band_groups)
    nb = layout.n_groups
    group_cores = n_cores // nb
    group_job = FDJob(job.grid, job.n_grids // nb)
    fd_timing = model.fd_model.best_batch_size(
        group_job, HYBRID_MULTIPLE, group_cores
    )
    fd = simulate_fd(
        group_job,
        HYBRID_MULTIPLE,
        group_cores,
        batch_size=fd_timing.batch_size,
        spec=spec,
    )
    band = simulate_band_plan(model.band_plan(job, n_cores, nb), spec=spec)
    return BandStepSimResult(
        n_groups=nb,
        fd=fd.total,
        subspace=band.total,
        total=fd.total * WholeAppModel.FD_APPLICATIONS_PER_SCF + band.total,
    )
