"""Grid batching and the ramp-up schedule (section V-A).

Batching packs the surface slabs of several grids into one MPI message, so
that deep decompositions (tiny per-grid slabs) still send messages above
the torus' half-bandwidth size.  The cost is a longer double-buffering
prologue: the first batch's exchange cannot be hidden behind computation.
The paper's remedy is to *ramp up* the batch size at the start ("a
batch-size of 128 could be reduced to 64 in the initial exchange") — we
generalize that to doubling from a small seed until the target is reached.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from repro.util.validation import check_positive_int

T = TypeVar("T")


def batch_schedule(
    n_grids: int, batch_size: int, ramp_up: bool = False
) -> list[list[int]]:
    """Partition grid indices ``0..n_grids-1`` into ordered batches.

    Without ramp-up, batches are simply consecutive chunks of
    ``batch_size`` (the last may be short).  With ramp-up, the schedule
    starts at ``max(1, batch_size // 2)`` and doubles until the target is
    reached, shortening the non-hideable prologue.

    >>> batch_schedule(10, 4)
    [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
    >>> batch_schedule(10, 4, ramp_up=True)
    [[0, 1], [2, 3, 4, 5], [6, 7, 8, 9]]
    """
    check_positive_int(n_grids, "n_grids")
    check_positive_int(batch_size, "batch_size")
    out: list[list[int]] = []
    i = 0
    size = max(1, batch_size // 2) if ramp_up and batch_size > 1 else batch_size
    while i < n_grids:
        take = min(size, n_grids - i)
        out.append(list(range(i, i + take)))
        i += take
        size = min(batch_size, size * 2)
    return out


def split_among_workers(items: Sequence[T], n_workers: int) -> list[list[T]]:
    """Deal whole items to workers as evenly as possible (contiguous runs).

    Hybrid multiple distributes *whole grids* between the node's cores
    ("not by dividing the grids into smaller pieces but by assigning
    different grids to every CPU-core", section VI).
    """
    check_positive_int(n_workers, "n_workers")
    from repro.util.factorize import balanced_partition

    sizes = balanced_partition(len(items), n_workers)
    out: list[list[T]] = []
    pos = 0
    for s in sizes:
        out.append(list(items[pos: pos + s]))
        pos += s
    return out
