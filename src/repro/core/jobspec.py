"""Typed run configuration: one validated artifact for all three planes.

After five PRs every layer answered "which configuration?" separately:
``DistributedSCF`` took 13 constructor knobs, ``simrun``/``perfmodel``/
``bandpar``/``wholeapp`` each re-derived layouts from loose ints, and the
CLI repeated the same ``--cores/--grids/--shape`` blocks per subcommand.
This module is the single point of truth those consumers share:

* :class:`ProblemSpec` — *what* is computed: grid shape/spacing/pbc/dtype
  and the number of grids (wave functions).
* :class:`LayoutSpec` — *how* it is laid out: approach, core count, batch
  size, band groups, ramp-up.
* :class:`RuntimeSpec` — SCF loop knobs: tolerance, iteration caps,
  mixing, XC, seed, checkpoint cadence.
* :class:`JobSpec` — the composition; every field validated exactly once
  (through :mod:`repro.util.validation`), losslessly serializable via
  :meth:`JobSpec.to_dict` / :meth:`JobSpec.from_dict`, identified by a
  stable :meth:`JobSpec.config_hash`.

Checkpoints embed the serialized spec; a restart whose spec cannot
reconstruct the exact run raises :class:`SpecMismatchError` (a
``ValueError``, so legacy ``pytest.raises(ValueError)`` call sites keep
working).  The CLI builds its shared option block from :data:`CLI_KNOBS`
— one place to add a knob.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace

from repro.core.approaches import Approach, approach_by_name
from repro.grid.grid import GridDescriptor
from repro.util.validation import (
    check_divisible,
    check_in,
    check_nonnegative,
    check_positive_int,
    check_shape3,
)

__all__ = [
    "SPEC_VERSION",
    "CLI_KNOBS",
    "ProblemSpec",
    "LayoutSpec",
    "RuntimeSpec",
    "JobSpec",
    "SpecMismatchError",
    "check_restart_compatible",
]

#: bump when the serialized layout changes incompatibly
SPEC_VERSION = 1


class SpecMismatchError(ValueError):
    """A checkpoint's embedded :class:`JobSpec` cannot restart this run.

    Subclasses :class:`ValueError` so existing ``pytest.raises(ValueError,
    match="does not match")`` call sites keep passing; :attr:`mismatches`
    lists every differing field as ``"section.field: saved X, current Y"``.
    """

    def __init__(self, mismatches: list[str] | tuple[str, ...]):
        self.mismatches = tuple(mismatches)
        super().__init__(
            "checkpoint JobSpec does not match this run: "
            + "; ".join(self.mismatches)
        )


@dataclass(frozen=True)
class ProblemSpec:
    """What is computed: the grid geometry and the number of grids.

    ``n_grids`` is the wave-function (band) count — the paper's ``G``.
    """

    shape: tuple[int, int, int]
    n_grids: int
    pbc: tuple[bool, bool, bool] = (True, True, True)
    spacing: float = 0.2
    dtype: str = "float64"

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", check_shape3(self.shape, "shape"))
        check_positive_int(self.n_grids, "n_grids")
        pbc = tuple(bool(p) for p in self.pbc)
        if len(pbc) != 3:
            raise ValueError(f"pbc must have 3 entries, got {self.pbc!r}")
        object.__setattr__(self, "pbc", pbc)
        if not self.spacing > 0:
            raise ValueError(f"spacing must be > 0, got {self.spacing}")
        check_in(self.dtype, ("float64", "complex128"), "dtype")

    def grid(self) -> GridDescriptor:
        """The :class:`GridDescriptor` this problem runs on."""
        return GridDescriptor(
            self.shape, pbc=self.pbc, spacing=self.spacing, dtype=self.dtype
        )

    def fd_job(self):
        """The timing-plane :class:`~repro.core.perfmodel.FDJob`."""
        from repro.core.perfmodel import FDJob

        return FDJob(self.grid(), self.n_grids)

    @classmethod
    def from_grid(cls, grid: GridDescriptor, n_grids: int) -> "ProblemSpec":
        """Describe an existing descriptor (the ``from_spec`` inverse)."""
        return cls(
            shape=grid.shape,
            n_grids=n_grids,
            pbc=grid.pbc,
            spacing=grid.spacing,
            dtype=grid.dtype.name,
        )


@dataclass(frozen=True)
class LayoutSpec:
    """How the problem is laid out on the machine."""

    approach: str = "flat-optimized"
    n_cores: int = 1
    batch_size: int = 1
    n_band_groups: int = 1
    ramp_up: bool = False

    def __post_init__(self) -> None:
        a = approach_by_name(self.approach)  # raises on unknown names
        check_positive_int(self.n_cores, "n_cores")
        a.validate_batch_size(self.batch_size)
        check_positive_int(self.n_band_groups, "n_band_groups")
        object.__setattr__(self, "ramp_up", bool(self.ramp_up))


@dataclass(frozen=True)
class RuntimeSpec:
    """SCF-loop knobs shared by the sequential and distributed loops.

    ``eig_tol``/``eigensolver`` drive the sequential loop's inner
    eigensolver and ``checkpoint_keep`` the stores' retention window —
    former loose constructor arguments, now serialized with every other
    knob so a restarted run reconstructs them from the snapshot's
    embedded spec.  ``placement`` is the DES domain-to-rank strategy
    (``simulate_spec`` reads it when no explicit override is given) —
    the last formerly hard-coded constructor default.
    """

    tolerance: float = 1e-4
    max_iterations: int = 30
    band_iterations: int = 10
    mixing: float = 0.5
    xc: str = "none"
    seed: int = 0
    checkpoint_every: int = 1
    eig_tol: float = 1e-7
    eigensolver: str = "arpack"
    checkpoint_keep: int = 2
    placement: str = "auto"

    def __post_init__(self) -> None:
        check_nonnegative(self.tolerance, "tolerance")
        check_positive_int(self.max_iterations, "max_iterations")
        check_positive_int(self.band_iterations, "band_iterations")
        if not 0 < self.mixing <= 1:
            raise ValueError(f"mixing must be in (0, 1], got {self.mixing}")
        check_in(self.xc, ("none", "lda"), "xc")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise TypeError(f"seed must be an integer, got {self.seed!r}")
        check_positive_int(self.checkpoint_every, "checkpoint_every")
        check_nonnegative(self.eig_tol, "eig_tol")
        check_in(self.eigensolver, ("arpack", "rmm-diis"), "eigensolver")
        check_positive_int(self.checkpoint_keep, "checkpoint_keep")
        check_in(self.placement, ("auto", "cyclic", "spread"), "placement")


@dataclass(frozen=True)
class JobSpec:
    """One fully-specified run, validated once, serializable losslessly."""

    problem: ProblemSpec
    layout: LayoutSpec = field(default_factory=LayoutSpec)
    runtime: RuntimeSpec = field(default_factory=RuntimeSpec)

    def __post_init__(self) -> None:
        # Cross-section constraints: the band-group count must divide both
        # the grids and the cores — the same typed errors BandGroups
        # raises, but caught before any plane builds a layout.
        nb = self.layout.n_band_groups
        if nb > 1:
            check_divisible(self.problem.n_grids, nb, "n_grids", "band groups")
            check_divisible(self.layout.n_cores, nb, "n_cores", "band groups")

    # -- derived objects (the planes' native inputs) -----------------------
    def grid(self) -> GridDescriptor:
        return self.problem.grid()

    def fd_job(self):
        return self.problem.fd_job()

    def approach_obj(self) -> Approach:
        return approach_by_name(self.layout.approach)

    def group_job(self):
        """The per-band-group FD job (``G/nb`` grids, same grid)."""
        from repro.core.perfmodel import FDJob

        return FDJob(self.grid(), self.problem.n_grids // self.layout.n_band_groups)

    @property
    def group_cores(self) -> int:
        """Cores of one band group's domain decomposition."""
        return self.layout.n_cores // self.layout.n_band_groups

    # -- copy helpers ------------------------------------------------------
    def with_problem(self, **kwargs) -> "JobSpec":
        return replace(self, problem=replace(self.problem, **kwargs))

    def with_layout(self, **kwargs) -> "JobSpec":
        return replace(self, layout=replace(self.layout, **kwargs))

    def with_runtime(self, **kwargs) -> "JobSpec":
        return replace(self, runtime=replace(self.runtime, **kwargs))

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON-types dict; :meth:`from_dict` round-trips exactly."""
        return {
            "version": SPEC_VERSION,
            "problem": {
                "shape": list(self.problem.shape),
                "n_grids": self.problem.n_grids,
                "pbc": list(self.problem.pbc),
                "spacing": self.problem.spacing,
                "dtype": self.problem.dtype,
            },
            "layout": {
                "approach": self.layout.approach,
                "n_cores": self.layout.n_cores,
                "batch_size": self.layout.batch_size,
                "n_band_groups": self.layout.n_band_groups,
                "ramp_up": self.layout.ramp_up,
            },
            "runtime": {
                "tolerance": self.runtime.tolerance,
                "max_iterations": self.runtime.max_iterations,
                "band_iterations": self.runtime.band_iterations,
                "mixing": self.runtime.mixing,
                "xc": self.runtime.xc,
                "seed": self.runtime.seed,
                "checkpoint_every": self.runtime.checkpoint_every,
                "eig_tol": self.runtime.eig_tol,
                "eigensolver": self.runtime.eigensolver,
                "checkpoint_keep": self.runtime.checkpoint_keep,
                "placement": self.runtime.placement,
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobSpec":
        """Rebuild a spec; unknown keys raise (version-skew detector).

        Missing keys fall back to the dataclass defaults so specs written
        by an older release still load — the one-way compatibility rule
        the checkpoint markers already follow.
        """
        known_sections = {"version", "problem", "layout", "runtime"}
        unknown = set(data) - known_sections
        if unknown:
            raise ValueError(f"unknown JobSpec sections {sorted(unknown)}")
        if "problem" not in data:
            raise ValueError("JobSpec dict needs a 'problem' section")
        parts = {}
        for section, klass in (
            ("problem", ProblemSpec),
            ("layout", LayoutSpec),
            ("runtime", RuntimeSpec),
        ):
            payload = dict(data.get(section, {}))
            names = {f.name for f in fields(klass)}
            bad = set(payload) - names
            if bad:
                raise ValueError(
                    f"unknown JobSpec {section} fields {sorted(bad)}"
                )
            for key in ("shape", "pbc"):
                if key in payload:
                    payload[key] = tuple(payload[key])
            parts[section] = klass(**payload)
        return cls(**parts)

    def config_hash(self) -> str:
        """Stable short hash of the canonical serialization.

        Telemetry spans and exported traces carry this so any artifact
        can be traced back to the exact configuration that produced it.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def check_restart_compatible(current: JobSpec, saved: JobSpec) -> None:
    """Raise :class:`SpecMismatchError` unless ``saved`` can restart here.

    The problem section must match exactly (the checkpointed blocks *are*
    that problem's state).  The whole layout section may legitimately
    differ — ``n_cores`` is the shrink-recovery path and
    ``n_band_groups`` the regroup path, both handled by
    :func:`repro.dft.checkpoint.regroup_checkpoint` on resume.  Runtime
    knobs may change between attempts (e.g. a tighter tolerance on
    resume).
    """
    mismatches = []
    for f in fields(ProblemSpec):
        was, now = getattr(saved.problem, f.name), getattr(current.problem, f.name)
        if was != now:
            mismatches.append(f"problem.{f.name}: saved {was!r}, current {now!r}")
    if mismatches:
        raise SpecMismatchError(mismatches)


# -- the CLI's shared spec-building option block -------------------------------
#: One row per JobSpec-backed CLI knob: name -> (option flags, argparse
#: kwargs builder taking the subcommand's default).  ``--bands`` stays as
#: an alias of ``--grids`` so pre-JobSpec invocations keep working.  The
#: CLI adds a knob to a subcommand by naming it (with its default) in
#: ``add_spec_cli`` — one place to add a knob for every subcommand.
CLI_KNOBS = {
    "approach": (
        ("--approach",),
        lambda default: {
            "default": default,
            "help": (
                "approach name"
                + (f" (default {default})" if default else " (default: all)")
            ),
        },
    ),
    "cores": (
        ("--cores",),
        lambda default: {"type": int, "default": default,
                         "help": f"CPU cores (default {default})"},
    ),
    "grids": (
        ("--grids", "--bands"),
        lambda default: {"type": int, "default": default, "dest": "grids",
                         "help": f"grids/bands (default {default})"},
    ),
    "batch_size": (
        ("--batch-size",),
        lambda default: {"type": int, "default": default,
                         "help": f"grids per message batch (default {default})"},
    ),
    "shape": (
        ("--shape",),
        lambda default: {"type": int, "nargs": 3, "default": list(default),
                         "metavar": ("NX", "NY", "NZ")},
    ),
    "ramp_up": (
        ("--ramp-up",),
        lambda default: {"action": "store_true"},
    ),
    "band_groups": (
        ("--band-groups",),
        lambda default: {"type": int, "default": default,
                         "help": f"band groups nb (default {default})"},
    ),
}


def add_spec_cli(parser, defaults: dict) -> None:
    """Add the shared JobSpec-derived options to an argparse parser.

    ``defaults`` maps knob names (keys of :data:`CLI_KNOBS`) to the
    subcommand's default value; only the named knobs are added, in
    :data:`CLI_KNOBS` order so ``--help`` output is uniform.
    """
    unknown = set(defaults) - set(CLI_KNOBS)
    if unknown:
        raise ValueError(f"unknown spec CLI knobs {sorted(unknown)}")
    for name, (flags, kwargs) in CLI_KNOBS.items():
        if name in defaults:
            parser.add_argument(*flags, **kwargs(defaults[name]))


def spec_from_args(args, **overrides) -> JobSpec:
    """Build a :class:`JobSpec` from parsed shared options.

    Missing knobs take the dataclass defaults; ``overrides`` force
    layout fields (e.g. a positional ``approach``).
    """
    layout = {
        "approach": getattr(args, "approach", None) or "flat-optimized",
        "n_cores": getattr(args, "cores", 1),
        "batch_size": getattr(args, "batch_size", 1),
        "n_band_groups": getattr(args, "band_groups", 1),
        "ramp_up": getattr(args, "ramp_up", False),
    }
    layout.update(overrides)
    return JobSpec(
        problem=ProblemSpec(
            shape=tuple(args.shape), n_grids=getattr(args, "grids", 1)
        ),
        layout=LayoutSpec(**layout),
    )
