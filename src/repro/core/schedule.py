"""The schedule IR: one compiled plan executed by all three planes.

The four programming approaches used to be implemented three separate
times — as imperative communication loops in the functional engine
(:mod:`repro.core.engine`), as generator processes in the DES runner
(:mod:`repro.core.simrun`), and as closed-form cost sums in the analytic
model (:mod:`repro.core.perfmodel`).  This module factors the *schedule*
out of all three: :func:`compile_schedule` lowers
``Approach x Decomposition x batch config`` to an explicit per-worker
list of typed steps, and each plane interprets those steps in its own
currency (real NumPy transfers, simulated-MPI events, cost formulas).

Step types
----------

``PostSend``/``PostRecv``
    Start one non-blocking halo message (one direction, one batch of
    grids).  ``seq`` numbers exchanges globally — every rank derives the
    same numbering from the same logical layout, so
    ``message_tag(seq, dim, step)`` matches across ranks without any
    negotiation.
``WaitAll``
    Complete every receive posted under one ``seq``; ghost slabs may be
    unpacked afterwards.
``ApplyLocalWraps`` / ``ComputeBoundary`` / ``ComputeInterior``
    Ghost finalization (periodic self-wraps, boundary zeroing) and the
    stencil kernel for one grid.  Only ``ComputeInterior`` costs time in
    the timing planes; the split keeps the functional semantics explicit.
``GridBarrier``
    Hybrid master-only's per-grid thread barrier (section VI).
``JoinBarrier``
    End-of-invocation marker for one worker of a thread team; the thread
    spawn/join cost lives here in the timing planes.

Plan structure
--------------

A :class:`SchedulePlan` holds the *logical* schedule — worker grid
ownership and the global round/seq layout, identical on every rank — and
instantiates concrete per-rank step lists lazily (:meth:`~SchedulePlan
.rank_plan`), since only small configurations ever materialize more than
one rank's steps (the analytic model walks the representative rank 0 of
16384-core plans).  Grid ids inside steps are *logical indices*
``0..n_grids-1``; the functional engine maps them onto its callers' grid
ids, the timing planes use them as-is.

Plans are cached in a module-level LRU keyed on
``(approach, decomposition, n_grids, batch_size, ramp_up, halo width,
workers)`` — all frozen dataclasses — so an SCF loop compiles once and
re-executes per iteration, and the three planes evaluating the same
configuration share one plan object.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.core.approaches import Approach
from repro.core.batching import batch_schedule, split_among_workers
from repro.grid.bandgroups import BandGroups
from repro.grid.decompose import Decomposition
from repro.util.validation import check_positive_int

#: the paper's stencil radius — the default halo width of compiled plans
DEFAULT_HALO_WIDTH = 2


def message_tag(seq: int, dim: int, step: int) -> int:
    """The wire tag of one halo message: sequence number + direction."""
    return seq * 8 + dim * 2 + (0 if step > 0 else 1)


def decode_message_tag(tag: int) -> tuple[int, int, int]:
    """Invert :func:`message_tag`: ``tag -> (seq, dim, step)``.

    The transport mirrors this encoding in
    :func:`repro.transport.errors.decode_halo_tag` (it cannot import this
    module); the consistency tests pin the two against each other.
    """
    if tag < 0:
        raise ValueError(f"halo tags are non-negative, got {tag}")
    seq, rest = divmod(tag, 8)
    dim, parity = divmod(rest, 2)
    return seq, dim, (+1 if parity == 0 else -1)


# -- step types ---------------------------------------------------------------
@dataclass(frozen=True)
class PostSend:
    """Start a non-blocking send of one direction's batched slabs."""

    seq: int
    dim: int
    step: int
    dst: int  # destination domain
    grid_ids: tuple[int, ...]
    nbytes: int  # whole message (all grids of the batch)
    slot: int = 0  # rank offset within a node (flat sub-groups)

    @property
    def tag(self) -> int:
        return message_tag(self.seq, self.dim, self.step)


@dataclass(frozen=True)
class PostRecv:
    """Post the matching non-blocking receive for one direction."""

    seq: int
    dim: int
    step: int
    src: int  # source domain
    grid_ids: tuple[int, ...]
    nbytes: int
    slot: int = 0

    @property
    def tag(self) -> int:
        return message_tag(self.seq, self.dim, self.step)


@dataclass(frozen=True)
class WaitAll:
    """Complete every receive posted under ``seq``."""

    seq: int
    grid_ids: tuple[int, ...]


@dataclass(frozen=True)
class ApplyLocalWraps:
    """Copy one grid's periodic self-wrap slabs (plain memcpys)."""

    grid_id: int


@dataclass(frozen=True)
class ComputeBoundary:
    """Finalize one grid's non-periodic ghost shells (zeroing)."""

    grid_id: int


@dataclass(frozen=True)
class ComputeInterior:
    """Run the stencil kernel over one grid's block."""

    grid_id: int


@dataclass(frozen=True)
class GridBarrier:
    """Thread barrier after one grid (hybrid master-only)."""

    grid_id: int


@dataclass(frozen=True)
class JoinBarrier:
    """One worker of a thread team reaches the invocation's join point."""

    worker: int


#: band-ring tags live above checkpoint traffic and below collectives
#: (mirrored by ``repro.transport.errors.RING_TAG_BASE``, which cannot
#: import this module; a consistency test pins the two together)
RING_TAG_BASE = 1 << 27


def ring_tag(phase: int, stage: int) -> int:
    """The wire tag of one orthogonalization ring stage."""
    return RING_TAG_BASE + (phase << 12) + stage


@dataclass(frozen=True)
class RingSendRecv:
    """Post one ring stage of the band orthogonalization: start the
    non-blocking send of the currently held band block to the next
    group's same-domain peer, and post the receive from the previous
    group's peer.  Both overlap the :class:`PartialGemm` that follows;
    the matching :class:`WaitAll` completes the stage."""

    seq: int  # the stage this exchange delivers (1 .. nb-1)
    phase: int  # 0 = overlap-matrix pass, 1 = rotation pass
    dst_group: int
    src_group: int
    nbytes: int

    @property
    def tag(self) -> int:
        return ring_tag(self.phase, self.seq)


@dataclass(frozen=True)
class PartialGemm:
    """One blocked GEMM tile against the band block currently held:
    an ``m x k @ k x n`` product building one strip of the overlap
    matrix (phase 0) or accumulating one rotation term (phase 1)."""

    seq: int  # stage 0 .. nb-1
    phase: int
    src_group: int  # whose bands the held block carries at this stage
    m: int
    n: int
    k: int

    @property
    def flops(self) -> float:
        return 2.0 * self.m * self.n * self.k


Step = Union[
    PostSend,
    PostRecv,
    WaitAll,
    ApplyLocalWraps,
    ComputeBoundary,
    ComputeInterior,
    GridBarrier,
    JoinBarrier,
    RingSendRecv,
    PartialGemm,
]


@dataclass(frozen=True)
class ExchangeRound:
    """One batch exchange as seen by its worker (for cost walking)."""

    seq: int
    grid_ids: tuple[int, ...]
    sends: tuple[PostSend, ...]
    recvs: tuple[PostRecv, ...]


@dataclass(frozen=True)
class WorkerPlan:
    """The step list of one worker (thread, sub-group rank, or the rank)."""

    index: int
    slot: int
    grid_ids: tuple[int, ...]
    steps: tuple[Step, ...]
    rounds: tuple[ExchangeRound, ...]

    @property
    def message_count(self) -> int:
        """Messages this worker sends per invocation."""
        return sum(len(r.sends) for r in self.rounds)


@dataclass(frozen=True)
class RankPlan:
    """All workers of one rank (domain)."""

    domain: int
    workers: tuple[WorkerPlan, ...]

    @property
    def message_count(self) -> int:
        return sum(w.message_count for w in self.workers)

    @property
    def barrier_count(self) -> int:
        return sum(
            1 for w in self.workers for s in w.steps if isinstance(s, GridBarrier)
        )


class SchedulePlan:
    """One compiled schedule: logical layout + lazy per-rank step lists."""

    def __init__(
        self,
        approach: Approach,
        decomp: Decomposition,
        n_grids: int,
        batch_size: int,
        ramp_up: bool,
        halo_width: int,
        n_workers: int,
    ):
        self.approach = approach
        self.decomp = decomp
        self.n_grids = n_grids
        self.batch_size = batch_size
        self.ramp_up = ramp_up
        self.halo_width = halo_width
        self.n_workers = n_workers
        # structural flags — the planes branch on *these*, not on Approach
        self.blocking = approach.serialized_exchange
        self.double_buffered = approach.double_buffering
        self.sync_per_grid = approach.sync_per_grid
        self.uses_thread_team = approach.is_hybrid
        #: flat sub-groups: workers are the node's virtual-mode ranks
        #: (slot offsets), not threads of one rank
        self.workers_are_ranks = not (
            approach.is_hybrid
            or approach.decompose_per_rank
            or approach.serialized_exchange
        )

        # logical layout, identical on every rank: worker grid ownership
        # and the global (seq, batch) rounds
        if self.blocking or self.sync_per_grid:
            self._worker_grids = [tuple(range(n_grids))]
        else:
            self._worker_grids = [
                tuple(g)
                for g in split_among_workers(list(range(n_grids)), n_workers)
            ]
        self._logical_rounds: list[list[tuple[int, tuple[int, ...]]]] = []
        seq = 0
        for wg in self._worker_grids:
            rounds: list[tuple[int, tuple[int, ...]]] = []
            if self.blocking:
                # one blocking exchange round per grid; seq == grid index
                rounds = [(g, (g,)) for g in wg]
            elif wg:
                for batch in batch_schedule(len(wg), batch_size, ramp_up):
                    rounds.append((seq, tuple(wg[i] for i in batch)))
                    seq += 1
            self._logical_rounds.append(rounds)

        self._rank_plans: dict[int, RankPlan] = {}
        self._dir_cache: dict[int, tuple[list, list]] = {}

    # -- geometry ---------------------------------------------------------
    def _directions(self, domain: int) -> tuple[list, list]:
        """(outgoing, incoming) remote directions of one domain.

        Each entry is ``(dim, step, peer_domain, nbytes_per_grid)``; the
        receive bytes come from the *sender's* face (blocks may be
        uneven).  Canonical order: dimension-major, +1 before -1 —
        matching the halo-message geometry every plane uses.
        """
        cached = self._dir_cache.get(domain)
        if cached is not None:
            return cached
        d, w = self.decomp, self.halo_width
        sends, recvs = [], []
        for dim in range(3):
            for step in (+1, -1):
                nbytes = d.send_bytes(domain, dim, step, w)
                if nbytes > 0:
                    sends.append((dim, step, d.neighbor(domain, dim, step), nbytes))
                src = d.neighbor(domain, dim, -step)
                if src is not None and src != domain:
                    recvs.append((dim, step, src, d.send_bytes(src, dim, step, w)))
        self._dir_cache[domain] = (sends, recvs)
        return sends, recvs

    def n_directions(self, domain: int) -> int:
        """Remote send directions of one domain (<= 6)."""
        return len(self._directions(domain)[0])

    # -- summary accounting (no step materialization needed) --------------
    @property
    def rounds_per_rank(self) -> int:
        """Exchange rounds one rank performs (all workers together)."""
        return sum(len(r) for r in self._logical_rounds)

    @property
    def grid_barriers_per_rank(self) -> int:
        return self.n_grids if self.sync_per_grid else 0

    def message_count(self, domain: int) -> int:
        """Messages one domain sends per invocation (all its workers)."""
        return self.n_directions(domain) * self.rounds_per_rank

    def total_messages(self) -> int:
        """Messages sent across all domains per invocation."""
        return sum(
            self.message_count(d) for d in range(self.decomp.n_domains)
        )

    # -- per-rank instantiation -------------------------------------------
    def rank_plan(self, domain: int) -> RankPlan:
        """The concrete step lists of one rank (built once, cached)."""
        plan = self._rank_plans.get(domain)
        if plan is None:
            plan = self._build_rank_plan(domain)
            self._rank_plans[domain] = plan
        return plan

    def _build_rank_plan(self, domain: int) -> RankPlan:
        send_dirs, recv_dirs = self._directions(domain)
        send_by_dir = {(d, s): (peer, nb) for d, s, peer, nb in send_dirs}
        recv_by_dir = {(d, s): (peer, nb) for d, s, peer, nb in recv_dirs}
        workers = []
        for index, (grids, logical) in enumerate(
            zip(self._worker_grids, self._logical_rounds)
        ):
            slot = index if self.workers_are_ranks else 0
            steps: list[Step] = []
            rounds: list[ExchangeRound] = []
            if self.blocking:
                self._emit_blocking(
                    logical, slot, send_by_dir, recv_by_dir, steps, rounds
                )
            else:
                self._emit_pipelined(
                    logical, slot, send_dirs, recv_dirs, steps, rounds
                )
            if self.uses_thread_team and steps:
                steps.append(JoinBarrier(worker=index))
            workers.append(
                WorkerPlan(
                    index=index,
                    slot=slot,
                    grid_ids=grids,
                    steps=tuple(steps),
                    rounds=tuple(rounds),
                )
            )
        return RankPlan(domain=domain, workers=tuple(workers))

    def _emit_blocking(
        self, logical, slot, send_by_dir, recv_by_dir, steps, rounds
    ) -> None:
        """Serialized exchange: per grid, per direction, send-recv-wait."""
        for seq, batch in logical:
            (g,) = batch
            sends: list[PostSend] = []
            recvs: list[PostRecv] = []
            for dim in range(3):
                for step in (+1, -1):
                    snd = send_by_dir.get((dim, step))
                    if snd is not None:
                        ps = PostSend(seq, dim, step, snd[0], batch, snd[1], slot)
                        sends.append(ps)
                        steps.append(ps)
                    rcv = recv_by_dir.get((dim, step))
                    if rcv is not None:
                        pr = PostRecv(seq, dim, step, rcv[0], batch, rcv[1], slot)
                        recvs.append(pr)
                        steps.append(pr)
                        # blocking semantics: complete this direction
                        # before touching the next one
                        steps.append(WaitAll(seq=seq, grid_ids=batch))
            rounds.append(ExchangeRound(seq, batch, tuple(sends), tuple(recvs)))
            steps.extend(self._compute_steps(g))

    def _emit_pipelined(
        self, logical, slot, send_dirs, recv_dirs, steps, rounds
    ) -> None:
        """Simultaneous non-blocking exchange, optionally double-buffered."""
        pending: Optional[tuple[int, tuple[int, ...]]] = None
        for seq, batch in logical:
            n = len(batch)
            sends = tuple(
                PostSend(seq, dim, step, peer, batch, nb * n, slot)
                for dim, step, peer, nb in send_dirs
            )
            recvs = tuple(
                PostRecv(seq, dim, step, peer, batch, nb * n, slot)
                for dim, step, peer, nb in recv_dirs
            )
            steps.extend(sends)
            steps.extend(recvs)
            rounds.append(ExchangeRound(seq, batch, sends, recvs))
            if self.double_buffered:
                if pending is not None:
                    self._emit_drain(pending, steps)
                pending = (seq, batch)
            else:
                self._emit_drain((seq, batch), steps)
        if pending is not None:
            self._emit_drain(pending, steps)

    def _emit_drain(
        self, exchange: tuple[int, tuple[int, ...]], steps: list[Step]
    ) -> None:
        seq, batch = exchange
        steps.append(WaitAll(seq=seq, grid_ids=batch))
        for g in batch:
            steps.extend(self._compute_steps(g))

    def _compute_steps(self, g: int) -> list[Step]:
        out: list[Step] = [ApplyLocalWraps(g), ComputeBoundary(g), ComputeInterior(g)]
        if self.sync_per_grid:
            out.append(GridBarrier(g))
        return out

    # -- inspection --------------------------------------------------------
    def describe(self, domain: int = 0) -> str:
        """Human-readable listing of one rank's compiled steps."""
        a = self.approach
        flags = []
        if self.blocking:
            flags.append("blocking serialized exchange")
        if self.double_buffered:
            flags.append("double-buffered")
        if self.sync_per_grid:
            flags.append("per-grid barrier")
        if self.uses_thread_team:
            flags.append("thread team")
        if self.workers_are_ranks:
            flags.append("workers are node-slot ranks")
        lines = [
            f"schedule {a.name}: {self.decomp.n_domains} domains x "
            f"{self.n_grids} grids, batch {self.batch_size}, "
            f"ramp-up {'on' if self.ramp_up else 'off'}, "
            f"halo width {self.halo_width}",
            f"  workers/rank {self.n_workers}"
            + (", " + ", ".join(flags) if flags else ""),
            f"  domain {domain}: {self.n_directions(domain)} remote "
            f"directions, {self.message_count(domain)} messages, "
            f"{self.grid_barriers_per_rank} grid barriers",
        ]
        for wp in self.rank_plan(domain).workers:
            lines.append(
                f"domain {domain} / worker {wp.index} "
                f"(slot {wp.slot}, grids {list(wp.grid_ids)}):"
            )
            if not wp.steps:
                lines.append("    (idle)")
            for i, st in enumerate(wp.steps):
                lines.append(f"  {i:3d}  {_format_step(st)}")
        return "\n".join(lines)


_DIR_SIGN = {+1: "+", -1: "-"}


def _format_step(st: Step) -> str:
    if isinstance(st, PostSend):
        return (
            f"PostSend  seq {st.seq:<3d} dim {st.dim}{_DIR_SIGN[st.step]} "
            f"-> domain {st.dst:<3d} grids {list(st.grid_ids)}  {st.nbytes} B"
        )
    if isinstance(st, PostRecv):
        return (
            f"PostRecv  seq {st.seq:<3d} dim {st.dim}{_DIR_SIGN[st.step]} "
            f"<- domain {st.src:<3d} grids {list(st.grid_ids)}  {st.nbytes} B"
        )
    if isinstance(st, WaitAll):
        return f"WaitAll   seq {st.seq:<3d} grids {list(st.grid_ids)}"
    if isinstance(st, ApplyLocalWraps):
        return f"ApplyLocalWraps   grid {st.grid_id}"
    if isinstance(st, ComputeBoundary):
        return f"ComputeBoundary   grid {st.grid_id}"
    if isinstance(st, ComputeInterior):
        return f"ComputeInterior   grid {st.grid_id}"
    if isinstance(st, GridBarrier):
        return f"GridBarrier       grid {st.grid_id}"
    if isinstance(st, JoinBarrier):
        return f"JoinBarrier       worker {st.worker}"
    if isinstance(st, RingSendRecv):
        return (
            f"RingSendRecv stage {st.seq:<2d} phase {st.phase} "
            f"-> group {st.dst_group} <- group {st.src_group}  {st.nbytes} B"
        )
    if isinstance(st, PartialGemm):
        return (
            f"PartialGemm  stage {st.seq:<2d} phase {st.phase} "
            f"bands of group {st.src_group}  "
            f"{st.m}x{st.k} @ {st.k}x{st.n}"
        )
    return repr(st)


# -- compilation and caching --------------------------------------------------
class PlanCache:
    """A thread-safe LRU of compiled plans with hit/miss accounting.

    The functional engine's rank threads compile concurrently; the lock
    keeps the bookkeeping consistent (a duplicate compile would be
    harmless but would skew the statistics the benchmarks report).
    """

    def __init__(self, maxsize: int = 256):
        check_positive_int(maxsize, "maxsize")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._plans: "OrderedDict[tuple, SchedulePlan]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: tuple) -> Optional[SchedulePlan]:
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.misses += 1
            else:
                self.hits += 1
                self._plans.move_to_end(key)
            return plan

    def put(self, key: tuple, plan: SchedulePlan) -> None:
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.maxsize:
                self._plans.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._plans.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        return len(self._plans)


_PLAN_CACHE = PlanCache()


def plan_cache_stats() -> dict[str, int]:
    """Hit/miss/size counters of the module-level plan cache."""
    return {
        "hits": _PLAN_CACHE.hits,
        "misses": _PLAN_CACHE.misses,
        "size": len(_PLAN_CACHE),
    }


def clear_plan_cache() -> None:
    """Drop all cached plans and reset the counters (tests, benchmarks)."""
    _PLAN_CACHE.clear()


def timing_plane_workers(approach: Approach, n_cores: int) -> Optional[int]:
    """Worker-count override the timing planes pass to the compiler.

    Hybrid multiple runs one comm+compute thread per core of the node;
    flat sub-groups runs one virtual-node rank per core.  Both are capped
    by the cores actually available — unlike the functional plane, which
    always emulates the full four-thread team (`Approach.compute_threads`)
    regardless of any simulated core count.  Returns ``None`` (compiler
    default) for the single-worker approaches.
    """
    if approach.serialized_exchange or approach.sync_per_grid:
        return None
    if approach.is_hybrid or not approach.decompose_per_rank:
        return min(4, n_cores)
    return None


def compile_schedule(
    approach: Approach,
    decomp: Decomposition,
    n_grids: int,
    batch_size: int = 1,
    ramp_up: bool = False,
    *,
    halo_width: int = DEFAULT_HALO_WIDTH,
    n_workers: Optional[int] = None,
    use_cache: bool = True,
) -> SchedulePlan:
    """Compile (or fetch from cache) the plan for one configuration.

    ``n_workers`` overrides the per-rank worker count for the pipelined
    approaches (hybrid threads, sub-group ranks); the default is
    ``approach.compute_threads``.  Serialized and master-only schedules
    always run a single worker per rank.
    """
    check_positive_int(n_grids, "n_grids")
    check_positive_int(halo_width, "halo_width")
    approach.validate_batch_size(batch_size)
    if approach.serialized_exchange or approach.sync_per_grid:
        resolved = 1
    elif n_workers is not None:
        resolved = check_positive_int(n_workers, "n_workers")
    else:
        resolved = approach.compute_threads
    key = (approach, decomp, n_grids, batch_size, ramp_up, halo_width, resolved)
    if use_cache:
        plan = _PLAN_CACHE.get(key)
        if plan is not None:
            return plan
    plan = SchedulePlan(
        approach, decomp, n_grids, batch_size, ramp_up, halo_width, resolved
    )
    if use_cache:
        _PLAN_CACHE.put(key, plan)
    return plan


# -- the band-parallel orthogonalization plan ---------------------------------
#: phase indices of the two ring passes every band plan contains
OVERLAP_PHASE = 0
ROTATE_PHASE = 1


class BandSchedulePlan:
    """The compiled ring-orthogonalization plan of one band layout.

    Two passes run back to back, each a full trip of band blocks around
    the group ring: the **overlap** pass builds this group's strips of
    the G x G overlap (or Hamiltonian) matrix, the **rotate** pass
    accumulates the rotated states.  Per stage the plan posts the ring
    exchange first (:class:`RingSendRecv`), runs the
    :class:`PartialGemm` on the block it already holds, then completes
    the receive (:class:`WaitAll`) — the exchange rides under the GEMM,
    which is the whole point of the ring formulation.

    ``nb = 1`` degenerates to one :class:`PartialGemm` per phase and no
    ring traffic at all.

    The step sequence depends only on the rank's *group*; ``gemm_points``
    (the per-worker GEMM inner dimension) and ``ring_points`` (the
    per-domain block points shipped per stage) size the steps without
    changing their order, so all three planes walk identical sequences.
    """

    def __init__(
        self,
        layout: BandGroups,
        gemm_points: int,
        ring_points: int,
        bytes_per_point: int = 8,
    ):
        self.layout = layout
        self.gemm_points = check_positive_int(gemm_points, "gemm_points")
        self.ring_points = check_positive_int(ring_points, "ring_points")
        self.bytes_per_point = check_positive_int(
            bytes_per_point, "bytes_per_point"
        )
        self._phase_steps: dict[tuple[int, int], tuple[Step, ...]] = {}
        self._lock = threading.Lock()

    @property
    def n_groups(self) -> int:
        return self.layout.n_groups

    @property
    def stage_nbytes(self) -> int:
        """Bytes one rank ships per ring stage (its held band block)."""
        return (
            self.layout.bands_per_group
            * self.ring_points
            * self.bytes_per_point
        )

    def phase_steps(self, group: int, phase: int) -> tuple[Step, ...]:
        """One phase's step list for any rank in ``group``.

        The functional executor runs the overlap phase per matrix build
        and the rotate phase per rotation, so it pulls them separately;
        the DES replay and the model walk :meth:`group_steps`.
        """
        with self._lock:
            steps = self._phase_steps.get((group, phase))
            if steps is None:
                steps = self._emit_phase(group, phase)
                self._phase_steps[(group, phase)] = steps
            return steps

    def group_steps(self, group: int) -> tuple[Step, ...]:
        """The full two-phase step list of any rank in ``group``."""
        return self.phase_steps(group, OVERLAP_PHASE) + self.phase_steps(
            group, ROTATE_PHASE
        )

    def rank_steps(self, rank: int) -> tuple[Step, ...]:
        """The step list of one global rank (same for all its domains)."""
        return self.group_steps(self.layout.group_of(rank))

    def _emit_phase(self, group: int, phase: int) -> tuple[Step, ...]:
        lay = self.layout
        nb = lay.n_groups
        m = lay.bands_per_group
        steps: list[Step] = []
        for stage in range(nb):
            if stage < nb - 1:
                steps.append(
                    RingSendRecv(
                        seq=stage + 1,
                        phase=phase,
                        dst_group=lay.ring_send_group(group),
                        src_group=lay.ring_recv_group(group),
                        nbytes=self.stage_nbytes,
                    )
                )
            steps.append(
                PartialGemm(
                    seq=stage,
                    phase=phase,
                    src_group=(group - stage) % nb,
                    m=m,
                    n=m,
                    k=self.gemm_points,
                )
            )
            if stage < nb - 1:
                steps.append(WaitAll(seq=stage + 1, grid_ids=()))
        return tuple(steps)

    def describe(self, group: int = 0) -> str:
        """Human-readable step dump of one group (CLI, debugging)."""
        lines = [
            f"band plan: {self.layout.describe()}, "
            f"gemm k={self.gemm_points}, "
            f"{self.stage_nbytes} B/ring stage",
        ]
        for i, st in enumerate(self.group_steps(group)):
            lines.append(f"  {i:3d}  {_format_step(st)}")
        return "\n".join(lines)


def compile_band_schedule(
    layout: BandGroups,
    gemm_points: int,
    ring_points: int,
    bytes_per_point: int = 8,
    *,
    use_cache: bool = True,
) -> BandSchedulePlan:
    """Compile (or fetch from cache) the ring-orthogonalization plan."""
    key = ("band", layout, gemm_points, ring_points, bytes_per_point)
    if use_cache:
        plan = _PLAN_CACHE.get(key)
        if plan is not None:
            return plan
    plan = BandSchedulePlan(layout, gemm_points, ring_points, bytes_per_point)
    if use_cache:
        _PLAN_CACHE.put(key, plan)
    return plan


# -- step dependency metadata -------------------------------------------------
@dataclass(frozen=True)
class StepDependency:
    """One cross-worker edge of a compiled plan's dependency DAG.

    ``src`` and ``dst`` are ``(owner, worker, step_index)`` triples —
    ``owner`` is a domain for FD plans and a band group for band plans.
    The consumer is always a :class:`WaitAll`; the producer is the
    :class:`PostSend` (or :class:`RingSendRecv`) whose message that wait
    completes.  Program order *within* a worker is implicit (the step
    list is the execution order), so only cross-worker edges are
    enumerated.
    """

    kind: str  # "message" | "ring"
    src: tuple[int, int, int]
    dst: tuple[int, int, int]


def recv_sources(plan) -> dict:
    """Producer-owner lookup for every receive direction of a plan.

    The geometry is seq-independent, so the map stays small:

    * :class:`SchedulePlan` — ``(domain, dim, direction) -> source
      domain`` for every remote receive direction of every domain.
    * :class:`BandSchedulePlan` — ``group -> source group`` (the ring
      predecessor every stage receives from).

    This is the metadata :mod:`repro.obs.critpath` uses to resolve a
    trace's cross-rank edges without re-deriving the halo geometry.
    """
    out: dict = {}
    if isinstance(plan, BandSchedulePlan):
        for group in range(plan.layout.n_groups):
            out[group] = plan.layout.ring_recv_group(group)
        return out
    for domain in range(plan.decomp.n_domains):
        for dim, step, src, _nbytes in plan._directions(domain)[1]:
            out[(domain, dim, step)] = src
    return out


def plan_dependencies(plan, owners=None) -> tuple[StepDependency, ...]:
    """Enumerate the cross-worker dependency edges of a compiled plan.

    Walks each owner's step list, tracking which receives every
    :class:`WaitAll` completes (the same pop-by-``seq`` semantics the
    planes execute), and resolves each completed receive to the peer's
    matching :class:`PostSend` by ``(seq, dim, direction)`` tag — or, for
    band plans, each ring-stage wait to the predecessor group's
    :class:`RingSendRecv`.  ``owners`` restricts the consumers walked
    (producers are indexed on demand); default is every domain/group.
    """
    deps: list[StepDependency] = []
    if isinstance(plan, BandSchedulePlan):
        nb = plan.layout.n_groups
        targets = range(nb) if owners is None else owners
        ring_idx: dict[tuple[int, int, int], int] = {}
        for g in range(nb):
            for i, st in enumerate(plan.group_steps(g)):
                if isinstance(st, RingSendRecv):
                    ring_idx[(g, st.phase, st.seq)] = i
        for g in targets:
            src = plan.layout.ring_recv_group(g)
            pending: list[tuple[int, int]] = []  # (phase, seq) posted
            for i, st in enumerate(plan.group_steps(g)):
                if isinstance(st, RingSendRecv):
                    pending.append((st.phase, st.seq))
                elif isinstance(st, WaitAll):
                    for phase, seq in [p for p in pending if p[1] == st.seq]:
                        pending.remove((phase, seq))
                        j = ring_idx.get((src, phase, seq))
                        if j is not None:
                            deps.append(StepDependency(
                                "ring", (src, 0, j), (g, 0, i)
                            ))
        return tuple(deps)

    targets = range(plan.decomp.n_domains) if owners is None else owners
    # producer index, built lazily per referenced source domain:
    # (src domain, dst domain, seq, dim, direction) -> (worker, step idx)
    send_idx: dict[tuple, tuple[int, int]] = {}
    indexed: set[int] = set()

    def index_domain(d: int) -> None:
        for w in plan.rank_plan(d).workers:
            for i, st in enumerate(w.steps):
                if isinstance(st, PostSend):
                    send_idx[(d, st.dst, st.seq, st.dim, st.step)] = (
                        w.index, i,
                    )
        indexed.add(d)

    for d in targets:
        for w in plan.rank_plan(d).workers:
            pending_rcv: dict[int, list[PostRecv]] = {}
            for i, st in enumerate(w.steps):
                if isinstance(st, PostRecv):
                    pending_rcv.setdefault(st.seq, []).append(st)
                elif isinstance(st, WaitAll):
                    for pr in pending_rcv.pop(st.seq, ()):
                        if pr.src not in indexed:
                            index_domain(pr.src)
                        hit = send_idx.get(
                            (pr.src, d, pr.seq, pr.dim, pr.step)
                        )
                        if hit is not None:
                            deps.append(StepDependency(
                                "message",
                                (pr.src, hit[0], hit[1]),
                                (d, w.index, i),
                            ))
    return tuple(deps)


# -- functional-plane tracing -------------------------------------------------
def tracer_hook(
    tracer, rank: int, worker_prefix: str = "rank"
) -> Callable[[Step, int, float, float], None]:
    """An ``on_step`` hook feeding a :class:`repro.des.trace.Tracer`.

    Pass the result to ``DistributedStencil.apply(..., on_step=...)`` and
    a *real* functional run records the same kind of Gantt trace the DES
    produces: one resource per worker (``rank3.w0``), one span per step,
    timestamps relative to the rank's first step.  Use one tracer per
    rank — ``Tracer`` is not thread-safe across rank threads.

    :func:`repro.obs.spans.engine_hook` is the structured successor: it
    keeps the typed step metadata (kind, seq, grid batch) instead of a
    flattened label, records raw (unshifted) timestamps, and one
    thread-safe :class:`repro.obs.spans.SpanTracer` serves every rank.
    """
    origin: list[float] = []

    def hook(step: Step, worker: int, start: float, end: float) -> None:
        if not origin:
            origin.append(start)
        label = type(step).__name__
        gid = getattr(step, "grid_id", None)
        if gid is not None:
            label += f" g{gid}"
        seq = getattr(step, "seq", None)
        if seq is not None:
            label += f" seq{seq}"
        tracer.record(
            f"{worker_prefix}{rank}.w{worker}",
            start - origin[0],
            end - origin[0],
            label,
        )

    return hook
