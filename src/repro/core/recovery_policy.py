"""Typed recovery policy: the degradation ladder's configuration.

The paper's target machine loses nodes often enough at 16 k cores that
failure handling cannot stay a caller-configured retry loop.  This
module holds the *policy* side of the closed loop
:class:`repro.dft.recovery.RecoveryController` drives:

* :class:`DegradationPolicy` — how far a run may degrade (restart
  budget, rank floor, ranks lost per fatal failure) and how checkpoint
  cadence adapts (Daly inputs and clamps).
* :class:`AdaptiveCadence` — the live checkpoint-interval decision:
  :func:`~repro.analysis.resilience.optimal_checkpoint_interval` seconds
  converted to whole iterations from the measured per-iteration wall
  time.  Thread-safe and memoized per iteration, so the SPMD rank
  threads all take the identical decision.
* :class:`DegradationStep` — one rung of the ladder actually taken,
  recorded for observability and tests.
* :class:`DegradationError` — the typed terminal failure: no surviving
  resource count admits any feasible layout; carries every
  :class:`~repro.core.planner.Rejection` the planner produced.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

from repro.util.validation import check_positive_int

__all__ = [
    "AdaptiveCadence",
    "DegradationError",
    "DegradationPolicy",
    "DegradationStep",
]


@dataclass(frozen=True)
class DegradationPolicy:
    """How a recovery-controlled run degrades and checkpoints.

    ``max_restarts`` bounds the total restart attempts (transient and
    fatal combined); ``min_ranks`` is the smallest layout the ladder may
    shrink to; ``ranks_lost_per_failure`` models the blast radius of one
    fatal failure (one rank for a core loss, four for a whole BG/P
    node).  ``expected_mtbf``/``checkpoint_seconds`` seed the cadence
    before any failures or deposits have been observed; measurements
    override them as they arrive.
    """

    max_restarts: int = 3
    min_ranks: int = 1
    ranks_lost_per_failure: int = 1
    retry_transient_in_place: bool = True
    adaptive_cadence: bool = True
    #: prior MTBF seconds used until a failure rate has been observed
    #: (``None``: keep the static ``checkpoint_every`` until then)
    expected_mtbf: Optional[float] = None
    #: prior per-snapshot cost seconds used until deposits are measured
    checkpoint_seconds: float = 0.05
    min_checkpoint_every: int = 1
    max_checkpoint_every: int = 1000

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError(
                f"max_restarts must be >= 0, got {self.max_restarts}"
            )
        check_positive_int(self.min_ranks, "min_ranks")
        check_positive_int(self.ranks_lost_per_failure, "ranks_lost_per_failure")
        if self.expected_mtbf is not None and not self.expected_mtbf > 0:
            raise ValueError(
                f"expected_mtbf must be > 0, got {self.expected_mtbf}"
            )
        if not self.checkpoint_seconds > 0:
            raise ValueError(
                f"checkpoint_seconds must be > 0, got {self.checkpoint_seconds}"
            )
        check_positive_int(self.min_checkpoint_every, "min_checkpoint_every")
        check_positive_int(self.max_checkpoint_every, "max_checkpoint_every")
        if self.min_checkpoint_every > self.max_checkpoint_every:
            raise ValueError(
                f"min_checkpoint_every ({self.min_checkpoint_every}) exceeds "
                f"max_checkpoint_every ({self.max_checkpoint_every})"
            )


@dataclass(frozen=True)
class DegradationStep:
    """One rung of the ladder: what failed and what the run became."""

    attempt: int
    failed_rank: Optional[int]
    error_type: str
    transient: bool
    from_ranks: int
    from_groups: int
    to_ranks: int
    to_groups: int
    batch_size: int
    resumed_iteration: int
    #: iterations between checkpoints in force for the next attempt
    checkpoint_every: int
    #: planner rejections collected while finding this rung
    rejections: tuple = ()

    @property
    def shrank(self) -> bool:
        return (self.to_ranks, self.to_groups) != (
            self.from_ranks, self.from_groups
        )

    def describe(self) -> str:
        move = (
            f"{self.from_ranks}r/{self.from_groups}g -> "
            f"{self.to_ranks}r/{self.to_groups}g"
            if self.shrank
            else f"retry in place ({self.from_ranks}r/{self.from_groups}g)"
        )
        return (
            f"attempt {self.attempt}: {self.error_type} on rank "
            f"{self.failed_rank} -> {move}, resume from iteration "
            f"{self.resumed_iteration}"
        )


class DegradationError(ValueError):
    """No surviving resource count admits any feasible layout.

    Raised by the controller once the ladder runs out of rungs:
    ``survivors`` is the largest rank count that was available and
    :attr:`rejections` the typed :class:`~repro.core.planner.Rejection`
    list explaining why every candidate below it was infeasible.
    """

    def __init__(self, survivors: int, rejections) -> None:
        self.survivors = survivors
        self.rejections = tuple(rejections)
        detail = "; ".join(
            f"{r.approach} nb={r.n_band_groups}: {r.reason}"
            for r in self.rejections
        ) or "no candidates were enumerable"
        super().__init__(
            f"no feasible degraded layout on <= {survivors} surviving "
            f"ranks: {detail}"
        )


class AdaptiveCadence:
    """Daly-optimal checkpoint cadence, recomputed from live inputs.

    ``optimal_checkpoint_interval(checkpoint_seconds, mtbf)`` gives the
    optimal seconds between snapshots; dividing by the measured
    per-iteration wall time converts it to whole SCF iterations, clamped
    to ``[min_every, max_every]``.  :meth:`due` is called by every rank
    thread with the identical (allreduced) iteration time — the decision
    is computed once per iteration under a lock and memoized, so the
    SPMD deposit stays collective even if float inputs were to differ.
    """

    def __init__(
        self,
        checkpoint_seconds: float,
        mtbf: float,
        min_every: int = 1,
        max_every: int = 1000,
    ) -> None:
        if not checkpoint_seconds > 0:
            raise ValueError(
                f"checkpoint_seconds must be > 0, got {checkpoint_seconds}"
            )
        if not mtbf > 0:
            raise ValueError(f"mtbf must be > 0, got {mtbf}")
        check_positive_int(min_every, "min_every")
        check_positive_int(max_every, "max_every")
        if min_every > max_every:
            raise ValueError(
                f"min_every ({min_every}) exceeds max_every ({max_every})"
            )
        self.checkpoint_seconds = float(checkpoint_seconds)
        self.mtbf = float(mtbf)
        self.min_every = min_every
        self.max_every = max_every
        self._lock = threading.Lock()
        self._decisions: dict[int, bool] = {}
        self._last_checkpoint = 0
        #: last interval (iterations) actually applied — telemetry hook
        self.last_interval: int = min_every

    def optimal_seconds(self) -> float:
        """Daly's optimal seconds between snapshots for current inputs."""
        from repro.analysis.resilience import optimal_checkpoint_interval

        return optimal_checkpoint_interval(self.checkpoint_seconds, self.mtbf)

    def interval_iterations(self, iteration_seconds: float) -> int:
        """The optimal interval as whole iterations, clamped."""
        if not iteration_seconds > 0:
            return self.max_every
        raw = self.optimal_seconds() / iteration_seconds
        return max(self.min_every, min(self.max_every, int(round(raw)) or 1))

    def due(self, iteration: int, iteration_seconds: float) -> bool:
        """Should the snapshot at ``iteration`` be taken?

        First caller computes (and records a taken checkpoint); the
        other rank threads of the same iteration read the memo.
        """
        with self._lock:
            if iteration in self._decisions:
                return self._decisions[iteration]
            every = self.interval_iterations(iteration_seconds)
            self.last_interval = every
            due = iteration - self._last_checkpoint >= every
            if due:
                self._last_checkpoint = iteration
            self._decisions[iteration] = due
            return due
