"""Whole-application extrapolation — the paper's "Further work" (§VIII-A).

The paper optimizes only the FD operation and closes with: "it is our
expectation that an overall performance gain as the one demonstrated in
this work may be obtained for the application overall."  This module
implements that extrapolation: a performance model of one full GPAW-style
SCF iteration, built from the same calibrated machine spec —

1. **Kohn-Sham FD step** — the paper's FD operation over all wave
   functions (delegates to :class:`~repro.core.perfmodel.PerformanceModel`).
2. **Subspace/overlap step** — the overlap matrix ``S = Psi^T Psi`` and the
   back-rotation: two GEMM-shaped kernels of ``2 G^2 p`` flops per core at
   near-peak rate, plus a ``G x G`` allreduce over the tree network.
   (This step is why every process must hold the same subset of every
   grid — section IV.)
3. **Density step** — ``sum_n f_n |psi_n|^2``: one streaming pass over all
   local wave-function blocks.
4. **Poisson step** — multigrid V-cycles on the density grid: stencil
   sweeps plus halo exchanges for a single grid (batching cannot help a
   single grid — exactly the regime the original code was written for).

Two scenarios per core count:

* ``amdahl`` — only the FD step uses the optimized hybrid schedule (what
  the paper actually built): the overall gain is diluted by the other
  phases;
* ``full`` — every phase adopts latency hiding and the hybrid
  decomposition (the "rewrite most of GPAW" scenario): communication of
  the overlap reduction and the Poisson halos overlaps with computation.

The model lets tests quantify the paper's closing conjecture.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.approaches import Approach, FLAT_ORIGINAL, HYBRID_MULTIPLE
from repro.core.perfmodel import FDJob, PerformanceModel
from repro.machine.spec import BGP_SPEC, MachineSpec
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class ScfPhaseTimes:
    """Seconds per phase of one SCF iteration (per node, wall-clock)."""

    fd: float
    subspace: float
    density: float
    poisson: float

    @property
    def total(self) -> float:
        return self.fd + self.subspace + self.density + self.poisson

    def fractions(self) -> dict[str, float]:
        t = self.total
        return {
            "fd": self.fd / t,
            "subspace": self.subspace / t,
            "density": self.density / t,
            "poisson": self.poisson / t,
        }


class WholeAppModel:
    """One full SCF iteration under a given programming approach."""

    #: fraction of peak flops a blocked GEMM reaches on the PPC450
    GEMM_EFFICIENCY = 0.8
    #: FD-operator applications per band per SCF iteration: GPAW's
    #: RMM-DIIS eigensolver applies H (and with it the stencil) to every
    #: band several times — residual, trial step, preconditioner sweeps
    FD_APPLICATIONS_PER_SCF = 8
    #: multigrid V-cycles per Poisson solve (typical for a warm start)
    POISSON_CYCLES = 8
    #: stencil sweeps per V-cycle across all levels (2 pre + 2 post on the
    #: fine level dominate; coarser levels add a geometric tail ~8/7)
    SWEEPS_PER_CYCLE = 5

    def __init__(self, spec: MachineSpec = BGP_SPEC):
        self.spec = spec
        self.fd_model = PerformanceModel(spec)

    # -- phases ---------------------------------------------------------------
    def _fd_time(self, job: FDJob, approach: Approach, n_cores: int) -> float:
        timing = (
            self.fd_model.best_batch_size(job, approach, n_cores)
            if approach.supports_batching
            else self.fd_model.evaluate(job, approach, n_cores)
        )
        return timing.total

    def _subspace_time(
        self, job: FDJob, n_cores: int, overlapped: bool
    ) -> float:
        """Overlap matrix + rotation (GEMMs) + tree allreduce of S."""
        g = job.n_grids
        p = job.grid.n_points / n_cores  # points per core
        flops = 2 * 2 * g * g * p  # S build + rotation
        rate = self.spec.node.core.peak_flops * self.GEMM_EFFICIENCY
        compute = flops / rate
        n_nodes = max(1, n_cores // 4)
        reduce_bytes = g * g * self.spec.bytes_per_point
        comm = self.spec.tree.collective_time(reduce_bytes, n_nodes)
        # Overlapped: the allreduce proceeds while the rotation computes.
        return max(compute, comm) if overlapped else compute + comm

    def _density_time(self, job: FDJob, n_cores: int) -> float:
        """One streaming pass over all local wave-function blocks."""
        points = job.total_points / n_cores
        return points * self.spec.stencil_point_time * 0.5  # 2 flops/point

    def _poisson_time(self, approach: Approach, job: FDJob, n_cores: int) -> float:
        """Multigrid cycles on the single density grid.

        A single grid cannot be batched or double-buffered across grids —
        each sweep pays its halo exchange in line, like the original code.
        Hybrid multiple's whole-grids-to-threads distribution degenerates
        for one grid (three cores idle), so a hybrid rewrite would compute
        the density grid master-only style (four cores split the grid);
        the model substitutes accordingly.
        """
        from repro.core.approaches import HYBRID_MASTER_ONLY

        if approach is HYBRID_MULTIPLE:
            approach = HYBRID_MASTER_ONLY
        single = FDJob(job.grid, 1)
        sweeps = self.POISSON_CYCLES * self.SWEEPS_PER_CYCLE
        per_sweep = self._fd_time(single, approach, n_cores)
        return sweeps * per_sweep

    # -- scenarios --------------------------------------------------------------
    def evaluate(
        self, job: FDJob, approach: Approach, n_cores: int, overlapped_subspace: bool
    ) -> ScfPhaseTimes:
        """Phase times of one SCF iteration under one approach."""
        check_positive_int(n_cores, "n_cores")
        return ScfPhaseTimes(
            fd=self.FD_APPLICATIONS_PER_SCF * self._fd_time(job, approach, n_cores),
            subspace=self._subspace_time(job, n_cores, overlapped_subspace),
            density=self._density_time(job, n_cores),
            poisson=self._poisson_time(approach, job, n_cores),
        )

    def evaluate_spec(
        self, spec, overlapped_subspace: bool = False
    ) -> ScfPhaseTimes:
        """Phase times of one iteration of a :class:`~repro.core.jobspec
        .JobSpec` configuration (band groups are not modelled here)."""
        return self.evaluate(
            spec.fd_job(),
            spec.approach_obj(),
            spec.layout.n_cores,
            overlapped_subspace,
        )

    def original(self, job: FDJob, n_cores: int) -> ScfPhaseTimes:
        """Everything as GPAW shipped it: flat original, no overlap."""
        return self.evaluate(job, FLAT_ORIGINAL, n_cores, overlapped_subspace=False)

    def amdahl(self, job: FDJob, n_cores: int) -> ScfPhaseTimes:
        """Only the FD step optimized (what the paper built)."""
        base = self.original(job, n_cores)
        fd = self.FD_APPLICATIONS_PER_SCF * self._fd_time(job, HYBRID_MULTIPLE, n_cores)
        return ScfPhaseTimes(
            fd=fd, subspace=base.subspace, density=base.density, poisson=base.poisson
        )

    def full(self, job: FDJob, n_cores: int) -> ScfPhaseTimes:
        """Every phase rewritten for hybrid + latency hiding (§VIII-A)."""
        return self.evaluate(job, HYBRID_MULTIPLE, n_cores, overlapped_subspace=True)

    def gains(self, job: FDJob, n_cores: int) -> dict[str, float]:
        """Speedups over the original whole application."""
        t0 = self.original(job, n_cores).total
        return {
            "fd_only": self.original(job, n_cores).fd
            / (self.FD_APPLICATIONS_PER_SCF * self._fd_time(job, HYBRID_MULTIPLE, n_cores)),
            "amdahl": t0 / self.amdahl(job, n_cores).total,
            "full": t0 / self.full(job, n_cores).total,
        }
