"""Band parallelization — beyond the paper's decomposition constraint.

The paper's scaling wall is section IV's requirement that *every* process
hold the same subset of *every* grid, forcing the domain decomposition to
spread across all ranks and shrink blocks to slivers at 16 k cores.  The
escape (which GPAW later implemented) is to split the ranks into ``nb``
*band groups*: each group holds ``G/nb`` of the wave functions on a
``P/nb``-core domain decomposition — blocks grow by ``nb^(1/3)`` per side,
FD communication drops, and only the orthogonalization has to talk across
band groups (a ring pass of band blocks through the torus).

This module models one SCF-relevant step under band parallelization,
reusing the calibrated FD model:

* **FD step** — ``G/nb`` grids on ``P/nb`` cores per group (groups run
  concurrently), hybrid-multiple schedule.
* **Subspace step** — the overlap/rotation GEMMs (same total flops per
  core as before) plus the ring exchange: ``nb - 1`` stages, each moving
  every rank's local band block to a ring neighbour while the partial
  GEMM computes (overlappable).

``nb = 1`` reduces exactly to the paper's hybrid-multiple setup, which
tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.approaches import HYBRID_MULTIPLE
from repro.core.perfmodel import FDJob, PerformanceModel
from repro.core.wholeapp import WholeAppModel
from repro.grid.decompose import Decomposition
from repro.machine.spec import BGP_SPEC, MachineSpec
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class BandParTiming:
    """One step under a given band-group count."""

    n_band_groups: int
    fd: float
    subspace_compute: float
    subspace_ring_comm: float

    @property
    def subspace(self) -> float:
        """Ring stages overlap compute; the slower of the two bounds."""
        return max(self.subspace_compute, self.subspace_ring_comm)

    @property
    def total(self) -> float:
        return self.fd * WholeAppModel.FD_APPLICATIONS_PER_SCF + self.subspace


class BandParallelModel:
    """Evaluate band-parallel configurations on the calibrated machine."""

    def __init__(self, spec: MachineSpec = BGP_SPEC):
        self.spec = spec
        self.fd_model = PerformanceModel(spec)

    def evaluate(self, job: FDJob, n_cores: int, n_band_groups: int) -> BandParTiming:
        """Timing of one FD+subspace step with ``n_band_groups`` groups."""
        check_positive_int(n_cores, "n_cores")
        nb = check_positive_int(n_band_groups, "n_band_groups")
        if job.n_grids % nb:
            raise ValueError(
                f"{nb} band groups cannot evenly hold {job.n_grids} grids"
            )
        if n_cores % (4 * nb):
            raise ValueError(
                f"{nb} band groups need n_cores divisible by {4 * nb}, "
                f"got {n_cores}"
            )
        group_cores = n_cores // nb
        group_job = FDJob(job.grid, job.n_grids // nb)
        fd = self.fd_model.best_batch_size(group_job, HYBRID_MULTIPLE, group_cores)

        # subspace GEMMs: total flops unchanged (S is still G x G over the
        # full band set; every core touches its share)
        g = job.n_grids
        p = job.grid.n_points / n_cores
        flops = 2 * 2 * g * g * p
        rate = self.spec.node.core.peak_flops * WholeAppModel.GEMM_EFFICIENCY
        compute = flops / rate

        # ring pass: nb-1 stages; per stage every node ships its local
        # band block (G/nb grids x node block points) to a ring neighbour
        decomp = Decomposition(job.grid, HYBRID_MULTIPLE.domains_for(group_cores))
        block_bytes = (
            decomp.max_block_points()
            * (job.n_grids // nb)
            * job.grid.bytes_per_point
        )
        per_stage = self.spec.torus.message_time(block_bytes, hops=1)
        ring = (nb - 1) * per_stage

        return BandParTiming(
            n_band_groups=nb,
            fd=fd.total,
            subspace_compute=compute,
            subspace_ring_comm=ring,
        )

    def sweep(self, job: FDJob, n_cores: int, max_groups: int = 8) -> list[BandParTiming]:
        """All feasible group counts up to ``max_groups`` (powers of two)."""
        out = []
        nb = 1
        while nb <= max_groups:
            if job.n_grids % nb == 0 and n_cores % (4 * nb) == 0:
                out.append(self.evaluate(job, n_cores, nb))
            nb *= 2
        return out
