"""Band parallelization — beyond the paper's decomposition constraint.

The paper's scaling wall is section IV's requirement that *every* process
hold the same subset of *every* grid, forcing the domain decomposition to
spread across all ranks and shrink blocks to slivers at 16 k cores.  The
escape (which GPAW later implemented) is to split the ranks into ``nb``
*band groups*: each group holds ``G/nb`` of the wave functions on a
``P/nb``-core domain decomposition — blocks grow by ``nb^(1/3)`` per side,
FD communication drops, and only the orthogonalization has to talk across
band groups (a ring pass of band blocks through the torus).

This module is the analytic plane of that escape.  It no longer costs a
closed-form expression: it compiles the same
:class:`repro.core.schedule.BandSchedulePlan` the functional engine and
the DES replay execute, walks its :class:`PartialGemm` /
:class:`RingSendRecv` steps, and prices them on the calibrated machine.
The cross-plane test pins this walk against
:func:`repro.core.simrun.simulate_band_plan` to <= 5%.

* **FD step** — ``G/nb`` grids on ``P/nb`` cores per group (groups run
  concurrently), hybrid-multiple schedule.
* **Subspace step** — the plan's two ring passes (overlap matrix +
  rotation): per stage a blocked GEMM on the held band block while the
  ring exchange ships blocks to the next group (overlappable).

``nb = 1`` reduces exactly to the paper's hybrid-multiple setup, which
tests assert — including plan identity: ``fd_plan(..., 1)`` *is* the
hybrid-multiple compiled plan.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.approaches import HYBRID_MULTIPLE
from repro.core.perfmodel import FDJob, PerformanceModel
from repro.core.schedule import (
    BandSchedulePlan,
    PartialGemm,
    RingSendRecv,
    SchedulePlan,
    compile_band_schedule,
    compile_schedule,
    timing_plane_workers,
)
from repro.core.wholeapp import WholeAppModel
from repro.grid.bandgroups import BandGroups
from repro.grid.decompose import Decomposition
from repro.machine.spec import BGP_SPEC, MachineSpec
from repro.util.validation import check_divisible, check_positive_int


@dataclass(frozen=True)
class BandParTiming:
    """One step under a given band-group count."""

    n_band_groups: int
    fd: float
    subspace_compute: float
    subspace_ring_comm: float

    @property
    def subspace(self) -> float:
        """Ring stages overlap compute; the slower of the two bounds."""
        return max(self.subspace_compute, self.subspace_ring_comm)

    @property
    def total(self) -> float:
        return self.fd * WholeAppModel.FD_APPLICATIONS_PER_SCF + self.subspace


class BandParallelModel:
    """Evaluate band-parallel configurations on the calibrated machine."""

    def __init__(self, spec: MachineSpec = BGP_SPEC):
        self.spec = spec
        self.fd_model = PerformanceModel(spec)

    # -- layout / plan construction (shared with the other planes) ---------
    def _validate(self, job: FDJob, n_cores: int, n_band_groups: int) -> int:
        check_positive_int(n_cores, "n_cores")
        nb = check_positive_int(n_band_groups, "n_band_groups")
        check_divisible(job.n_grids, nb, "job.n_grids", "band groups")
        check_divisible(
            n_cores, 4 * nb, "n_cores", f"4 cores/node x {nb} band groups"
        )
        return nb

    def layout(self, job: FDJob, n_cores: int, n_band_groups: int) -> BandGroups:
        """The 2D grid x band layout of one configuration."""
        nb = self._validate(job, n_cores, n_band_groups)
        return BandGroups(n_ranks=n_cores, n_bands=job.n_grids, n_groups=nb)

    def fd_plan(
        self, job: FDJob, n_cores: int, n_band_groups: int
    ) -> SchedulePlan:
        """The compiled FD plan one band group runs (hybrid multiple).

        With one band group this is *literally* today's hybrid-multiple
        plan — same cache key, same object — which the plan-identity test
        asserts.
        """
        nb = self._validate(job, n_cores, n_band_groups)
        group_cores = n_cores // nb
        group_job = FDJob(job.grid, job.n_grids // nb)
        timing = self.fd_model.best_batch_size(
            group_job, HYBRID_MULTIPLE, group_cores
        )
        decomp = Decomposition(
            job.grid, HYBRID_MULTIPLE.domains_for(group_cores)
        )
        return compile_schedule(
            HYBRID_MULTIPLE,
            decomp,
            group_job.n_grids,
            timing.batch_size,
            n_workers=timing_plane_workers(HYBRID_MULTIPLE, group_cores),
        )

    def band_plan(
        self, job: FDJob, n_cores: int, n_band_groups: int
    ) -> BandSchedulePlan:
        """The compiled ring-orthogonalization plan (all planes run it)."""
        nb = self._validate(job, n_cores, n_band_groups)
        layout = BandGroups(n_ranks=n_cores, n_bands=job.n_grids, n_groups=nb)
        # GEMM inner dimension per core: each core's share of the grid
        # points, times nb because the 2D layout gives every core nb x
        # more points of each wave function it holds
        gemm_points = max(1, round(job.grid.n_points * nb / n_cores))
        # ring payload: one domain's block of the group's band set
        group_cores = n_cores // nb
        decomp = Decomposition(
            job.grid, HYBRID_MULTIPLE.domains_for(group_cores)
        )
        return compile_band_schedule(
            layout,
            gemm_points,
            decomp.max_block_points(),
            job.grid.bytes_per_point,
        )

    # -- evaluation ---------------------------------------------------------
    def subspace_times(self, plan: BandSchedulePlan) -> tuple[float, float]:
        """``(compute, ring)`` seconds of one group's compiled step list.

        Every :class:`PartialGemm` is priced at the node's GEMM rate,
        every :class:`RingSendRecv` at the torus link (one hop to the
        neighbouring group's partition).  Shared with the
        :class:`~repro.core.planner.Planner`, which walks the same plans.
        """
        rate = self.spec.node.core.peak_flops * WholeAppModel.GEMM_EFFICIENCY
        compute = 0.0
        ring = 0.0
        for st in plan.group_steps(0):
            if isinstance(st, PartialGemm):
                compute += st.flops / rate
            elif isinstance(st, RingSendRecv):
                ring += self.spec.torus.message_time(st.nbytes, hops=1)
        return compute, ring

    def evaluate(
        self,
        job: FDJob,
        n_cores: int,
        n_band_groups: int,
        batch_size: int | None = None,
    ) -> BandParTiming:
        """Timing of one FD+subspace step with ``n_band_groups`` groups.

        ``batch_size=None`` (the default) searches for the best batch per
        group, matching the paper's per-configuration tuning; an explicit
        batch prices exactly that configuration (the planner's use).
        """
        nb = self._validate(job, n_cores, n_band_groups)
        group_cores = n_cores // nb
        group_job = FDJob(job.grid, job.n_grids // nb)
        if batch_size is None:
            fd = self.fd_model.best_batch_size(
                group_job, HYBRID_MULTIPLE, group_cores
            )
        else:
            fd = self.fd_model.evaluate(
                group_job, HYBRID_MULTIPLE, group_cores, batch_size
            )

        plan = self.band_plan(job, n_cores, n_band_groups)
        compute, ring = self.subspace_times(plan)

        return BandParTiming(
            n_band_groups=nb,
            fd=fd.total,
            subspace_compute=compute,
            subspace_ring_comm=ring,
        )

    def evaluate_spec(self, spec) -> BandParTiming:
        """Evaluate a :class:`~repro.core.jobspec.JobSpec` configuration.

        The FD step of every band group runs the hybrid-multiple schedule
        (the layout this extension assumes), so the spec's approach must
        be ``hybrid-multiple`` when ``n_band_groups > 1``.
        """
        if spec.layout.n_band_groups > 1 and spec.layout.approach != "hybrid-multiple":
            raise ValueError(
                "band-parallel layouts run the hybrid-multiple schedule; "
                f"got approach {spec.layout.approach!r}"
            )
        return self.evaluate(
            spec.fd_job(),
            spec.layout.n_cores,
            spec.layout.n_band_groups,
            batch_size=spec.layout.batch_size,
        )

    def sweep(self, job: FDJob, n_cores: int, max_groups: int = 8) -> list[BandParTiming]:
        """All feasible group counts up to ``max_groups`` (powers of two)."""
        out = []
        nb = 1
        while nb <= max_groups:
            if job.n_grids % nb == 0 and n_cores % (4 * nb) == 0:
                out.append(self.evaluate(job, n_cores, nb))
            nb *= 2
        return out
