"""Memory accounting for FD jobs.

Section VII: "because of the memory demand, it is not possible to have
more than 32 grids running on a single CPU-core" — the constraint that
fixes Fig 5's job size.  This module models the per-rank footprint:

* the input blocks, halo-padded (the stencil reads ghosts), and
* the output blocks (input and output are always separate grids,
  section IV),

for every grid the rank holds, against the memory each rank sees: 2 GB in
SMP mode, half per rank in DUAL, a quarter (512 MB) in virtual-node mode
(section III).
"""

from __future__ import annotations

import math

from repro.core.approaches import Approach
from repro.core.perfmodel import FDJob
from repro.grid.decompose import Decomposition
from repro.machine.partition import NodeMode
from repro.machine.spec import BGP_SPEC, MachineSpec

HALO_WIDTH = 2


def memory_limit_per_rank(
    approach: Approach, n_cores: int, spec: MachineSpec = BGP_SPEC
) -> int:
    """Bytes of main memory visible to one rank under the node mode."""
    if n_cores < 1:
        raise ValueError(f"n_cores must be >= 1, got {n_cores}")
    if approach.is_hybrid or n_cores < 4:
        # SMP (or a partial node, which also runs one rank per node)
        return spec.node.memory_bytes
    return spec.node.memory_bytes // NodeMode.VN.ranks_per_node


def fd_memory_per_rank(
    job: FDJob, approach: Approach, n_cores: int, spec: MachineSpec = BGP_SPEC
) -> int:
    """Bytes one rank needs to hold its blocks of every grid (in + out)."""
    decomp = Decomposition(job.grid, approach.domains_for(n_cores))
    block = decomp.block_shape(0)
    bpp = job.grid.bytes_per_point
    padded_in = math.prod(b + 2 * HALO_WIDTH for b in block) * bpp
    plain_out = math.prod(block) * bpp
    return job.n_grids * (padded_in + plain_out)


def fits_in_memory(
    job: FDJob, approach: Approach, n_cores: int, spec: MachineSpec = BGP_SPEC
) -> bool:
    """Does the job's working set fit each rank's memory?"""
    return fd_memory_per_rank(job, approach, n_cores, spec) <= memory_limit_per_rank(
        approach, n_cores, spec
    )


def max_grids_per_core(
    grid, approach: Approach, n_cores: int = 1,
    spec: MachineSpec = BGP_SPEC, power_of_two: bool = True,
) -> int:
    """Largest grid count per rank that fits (optionally a power of two).

    With the paper's 144^3 grids on a single core this returns 32 — the
    constraint that sizes the Fig 5 job.
    """
    limit = memory_limit_per_rank(approach, n_cores, spec)
    one = fd_memory_per_rank(FDJob(grid, 1), approach, n_cores, spec)
    raw = int(limit // one)
    if raw < 1:
        return 0
    if not power_of_two:
        return raw
    return 1 << (raw.bit_length() - 1)
