"""Compiled, table-driven replay of schedule plans: the paper-scale engine.

:mod:`repro.core.simrun` replays a compiled
:class:`~repro.core.schedule.SchedulePlan` with one Python generator
process per rank interpreting step objects — exact, but every simulated
rank pays generator frames, :class:`~repro.des.core.Event` allocation and
``isinstance`` dispatch per step, and every rank *materializes its own
step list* even though almost all interior ranks share one plan shape.
That caps the exact plane at a few hundred ranks.

This module is a drop-in second engine for the same replay:

* **Plan deduplication** — ranks are grouped by their *direction
  signature* (``(dim, step, nbytes)`` of each remote send/recv — exactly
  the inputs :meth:`SchedulePlan._build_rank_plan` derives a step list
  from, besides peer ids).  One representative rank plan is materialized
  and compiled per signature; on a regular domain grid that is a handful
  of programs for thousands of ranks.
* **Micro-op programs** — each worker's step list is lowered once into a
  flat tuple of ``(op, duration, peer, tag)`` rows.  All per-step
  branching (blocking vs pipelined, lookahead call-CPU charging, thread
  mode, fault instrumentation, step tracing) happens at compile time;
  replay is a tight opcode loop.
* **Callback chains instead of processes** — blocking ops schedule bound
  methods on the simulator's callback fast path
  (:meth:`~repro.des.core.Simulator.call_at` /
  :meth:`~repro.des.core.Simulator.call_soon`); no Event, Process,
  Timeout or Resource objects exist at replay time.

Bit-exactness contract
----------------------

The compiled engine is **hop-parity exact**: for every heap entry the
reference engine schedules, this engine schedules exactly one entry at
the same simulated time, in the same scheduling order.  Because the DES
orders simultaneous entries by scheduling sequence, the whole replay —
event count, message order under link/lock contention, FIFO handoffs,
every timestamp, the activity trace and the step trace — reproduces the
reference engine bit for bit.  ``tests/test_engine_equivalence.py``
asserts exactly that, including under a seeded
:class:`~repro.transport.faults.FaultPlan`; the reference engine stays
canonical and this engine must match it, never the other way around.

The per-primitive hop ledger (reference ⟷ compiled):

===========================  ==============================================
reference primitive          heap entries (both engines)
===========================  ==============================================
process spawn                1 (``call_soon`` resume)
``timeout(d)``               2 (``call_at`` fire, ``call_soon`` resume)
free ``Resource.acquire``    1 (resume); busy: 0 now, 1 at FIFO handoff
``Resource.release``         0, or 1 when a waiter takes the slot
``ctx.compute(s)``           3 (acquire resume, fire, resume)
MPI call overhead (SINGLE)   2 (a zero-delay timeout)
MPI call overhead (MULT.)    lock acquire + 2 + release handoff
``isend``                    overhead + 1 (transfer-process spawn)
torus transfer               per-link acquires + 2 + releases + delivery
``waitall``                  1 per completed request + 1 resume
===========================  ==============================================
"""

from __future__ import annotations

import math
from collections import deque
from typing import Optional

from repro.core.schedule import (
    ComputeInterior,
    GridBarrier,
    PostRecv,
    PostSend,
    WaitAll,
    WorkerPlan,
    message_tag,
)
from repro.core.simrun import _GHOST_TAG_OFFSET, SimResult, _FDSimulation

__all__ = ["simulate_fd_compiled"]

# -- micro-op opcodes ---------------------------------------------------------
#: occupy the worker's core for ``secs`` (operands: secs)
OP_COMPUTE = 0
#: MPI call overhead + spawn one transfer (operands: dir_idx, nbytes, tag)
OP_SEND = 1
#: MPI call overhead + post/match one receive (operands: dir_idx, tag, seq)
OP_RECV = 2
#: complete every receive of one exchange (operands: seq)
OP_WAITALL = 3
#: pure delay, e.g. the per-grid thread barrier (operands: secs)
OP_TIMEOUT = 4
#: master-only quarter-block team compute (operands: threads, secs)
OP_QUARTER = 5
#: capture the step start time (step tracing only)
OP_T0 = 6
#: record one replayed step (operands: step, worker_index)
OP_STEP = 7
#: advance the fault plan's kill clock (fault replay only)
OP_FAULT_CLOCK = 8
#: a PostSend under the fault plan (operands: dir_idx, nbytes, tag)
OP_FAULT_SEND = 9


class _CbLock:
    """Capacity-1 FIFO lock on the callback fast path.

    Hop-parity twin of a free/contended :class:`~repro.des.Resource`:
    a free acquire schedules the continuation (1 entry, like the
    triggered acquire event's callback), a contended one queues silently,
    and a release hands the slot to the oldest waiter (1 entry) or frees
    the lock (0 entries).
    """

    __slots__ = ("sim", "busy", "queue")

    def __init__(self, sim) -> None:
        self.sim = sim
        self.busy = False
        self.queue: deque = deque()

    def acquire(self, fn, *args) -> None:
        if self.busy:
            self.queue.append((fn, args))
        else:
            self.busy = True
            self.sim.call_soon(fn, *args)

    def release(self) -> None:
        if self.queue:
            fn, args = self.queue.popleft()
            self.sim.call_soon(fn, *args)
        else:
            self.busy = False


class _Path:
    """One (src node, dst node) torus path, shared by every message on it."""

    __slots__ = ("same", "src_node", "links", "names", "label", "hops", "durs")

    def __init__(self, same, src_node, links, names, label, hops) -> None:
        self.same = same
        self.src_node = src_node
        self.links = links
        self.names = names
        self.label = label
        self.hops = hops
        #: nbytes -> message duration (varies per round under ramp-up)
        self.durs: dict = {}


class _Recv:
    """One posted receive: completion flag + the waitall group waiting on it."""

    __slots__ = ("done", "group")

    def __init__(self) -> None:
        self.done = False
        self.group = None


class _WaitGroup:
    """AllOf twin: counts deliveries, resumes the worker on the last one."""

    __slots__ = ("sim", "worker", "remaining")

    def __init__(self, sim, worker, remaining) -> None:
        self.sim = sim
        self.worker = worker
        self.remaining = remaining

    def _on_child(self) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            self.sim.call_soon(self.worker._advance)


class _Transfer:
    """One in-flight message: the transfer process, as a callback chain."""

    __slots__ = ("eng", "path", "src_rank", "dst_rank", "nbytes", "tag",
                 "start", "_i")

    def __init__(self, eng, path, src_rank, dst_rank, nbytes, tag) -> None:
        self.eng = eng
        self.path = path
        self.src_rank = src_rank
        self.dst_rank = dst_rank
        self.nbytes = nbytes
        self.tag = tag
        self.start = 0.0
        self._i = 0

    def _start(self) -> None:
        # the spawned process's first hop: lazily touch the source node
        # (it joins the utilization denominator), then claim the route
        eng = self.eng
        p = self.path
        src = p.src_node
        if src not in eng.nodes:
            eng.nodes[src] = [0.0] * eng.n_node_cores
        if p.same:
            # intra-node memcpy: overhead only, no links, no byte counters
            sim = eng.sim
            sim.call_at(sim.now + eng.msg_overhead, self._self_fire)
        else:
            self._i = 0
            p.links[0].acquire(self._got)

    def _got(self) -> None:
        p = self.path
        i = self._i + 1
        self._i = i
        links = p.links
        if i < len(links):
            links[i].acquire(self._got)
        else:
            sim = self.eng.sim
            self.start = sim.now
            dur = p.durs.get(self.nbytes)
            if dur is None:
                dur = self.eng.torus_spec.message_time(self.nbytes, hops=p.hops)
                p.durs[self.nbytes] = dur
            sim.call_at(sim.now + dur, self._fired)

    def _fired(self) -> None:
        self.eng.sim.call_soon(self._done)

    def _self_fire(self) -> None:
        self.eng.sim.call_soon(self._self_done)

    def _self_done(self) -> None:
        eng = self.eng
        eng.messages_sent += 1
        eng._deliver(self.dst_rank, self.src_rank, self.tag)

    def _done(self) -> None:
        eng = self.eng
        p = self.path
        tb = eng.torus_bytes
        src = p.src_node
        tb[src] = tb.get(src, 0) + int(self.nbytes)
        for lk in p.links:
            lk.release()
        buf = eng.trace_buf
        if buf is not None:
            start = self.start
            now = eng.sim.now
            label = p.label
            for name in p.names:
                buf.append((start, now, name, label))
        eng.messages_sent += 1
        eng._deliver(self.dst_rank, self.src_rank, self.tag)


class _Worker:
    """One replaying worker: a program counter over a shared micro-op table.

    The worker *is* its own resume callback: blocking opcodes store the
    advanced ``pc`` and schedule a bound-method chain whose last link
    calls :meth:`_advance` again.
    """

    __slots__ = ("eng", "sim", "prog", "pc", "rank", "node", "core", "busy",
                 "sends", "rsrcs", "mpilock", "pending", "on_done", "t0",
                 "res", "q_left", "cres", "my_posted", "my_unexp")

    def __init__(self, eng, prog, rank, core, on_done, sends, rsrcs, res):
        self.eng = eng
        self.sim = eng.sim
        self.prog = prog
        self.pc = 0
        self.rank = rank
        self.node = eng.rank_node[rank]
        self.core = core
        self.busy = None  # this node's per-core busy array, touched lazily
        self.sends = sends
        self.rsrcs = rsrcs
        self.mpilock = eng._mpilock(rank) if eng.pays_lock else None
        self.pending: dict = {}
        self.on_done = on_done
        self.t0 = 0.0
        self.res = res
        self.q_left = 0
        self.cres = (
            f"node{self.node}.core{core}" if eng.trace_buf is not None else None
        )
        # this rank's match queues, pre-bound (shared with the engine dicts)
        self.my_posted = eng.posted.setdefault(rank, [])
        self.my_unexp = eng.unexpected.setdefault(rank, [])

    # -- the dispatch loop -------------------------------------------------
    def _advance(self) -> None:
        prog = self.prog
        n = len(prog)
        pc = self.pc
        eng = self.eng
        sim = self.sim
        while pc < n:
            op = prog[pc]
            code = op[0]
            pc += 1
            if code == OP_COMPUTE:
                self.pc = pc
                if self.busy is None:
                    self.busy = eng._node(self.node)
                sim.call_soon(self._c1, op[1])
                return
            if code == OP_SEND:
                self.pc = pc
                # inlined _overhead: shave two frames off the hottest path
                if self.mpilock is None:
                    sim.call_soon(self._send_f, op[1], op[2], op[3])
                else:
                    self.mpilock.acquire(
                        self._lk_got, self._send_go, (op[1], op[2], op[3])
                    )
                return
            if code == OP_RECV:
                self.pc = pc
                if self.mpilock is None:
                    sim.call_soon(self._recv_f, op[1], op[2], op[3])
                else:
                    self.mpilock.acquire(
                        self._lk_got, self._recv_go, (op[1], op[2], op[3])
                    )
                return
            if code == OP_WAITALL:
                recs = self.pending.pop(op[1], None)
                if recs:
                    self.pc = pc
                    g = _WaitGroup(sim, self, len(recs))
                    on_child = g._on_child
                    for rec in recs:
                        if rec.done:
                            sim.call_soon(on_child)
                        else:
                            rec.group = g
                    return
                continue
            if code == OP_T0:
                self.t0 = sim.now
                continue
            if code == OP_STEP:
                eng.step_buf.append(
                    (self.res[op[2]], op[1], op[2], self.t0, sim.now)
                )
                continue
            if code == OP_TIMEOUT:
                self.pc = pc
                self._sleep(op[1], self._advance)
                return
            if code == OP_QUARTER:
                self.pc = pc
                threads = op[1]
                secs = op[2]
                self.q_left = threads
                for t in range(threads):
                    sim.call_soon(self._q_spawn, t, secs)
                return
            if code == OP_FAULT_CLOCK:
                fp = eng.fault_plan
                if fp.should_kill(self.rank, fp.next_op(self.rank)):
                    self.pc = pc
                    self._sleep(fp.restart_time, self._advance)
                    return
                continue
            # OP_FAULT_SEND
            self.pc = pc
            fp = eng.fault_plan
            if fp.should_kill(self.rank, fp.next_op(self.rank)):
                self._sleep(fp.restart_time, self._fs_kind, op[1], op[2], op[3])
            else:
                self._fs_kind(op[1], op[2], op[3])
            return
        self.pc = pc
        if self.on_done is not None:
            self.on_done()

    # -- generic chains ----------------------------------------------------
    def _fire_then(self, cont, *args) -> None:
        self.sim.call_soon(cont, *args)

    def _sleep(self, delay, cont, *args) -> None:
        """``timeout(delay)`` twin: 2 hops, then ``cont(*args)``."""
        sim = self.sim
        sim.call_at(sim.now + delay, self._fire_then, cont, *args)

    def _overhead(self, cont, *args) -> None:
        """The per-call cost of entering the MPI library."""
        if self.mpilock is None:
            # SINGLE: a zero-delay timeout (2 hops)
            self._sleep(0.0, cont, *args)
        else:
            # MULTIPLE: serialize on the rank's lock for the call overhead
            self.mpilock.acquire(self._lk_got, cont, args)

    def _lk_got(self, cont, args) -> None:
        sim = self.sim
        sim.call_at(sim.now + self.eng.ovh, self._lk_fire, cont, args)

    def _lk_fire(self, cont, args) -> None:
        self.sim.call_soon(self._lk_done, cont, args)

    def _lk_done(self, cont, args) -> None:
        self.mpilock.release()
        cont(*args)

    # -- compute -----------------------------------------------------------
    def _c1(self, secs) -> None:
        sim = self.sim
        sim.call_at(sim.now + secs, self._c2, secs, sim.now)

    def _c2(self, secs, start) -> None:
        self.sim.call_soon(self._c3, secs, start)

    def _c3(self, secs, start) -> None:
        self.busy[self.core] += secs
        buf = self.eng.trace_buf
        if buf is not None:
            buf.append((start, self.sim.now, self.cres, "compute"))
        self._advance()

    # -- point-to-point ----------------------------------------------------
    def _send_f(self, d, nbytes, tag) -> None:
        # the zero-delay overhead timeout's fire hop
        self.sim.call_soon(self._send_go, d, nbytes, tag)

    def _recv_f(self, d, tag, seq) -> None:
        self.sim.call_soon(self._recv_go, d, tag, seq)

    def _send_go(self, d, nbytes, tag) -> None:
        dst_rank, path = self.sends[d]
        tr = _Transfer(self.eng, path, self.rank, dst_rank, nbytes, tag)
        self.sim.call_soon(tr._start)
        self._advance()

    def _spawn_transfer(self, d, nbytes, tag) -> None:
        dst_rank, path = self.sends[d]
        tr = _Transfer(self.eng, path, self.rank, dst_rank, nbytes, tag)
        self.sim.call_soon(tr._start)

    def _recv_go(self, d, tag, seq) -> None:
        src = self.rsrcs[d]
        rec = _Recv()
        queue = self.my_unexp
        matched = False
        if queue:
            for i, ent in enumerate(queue):
                if ent[0] == src and ent[1] == tag:
                    del queue[i]
                    rec.done = True
                    matched = True
                    break
        if not matched:
            self.my_posted.append((src, tag, rec))
        pend = self.pending
        lst = pend.get(seq)
        if lst is None:
            pend[seq] = [rec]
        else:
            lst.append(rec)
        self._advance()

    # -- master-only quarter compute ---------------------------------------
    def _q_spawn(self, t, secs) -> None:
        if self.busy is None:
            self.busy = self.eng._node(self.node)
        self.sim.call_soon(self._q_c1, t, secs)

    def _q_c1(self, t, secs) -> None:
        sim = self.sim
        sim.call_at(sim.now + secs, self._q_c2, t, secs, sim.now)

    def _q_c2(self, t, secs, start) -> None:
        self.sim.call_soon(self._q_c3, t, secs, start)

    def _q_c3(self, t, secs, start) -> None:
        self.busy[t] += secs
        buf = self.eng.trace_buf
        if buf is not None:
            buf.append(
                (start, self.sim.now, f"node{self.node}.core{t}", "compute")
            )
        self.sim.call_soon(self._q_child)

    def _q_child(self) -> None:
        self.q_left -= 1
        if self.q_left == 0:
            self.sim.call_soon(self._advance)

    # -- fault replay ------------------------------------------------------
    def _fs_kind(self, d, nbytes, tag) -> None:
        fp = self.eng.fault_plan
        kind = fp.take_fault(self.rank, fp.next_send(self.rank), "isend")
        if kind == "delay":
            self._sleep(fp.delay, self._fs_real, d, nbytes, tag)
        elif kind == "drop":
            self._sleep(fp.retransmit_timeout, self._fs_real, d, nbytes, tag)
        elif kind == "corrupt":
            self._overhead(self._fs_ghost_then_wait, d, nbytes, tag)
        elif kind == "duplicate":
            self._overhead(self._fs_ghost_then_real, d, nbytes, tag)
        else:
            self._fs_real(d, nbytes, tag)

    def _fs_ghost_then_wait(self, d, nbytes, tag) -> None:
        self._spawn_transfer(d, nbytes, tag + _GHOST_TAG_OFFSET)
        self._sleep(
            self.eng.fault_plan.retransmit_timeout, self._fs_real, d, nbytes, tag
        )

    def _fs_ghost_then_real(self, d, nbytes, tag) -> None:
        self._spawn_transfer(d, nbytes, tag + _GHOST_TAG_OFFSET)
        self._fs_real(d, nbytes, tag)

    def _fs_real(self, d, nbytes, tag) -> None:
        self._overhead(self._send_go, d, nbytes, tag)


class _TeamRunner:
    """Hybrid node program: thread-team spawn, worker fan-out, join."""

    __slots__ = ("sim", "workers", "left", "spawn_time", "join_time")

    def __init__(self, sim, spawn_time, join_time) -> None:
        self.sim = sim
        self.workers: list = []
        self.left = 0
        self.spawn_time = spawn_time
        self.join_time = join_time

    def _start(self) -> None:
        sim = self.sim
        sim.call_at(sim.now + self.spawn_time, self._s_fire)

    def _s_fire(self) -> None:
        self.sim.call_soon(self._go)

    def _go(self) -> None:
        ws = self.workers
        if ws:
            self.left = len(ws)
            sim = self.sim
            for w in ws:
                sim.call_soon(w._advance)
        else:
            self._joined()

    def _worker_done(self) -> None:
        # worker process end: its completion event wakes the team AllOf
        self.sim.call_soon(self._team_child)

    def _team_child(self) -> None:
        self.left -= 1
        if self.left == 0:
            self.sim.call_soon(self._joined)

    def _joined(self) -> None:
        sim = self.sim
        sim.call_at(sim.now + self.join_time, self._j_fire)

    def _j_fire(self) -> None:
        self.sim.call_soon(self._j_done)

    def _j_done(self) -> None:
        pass


class _SigUnit:
    """Everything compiled once per plan signature, shared by its ranks."""

    __slots__ = ("n_workers", "n_steps", "workers", "seq_prog")

    def __init__(self) -> None:
        self.n_workers = 0
        self.n_steps = 0
        #: [(worker index, slot, program)] for team/sub-group runners
        self.workers: Optional[list] = None
        #: the rank's workers concatenated, for the sequential runner
        self.seq_prog: Optional[list] = None


class _CompiledFDSimulation(_FDSimulation):
    """The table-driven engine; setup is shared with the reference engine."""

    def run(self) -> SimResult:
        sim = self.machine.sim
        self.sim = sim
        part = self.machine.partition
        self.part = part
        self.topology = self.machine.topology
        self.torus_spec = self.spec.torus
        self.msg_overhead = self.spec.torus.message_overhead
        self.pays_lock = self.comm.thread_mode.pays_lock_overhead
        self.ovh = self.spec.threads.mpi_multiple_overhead
        self.n_node_cores = self.spec.node.n_cores
        # rank -> node / first-core tables (partition properties are too
        # slow to chase once per peer per rank)
        cpr = part.mode.cores_per_rank
        self.rank_node = [part.node_of_rank(r) for r in range(part.n_ranks)]
        self.rank_core = [
            part.core_slot_of_rank(r) * cpr for r in range(part.n_ranks)
        ]
        # replay state (twin of Machine/TorusNetwork/SimComm internals)
        self.nodes: dict = {}
        self.links: dict = {}
        self.mpilocks: dict = {}
        self.paths: dict = {}
        self.posted: dict = {}
        self.unexpected: dict = {}
        self.torus_bytes: dict = {}
        self.messages_sent = 0
        self.trace_buf = [] if self.tracer is not None else None
        self.step_buf = [] if self.step_tracer is not None else None

        plan = self.plan
        rod = self.rank_of_domain
        spawn_time = self.spec.threads.spawn_time
        join_time = self.spec.threads.join_time
        with_steps = self.step_buf is not None
        units: dict = {}
        ir_steps = 0
        for domain in range(self.decomp.n_domains):
            send_dirs, recv_dirs = plan._directions(domain)
            sig = (
                tuple((d, s, nb) for d, s, _p, nb in send_dirs),
                tuple((d, s, nb) for d, s, _p, nb in recv_dirs),
            )
            unit = units.get(sig)
            if unit is None:
                unit = self._compile_unit(domain)
                units[sig] = unit
            ir_steps += unit.n_steps
            base = rod[domain]
            res = (
                [f"rank{domain}.w{i}" for i in range(unit.n_workers)]
                if with_steps
                else None
            )
            if plan.workers_are_ranks:
                # flat sub-groups: each node-slot rank runs its own worker
                for _windex, slot, prog in unit.workers:
                    rank = base + slot
                    sends, rsrcs = self._dirs_for(send_dirs, recv_dirs, rank, slot)
                    w = _Worker(
                        self, prog, rank,
                        self.rank_core[rank],
                        None, sends, rsrcs, res,
                    )
                    sim.call_soon(w._advance)
            elif plan.uses_thread_team:
                sends, rsrcs = self._dirs_for(send_dirs, recv_dirs, base, 0)
                runner = _TeamRunner(sim, spawn_time, join_time)
                runner.workers = [
                    _Worker(
                        self, prog, base, windex,
                        runner._worker_done, sends, rsrcs, res,
                    )
                    for windex, _slot, prog in unit.workers
                ]
                sim.call_soon(runner._start)
            else:
                # sequential rank program: all workers in one chain
                sends, rsrcs = self._dirs_for(send_dirs, recv_dirs, base, 0)
                w = _Worker(
                    self, unit.seq_prog, base,
                    self.rank_core[base],
                    None, sends, rsrcs, res,
                )
                sim.call_soon(w._advance)

        total = sim.run()
        if total <= 0 or not self.nodes:
            utilization = 0.0
        else:
            nc = self.n_node_cores
            utilization = sum(
                sum(b) / (nc * total) for b in self.nodes.values()
            ) / len(self.nodes)
        if self.trace_buf is not None:
            self.tracer.extend(self.trace_buf)
        if self.step_buf is not None:
            self.step_tracer.extend_steps(self.step_buf)
        return SimResult(
            approach_name=self.approach.name,
            n_cores=self.n_cores,
            batch_size=self.batch_size,
            total=total,
            utilization=utilization,
            comm_bytes_per_node=sum(self.torus_bytes.values())
            / self.machine.n_nodes,
            messages=self.messages_sent,
            trace=self.tracer,
            step_trace=self.step_tracer,
            fault_events=(
                len(self.fault_plan.events) if self.fault_plan is not None else 0
            ),
            engine="compiled",
            ir_steps=ir_steps,
            events=sim.events_processed,
        )

    # -- shared replay state -----------------------------------------------
    def _node(self, node_id: int) -> list:
        """This node's per-core busy array (node joins the run on first use)."""
        b = self.nodes.get(node_id)
        if b is None:
            b = self.nodes[node_id] = [0.0] * self.n_node_cores
        return b

    def _mpilock(self, rank: int) -> _CbLock:
        lk = self.mpilocks.get(rank)
        if lk is None:
            lk = self.mpilocks[rank] = _CbLock(self.sim)
        return lk

    def _link(self, key) -> _CbLock:
        lk = self.links.get(key)
        if lk is None:
            lk = self.links[key] = _CbLock(self.sim)
        return lk

    def _path(self, src_node: int, dst_node: int) -> _Path:
        key = (src_node, dst_node)
        p = self.paths.get(key)
        if p is None:
            if src_node == dst_node:
                p = _Path(True, src_node, None, None, "", 0)
            else:
                route = self.topology.route(src_node, dst_node)
                links = [self._link(hop) for hop in sorted(route)]
                names = None
                if self.trace_buf is not None:
                    names = [
                        f"link{n}.{'+' if s > 0 else '-'}{'xyz'[d]}"
                        for n, d, s in route
                    ]
                p = _Path(
                    False, src_node, links, names,
                    f"{src_node}->{dst_node}", len(route),
                )
            self.paths[key] = p
        return p

    def _dirs_for(self, send_dirs, recv_dirs, rank, slot):
        """Instantiate one rank's peer tables from its direction lists."""
        rod = self.rank_of_domain
        rank_node = self.rank_node
        src_node = rank_node[rank]
        sends = []
        for _d, _s, peer, _nb in send_dirs:
            dst_rank = rod[peer] + slot
            sends.append(
                (dst_rank, self._path(src_node, rank_node[dst_rank]))
            )
        rsrcs = [rod[peer] + slot for _d, _s, peer, _nb in recv_dirs]
        return sends, rsrcs

    def _deliver(self, dst: int, src: int, tag: int) -> None:
        """Payload arrived: complete the matching posted receive or queue it."""
        posted = self.posted.get(dst)
        if posted:
            for i, ent in enumerate(posted):
                if ent[0] == src and ent[1] == tag:
                    del posted[i]
                    rec = ent[2]
                    rec.done = True
                    g = rec.group
                    if g is not None:
                        self.sim.call_soon(g._on_child)
                    return
        self.unexpected.setdefault(dst, []).append((src, tag))

    # -- compilation ---------------------------------------------------------
    def _compile_unit(self, domain: int) -> _SigUnit:
        """Lower one representative rank plan to shared micro-op programs."""
        plan = self.plan
        rp = plan.rank_plan(domain)
        send_dirs, recv_dirs = plan._directions(domain)
        send_index = {(d, s): i for i, (d, s, _p, _nb) in enumerate(send_dirs)}
        recv_index = {(d, s): i for i, (d, s, _p, _nb) in enumerate(recv_dirs)}
        unit = _SigUnit()
        unit.n_workers = len(rp.workers)
        unit.n_steps = sum(len(wp.steps) for wp in rp.workers)
        progs = [
            self._compile_worker(wp, send_index, recv_index)
            for wp in rp.workers
        ]
        if plan.workers_are_ranks or plan.uses_thread_team:
            # only workers with steps are spawned (matching the reference)
            unit.workers = [
                (wp.index, wp.slot, prog)
                for wp, prog in zip(rp.workers, progs)
                if wp.steps
            ]
        else:
            seq: list = []
            for prog in progs:
                seq.extend(prog)
            unit.seq_prog = seq
        return unit

    def _compile_worker(self, wp: WorkerPlan, send_index, recv_index) -> list:
        """Lower one worker's step list; mirrors ``replay_worker`` exactly."""
        plan = self.plan
        spec = self.spec
        fp = self.fault_plan
        with_steps = self.step_tracer is not None
        prog: list = []
        t_call = spec.threads.mpi_call_cpu_time
        lookahead = 1 if plan.double_buffered else 0
        rounds = wp.rounds
        next_round = 0
        for st in wp.steps:
            if with_steps:
                prog.append((OP_T0,))
            if (
                not plan.blocking
                and t_call
                and isinstance(st, (PostSend, PostRecv, WaitAll))
            ):
                # charge the per-round CPU cost of issuing the MPI calls
                limit = st.seq + (lookahead if isinstance(st, WaitAll) else 0)
                while next_round < len(rounds) and rounds[next_round].seq <= limit:
                    r = rounds[next_round]
                    next_round += 1
                    prog.append(
                        (OP_COMPUTE, (len(r.sends) + len(r.recvs) + 1) * t_call)
                    )
            if isinstance(st, PostSend):
                tag = message_tag(st.seq, st.dim, st.step)
                d = send_index[(st.dim, st.step)]
                if fp is not None:
                    prog.append((OP_FAULT_SEND, d, st.nbytes, tag))
                else:
                    prog.append((OP_SEND, d, st.nbytes, tag))
            elif isinstance(st, PostRecv):
                if fp is not None:
                    prog.append((OP_FAULT_CLOCK,))
                tag = message_tag(st.seq, st.dim, st.step)
                prog.append((OP_RECV, recv_index[(st.dim, st.step)], tag, st.seq))
            elif isinstance(st, WaitAll):
                if fp is not None:
                    prog.append((OP_FAULT_CLOCK,))
                prog.append((OP_WAITALL, st.seq))
            elif isinstance(st, ComputeInterior):
                if plan.sync_per_grid:
                    threads = min(4, self.n_cores)
                    secs = (
                        math.ceil(self.block_points / threads)
                        * self.t_point_quarter
                    )
                    prog.append((OP_QUARTER, threads, secs))
                else:
                    prog.append((OP_COMPUTE, self.block_points * self.t_point))
            elif isinstance(st, GridBarrier):
                prog.append((OP_TIMEOUT, spec.threads.barrier_time))
            # ApplyLocalWraps / ComputeBoundary / JoinBarrier: no timed action
            if with_steps:
                prog.append((OP_STEP, st, wp.index))
        return prog


def simulate_fd_compiled(*args, **kwargs) -> SimResult:
    """``simulate_fd`` on the compiled engine (same signature/semantics)."""
    return _CompiledFDSimulation(*args, **kwargs).run()
