"""Closed-form performance model of the distributed FD operation.

The paper's benchmark workload is bulk-synchronous and node-symmetric:
every node holds the same-shaped block of every grid and exchanges with
six neighbours.  That makes a representative-node analysis exact up to
boundary effects, and lets us evaluate 16384-core configurations in
microseconds — the DES (:mod:`repro.core.simrun`) validates the model at
small scale, this model extrapolates.

Model structure (calibration notes in DESIGN.md section 5):

* **Message time** ``L + s/B_eff`` per message, with per-link FIFO
  contention: a link carrying ``m`` messages of ``s`` bytes per round
  costs ``m * (L + s/B_eff)``.
* **Virtual-node mode** (flat approaches): the node's four ranks are
  independent torus endpoints — all their messages are inter-node and the
  four same-direction messages share one link.  This matches the paper's
  measured per-node communication gap between flat and hybrid
  (~4^(1/3) = 1.59x, Fig 6).
* **Overlap**: Flat original sums serialized per-dimension blocking
  exchanges (with the +/- directions serialized and both-side software
  overheads paid — no DMA asynchrony) with computation; the optimized
  approaches run a double-buffered pipeline ``comm_1 +
  sum(max(comp_k, comm_k+1)) + comp_last``.
* **Per-call CPU cost**: every MPI call burns core time (plus MULTIPLE
  lock queueing for hybrid multiple) — the cost batching amortizes.
* **Small-block penalty**: per-point compute cost grows as the ghost
  shells become comparable to the block
  (``(padded/block) ** halo_compute_exponent``).
* **Thread costs**: Hybrid multiple pays one spawn+join per invocation;
  master-only pays a four-thread barrier per *grid* plus a deeper
  quarter-block halo penalty.

Full calibration rationale: DESIGN.md section 5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.approaches import Approach
from repro.core.schedule import (
    PostSend,
    compile_schedule,
    timing_plane_workers,
)
from repro.grid.decompose import Decomposition
from repro.grid.grid import GridDescriptor
from repro.machine.spec import BGP_SPEC, MachineSpec
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class FDJob:
    """One benchmark workload: ``n_grids`` grids of one shape."""

    grid: GridDescriptor
    n_grids: int

    def __post_init__(self) -> None:
        check_positive_int(self.n_grids, "n_grids")

    @property
    def total_points(self) -> int:
        return self.n_grids * self.grid.n_points


@dataclass
class FDTiming:
    """Predicted timing of one FD invocation under one configuration."""

    approach_name: str
    n_cores: int
    batch_size: int
    #: wall-clock seconds of the whole invocation
    total: float
    #: per-core computation seconds (actual, including small-block penalty)
    compute: float
    #: per-core computation seconds at large-block throughput (the useful
    #: work; the utilization baseline, matching the paper's CPU-utilization
    #: accounting)
    compute_ideal: float
    #: per-node exposed (non-overlapped) communication seconds
    comm_exposed: float
    #: thread synchronization seconds (spawn/join/barriers/locks)
    sync: float
    #: inter-node bytes sent per node per invocation (Fig 6 right axis)
    comm_bytes_per_node: float
    #: MPI messages sent per rank per invocation
    messages_per_rank: int
    #: bytes of a single surface message (before batching)
    message_bytes: float

    @property
    def utilization(self) -> float:
        """Useful-work fraction of wall-clock time (section VIII).

        The numerator is the computation at large-block throughput, so the
        small-block halo penalty counts as overhead — matching the paper's
        "CPU utilization grows from 36% to 70%" accounting.
        """
        return 0.0 if self.total <= 0 else min(1.0, self.compute_ideal / self.total)


def _pipeline_time(comm: Sequence[float], comp: Sequence[float]) -> float:
    """Wall time of a double-buffered pipeline.

    Round ``k``'s exchange overlaps round ``k-1``'s computation:
    ``comm[0] + sum(max(comp[k-1], comm[k])) + comp[-1]``.
    """
    if len(comm) != len(comp) or not comm:
        raise ValueError("comm and comp must be equal-length, non-empty")
    total = comm[0]
    for k in range(1, len(comm)):
        total += max(comp[k - 1], comm[k])
    return total + comp[-1]


class PerformanceModel:
    """Evaluate FD timings for any approach, core count and batch size."""

    def __init__(self, spec: MachineSpec = BGP_SPEC):
        self.spec = spec

    # -- building blocks -------------------------------------------------------
    def _halo_factor(self, block_shape: Sequence[int]) -> float:
        """Small-block compute penalty.

        The stencil streams the ghost shells as well as the block, so the
        per-point cost grows with (padded volume / block volume); the
        exponent (0..1) captures how much of that extra traffic the caches
        absorb.  Large blocks -> ~1; a 9^3 block at 4096 cores -> ~1.7.
        """
        w = 2
        block = math.prod(block_shape)
        padded = math.prod(b + 2 * w for b in block_shape)
        return (padded / block) ** self.spec.halo_compute_exponent

    def _point_time(self, decomp: Decomposition) -> float:
        """Effective per-point compute time for this decomposition's blocks."""
        return self.spec.stencil_point_time * self._halo_factor(
            decomp.block_shape(0)
        )

    def sequential_time(self, job: FDJob) -> float:
        """One core, no communication: the Fig 5 speedup baseline."""
        return (
            job.total_points
            * self.spec.stencil_point_time
            * self._halo_factor(job.grid.shape)
        )

    def _decomposition(self, job: FDJob, approach: Approach, n_cores: int) -> Decomposition:
        return Decomposition(job.grid, approach.domains_for(n_cores))

    def _mesh_factor(self, n_cores: int, decomp: Decomposition, dim: int) -> float:
        """Extra per-link load when periodic wraps cross an open mesh.

        Both planes assume a cyclic (folded) domain placement, which
        embeds periodic rings into a mesh with wrap traffic balanced onto
        the reverse-direction links — so no extra per-link load.  The hook
        is kept so alternative (naive) placements can be modelled.
        """
        return 1.0

    def _round_comm_time(
        self,
        sends: Sequence[PostSend],
        decomp: Decomposition,
        n_cores: int,
        streams_per_link: int,
    ) -> float:
        """Time for one pipeline round's exchange on the critical link.

        ``sends`` is the round's compiled send list (batch sizes already
        folded into each step's byte count); ``streams_per_link`` such
        messages share each direction's link, and the slowest direction
        bounds the round (all six links run simultaneously — the
        section V optimization).
        """
        torus = self.spec.torus
        worst = 0.0
        for s in sends:
            factor = self._mesh_factor(n_cores, decomp, s.dim)
            t = streams_per_link * (
                torus.message_overhead + factor * s.nbytes / torus.effective_bandwidth
            )
            worst = max(worst, t)
        return worst

    @staticmethod
    def _halo_width(decomp: Decomposition) -> int:
        # The paper's stencil radius; grids carry no radius, the FD op does.
        return 2

    # -- per-round plan costs (shared by evaluate and step_trace) --------------
    def _plan_costs(
        self,
        job: FDJob,
        approach: Approach,
        n_cores: int,
        batch_size: int,
        ramp_up: bool,
    ):
        """Attach per-round costs to a pipelined plan's representative worker.

        Returns ``(plan, decomp, rep, comp, comm, barriers, spawn_join,
        sync)`` where ``comp[k]``/``comm[k]`` are round ``k``'s
        computation and exchange seconds, and ``barriers[k]`` is the part
        of ``comp[k]`` that is thread-barrier time (non-zero only for
        master-only's per-grid barriers) — kept separate so the model's
        step trace can emit ``GridBarrier`` spans distinct from compute.
        Blocking plans return ``comp``/``comm`` = ``None`` (cost them via
        :meth:`_blocking_round_costs`).
        """
        decomp = self._decomposition(job, approach, n_cores)
        plan = compile_schedule(
            approach,
            decomp,
            job.n_grids,
            batch_size,
            ramp_up,
            halo_width=self._halo_width(decomp),
            n_workers=timing_plane_workers(approach, n_cores),
        )
        # Representative worker: the first worker of domain 0 (contiguous
        # splitting gives the leading worker the most grids).
        rep = plan.rank_plan(0).workers[0]
        if plan.blocking:
            return plan, decomp, rep, None, None, None, 0.0, 0.0

        t_point = self._point_time(decomp)
        t_point_base = self.spec.stencil_point_time
        block_points = decomp.max_block_points()
        threads = min(4, n_cores) if plan.uses_thread_team else 1
        ranks_per_node = min(4, n_cores) if not plan.uses_thread_team else 1
        rounds = rep.rounds
        spawn_join = (
            self.spec.threads.spawn_time + self.spec.threads.join_time
            if plan.uses_thread_team
            else 0.0
        )
        # CPU cost of entering the MPI library: every send/recv/wait call
        # burns core time; MULTIPLE-mode calls additionally queue on the
        # rank's lock behind the other threads.  This is the cost batching
        # amortizes (one call moves a whole batch).
        calls_per_round = len(rounds[0].sends) + len(rounds[0].recvs) + 1
        call_cpu = self.spec.threads.mpi_call_cpu_time
        if approach.thread_mode.pays_lock_overhead:
            call_cpu += threads * self.spec.threads.mpi_multiple_overhead
        round_call_cpu = calls_per_round * call_cpu
        if plan.sync_per_grid:
            # Hybrid master-only: batches of whole grids; 4 cores split each
            # grid (so each thread streams a quarter block plus its halo —
            # a deeper small-block penalty); a thread barrier after every
            # grid (the plan's ``GridBarrier`` steps).
            quarter = list(decomp.block_shape(0))
            axis = quarter.index(max(quarter))
            quarter[axis] = max(1, math.ceil(quarter[axis] / threads))
            t_quarter = t_point_base * self._halo_factor(quarter)
            barriers = [
                len(r.grid_ids) * self.spec.threads.barrier_time for r in rounds
            ]
            comp = [
                len(r.grid_ids) * block_points / threads * t_quarter + b
                for r, b in zip(rounds, barriers)
            ]
            # The master thread pays the per-call CPU cost on the comm path.
            comm = [
                self._round_comm_time(r.sends, decomp, n_cores, 1)
                + round_call_cpu
                for r in rounds
            ]
            sync = (
                plan.grid_barriers_per_rank * self.spec.threads.barrier_time
                + spawn_join
            )
        else:
            # Pipelined workers (flat optimized, flat sub-groups, hybrid
            # multiple): each worker double-buffers its own rounds; per
            # round, every worker sharing the node's links exchanges one
            # batch.  Flat optimized has one worker per rank but four
            # virtual-node ranks per node; the node-level variants have
            # ``plan.n_workers`` workers on one domain — either way the
            # per-direction link carries that many streams.
            streams = plan.n_workers if plan.n_workers > 1 else ranks_per_node
            barriers = [0.0] * len(rounds)
            comp = [
                len(r.grid_ids) * block_points * t_point + round_call_cpu
                for r in rounds
            ]
            comm = [
                self._round_comm_time(r.sends, decomp, n_cores, streams)
                for r in rounds
            ]
            sync = spawn_join
            if approach.thread_mode.pays_lock_overhead:
                sync += len(rounds) * calls_per_round * threads * (
                    self.spec.threads.mpi_multiple_overhead
                )
        return plan, decomp, rep, comp, comm, barriers, spawn_join, sync

    # -- the four approaches ---------------------------------------------------
    def evaluate(
        self,
        job: FDJob,
        approach: Approach,
        n_cores: int,
        batch_size: int = 1,
        ramp_up: bool = False,
    ) -> FDTiming:
        """Predict one FD invocation's timing by walking the compiled plan.

        The schedule itself — batching rounds, message sizes, barrier and
        worker structure — comes from :func:`repro.core.schedule.compile_schedule`,
        the same plan the functional engine interprets and the DES replays;
        this model only attaches costs to the plan's representative
        (busiest) worker.
        """
        check_positive_int(n_cores, "n_cores")
        plan, decomp, rep, comp, comm, _, spawn_join, sync = self._plan_costs(
            job, approach, n_cores, batch_size, ramp_up
        )
        if plan.blocking:
            return self._evaluate_original(job, approach, n_cores, decomp, rep)

        w = self._halo_width(decomp)
        threads = min(4, n_cores) if plan.uses_thread_team else 1
        msg_bytes = max(
            (decomp.send_bytes(0, dim, +1, w) for dim in range(3)), default=0
        )
        ideal_per_core = job.total_points / n_cores * self.spec.stencil_point_time

        total = _pipeline_time(comm, comp) + spawn_join
        compute_per_core = sum(comp)
        exposed = total - spawn_join - compute_per_core
        msgs_per_rank = rep.message_count * (threads if plan.uses_thread_team else 1)

        return FDTiming(
            approach_name=approach.name,
            n_cores=n_cores,
            batch_size=batch_size,
            total=total,
            compute=compute_per_core,
            compute_ideal=ideal_per_core,
            comm_exposed=max(0.0, exposed),
            sync=sync,
            comm_bytes_per_node=self._comm_per_node(
                decomp, approach, n_cores, job.n_grids
            ),
            messages_per_rank=msgs_per_rank,
            message_bytes=msg_bytes,
        )

    def _evaluate_original(
        self,
        job: FDJob,
        approach: Approach,
        n_cores: int,
        decomp: Decomposition,
        rep,
    ) -> FDTiming:
        """Blocking plans (flat original): serialized exchange, zero overlap.

        The compiled plan serializes every direction of every grid's
        exchange (a blocking send/receive pair per direction, with no
        DMA-driven overlap between them), so the cost is the plain sum of
        each compiled send plus the round's computation.  ``2L``: a
        blocking exchange pays both the send- and the receive-side
        software overhead (nothing is hidden behind the DMA engine in the
        original code).

        Unlike the optimized schedules, the node's four virtual-mode ranks
        do *not* contend on the shared links here: the blocking pattern
        self-staggers them, so each link carries at most one in-flight
        message (the behaviour implied by the paper's measured 36%
        utilization at 16384 cores — see DESIGN.md section 5).
        """
        torus = self.spec.torus
        w = self._halo_width(decomp)
        t_point = self._point_time(decomp)
        block_points = decomp.max_block_points()

        compute = 0.0
        comm = 0.0
        for r in rep.rounds:
            compute += len(r.grid_ids) * block_points * t_point
            for s in r.sends:
                factor = self._mesh_factor(n_cores, decomp, s.dim)
                comm += (
                    2 * torus.message_overhead
                    + factor * s.nbytes / torus.effective_bandwidth
                )
        total = compute + comm
        return FDTiming(
            approach_name=approach.name,
            n_cores=n_cores,
            batch_size=1,
            total=total,
            compute=compute,
            compute_ideal=job.total_points / n_cores * self.spec.stencil_point_time,
            comm_exposed=comm,
            sync=0.0,
            comm_bytes_per_node=self._comm_per_node(
                decomp, approach, n_cores, job.n_grids
            ),
            messages_per_rank=rep.message_count,
            message_bytes=max(
                (decomp.send_bytes(0, dim, +1, w) for dim in range(3)), default=0
            ),
        )

    # -- model-plane span trace --------------------------------------------------
    def step_trace(
        self,
        job: FDJob,
        approach: Approach,
        n_cores: int,
        batch_size: int = 1,
        ramp_up: bool = False,
    ):
        """Reconstruct the modelled timeline as a ``SpanTracer(plane="model")``.

        Walks the same per-round costs :meth:`evaluate` sums and lays them
        out on the representative worker ``rank0.w0`` exactly as the
        :func:`_pipeline_time` recurrence schedules them: round 0's
        exchange is fully exposed (a ``WaitAll`` span), every later round
        overlaps its exchange with the previous round's compute and shows
        only the *exposed* remainder as a ``WaitAll`` span, and thread
        spawn/join appears as a trailing ``JoinBarrier`` span.  Master-only
        rounds split their per-grid thread barriers out of the compute
        span as ``GridBarrier`` spans.

        The result feeds the same :func:`repro.obs.export.utilization_report`
        /  :func:`repro.obs.export.chrome_trace` pipeline as real-engine
        and DES traces, so the three planes are diffable span-for-span:
        the report's makespan equals ``FDTiming.total`` and its ``comm``
        seconds equal ``FDTiming.comm_exposed`` by construction.
        """
        from repro.obs.spans import SpanTracer, StepSpan

        check_positive_int(n_cores, "n_cores")
        plan, decomp, rep, comp, comm, barriers, spawn_join, _ = self._plan_costs(
            job, approach, n_cores, batch_size, ramp_up
        )
        tracer = SpanTracer(plane="model")
        resource = "rank0.w0"
        rounds = rep.rounds

        def add(kind: str, start: float, end: float, r) -> None:
            tracer.add(
                StepSpan(
                    resource=resource,
                    step_kind=kind,
                    start=start,
                    end=end,
                    plane="model",
                    worker=0,
                    grid_ids=r.grid_ids if r is not None else (),
                    seq=r.seq if r is not None else None,
                )
            )

        if plan.blocking:
            # Serialized exchange (flat original): per round a blocking
            # wait for the exchange, then the batch's computation —
            # nothing overlaps (see :meth:`_evaluate_original`).
            torus = self.spec.torus
            t_point = self._point_time(decomp)
            block_points = decomp.max_block_points()
            t = 0.0
            for r in rounds:
                c = sum(
                    2 * torus.message_overhead
                    + self._mesh_factor(n_cores, decomp, s.dim)
                    * s.nbytes
                    / torus.effective_bandwidth
                    for s in r.sends
                )
                if c > 0.0:
                    add("WaitAll", t, t + c, r)
                    t += c
                k = len(r.grid_ids) * block_points * t_point
                add("ComputeInterior", t, t + k, r)
                t += k
            return tracer

        # Pipelined plans: follow the _pipeline_time recurrence
        #   e_0 = comm[0];  e_k = e_{k-1} + max(comp[k-1], comm[k])
        # emitting compute spans at e_{k-1} and the exposed tail of each
        # exchange (if any) as a WaitAll span.
        e = comm[0]
        add("WaitAll", 0.0, e, rounds[0])

        def add_comp(k: int, start: float) -> float:
            barrier = barriers[k]
            work = comp[k] - barrier
            add("ComputeInterior", start, start + work, rounds[k])
            if barrier > 0.0:
                add("GridBarrier", start + work, start + comp[k], rounds[k])
            return start + comp[k]

        for k in range(1, len(rounds)):
            comp_end = add_comp(k - 1, e)
            e = e + max(comp[k - 1], comm[k])
            if e > comp_end:
                add("WaitAll", comp_end, e, rounds[k])
        end = add_comp(len(rounds) - 1, e)
        if spawn_join > 0.0:
            add("JoinBarrier", end, end + spawn_join, None)
        return tracer

    def _comm_per_node(
        self, decomp: Decomposition, approach: Approach, n_cores: int, n_grids: int
    ) -> float:
        """Inter-node bytes sent per node per invocation (Fig 6)."""
        w = self._halo_width(decomp)
        per_domain = decomp.comm_bytes(0, w) * n_grids
        if not approach.decompose_per_rank:
            # node-level decomposition (hybrid modes, flat sub-groups):
            # the node's traffic is one domain's surface over all grids
            return float(per_domain)
        return float(per_domain * (min(4, n_cores) if n_cores >= 4 else n_cores))

    # -- JobSpec entry point -----------------------------------------------------
    def evaluate_spec(self, spec):
        """Evaluate a validated :class:`~repro.core.jobspec.JobSpec`.

        Every layout prices through one entry point: a band-parallel
        spec (``n_band_groups > 1``) routes to
        :meth:`repro.core.bandpar.BandParallelModel.evaluate_spec` on
        the same machine, returning its :class:`~repro.core.bandpar
        .BandParTiming` (both result types expose ``.total``); a
        single-group spec returns this model's :class:`FDTiming`.
        """
        if spec.layout.n_band_groups != 1:
            from repro.core.bandpar import BandParallelModel

            return BandParallelModel(self.spec).evaluate_spec(spec)
        return self.evaluate(
            spec.fd_job(),
            spec.approach_obj(),
            spec.layout.n_cores,
            spec.layout.batch_size,
            ramp_up=spec.layout.ramp_up,
        )

    # -- batch-size search -------------------------------------------------------
    def batch_candidates(
        self, job: FDJob, approach: Approach, n_cores: int
    ) -> list[int]:
        """Default batch-size candidates: powers of two up to the grids
        available per compute unit.  Shared by :meth:`best_batch_size` and
        the :class:`~repro.core.planner.Planner`, so both search the same
        space."""
        if not approach.supports_batching:
            return [1]
        per_unit = job.n_grids
        if approach.is_hybrid and not approach.sync_per_grid:
            per_unit = max(1, job.n_grids // min(4, n_cores))
        candidates = [1]
        while candidates[-1] * 2 <= per_unit:
            candidates.append(candidates[-1] * 2)
        return candidates

    def best_batch_size(
        self,
        job: FDJob,
        approach: Approach,
        n_cores: int,
        candidates: Optional[Sequence[int]] = None,
        ramp_up: bool = False,
    ) -> FDTiming:
        """The fastest timing over candidate batch sizes.

        The paper finds "the best batch-size" per configuration (Figs 6, 7);
        default candidates come from :meth:`batch_candidates`.
        """
        if not approach.supports_batching:
            return self.evaluate(job, approach, n_cores, 1)
        if candidates is None:
            candidates = self.batch_candidates(job, approach, n_cores)
        best: Optional[FDTiming] = None
        for b in candidates:
            t = self.evaluate(job, approach, n_cores, b, ramp_up=ramp_up)
            if best is None or t.total < best.total:
                best = t
        assert best is not None
        return best
