"""Closed-form performance model of the distributed FD operation.

The paper's benchmark workload is bulk-synchronous and node-symmetric:
every node holds the same-shaped block of every grid and exchanges with
six neighbours.  That makes a representative-node analysis exact up to
boundary effects, and lets us evaluate 16384-core configurations in
microseconds — the DES (:mod:`repro.core.simrun`) validates the model at
small scale, this model extrapolates.

Model structure (calibration notes in DESIGN.md section 5):

* **Message time** ``L + s/B_eff`` per message, with per-link FIFO
  contention: a link carrying ``m`` messages of ``s`` bytes per round
  costs ``m * (L + s/B_eff)``.
* **Virtual-node mode** (flat approaches): the node's four ranks are
  independent torus endpoints — all their messages are inter-node and the
  four same-direction messages share one link.  This matches the paper's
  measured per-node communication gap between flat and hybrid
  (~4^(1/3) = 1.59x, Fig 6).
* **Overlap**: Flat original sums serialized per-dimension blocking
  exchanges (with the +/- directions serialized and both-side software
  overheads paid — no DMA asynchrony) with computation; the optimized
  approaches run a double-buffered pipeline ``comm_1 +
  sum(max(comp_k, comm_k+1)) + comp_last``.
* **Per-call CPU cost**: every MPI call burns core time (plus MULTIPLE
  lock queueing for hybrid multiple) — the cost batching amortizes.
* **Small-block penalty**: per-point compute cost grows as the ghost
  shells become comparable to the block
  (``(padded/block) ** halo_compute_exponent``).
* **Thread costs**: Hybrid multiple pays one spawn+join per invocation;
  master-only pays a four-thread barrier per *grid* plus a deeper
  quarter-block halo penalty.

Full calibration rationale: DESIGN.md section 5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.approaches import Approach
from repro.core.batching import batch_schedule
from repro.grid.decompose import Decomposition
from repro.grid.grid import GridDescriptor
from repro.machine.spec import BGP_SPEC, MachineSpec
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class FDJob:
    """One benchmark workload: ``n_grids`` grids of one shape."""

    grid: GridDescriptor
    n_grids: int

    def __post_init__(self) -> None:
        check_positive_int(self.n_grids, "n_grids")

    @property
    def total_points(self) -> int:
        return self.n_grids * self.grid.n_points


@dataclass
class FDTiming:
    """Predicted timing of one FD invocation under one configuration."""

    approach_name: str
    n_cores: int
    batch_size: int
    #: wall-clock seconds of the whole invocation
    total: float
    #: per-core computation seconds (actual, including small-block penalty)
    compute: float
    #: per-core computation seconds at large-block throughput (the useful
    #: work; the utilization baseline, matching the paper's CPU-utilization
    #: accounting)
    compute_ideal: float
    #: per-node exposed (non-overlapped) communication seconds
    comm_exposed: float
    #: thread synchronization seconds (spawn/join/barriers/locks)
    sync: float
    #: inter-node bytes sent per node per invocation (Fig 6 right axis)
    comm_bytes_per_node: float
    #: MPI messages sent per rank per invocation
    messages_per_rank: int
    #: bytes of a single surface message (before batching)
    message_bytes: float

    @property
    def utilization(self) -> float:
        """Useful-work fraction of wall-clock time (section VIII).

        The numerator is the computation at large-block throughput, so the
        small-block halo penalty counts as overhead — matching the paper's
        "CPU utilization grows from 36% to 70%" accounting.
        """
        return 0.0 if self.total <= 0 else min(1.0, self.compute_ideal / self.total)


def _pipeline_time(comm: Sequence[float], comp: Sequence[float]) -> float:
    """Wall time of a double-buffered pipeline.

    Round ``k``'s exchange overlaps round ``k-1``'s computation:
    ``comm[0] + sum(max(comp[k-1], comm[k])) + comp[-1]``.
    """
    if len(comm) != len(comp) or not comm:
        raise ValueError("comm and comp must be equal-length, non-empty")
    total = comm[0]
    for k in range(1, len(comm)):
        total += max(comp[k - 1], comm[k])
    return total + comp[-1]


class PerformanceModel:
    """Evaluate FD timings for any approach, core count and batch size."""

    def __init__(self, spec: MachineSpec = BGP_SPEC):
        self.spec = spec

    # -- building blocks -------------------------------------------------------
    def _halo_factor(self, block_shape: Sequence[int]) -> float:
        """Small-block compute penalty.

        The stencil streams the ghost shells as well as the block, so the
        per-point cost grows with (padded volume / block volume); the
        exponent (0..1) captures how much of that extra traffic the caches
        absorb.  Large blocks -> ~1; a 9^3 block at 4096 cores -> ~1.7.
        """
        w = 2
        block = math.prod(block_shape)
        padded = math.prod(b + 2 * w for b in block_shape)
        return (padded / block) ** self.spec.halo_compute_exponent

    def _point_time(self, decomp: Decomposition) -> float:
        """Effective per-point compute time for this decomposition's blocks."""
        return self.spec.stencil_point_time * self._halo_factor(
            decomp.block_shape(0)
        )

    def sequential_time(self, job: FDJob) -> float:
        """One core, no communication: the Fig 5 speedup baseline."""
        return (
            job.total_points
            * self.spec.stencil_point_time
            * self._halo_factor(job.grid.shape)
        )

    def _decomposition(self, job: FDJob, approach: Approach, n_cores: int) -> Decomposition:
        return Decomposition(job.grid, approach.domains_for(n_cores))

    def _mesh_factor(self, n_cores: int, decomp: Decomposition, dim: int) -> float:
        """Extra per-link load when periodic wraps cross an open mesh.

        Both planes assume a cyclic (folded) domain placement, which
        embeds periodic rings into a mesh with wrap traffic balanced onto
        the reverse-direction links — so no extra per-link load.  The hook
        is kept so alternative (naive) placements can be modelled.
        """
        return 1.0

    def _round_comm_time(
        self,
        decomp: Decomposition,
        n_cores: int,
        batch: int,
        streams_per_link: int,
        lock_calls: int,
    ) -> float:
        """Time for one pipeline round's exchange on the critical link.

        ``streams_per_link`` messages of ``batch`` grids' slabs share each
        direction's link; the slowest direction bounds the round (all six
        links run simultaneously — the section V optimization).
        """
        torus = self.spec.torus
        t_lock = self.spec.threads.mpi_multiple_overhead * lock_calls
        worst = 0.0
        for dim in range(3):
            s = decomp.send_bytes(0, dim, +1, self._halo_width(decomp)) * batch
            if s == 0:
                continue
            factor = self._mesh_factor(n_cores, decomp, dim)
            t = streams_per_link * (torus.message_overhead + factor * s / torus.effective_bandwidth)
            worst = max(worst, t)
        return worst + t_lock

    @staticmethod
    def _halo_width(decomp: Decomposition) -> int:
        # The paper's stencil radius; grids carry no radius, the FD op does.
        return 2

    def _count_messages(self, decomp: Decomposition) -> int:
        """Remote messages per domain per (unbatched) exchange."""
        w = self._halo_width(decomp)
        return sum(
            1
            for dim in range(3)
            for step in (+1, -1)
            if decomp.send_bytes(0, dim, step, w) > 0
        )

    # -- the four approaches ---------------------------------------------------
    def evaluate(
        self,
        job: FDJob,
        approach: Approach,
        n_cores: int,
        batch_size: int = 1,
        ramp_up: bool = False,
    ) -> FDTiming:
        """Predict one FD invocation's timing."""
        check_positive_int(n_cores, "n_cores")
        check_positive_int(batch_size, "batch_size")
        if not approach.supports_batching and batch_size != 1:
            raise ValueError(f"{approach.name} does not support batching")
        decomp = self._decomposition(job, approach, n_cores)
        w = self._halo_width(decomp)
        t_point = self._point_time(decomp)
        t_point_base = self.spec.stencil_point_time
        block_points = decomp.max_block_points()
        threads = min(4, n_cores) if approach.is_hybrid else 1
        ranks_per_node = min(4, n_cores) if not approach.is_hybrid else 1
        G = job.n_grids

        msg_bytes = max(
            (decomp.send_bytes(0, dim, +1, w) for dim in range(3)), default=0
        )
        n_dirs = self._count_messages(decomp)

        if approach.serialized_exchange:
            return self._evaluate_original(
                job, approach, n_cores, decomp, ranks_per_node
            )

        # ---- optimized approaches: build per-round comm/comp sequences ----
        spawn_join = (
            self.spec.threads.spawn_time + self.spec.threads.join_time
            if approach.is_hybrid
            else 0.0
        )
        ideal_per_core = job.total_points / n_cores * t_point_base
        # CPU cost of entering the MPI library: every send/recv/wait call
        # burns core time; MULTIPLE-mode calls additionally queue on the
        # rank's lock behind the other threads.  This is the cost batching
        # amortizes (one call moves a whole batch).
        calls_per_round = 2 * n_dirs + 1
        call_cpu = self.spec.threads.mpi_call_cpu_time
        if approach.thread_mode.pays_lock_overhead:
            call_cpu += threads * self.spec.threads.mpi_multiple_overhead
        round_call_cpu = calls_per_round * call_cpu
        if approach.sync_per_grid:
            # Hybrid master-only: batches of whole grids; 4 cores split each
            # grid (so each thread streams a quarter block plus its halo —
            # a deeper small-block penalty); a thread barrier after every
            # grid.
            quarter = list(decomp.block_shape(0))
            axis = quarter.index(max(quarter))
            quarter[axis] = max(1, math.ceil(quarter[axis] / threads))
            t_quarter = t_point_base * self._halo_factor(quarter)
            batches = batch_schedule(G, batch_size, ramp_up)
            comp = [
                len(b)
                * (
                    block_points / threads * t_quarter
                    + self.spec.threads.barrier_time
                )
                for b in batches
            ]
            # The master thread pays the per-call CPU cost on the comm path.
            comm = [
                self._round_comm_time(decomp, n_cores, len(b), 1, 0)
                + round_call_cpu
                for b in batches
            ]
            sync = G * self.spec.threads.barrier_time + spawn_join
        elif approach.is_hybrid:
            # Hybrid multiple: whole grids dealt to 4 threads, each thread
            # pipelines its own batches; per round all threads exchange one
            # batch each (streams_per_link = threads).  Each thread burns
            # per-call CPU (with lock queueing) before its compute.
            grids_per_thread = math.ceil(G / threads)
            batches = batch_schedule(grids_per_thread, batch_size, ramp_up)
            comp = [
                len(b) * block_points * t_point + round_call_cpu for b in batches
            ]
            comm = [
                self._round_comm_time(decomp, n_cores, len(b), threads, 0)
                for b in batches
            ]
            sync = spawn_join + len(batches) * calls_per_round * threads * (
                self.spec.threads.mpi_multiple_overhead
            )
        elif not approach.decompose_per_rank:
            # Flat sub-groups (section VII-A): hybrid multiple's structure
            # with virtual-node ranks — node-level decomposition, whole
            # grids dealt to the node's four ranks, no thread costs.
            workers = min(4, n_cores)
            grids_per_rank = math.ceil(G / workers)
            batches = batch_schedule(grids_per_rank, batch_size, ramp_up)
            comp = [
                len(b) * block_points * t_point + round_call_cpu for b in batches
            ]
            comm = [
                self._round_comm_time(decomp, n_cores, len(b), workers, 0)
                for b in batches
            ]
            sync = 0.0
        else:
            # Flat optimized: every rank owns all G grids of its block; the
            # node's 4 ranks share each link (streams_per_link = 4).
            batches = batch_schedule(G, batch_size, ramp_up)
            comp = [
                len(b) * block_points * t_point + round_call_cpu for b in batches
            ]
            comm = [
                self._round_comm_time(decomp, n_cores, len(b), ranks_per_node, 0)
                for b in batches
            ]
            sync = 0.0

        total = _pipeline_time(comm, comp) + spawn_join
        compute_per_core = sum(comp)
        exposed = total - spawn_join - compute_per_core
        msgs_per_rank = n_dirs * len(batches) * (1 if not approach.is_hybrid else threads)

        return FDTiming(
            approach_name=approach.name,
            n_cores=n_cores,
            batch_size=batch_size,
            total=total,
            compute=compute_per_core,
            compute_ideal=ideal_per_core,
            comm_exposed=max(0.0, exposed),
            sync=sync,
            comm_bytes_per_node=self._comm_per_node(decomp, approach, n_cores, G),
            messages_per_rank=msgs_per_rank,
            message_bytes=msg_bytes,
        )

    def _evaluate_original(
        self,
        job: FDJob,
        approach: Approach,
        n_cores: int,
        decomp: Decomposition,
        ranks_per_node: int,
    ) -> FDTiming:
        """Flat original: serialized blocking exchange, zero overlap.

        The original code exchanges one dimension at a time with blocking
        calls and, within a dimension, completes the +direction transfer
        before the -direction one (a blocking send/receive pair per side,
        with no DMA-driven overlap between them) — hence the factor two on
        each dimension's time.

        Unlike the optimized schedules, the node's four virtual-mode ranks
        do *not* contend on the shared links here: the blocking pattern
        self-staggers them, so each link carries at most one in-flight
        message (the behaviour implied by the paper's measured 36%
        utilization at 16384 cores — see DESIGN.md section 5).
        """
        torus = self.spec.torus
        w = self._halo_width(decomp)
        t_point = self._point_time(decomp)
        block_points = decomp.max_block_points()
        G = job.n_grids

        comm_per_grid = 0.0
        for dim in range(3):
            s = decomp.send_bytes(0, dim, +1, w)
            if s == 0:
                continue
            factor = self._mesh_factor(n_cores, decomp, dim)
            # 2x: the +/- directions serialize; 2L: a blocking exchange pays
            # both the send- and the receive-side software overhead (nothing
            # is hidden behind the DMA engine in the original code).
            comm_per_grid += 2 * (
                2 * torus.message_overhead + factor * s / torus.effective_bandwidth
            )
        compute = G * block_points * t_point
        comm = G * comm_per_grid
        total = compute + comm
        return FDTiming(
            approach_name=approach.name,
            n_cores=n_cores,
            batch_size=1,
            total=total,
            compute=compute,
            compute_ideal=job.total_points / n_cores * self.spec.stencil_point_time,
            comm_exposed=comm,
            sync=0.0,
            comm_bytes_per_node=self._comm_per_node(decomp, approach, n_cores, G),
            messages_per_rank=self._count_messages(decomp) * G,
            message_bytes=max(
                (decomp.send_bytes(0, dim, +1, w) for dim in range(3)), default=0
            ),
        )

    def _comm_per_node(
        self, decomp: Decomposition, approach: Approach, n_cores: int, n_grids: int
    ) -> float:
        """Inter-node bytes sent per node per invocation (Fig 6)."""
        w = self._halo_width(decomp)
        per_domain = decomp.comm_bytes(0, w) * n_grids
        if not approach.decompose_per_rank:
            # node-level decomposition (hybrid modes, flat sub-groups):
            # the node's traffic is one domain's surface over all grids
            return float(per_domain)
        return float(per_domain * (min(4, n_cores) if n_cores >= 4 else n_cores))

    # -- batch-size search -------------------------------------------------------
    def best_batch_size(
        self,
        job: FDJob,
        approach: Approach,
        n_cores: int,
        candidates: Optional[Sequence[int]] = None,
        ramp_up: bool = False,
    ) -> FDTiming:
        """The fastest timing over candidate batch sizes.

        The paper finds "the best batch-size" per configuration (Figs 6, 7);
        default candidates are powers of two up to the grids available per
        compute unit.
        """
        if not approach.supports_batching:
            return self.evaluate(job, approach, n_cores, 1)
        if candidates is None:
            per_unit = job.n_grids
            if approach.is_hybrid and not approach.sync_per_grid:
                per_unit = max(1, job.n_grids // min(4, n_cores))
            candidates = [1]
            while candidates[-1] * 2 <= per_unit:
                candidates.append(candidates[-1] * 2)
        best: Optional[FDTiming] = None
        for b in candidates:
            t = self.evaluate(job, approach, n_cores, b, ramp_up=ramp_up)
            if best is None or t.total < best.total:
                best = t
        assert best is not None
        return best
