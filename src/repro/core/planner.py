"""Model-driven configuration selection: which configuration wins?

The paper's central question — approach x batch size x band groups at a
given core count (sections IV-VII) — answered by one component instead of
per-figure driver code.  The :class:`Planner` enumerates every feasible
candidate for a :class:`~repro.core.jobspec.ProblemSpec` at a core count,
prices each one by walking its *compiled* schedule plans through the
analytic models (:class:`~repro.core.perfmodel.PerformanceModel` for the
FD invocation, :meth:`~repro.core.bandpar.BandParallelModel
.subspace_times` for the ring orthogonalization), and returns the ranked
:class:`PlanChoice` list plus the reason every infeasible candidate was
rejected — memory, divisibility, whole-node constraints.

The ranking metric is one *SCF-relevant step*, uniform across all
candidates so flat, hybrid and band-parallel layouts compare on one axis:

    ``FD_APPLICATIONS_PER_SCF * fd + max(subspace_compute, subspace_ring)``

which for ``n_band_groups > 1`` is exactly
:attr:`~repro.core.bandpar.BandParTiming.total`, and for ``nb = 1`` adds
the same (candidate-independent) degenerate GEMM term to every approach —
so within a core count the argmin agrees with the per-figure sweeps the
repo already pins.

:meth:`Planner.cross_check` replays a choice's plans through the DES
(:func:`~repro.core.simrun.simulate_fd` + :func:`~repro.core.simrun
.simulate_band_plan`); tests hold it to the repo's existing <= 5%
model-vs-DES tolerance.  Since the compiled replay engine
(:mod:`repro.core.simrun_compiled`) the cross-check is no longer limited
to small core counts — ``des_top_k`` is affordable at paper-scale group
sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.approaches import ALL_APPROACHES, approach_by_name
from repro.core.bandpar import BandParallelModel
from repro.core.jobspec import JobSpec, LayoutSpec, ProblemSpec
from repro.core.memory import fd_memory_per_rank, memory_limit_per_rank
from repro.core.perfmodel import FDJob, PerformanceModel
from repro.core.schedule import BandSchedulePlan, compile_band_schedule
from repro.core.wholeapp import WholeAppModel
from repro.grid.bandgroups import BandGroups
from repro.machine.spec import BGP_SPEC, MachineSpec

__all__ = ["Candidate", "Rejection", "PlanChoice", "PlanResult", "Planner"]


@dataclass(frozen=True)
class Candidate:
    """One (approach, batch, band groups) configuration to price."""

    approach: str
    batch_size: int
    n_band_groups: int


@dataclass(frozen=True)
class Rejection:
    """Why a candidate family never reached the ranking."""

    approach: str
    n_band_groups: int
    reason: str


@dataclass
class PlanChoice:
    """One ranked feasible configuration with its predicted step time."""

    spec: JobSpec
    #: seconds of one SCF-relevant step (the ranking metric)
    predicted_time: float
    #: one FD invocation of the candidate's (per-group) job
    fd_time: float
    #: exposed subspace seconds: max(gemm, ring)
    subspace_time: float
    subspace_compute: float
    subspace_ring: float
    rank: int = 0
    #: DES replay of the same plans (filled by ``des_top_k``/``cross_check``)
    des_time: Optional[float] = None

    @property
    def model_vs_des(self) -> Optional[float]:
        """``predicted/des`` ratio, ``None`` until cross-checked."""
        if self.des_time is None or self.des_time <= 0:
            return None
        return self.predicted_time / self.des_time


@dataclass
class PlanResult:
    """Ranked feasible choices plus every rejection, for one problem."""

    problem: ProblemSpec
    n_cores: int
    choices: list[PlanChoice] = field(default_factory=list)
    rejected: list[Rejection] = field(default_factory=list)

    def best(self) -> PlanChoice:
        if not self.choices:
            raise ValueError(
                "no feasible configuration; rejections: "
                + "; ".join(f"{r.approach} nb={r.n_band_groups}: {r.reason}"
                            for r in self.rejected)
            )
        return self.choices[0]


class Planner:
    """Enumerate, price and rank configurations on a calibrated machine."""

    def __init__(self, spec: MachineSpec = BGP_SPEC):
        self.machine = spec
        self.fd_model = PerformanceModel(spec)
        self.band_model = BandParallelModel(spec)

    # -- enumeration -------------------------------------------------------
    def enumerate(
        self,
        problem: ProblemSpec,
        n_cores: int,
        max_groups: int = 8,
        approaches: Optional[Sequence[str]] = None,
    ) -> tuple[list[Candidate], list[Rejection]]:
        """All feasible candidates plus the rejections, in stable order.

        Band groups run over *every* integer ``2..max_groups`` (not just
        powers of two) and only apply to hybrid-multiple (the layout the
        band-parallel extension assumes); counts that don't divide the
        bands or the node grid come back as typed :class:`Rejection`\\ s
        rather than being silently skipped, so a sweep can report *why*
        e.g. ``nb=3`` lost to ``nb=4``.  Batch sizes come from
        :meth:`~repro.core.perfmodel.PerformanceModel.batch_candidates`,
        the same space ``best_batch_size`` searches.
        """
        names = list(approaches) if approaches else [a.name for a in ALL_APPROACHES]
        job = problem.fd_job()
        feasible: list[Candidate] = []
        rejected: list[Rejection] = []
        for name in names:
            a = approach_by_name(name)
            if a.is_hybrid and n_cores >= 4 and n_cores % 4:
                rejected.append(Rejection(
                    name, 1, f"hybrid modes need whole nodes, got {n_cores} cores"
                ))
                continue
            nb_values = [1]
            if name == "hybrid-multiple":
                nb_values.extend(range(2, max_groups + 1))
            for nb in nb_values:
                if nb > 1:
                    if problem.n_grids % nb:
                        rejected.append(Rejection(name, nb, (
                            f"n_grids ({problem.n_grids}) must be divisible "
                            f"by band groups ({nb})"
                        )))
                        continue
                    if n_cores % (4 * nb):
                        rejected.append(Rejection(name, nb, (
                            f"n_cores ({n_cores}) must be divisible by "
                            f"4 cores/node x {nb} band groups"
                        )))
                        continue
                group_cores = n_cores // nb
                group_job = FDJob(job.grid, job.n_grids // nb)
                need = fd_memory_per_rank(group_job, a, group_cores, self.machine)
                limit = memory_limit_per_rank(a, group_cores, self.machine)
                if need > limit:
                    rejected.append(Rejection(name, nb, (
                        f"working set {need / 2**20:.0f} MiB/rank exceeds "
                        f"the {limit / 2**20:.0f} MiB per-rank memory"
                    )))
                    continue
                for b in self.fd_model.batch_candidates(group_job, a, group_cores):
                    feasible.append(Candidate(name, b, nb))
        return feasible, rejected

    # -- pricing -----------------------------------------------------------
    def _band_plan(
        self, problem: ProblemSpec, n_cores: int, nb: int
    ) -> BandSchedulePlan:
        """The compiled ring plan a candidate's subspace step walks.

        For layouts the band model validates (whole nodes) this *is*
        :meth:`BandParallelModel.band_plan` — same cache key, same object.
        ``nb = 1`` on partial nodes (small flat runs) degenerates to the
        two-GEMM plan with no ring steps, compiled directly.
        """
        job = problem.fd_job()
        if n_cores >= 4 and n_cores % (4 * nb) == 0:
            return self.band_model.band_plan(job, n_cores, nb)
        grid = problem.grid()
        layout = BandGroups(n_ranks=n_cores, n_bands=problem.n_grids, n_groups=nb)
        gemm_points = max(1, round(grid.n_points * nb / n_cores))
        return compile_band_schedule(
            layout, gemm_points, gemm_points, grid.bytes_per_point
        )

    def evaluate(
        self, problem: ProblemSpec, n_cores: int, candidate: Candidate
    ) -> PlanChoice:
        """Price one candidate: compiled FD plan + compiled ring plan."""
        nb = candidate.n_band_groups
        a = approach_by_name(candidate.approach)
        spec = JobSpec(
            problem=problem,
            layout=LayoutSpec(
                approach=candidate.approach,
                n_cores=n_cores,
                batch_size=candidate.batch_size,
                n_band_groups=nb,
            ),
        )
        fd = self.fd_model.evaluate(
            spec.group_job(), a, spec.group_cores, candidate.batch_size
        )
        compute, ring = self.band_model.subspace_times(
            self._band_plan(problem, n_cores, nb)
        )
        subspace = max(compute, ring)
        return PlanChoice(
            spec=spec,
            predicted_time=fd.total * WholeAppModel.FD_APPLICATIONS_PER_SCF
            + subspace,
            fd_time=fd.total,
            subspace_time=subspace,
            subspace_compute=compute,
            subspace_ring=ring,
        )

    # -- ranking -----------------------------------------------------------
    def rank(
        self,
        problem: ProblemSpec,
        n_cores: int,
        max_groups: int = 8,
        approaches: Optional[Sequence[str]] = None,
        des_top_k: int = 0,
    ) -> PlanResult:
        """Enumerate, price and sort every candidate (fastest first).

        A candidate whose plan compilation fails (e.g. a decomposition
        finer than the grid) turns into a rejection rather than an error.
        ``des_top_k > 0`` additionally replays the top-k choices through
        the DES and records their ``des_time``.  The replay runs on the
        compiled engine (:mod:`repro.core.simrun_compiled`), which keeps
        exact cross-checks tractable well past a thousand ranks — seconds
        per choice at paper-scale group sizes, not hours.
        """
        candidates, rejected = self.enumerate(
            problem, n_cores, max_groups=max_groups, approaches=approaches
        )
        choices: list[PlanChoice] = []
        for c in candidates:
            try:
                choices.append(self.evaluate(problem, n_cores, c))
            except ValueError as exc:
                rejected.append(Rejection(c.approach, c.n_band_groups, str(exc)))
        choices.sort(key=lambda ch: ch.predicted_time)
        for i, ch in enumerate(choices):
            ch.rank = i + 1
        for ch in choices[:des_top_k]:
            ch.des_time = self.cross_check(ch)
        return PlanResult(
            problem=problem, n_cores=n_cores, choices=choices, rejected=rejected
        )

    # -- degradation (recovery replanning) ---------------------------------
    def degrade(
        self,
        spec: JobSpec,
        n_cores: int,
        max_groups: Optional[int] = None,
    ) -> PlanResult:
        """Feasible re-plans of a running ``spec`` on ``n_cores`` survivors.

        The recovery controller's question after a fatal failure: with
        fewer ranks, which (batch, band-group) layout should the run
        resume on?  Unlike :meth:`enumerate` this applies *functional-
        plane* rules — the approach is kept, whole-node constraints do
        not apply (rank threads, not BG/P nodes), and any ``nb'`` that
        divides both the grids and the surviving cores is a candidate
        (``nb' <= nb`` by default: the checkpoint regroup path shrinks
        the group count).  Every choice carries the spec's runtime
        section verbatim, so the winner rebuilds the run directly;
        infeasible layouts come back as typed :class:`Rejection`\\ s.
        """
        from dataclasses import replace

        if n_cores < 1:
            return PlanResult(
                problem=spec.problem,
                n_cores=n_cores,
                rejected=[Rejection(
                    spec.layout.approach, spec.layout.n_band_groups,
                    f"no surviving cores ({n_cores})",
                )],
            )
        problem = spec.problem
        a = approach_by_name(spec.layout.approach)
        nb_cap = spec.layout.n_band_groups if max_groups is None else max_groups
        job = problem.fd_job()
        choices: list[PlanChoice] = []
        rejected: list[Rejection] = []
        for nb in range(min(nb_cap, n_cores), 0, -1):
            if problem.n_grids % nb:
                rejected.append(Rejection(a.name, nb, (
                    f"n_grids ({problem.n_grids}) must be divisible by "
                    f"band groups ({nb})"
                )))
                continue
            if n_cores % nb:
                rejected.append(Rejection(a.name, nb, (
                    f"n_cores ({n_cores}) must be divisible by "
                    f"band groups ({nb})"
                )))
                continue
            group_cores = n_cores // nb
            group_job = FDJob(job.grid, job.n_grids // nb)
            try:
                need = fd_memory_per_rank(group_job, a, group_cores, self.machine)
                limit = memory_limit_per_rank(a, group_cores, self.machine)
            except ValueError as exc:
                # e.g. a hybrid approach's whole-node rule on a partial
                # survivor count — a rejection, never an exception
                rejected.append(Rejection(a.name, nb, str(exc)))
                continue
            if need > limit:
                rejected.append(Rejection(a.name, nb, (
                    f"working set {need / 2**20:.0f} MiB/rank exceeds "
                    f"the {limit / 2**20:.0f} MiB per-rank memory"
                )))
                continue
            try:
                batches = self.fd_model.batch_candidates(group_job, a, group_cores)
            except ValueError as exc:
                rejected.append(Rejection(a.name, nb, str(exc)))
                continue
            for b in batches:
                try:
                    choices.append(
                        self.evaluate(problem, n_cores, Candidate(a.name, b, nb))
                    )
                except ValueError as exc:
                    rejected.append(Rejection(a.name, nb, str(exc)))
                    break  # the whole nb family shares the failure
        for ch in choices:
            ch.spec = replace(ch.spec, runtime=spec.runtime)
        choices.sort(key=lambda ch: ch.predicted_time)
        for i, ch in enumerate(choices):
            ch.rank = i + 1
        return PlanResult(
            problem=problem, n_cores=n_cores, choices=choices, rejected=rejected
        )

    def best(
        self,
        problem: ProblemSpec,
        n_cores: int,
        max_groups: int = 8,
        approaches: Optional[Sequence[str]] = None,
    ) -> PlanChoice:
        """The fastest feasible configuration (the ``repro plan`` verdict)."""
        return self.rank(
            problem, n_cores, max_groups=max_groups, approaches=approaches
        ).best()

    # -- DES cross-check ---------------------------------------------------
    def cross_check(self, choice: PlanChoice) -> float:
        """DES seconds of the choice's SCF-relevant step.

        Replays the *same* compiled plans the analytic pricing walked:
        one group's FD invocation through :func:`simulate_fd` and the
        ring plan through :func:`simulate_band_plan`, combined with the
        same step formula.  The FD leg uses the compiled table-driven
        engine, so thousand-rank groups cross-check in seconds.
        """
        from repro.core.simrun import simulate_band_plan, simulate_fd

        spec = choice.spec
        fd = simulate_fd(
            spec.group_job(),
            spec.approach_obj(),
            spec.group_cores,
            batch_size=spec.layout.batch_size,
            spec=self.machine,
        )
        band = simulate_band_plan(
            self._band_plan(spec.problem, spec.layout.n_cores,
                            spec.layout.n_band_groups),
            spec=self.machine,
        )
        return fd.total * WholeAppModel.FD_APPLICATIONS_PER_SCF + band.total
