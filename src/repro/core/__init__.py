"""The paper's contribution: the optimized distributed finite-difference op.

Four programming approaches (section VI), one engine, two planes:

* :mod:`repro.core.approaches` — declarative descriptions of *Flat
  original*, *Flat optimized*, *Hybrid multiple* and *Hybrid master-only*.
* :mod:`repro.core.batching` — grid batches and the ramp-up schedule that
  softens the double-buffering prologue (section V-A).
* :mod:`repro.core.schedule` — the schedule compiler: turns an approach,
  a decomposition and a batch config into an explicit per-worker step IR
  that all three execution planes consume.
* :mod:`repro.core.engine` — the functional engine: interprets compiled
  plans on real NumPy grids over a transport, bit-identical to the
  sequential stencil.
* :mod:`repro.core.workspace` — the buffer arena the engine borrows
  scratch, output and halo message buffers from (zero-allocation steady
  state).
* :mod:`repro.core.simrun` — the same compiled plans replayed through
  simulated MPI on the DES machine: exact message-level timing at small
  scale.
* :mod:`repro.core.perfmodel` — the closed-form performance model used to
  regenerate the paper's figures at up to 16384 cores; walks the compiled
  plan and is cross-validated against :mod:`repro.core.simrun` by tests.
* :mod:`repro.core.jobspec` — the typed run configuration
  (:class:`JobSpec`) every consumer validates through exactly once.
* :mod:`repro.core.planner` — the model-driven :class:`Planner` that
  enumerates, prices and ranks feasible configurations.
"""

from repro.core.approaches import (
    Approach,
    FLAT_ORIGINAL,
    FLAT_OPTIMIZED,
    HYBRID_MULTIPLE,
    HYBRID_MASTER_ONLY,
    ALL_APPROACHES,
    approach_by_name,
)
from repro.core.bandpar import BandParallelModel, BandParTiming
from repro.core.batching import batch_schedule
from repro.core.schedule import (
    BandSchedulePlan,
    PartialGemm,
    RingSendRecv,
    SchedulePlan,
    StepDependency,
    clear_plan_cache,
    compile_band_schedule,
    compile_schedule,
    plan_cache_stats,
    plan_dependencies,
    recv_sources,
    ring_tag,
    timing_plane_workers,
    tracer_hook,
)
from repro.core.engine import DistributedStencil, SequentialStencil
from repro.core.workspace import Workspace
from repro.core.jobspec import (
    JobSpec,
    LayoutSpec,
    ProblemSpec,
    RuntimeSpec,
    SpecMismatchError,
    check_restart_compatible,
)
from repro.core.perfmodel import FDJob, PerformanceModel, FDTiming
from repro.core.planner import (
    Candidate,
    PlanChoice,
    Planner,
    PlanResult,
    Rejection,
)
from repro.core.recovery_policy import (
    AdaptiveCadence,
    DegradationError,
    DegradationPolicy,
    DegradationStep,
)
from repro.core.simrun import (
    simulate_band_plan,
    simulate_band_step,
    simulate_fd,
    simulate_spec,
)
from repro.core.wholeapp import ScfPhaseTimes, WholeAppModel
from repro.core.memory import (
    fd_memory_per_rank,
    fits_in_memory,
    max_grids_per_core,
    memory_limit_per_rank,
)

__all__ = [
    "Approach",
    "FLAT_ORIGINAL",
    "FLAT_OPTIMIZED",
    "HYBRID_MULTIPLE",
    "HYBRID_MASTER_ONLY",
    "ALL_APPROACHES",
    "approach_by_name",
    "BandParallelModel",
    "BandParTiming",
    "BandSchedulePlan",
    "batch_schedule",
    "PartialGemm",
    "RingSendRecv",
    "SchedulePlan",
    "clear_plan_cache",
    "compile_band_schedule",
    "compile_schedule",
    "StepDependency",
    "plan_dependencies",
    "recv_sources",
    "plan_cache_stats",
    "ring_tag",
    "timing_plane_workers",
    "tracer_hook",
    "DistributedStencil",
    "SequentialStencil",
    "Workspace",
    "JobSpec",
    "LayoutSpec",
    "ProblemSpec",
    "RuntimeSpec",
    "SpecMismatchError",
    "check_restart_compatible",
    "Candidate",
    "PlanChoice",
    "Planner",
    "PlanResult",
    "Rejection",
    "AdaptiveCadence",
    "DegradationError",
    "DegradationPolicy",
    "DegradationStep",
    "FDJob",
    "PerformanceModel",
    "FDTiming",
    "simulate_band_plan",
    "simulate_band_step",
    "simulate_fd",
    "simulate_spec",
    "ScfPhaseTimes",
    "WholeAppModel",
    "fd_memory_per_rank",
    "fits_in_memory",
    "max_grids_per_core",
    "memory_limit_per_rank",
]
