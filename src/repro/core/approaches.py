"""The four programming approaches of section VI, as declarative specs.

Every knob that distinguishes the approaches in the paper is a field here,
so the functional engine, the DES runner and the analytic model all consume
one description:

================  ========  ==========  ============  ===========  ==========
approach          node mode thread mode decomposition comm done by sync cost
================  ========  ==========  ============  ===========  ==========
Flat original     VN        SINGLE      per rank      each rank    none
Flat optimized    VN        SINGLE      per rank      each rank    none
Hybrid multiple   SMP       MULTIPLE    per node      each thread  constant
Hybrid master-o.  SMP       SINGLE      per node      master       per grid
================  ========  ==========  ============  ===========  ==========

Flat original is the only approach without the section V optimizations
(simultaneous non-blocking exchange, double buffering, batching).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.partition import NodeMode
from repro.smpi.datatypes import ThreadMode
from repro.util.validation import check_positive_int


@dataclass(frozen=True)
class Approach:
    """One programming approach for the distributed FD operation."""

    name: str
    #: how the four cores of a node are exposed (VN = paper's virtual mode)
    node_mode: NodeMode
    #: MPI thread support level requested
    thread_mode: ThreadMode
    #: True: every grid is divided over all *ranks* (flat); False: over
    #: *nodes*, with whole grids distributed between the node's cores
    decompose_per_rank: bool
    #: surface exchange one dimension at a time, blocking (original GPAW)
    serialized_exchange: bool
    #: overlap exchanges with computation across grids/batches (section V-A)
    double_buffering: bool
    #: pack several grids' surfaces into one message (section V-A)
    supports_batching: bool
    #: threads per MPI rank that perform communication
    comm_threads: int
    #: threads per MPI rank that compute
    compute_threads: int
    #: a thread barrier after *every grid* (master-only's penalty)
    sync_per_grid: bool

    def __post_init__(self) -> None:
        if self.comm_threads < 1 or self.compute_threads < 1:
            raise ValueError("thread counts must be >= 1")
        if self.comm_threads > self.compute_threads:
            raise ValueError("cannot have more comm threads than threads")

    @property
    def is_hybrid(self) -> bool:
        """True when threads (not virtual-mode ranks) use the cores."""
        return self.node_mode is NodeMode.SMP

    def domains_for(self, n_cores: int) -> int:
        """Number of decomposition domains on ``n_cores`` CPU cores.

        Flat modes divide every grid over all ranks (= cores, in VN mode);
        hybrid modes divide only over nodes (4 cores each), the paper's
        "Flat optimized divides the grids four times more" (section VII-A).
        """
        if n_cores < 1:
            raise ValueError(f"n_cores must be >= 1, got {n_cores}")
        if self.decompose_per_rank:
            return n_cores
        if n_cores < 4:
            return 1  # a partial node still decomposes at node level
        if n_cores % 4:
            raise ValueError(f"hybrid modes need whole nodes, got {n_cores} cores")
        return n_cores // 4

    def n_nodes_for(self, n_cores: int) -> int:
        """Nodes used by ``n_cores`` cores (4 cores per node)."""
        return max(1, n_cores // 4) if n_cores >= 4 else 1

    def validate_batch_size(self, batch_size: int) -> int:
        """Check a batch size against this approach's capabilities.

        The one validation every consumer (schedule compiler, functional
        engine, DES runner, analytic model) funnels through, so the error
        text stays uniform.  Returns the batch size as an int.
        """
        batch_size = check_positive_int(batch_size, "batch_size")
        if not self.supports_batching and batch_size != 1:
            raise ValueError(f"{self.name} does not support batching")
        return batch_size


FLAT_ORIGINAL = Approach(
    name="flat-original",
    node_mode=NodeMode.VN,
    thread_mode=ThreadMode.SINGLE,
    decompose_per_rank=True,
    serialized_exchange=True,
    double_buffering=False,
    supports_batching=False,
    comm_threads=1,
    compute_threads=1,
    sync_per_grid=False,
)

FLAT_OPTIMIZED = Approach(
    name="flat-optimized",
    node_mode=NodeMode.VN,
    thread_mode=ThreadMode.SINGLE,
    decompose_per_rank=True,
    serialized_exchange=False,
    double_buffering=True,
    supports_batching=True,
    comm_threads=1,
    compute_threads=1,
    sync_per_grid=False,
)

HYBRID_MULTIPLE = Approach(
    name="hybrid-multiple",
    node_mode=NodeMode.SMP,
    thread_mode=ThreadMode.MULTIPLE,
    decompose_per_rank=False,
    serialized_exchange=False,
    double_buffering=True,
    supports_batching=True,
    comm_threads=4,
    compute_threads=4,
    sync_per_grid=False,
)

HYBRID_MASTER_ONLY = Approach(
    name="hybrid-master-only",
    node_mode=NodeMode.SMP,
    thread_mode=ThreadMode.SINGLE,
    decompose_per_rank=False,
    serialized_exchange=False,
    double_buffering=True,
    supports_batching=True,
    comm_threads=1,
    compute_threads=4,
    sync_per_grid=True,
)

#: Section VII-A's experimental variant: Flat optimized modified so the
#: node's four processes each own a static sub-group of whole grids on a
#: *node-level* decomposition — hybrid multiple's structure realized with
#: virtual-node ranks instead of threads.  Not usable in real GPAW (each
#: rank would need every grid's subset, section IV), but the experiment
#: that proves the decomposition level causes the flat/hybrid gap.
FLAT_SUBGROUPS = Approach(
    name="flat-subgroups",
    node_mode=NodeMode.VN,
    thread_mode=ThreadMode.SINGLE,
    decompose_per_rank=False,
    serialized_exchange=False,
    double_buffering=True,
    supports_batching=True,
    comm_threads=1,
    compute_threads=1,
    sync_per_grid=False,
)

#: The paper's four contenders (the sub-groups variant is an ablation and
#: appears in no figure, so it is not part of this tuple).
ALL_APPROACHES: tuple[Approach, ...] = (
    FLAT_ORIGINAL,
    FLAT_OPTIMIZED,
    HYBRID_MULTIPLE,
    HYBRID_MASTER_ONLY,
)


def approach_by_name(name: str) -> Approach:
    """Look an approach up by its paper name (kebab-case)."""
    for a in ALL_APPROACHES + (FLAT_SUBGROUPS,):
        if a.name == name:
            return a
    names = ", ".join(a.name for a in ALL_APPROACHES + (FLAT_SUBGROUPS,))
    raise ValueError(f"unknown approach {name!r}; choose from: {names}")
