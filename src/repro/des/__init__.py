"""A small deterministic discrete-event simulation (DES) kernel.

This is the substrate under the simulated Blue Gene/P: the torus links,
DMA engines, MPI ranks and worker threads of the performance plane are all
DES processes.  The kernel is intentionally minimal — a binary-heap event
queue plus generator-based processes (the SimPy execution model) — because
determinism and debuggability matter more here than feature breadth.

Key concepts
------------

``Simulator``
    owns the clock and the event heap; ``run()`` drains it.
``Event``
    a one-shot occurrence that processes can wait on; carries a value.
``Process``
    a Python generator driven by the simulator.  Yield an :class:`Event`
    (or helper like ``sim.timeout(dt)``) to suspend until it fires.
``Resource``
    a counted FIFO resource (used for link/DMA contention).
``Store``
    an unbounded FIFO of items with blocking ``get`` (used for mailboxes).

Example
-------

>>> from repro.des import Simulator
>>> sim = Simulator()
>>> log = []
>>> def proc(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.spawn(proc(sim, "b", 2.0))
>>> _ = sim.spawn(proc(sim, "a", 1.0))
>>> sim.run()
>>> log
[(1.0, 'a'), (2.0, 'b')]
"""

from repro.des.core import (
    Simulator,
    Event,
    Process,
    Interrupt,
    SimulationError,
    AllOf,
    AnyOf,
)
from repro.des.resources import Resource, Store
from repro.des.trace import Span, Tracer

__all__ = [
    "Simulator",
    "Event",
    "Process",
    "Interrupt",
    "SimulationError",
    "AllOf",
    "AnyOf",
    "Resource",
    "Store",
    "Span",
    "Tracer",
]
