"""Counted resources and FIFO stores for the DES kernel.

``Resource`` models contention (a torus link, a DMA engine, a lock):
processes ``yield res.acquire()`` and must ``release()`` when done.
``Store`` models mailboxes: ``put`` never blocks, ``yield store.get()``
blocks until an item is available.  Both hand out items in strict FIFO
order, which keeps simulated message traces deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Optional

from repro.des.core import Event, SimulationError, Simulator


class Resource:
    """A counted FIFO resource with ``capacity`` concurrent holders."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently-held slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of acquire requests waiting for a slot."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Return an event that fires when a slot is granted to the caller."""
        ev = self.sim.event(name=f"acquire({self.name})")
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Release one held slot, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise SimulationError(f"release() on idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot directly to the next waiter; _in_use is unchanged.
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1

    def use(self, duration: float):
        """Process helper: hold one slot for ``duration`` seconds.

        Usage inside a process::

            yield from link.use(transfer_time)
        """
        yield self.acquire()
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release()


class Store:
    """An unbounded FIFO of items with blocking ``get``.

    Items put while getters wait are handed over immediately (at the current
    simulation time); otherwise they queue.
    """

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = self.sim.event(name=f"get({self.name})")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: the next item, or None if the store is empty."""
        if self._items:
            return self._items.popleft()
        return None
