"""Core of the discrete-event kernel: clock, events, processes.

Execution model
---------------

The simulator keeps a heap of ``(time, sequence, fn, args)`` entries.  The
``sequence`` counter makes the ordering of simultaneous events deterministic
(FIFO in scheduling order) — essential for reproducible message traces.
Because the sequence is unique, the heap never compares ``fn``/``args``,
so entries are plain tuples: no closure allocation per scheduled call.

Two layers share that heap:

* the **callback fast path** — :meth:`Simulator.call_at` /
  :meth:`Simulator.call_soon` schedule a bare ``fn(*args)`` with no event
  object at all.  The compiled replay engine
  (:mod:`repro.core.simrun_compiled`) runs entirely on this layer.
* the **event layer** — :class:`Event`, :class:`Timeout`, :class:`Process`
  build condition variables and coroutine processes on top of the same
  primitives.  A :class:`Process` wraps a generator; each ``yield`` must
  produce an :class:`Event`, and the process is resumed with the event's
  value when it fires.  If the yielded event failed, the exception is
  thrown into the generator so processes can use ordinary ``try/except``.

Both layers interleave on one ``(time, sequence)`` total order, so a
callback-layer reimplementation of an event-layer program can reproduce
its schedule bit-for-bit by issuing the same number of hops.

The run loop pops *batches* of simultaneous entries: the clock is written
once per distinct timestamp instead of once per event.  Within a batch,
entries still fire strictly in sequence order, and entries scheduled for
the current time by a firing callback join the same batch (exactly the
one-at-a-time behaviour, minus the redundant clock stores and peeks).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


_PENDING = object()


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *pending*; it is *triggered* exactly once, either with a
    value (:meth:`succeed`) or with an exception (:meth:`fail`).  Processes
    (and other callbacks) registered before the trigger run at the trigger
    time; callbacks added after the trigger run immediately.
    """

    __slots__ = ("sim", "_value", "_ok", "callbacks", "_name")

    def __init__(self, sim: "Simulator", name: str = ""):
        self.sim = sim
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self.callbacks: Optional[list[Callable[[Event], None]]] = []
        self._name = name

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has fired (successfully or not)."""
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        """True if the event fired successfully. Undefined before firing."""
        if not self.triggered:
            raise SimulationError(f"event {self!r} has not fired yet")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The value the event fired with (or its exception)."""
        if not self.triggered:
            raise SimulationError(f"event {self!r} has not fired yet")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Fire the event successfully, scheduling its callbacks now."""
        self._trigger(value, ok=True)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Fire the event with an exception."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        self._trigger(exc, ok=False)
        return self

    def _trigger(self, value: Any, ok: bool) -> None:
        if self.triggered:
            raise SimulationError(f"event {self!r} fired twice")
        self._value = value
        self._ok = ok
        callbacks, self.callbacks = self.callbacks, None
        assert callbacks is not None
        for cb in callbacks:
            self.sim.call_soon(cb, self)

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Run ``cb(event)`` when the event fires (immediately if already fired)."""
        if self.callbacks is None:
            self.sim.call_soon(cb, self)
        else:
            self.callbacks.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        label = f" {self._name!r}" if self._name else ""
        return f"<Event{label} {state}>"


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"timeout delay must be >= 0, got {delay}")
        super().__init__(sim, name="timeout")
        sim.call_at(sim.now + delay, self._fire, value)

    def _fire(self, value: Any) -> None:
        self.succeed(value)


class AllOf(Event):
    """Fires when *all* of the given events have fired successfully.

    Its value is the list of the constituent events' values, in input order.
    Fails with the first failure observed.
    """

    __slots__ = ("_remaining", "_events")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="all_of")
        self._events = list(events)
        self._remaining = len(self._events)
        if self._remaining == 0:
            self.succeed([])
            return
        for ev in self._events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self._events])


class AnyOf(Event):
    """Fires when *any* of the given events fires; value is ``(index, value)``."""

    __slots__ = ("_events",)

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, name="any_of")
        self._events = list(events)
        if not self._events:
            raise ValueError("AnyOf requires at least one event")
        for i, ev in enumerate(self._events):
            ev.add_callback(lambda e, i=i: self._on_child(i, e))

    def _on_child(self, index: int, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
        else:
            self.succeed((index, ev.value))


class Process(Event):
    """A generator driven by the simulator.

    The process *is* an event: it fires with the generator's return value
    when the generator finishes, so processes can wait on each other simply
    by yielding the :class:`Process` object.
    """

    __slots__ = ("_gen", "_waiting_on")

    def __init__(self, sim: "Simulator", gen: Generator[Event, Any, Any], name: str = ""):
        if not hasattr(gen, "send"):
            raise TypeError(f"Process requires a generator, got {gen!r}")
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self._gen = gen
        self._waiting_on: Optional[Event] = None
        # Start the process at the current simulation time.
        sim.call_soon(self._resume, None)

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError("cannot interrupt a finished process")
        self._waiting_on = None  # the interrupted wait is abandoned
        self.sim.call_soon(self._throw, Interrupt(cause))

    # -- driving ---------------------------------------------------------
    def _resume(self, ev: Optional[Event]) -> None:
        if self.triggered:
            return
        if ev is not None and self._waiting_on is not ev:
            return  # stale wake-up from an abandoned (interrupted) wait
        if ev is not None and not ev.ok:
            self._throw(ev.value)
            return
        value = None if ev is None else ev.value
        self._step(lambda: self._gen.send(value))

    def _throw(self, exc: BaseException) -> None:
        if self.triggered:
            return
        self._step(lambda: self._gen.throw(exc))

    def _step(self, advance: Callable[[], Event]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self._waiting_on = None
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An unhandled interrupt terminates the process abnormally.
            self._waiting_on = None
            self.fail(exc)
            return
        except Exception as exc:
            self._waiting_on = None
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.fail(
                SimulationError(
                    f"process {self._name!r} yielded {target!r}; "
                    "processes must yield Event instances"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)


class Simulator:
    """Event heap + clock.  All simulation state hangs off one instance."""

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._seq = 0
        #: heap entries fired so far — one per scheduled callback, whether
        #: it came from the event layer or the fast path; engine
        #: equivalence tests assert this matches between engines
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling primitives -------------------------------------------
    def call_at(self, t: float, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute time ``t`` (fast path).

        One heap tuple, no event object; entries at equal times fire in
        scheduling order.
        """
        if t < self._now:
            raise SimulationError(f"cannot schedule into the past ({t} < {self._now})")
        self._seq += 1
        heapq.heappush(self._heap, (t, self._seq, fn, args))

    def call_soon(self, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at the current time (after pending callbacks)."""
        self._seq += 1
        heapq.heappush(self._heap, (self._now, self._seq, fn, args))

    # kept as aliases: external components (resources, tests) predate the
    # public fast-path names
    _schedule_at = call_at
    _schedule_call = call_soon

    # -- public API --------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """An event firing when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """An event firing when the first of ``events`` fires."""
        return AnyOf(self, events)

    def spawn(self, gen: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a new process from a generator; returns its Process event."""
        return Process(self, gen, name=name)

    def run(self, until: Optional[float] = None) -> float:
        """Drain the event heap; returns the final simulation time.

        With ``until``, stops once the next event would be strictly later
        than ``until`` and fast-forwards the clock to exactly ``until``.

        Simultaneous entries fire as one batch: the clock is stored once
        per distinct timestamp, and entries a callback schedules for the
        current time join the running batch (identical order to popping
        one entry at a time).
        """
        heap = self._heap
        pop = heapq.heappop
        fired = 0
        while heap:
            t = heap[0][0]
            if until is not None and t > until:
                self._now = until
                self.events_processed += fired
                return self._now
            self._now = t
            while heap and heap[0][0] == t:
                entry = pop(heap)
                fired += 1
                entry[2](*entry[3])
        if until is not None and until > self._now:
            self._now = until
        self.events_processed += fired
        return self._now

    def run_process(self, gen: Generator[Event, Any, Any], name: str = "") -> Any:
        """Spawn ``gen``, run to completion, and return its result.

        Raises the process's exception if it failed — the convenient entry
        point for request/response style simulations (e.g. one ping-pong).
        """
        proc = self.spawn(gen, name=name)
        self.run()
        if not proc.triggered:
            raise SimulationError(
                f"process {name or gen!r} never finished (deadlock: "
                "event heap drained while the process still waits)"
            )
        if not proc.ok:
            raise proc.value
        return proc.value
