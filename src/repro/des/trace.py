"""Activity tracing for simulations.

A :class:`Tracer` collects timestamped spans (who did what, from when to
when) from any simulation component that cares to report; the DES runner
uses it to record per-core compute spans and per-link transfers.  Spans
can be queried, aggregated into per-resource busy time, or rendered as an
ASCII Gantt chart — the debugging view that makes schedule bugs (a hole in
the pipeline, a serialized exchange) visible at a glance.

Recording is array-backed: :meth:`Tracer.record` appends one plain tuple
(no per-record object, no O(n) insort), and the :class:`Span` objects are
materialized lazily on first query — a stable sort by ``(start, end)``
reproduces exactly the order the old incremental ``insort`` maintained
(ties stay in arrival order).  At 4096+ simulated ranks this keeps trace
capture out of the replay hot path entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass(frozen=True, order=True)
class Span:
    """One traced activity interval.

    .. warning:: **Ordering pitfall.**  ``order=True`` with
       ``field(compare=False)`` on ``resource``/``label`` means spans
       compare (and sort) by ``(start, end)`` *only* — two spans on
       different resources with the same interval are ``==`` for
       ordering purposes, so ``sorted(spans)`` leaves their relative
       order to insertion order, and the tracer's lazy stable sort
       keeps ties in arrival order.  That is fine for the per-resource
       queries here, but any exporter needing a *deterministic total
       order* must add explicit tie-breakers — see ``repro.obs.export``
       (sorts by ``(start, end, resource, label)``) and
       ``repro.obs.spans.StepSpan`` (which drops ``order=True``
       entirely in favor of an explicit ``sort_key``).
    """

    start: float
    end: float
    resource: str = field(compare=False)  # e.g. "node0.core2", "link(3,+x)"
    label: str = field(compare=False, default="")  # e.g. "compute b3"

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span ends before it starts: {self.start}..{self.end}")

    @property
    def duration(self) -> float:
        return self.end - self.start


def _sort_key(record: tuple) -> tuple[float, float]:
    return (record[0], record[1])


class Tracer:
    """Collects spans; cheap enough to leave on in tests."""

    def __init__(self) -> None:
        # raw (start, end, resource, label) rows, in arrival order
        self._records: list[tuple[float, float, str, str]] = []
        self._spans: Optional[list[Span]] = None  # lazy, (start, end)-sorted

    def record(self, resource: str, start: float, end: float, label: str = "") -> None:
        """Add one finished activity span."""
        if end < start:
            raise ValueError(f"span ends before it starts: {start}..{end}")
        self._records.append((start, end, resource, label))
        self._spans = None

    def extend(self, records: Iterable[tuple[float, float, str, str]]) -> None:
        """Bulk-append ``(start, end, resource, label)`` rows.

        The engine-side buffers flush through here once per run; arrival
        order of the iterable becomes the tie order among equal
        ``(start, end)`` intervals.
        """
        recs = self._records
        for r in records:
            if r[1] < r[0]:
                raise ValueError(f"span ends before it starts: {r[0]}..{r[1]}")
            recs.append(r)
        self._spans = None

    def _materialize(self) -> list[Span]:
        if self._spans is None:
            self._spans = [
                Span(start=r[0], end=r[1], resource=r[2], label=r[3])
                for r in sorted(self._records, key=_sort_key)
            ]
        return self._spans

    def __len__(self) -> int:
        return len(self._records)

    def spans(self, resource: Optional[str] = None) -> list[Span]:
        """All spans sorted by ``(start, end)``, optionally filtered."""
        spans = self._materialize()
        if resource is None:
            return list(spans)
        return [s for s in spans if s.resource == resource]

    def resources(self) -> list[str]:
        """Sorted list of resources that appear in the trace."""
        return sorted({r[2] for r in self._records})

    def busy_time(self, resource: str) -> float:
        """Total non-overlapping busy time of one resource."""
        total = 0.0
        last_end = float("-inf")
        for s in self.spans(resource):
            start = max(s.start, last_end)
            if s.end > start:
                total += s.end - start
                last_end = s.end
            else:
                last_end = max(last_end, s.end)
        return total

    def makespan(self) -> float:
        """End of the last span (0 for an empty trace)."""
        return max((r[1] for r in self._records), default=0.0)

    def utilization(self, resource: str) -> float:
        """Busy fraction of one resource over the makespan."""
        total = self.makespan()
        return 0.0 if total <= 0 else self.busy_time(resource) / total

    # -- rendering -------------------------------------------------------------
    def gantt(
        self,
        width: int = 72,
        resources: Optional[Iterable[str]] = None,
        fill: str = "#",
    ) -> str:
        """Render the trace as an ASCII Gantt chart.

        One row per resource, time flowing right; overlapping spans merge
        visually.  Useful in test failures and example output.  The
        rendering itself lives in :func:`repro.obs.export.ascii_gantt`,
        shared with the real-engine and model traces.
        """
        from repro.obs.export import ascii_gantt

        return ascii_gantt(self._materialize(), width=width, resources=resources, fill=fill)
