"""Activity tracing for simulations.

A :class:`Tracer` collects timestamped spans (who did what, from when to
when) from any simulation component that cares to report; the DES runner
uses it to record per-core compute spans and per-link transfers.  Spans
can be queried, aggregated into per-resource busy time, or rendered as an
ASCII Gantt chart — the debugging view that makes schedule bugs (a hole in
the pipeline, a serialized exchange) visible at a glance.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass(frozen=True, order=True)
class Span:
    """One traced activity interval.

    .. warning:: **Ordering pitfall.**  ``order=True`` with
       ``field(compare=False)`` on ``resource``/``label`` means spans
       compare (and sort) by ``(start, end)`` *only* — two spans on
       different resources with the same interval are ``==`` for
       ordering purposes, so ``sorted(spans)`` leaves their relative
       order to insertion order, and ``insort`` (used by
       :meth:`Tracer.record`) keeps ties in arrival order.  That is fine
       for the per-resource queries here, but any exporter needing a
       *deterministic total order* must add explicit tie-breakers — see
       ``repro.obs.export`` (sorts by ``(start, end, resource, label)``)
       and ``repro.obs.spans.StepSpan`` (which drops ``order=True``
       entirely in favor of an explicit ``sort_key``).
    """

    start: float
    end: float
    resource: str = field(compare=False)  # e.g. "node0.core2", "link(3,+x)"
    label: str = field(compare=False, default="")  # e.g. "compute b3"

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span ends before it starts: {self.start}..{self.end}")

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Collects spans; cheap enough to leave on in tests."""

    def __init__(self) -> None:
        self._spans: list[Span] = []

    def record(self, resource: str, start: float, end: float, label: str = "") -> None:
        """Add one finished activity span."""
        insort(self._spans, Span(start=start, end=end, resource=resource, label=label))

    def __len__(self) -> int:
        return len(self._spans)

    def spans(self, resource: Optional[str] = None) -> list[Span]:
        """All spans, optionally filtered by resource name."""
        if resource is None:
            return list(self._spans)
        return [s for s in self._spans if s.resource == resource]

    def resources(self) -> list[str]:
        """Sorted list of resources that appear in the trace."""
        return sorted({s.resource for s in self._spans})

    def busy_time(self, resource: str) -> float:
        """Total non-overlapping busy time of one resource."""
        total = 0.0
        last_end = float("-inf")
        for s in self.spans(resource):
            start = max(s.start, last_end)
            if s.end > start:
                total += s.end - start
                last_end = s.end
            else:
                last_end = max(last_end, s.end)
        return total

    def makespan(self) -> float:
        """End of the last span (0 for an empty trace)."""
        return max((s.end for s in self._spans), default=0.0)

    def utilization(self, resource: str) -> float:
        """Busy fraction of one resource over the makespan."""
        total = self.makespan()
        return 0.0 if total <= 0 else self.busy_time(resource) / total

    # -- rendering -------------------------------------------------------------
    def gantt(
        self,
        width: int = 72,
        resources: Optional[Iterable[str]] = None,
        fill: str = "#",
    ) -> str:
        """Render the trace as an ASCII Gantt chart.

        One row per resource, time flowing right; overlapping spans merge
        visually.  Useful in test failures and example output.  The
        rendering itself lives in :func:`repro.obs.export.ascii_gantt`,
        shared with the real-engine and model traces.
        """
        from repro.obs.export import ascii_gantt

        return ascii_gantt(self._spans, width=width, resources=resources, fill=fill)
