"""Redistribution of a distributed grid between two decompositions.

GPAW does not keep one layout forever: the FD operation wants compact 3D
blocks, dense linear algebra (ScaLAPACK) wants 2D-cyclic matrices, and
restart files want slabs.  The bridge is a redistribution: every rank
intersects its old block with every new block, ships the intersections,
and assembles its new block.

The implementation is geometry-first: :func:`transfer_plan` computes the
exact set of (source rank, destination rank, global-slab) triples — a
pure function that tests can verify tiles the grid — and
:func:`redistribute` executes a plan over the in-process transport.

The band axis gets the same treatment: :func:`band_regroup_plan` maps
every global band from its slot under one :class:`~repro.grid.bandgroups
.BandGroups` layout to its slot under another — the geometry a
band-group-aware shrink restart composes with :func:`transfer_plan`
(domains re-sliced per group, bands re-gathered per new group).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.array import LocalGrid
from repro.grid.bandgroups import BandGroups
from repro.grid.decompose import Decomposition
from repro.grid.halo import HaloSpec
from repro.transport.inproc import RankEndpoint

Slices3 = tuple[slice, slice, slice]


@dataclass(frozen=True)
class Transfer:
    """One piece of a redistribution: a global-coordinate slab moving
    from ``src`` (old layout) to ``dst`` (new layout)."""

    src: int
    dst: int
    global_slices: Slices3

    @property
    def n_points(self) -> int:
        return int(
            np.prod([s.stop - s.start for s in self.global_slices])
        )


def _intersect(a: Slices3, b: Slices3) -> Slices3 | None:
    out = []
    for sa, sb in zip(a, b):
        lo, hi = max(sa.start, sb.start), min(sa.stop, sb.stop)
        if lo >= hi:
            return None
        out.append(slice(lo, hi))
    return tuple(out)  # type: ignore[return-value]


def transfer_plan(old: Decomposition, new: Decomposition) -> list[Transfer]:
    """All slabs that must move to turn layout ``old`` into ``new``.

    Self-transfers (src == dst) are included — they are local copies the
    executor performs without messages.
    """
    if old.grid.shape != new.grid.shape or old.grid.dtype != new.grid.dtype:
        raise ValueError(
            "redistribution requires identical grid descriptors; got "
            f"{old.grid.shape}/{old.grid.dtype} vs {new.grid.shape}/{new.grid.dtype}"
        )
    plan: list[Transfer] = []
    for src in range(old.n_domains):
        src_slices = old.block_slices(src)
        for dst in range(new.n_domains):
            inter = _intersect(src_slices, new.block_slices(dst))
            if inter is not None:
                plan.append(Transfer(src=src, dst=dst, global_slices=inter))
    return plan


@dataclass(frozen=True)
class BandMove:
    """One band's slot change between two :class:`BandGroups` layouts.

    Band ``band`` sits at local index ``src_index`` inside group
    ``src_group``'s contiguous stack under the old layout, and at
    ``dst_index`` inside ``dst_group`` under the new one.  Domain
    re-slicing is orthogonal and handled by :func:`transfer_plan`.
    """

    band: int
    src_group: int
    src_index: int
    dst_group: int
    dst_index: int


def band_regroup_plan(old: BandGroups, new: BandGroups) -> list[BandMove]:
    """Where every band moves when the group layout changes.

    Pure geometry, one entry per global band, in band order — tests can
    verify the moves are a bijection that exactly partitions the band
    axis under both layouts.  Any ``(old, new)`` pair over the same band
    count is valid: growing, shrinking or re-slicing the group count
    (``nb' <= nb`` is the recovery path, but the plan is direction-
    agnostic).
    """
    if old.n_bands != new.n_bands:
        raise ValueError(
            f"band regroup requires identical band counts; got "
            f"{old.n_bands} vs {new.n_bands}"
        )
    return [
        BandMove(
            band=b,
            src_group=old.group_of_band(b),
            src_index=b - old.group_of_band(b) * old.bands_per_group,
            dst_group=new.group_of_band(b),
            dst_index=b - new.group_of_band(b) * new.bands_per_group,
        )
        for b in range(old.n_bands)
    ]


def _to_local(global_slices: Slices3, block_slices: Slices3, width: int) -> Slices3:
    """Global slab -> slab in a block's padded local array."""
    return tuple(  # type: ignore[return-value]
        slice(g.start - b.start + width, g.stop - b.start + width)
        for g, b in zip(global_slices, block_slices)
    )


def redistribute(
    ep: RankEndpoint,
    old_block: LocalGrid,
    new_decomp: Decomposition,
    halo: HaloSpec | None = None,
    tag_base: int = 1 << 24,
) -> LocalGrid:
    """Execute a redistribution for this rank.

    Every rank calls with its block under the *old* decomposition and
    receives its block under ``new_decomp``.  Requires both layouts to
    have one domain per transport rank.  Ghost shells of the result are
    zero (run a halo exchange before stencilling).
    """
    old_decomp = old_block.decomp
    if old_decomp.n_domains != ep.size or new_decomp.n_domains != ep.size:
        raise ValueError(
            f"both layouts must have {ep.size} domains; got "
            f"{old_decomp.n_domains} and {new_decomp.n_domains}"
        )
    halo = old_block.halo if halo is None else halo
    plan = transfer_plan(old_decomp, new_decomp)
    me = ep.rank
    w_old = old_block.halo.width
    out = LocalGrid(new_decomp, me, halo)
    w_new = halo.width

    # send my outgoing slabs (deterministic plan order makes tags unique)
    for i, t in enumerate(plan):
        if t.src != me or t.dst == me:
            continue
        local = _to_local(t.global_slices, old_decomp.block_slices(me), w_old)
        ep.isend(t.dst, old_block.data[local], tag=tag_base + i)
    # local copies
    for t in plan:
        if t.src == me and t.dst == me:
            src_local = _to_local(t.global_slices, old_decomp.block_slices(me), w_old)
            dst_local = _to_local(t.global_slices, new_decomp.block_slices(me), w_new)
            out.data[dst_local] = old_block.data[src_local]
    # receive incoming slabs
    for i, t in enumerate(plan):
        if t.dst != me or t.src == me:
            continue
        payload = ep.recv(src=t.src, tag=tag_base + i)
        dst_local = _to_local(t.global_slices, new_decomp.block_slices(me), w_new)
        out.data[dst_local] = payload.reshape(out.data[dst_local].shape)
    return out
