"""Domain decomposition of real-space grids.

GPAW divides every grid into ``P`` quadrilateral blocks — *the same* blocks
for every grid in the simulation, because operations like wave-function
orthogonalization need matching subsets (section IV).  Without a
user-supplied layout it picks the 3-factorization of ``P`` minimizing the
aggregated block surface, which minimizes halo-exchange volume.

The surface accounting here feeds three consumers:

* the functional engine (which slabs to exchange),
* the analytic performance model (bytes per message / per node), and
* the Fig 6 "communication per node" curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Optional, Sequence

from repro.grid.grid import GridDescriptor
from repro.util.factorize import balanced_partition, best_grid_factorization, chunk_offsets
from repro.util.validation import check_positive_int, check_shape3


def surface_objective(grid_shape: tuple[int, int, int]):
    """The objective GPAW minimizes: aggregated block surface.

    For a candidate process grid ``(px, py, pz)`` the ideal block is
    ``(nx/px, ny/py, nz/pz)``; its surface is twice the sum of pairwise
    face areas, and all ``P`` blocks together have ``P`` times that.
    Constant factors do not change the argmin, so they are dropped.
    """
    nx, ny, nz = grid_shape

    def objective(f: tuple[int, int, int]) -> float:
        px, py, pz = f
        bx, by, bz = nx / px, ny / py, nz / pz
        return (bx * by + by * bz + bx * bz) * px * py * pz

    return objective


@dataclass(frozen=True)
class Decomposition:
    """A grid divided into an ``(px, py, pz)`` process grid of blocks.

    Parameters
    ----------
    grid:
        The global grid descriptor.
    n_domains:
        Number of blocks (MPI processes in flat mode, nodes in hybrid mode).
    domains_shape:
        Explicit process grid; by default the surface-minimizing
        factorization of ``n_domains`` is chosen.
    """

    grid: GridDescriptor
    n_domains: int
    domains_shape: Optional[tuple[int, int, int]] = None

    def __post_init__(self) -> None:
        check_positive_int(self.n_domains, "n_domains")
        if self.domains_shape is None:
            shape = best_grid_factorization(
                self.n_domains, surface_objective(self.grid.shape)
            )
            object.__setattr__(self, "domains_shape", shape)
        else:
            shape = check_shape3(self.domains_shape, "domains_shape")
            if shape[0] * shape[1] * shape[2] != self.n_domains:
                raise ValueError(
                    f"domains_shape {shape} does not factor n_domains={self.n_domains}"
                )
            object.__setattr__(self, "domains_shape", shape)
        for axis in range(3):
            if self.domains_shape[axis] > self.grid.shape[axis]:
                raise ValueError(
                    f"axis {axis}: cannot split {self.grid.shape[axis]} points "
                    f"into {self.domains_shape[axis]} domains"
                )

    # -- block geometry -----------------------------------------------------
    @cached_property
    def _axis_sizes(self) -> tuple[list[int], list[int], list[int]]:
        return tuple(  # type: ignore[return-value]
            balanced_partition(n, p)
            for n, p in zip(self.grid.shape, self.domains_shape)
        )

    @cached_property
    def _axis_offsets(self) -> tuple[list[int], list[int], list[int]]:
        return tuple(chunk_offsets(sizes) for sizes in self._axis_sizes)  # type: ignore[return-value]

    def coords_of(self, domain: int) -> tuple[int, int, int]:
        """Domain index -> process-grid coordinates (C order)."""
        px, py, pz = self.domains_shape
        if not 0 <= domain < self.n_domains:
            raise ValueError(f"domain {domain} outside 0..{self.n_domains - 1}")
        x, rem = divmod(domain, py * pz)
        y, z = divmod(rem, pz)
        return (x, y, z)

    def domain_at(self, coords: Sequence[int]) -> int:
        """Process-grid coordinates -> domain index."""
        x, y, z = coords
        px, py, pz = self.domains_shape
        if not (0 <= x < px and 0 <= y < py and 0 <= z < pz):
            raise ValueError(f"coords {(x, y, z)} outside process grid {self.domains_shape}")
        return (x * py + y) * pz + z

    def block_shape(self, domain: int) -> tuple[int, int, int]:
        """Local point counts of one block."""
        c = self.coords_of(domain)
        return tuple(self._axis_sizes[d][c[d]] for d in range(3))  # type: ignore[return-value]

    def block_slices(self, domain: int) -> tuple[slice, slice, slice]:
        """Slices of the global array covered by one block."""
        c = self.coords_of(domain)
        out = []
        for d in range(3):
            off = self._axis_offsets[d][c[d]]
            out.append(slice(off, off + self._axis_sizes[d][c[d]]))
        return tuple(out)  # type: ignore[return-value]

    def neighbor(self, domain: int, dim: int, step: int) -> Optional[int]:
        """Neighbouring domain along ``dim``; wraps on periodic axes.

        Returns None past a non-periodic boundary.  A periodic axis with a
        single domain returns the domain itself (self-exchange).
        """
        if dim not in (0, 1, 2):
            raise ValueError(f"dim must be 0, 1 or 2, got {dim}")
        if step not in (-1, +1):
            raise ValueError(f"step must be -1 or +1, got {step}")
        c = list(self.coords_of(domain))
        c[dim] += step
        size = self.domains_shape[dim]
        if not 0 <= c[dim] < size:
            if not self.grid.pbc[dim]:
                return None
            c[dim] %= size
        return self.domain_at(c)

    # -- surface / communication accounting --------------------------------
    def face_points(self, domain: int, dim: int) -> int:
        """Points in one face of a block perpendicular to ``dim``."""
        shape = self.block_shape(domain)
        return shape[(dim + 1) % 3] * shape[(dim + 2) % 3]

    def send_bytes(self, domain: int, dim: int, step: int, halo_width: int) -> int:
        """Bytes sent to the ``(dim, step)`` neighbour in one exchange.

        Zero if there is no neighbour (non-periodic wall) or the neighbour
        is the domain itself (periodic wrap handled by a local copy).
        """
        check_positive_int(halo_width, "halo_width")
        nb = self.neighbor(domain, dim, step)
        if nb is None or nb == domain:
            return 0
        return self.face_points(domain, dim) * halo_width * self.grid.bytes_per_point

    def comm_bytes(self, domain: int, halo_width: int) -> int:
        """Total bytes one domain sends in one full halo exchange."""
        return sum(
            self.send_bytes(domain, dim, step, halo_width)
            for dim in range(3)
            for step in (+1, -1)
        )

    def max_comm_bytes(self, halo_width: int) -> int:
        """The largest per-domain exchange volume (the critical path).

        Blocks differ by at most one point per axis, so checking domain 0
        (which always holds the *largest* block under the balanced
        partition) is sufficient — but we verify against the corner domains
        to stay honest with non-periodic walls, where interior domains send
        on more faces than corner domains.
        """
        candidates = {0, self.n_domains - 1, self.n_domains // 2}
        return max(self.comm_bytes(d, halo_width) for d in candidates)

    def total_points(self) -> int:
        """Sanity: block points sum to the global grid."""
        return sum(
            self.block_shape(d)[0] * self.block_shape(d)[1] * self.block_shape(d)[2]
            for d in range(self.n_domains)
        )

    def max_block_points(self) -> int:
        """Points in the largest block (per-process compute load)."""
        return (
            self._axis_sizes[0][0] * self._axis_sizes[1][0] * self._axis_sizes[2][0]
        )
