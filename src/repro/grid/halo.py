"""Halo-exchange geometry on padded local arrays.

Each domain stores its block in an array padded by the stencil radius
``w`` on every side.  Before applying the stencil, the ghost shells must be
filled: interior faces come from neighbours (MPI messages, or local copies
for periodic wrap onto the same domain), non-periodic walls are zero.

Slab conventions (per axis, padded coordinates; ``b`` = block extent):

====================  =============================  ==========================
direction             send slab (my interior)         recv slab (my ghost)
====================  =============================  ==========================
to +axis neighbour    ``[b : b+w]``                   from -axis: ``[0 : w]``
to -axis neighbour    ``[w : 2w]``                    from +axis: ``[b+w : b+2w]``
====================  =============================  ==========================

Ghost corners are *not* exchanged: the paper's stencil is axis-aligned
(section II-A), so only face slabs are needed — the other two axes of every
slab span just the interior.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.grid.decompose import Decomposition
from repro.util.validation import check_positive_int

Slices3 = tuple[slice, slice, slice]


@dataclass(frozen=True)
class HaloSpec:
    """Stencil halo requirements: radius ``width`` in every direction."""

    width: int = 2

    def __post_init__(self) -> None:
        check_positive_int(self.width, "width")

    def padded_shape(self, block_shape: tuple[int, int, int]) -> tuple[int, int, int]:
        w = self.width
        return tuple(b + 2 * w for b in block_shape)  # type: ignore[return-value]

    def interior(self, padded_shape: tuple[int, int, int]) -> Slices3:
        w = self.width
        return tuple(slice(w, s - w) for s in padded_shape)  # type: ignore[return-value]


@dataclass(frozen=True)
class HaloMessage:
    """One directed halo transfer between two domains (or a local wrap)."""

    dim: int
    step: int  # +1: data flows to the +dim neighbour
    src_domain: int
    dst_domain: int
    send_slices: Slices3  # on the source's padded array
    recv_slices: Slices3  # on the destination's padded array
    n_points: int
    nbytes: int

    @property
    def is_local_wrap(self) -> bool:
        """Periodic wrap onto the same domain: a memcpy, not a message."""
        return self.src_domain == self.dst_domain

    @property
    def tag(self) -> int:
        """A tag unique per (dim, step) — composes with grid ids upstream."""
        return self.dim * 2 + (0 if self.step > 0 else 1)


def _axis_slab(
    block: tuple[int, int, int], width: int, dim: int, lo: int, hi: int
) -> Slices3:
    """A slab spanning [lo, hi) along ``dim`` and the interior elsewhere."""
    out = []
    for d in range(3):
        if d == dim:
            out.append(slice(lo, hi))
        else:
            out.append(slice(width, width + block[d]))
    return tuple(out)  # type: ignore[return-value]


def halo_messages(
    decomp: Decomposition, domain: int, width: int
) -> list[HaloMessage]:
    """All halo transfers *originating* at ``domain`` for radius ``width``.

    Every message appears exactly once across all domains (at its source),
    so iterating domains and collecting their outgoing messages enumerates
    the full exchange.
    """
    check_positive_int(width, "width")
    block = decomp.block_shape(domain)
    for axis in range(3):
        if decomp.domains_shape[axis] > 1 and block[axis] < width:
            raise ValueError(
                f"axis {axis}: block extent {block[axis]} is smaller than the "
                f"halo width {width}; use fewer domains along this axis"
            )
    w = width
    out: list[HaloMessage] = []
    for dim in range(3):
        b = block[dim]
        for step in (+1, -1):
            nb = decomp.neighbor(domain, dim, step)
            if nb is None:
                continue  # non-periodic wall: ghost stays zero
            nb_block = decomp.block_shape(nb)
            if step > 0:
                send = _axis_slab(block, w, dim, b, b + w)
                recv = _axis_slab(nb_block, w, dim, 0, w)
            else:
                send = _axis_slab(block, w, dim, w, 2 * w)
                recv = _axis_slab(nb_block, w, dim, nb_block[dim] + w, nb_block[dim] + 2 * w)
            n_points = w * block[(dim + 1) % 3] * block[(dim + 2) % 3]
            out.append(
                HaloMessage(
                    dim=dim,
                    step=step,
                    src_domain=domain,
                    dst_domain=nb,
                    send_slices=send,
                    recv_slices=recv,
                    n_points=n_points,
                    nbytes=n_points * decomp.grid.bytes_per_point,
                )
            )
    return out


def zero_boundary_ghosts(
    padded: np.ndarray, decomp: Decomposition, domain: int, width: int
) -> None:
    """Zero the ghost slabs that face a non-periodic wall.

    Interior faces (and periodic wraps) are filled by halo messages; this
    covers the remaining shells so the stencil sees GPAW's zero boundary.
    """
    w = width
    coords = decomp.coords_of(domain)
    for dim in range(3):
        if decomp.grid.pbc[dim]:
            continue
        sl: list[slice] = [slice(None)] * 3
        if coords[dim] == 0:
            sl[dim] = slice(0, w)
            padded[tuple(sl)] = 0.0
        if coords[dim] == decomp.domains_shape[dim] - 1:
            sl[dim] = slice(padded.shape[dim] - w, padded.shape[dim])
            padded[tuple(sl)] = 0.0


def apply_local_wraps(
    padded: np.ndarray, messages: list[HaloMessage]
) -> None:
    """Perform the memcpy part of an exchange: wraps onto the same domain."""
    for msg in messages:
        if msg.is_local_wrap:
            padded[msg.recv_slices] = padded[msg.send_slices]


def pack_slabs(
    sources: Sequence[np.ndarray], slices: Slices3, out: np.ndarray
) -> np.ndarray:
    """Pack one halo slab from each padded source array into ``out``.

    ``out`` has shape ``(len(sources), *slab_shape)`` — typically a
    contiguous message buffer borrowed from a workspace arena, so the
    batched slabs can be handed to the transport without further copies.
    """
    for i, src in enumerate(sources):
        np.copyto(out[i], src[slices])
    return out


def unpack_slabs(
    payload: np.ndarray, targets: Sequence[np.ndarray], slices: Slices3
) -> None:
    """Scatter a packed message back into each padded target's ghost slab.

    Inverse of :func:`pack_slabs`; ``payload`` may arrive flat (wire form)
    and is viewed as ``(len(targets), *slab_shape)``.
    """
    if not targets:
        return
    slab_shape = targets[0][slices].shape
    per_grid = payload.reshape((len(targets),) + slab_shape)
    for i, dst in enumerate(targets):
        dst[slices] = per_grid[i]
