"""Grid descriptors: the geometry of one real-space grid.

A GPAW simulation carries one electron-density grid and thousands of
wave-function grids, all sharing one descriptor.  Points are real (8 B) or
complex (16 B); the paper's benchmarks use real grids of 144^3 and 192^3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.util.validation import check_shape3


@dataclass(frozen=True)
class GridDescriptor:
    """A uniform 3D real-space grid.

    Parameters
    ----------
    shape:
        Global point counts ``(nx, ny, nz)``.
    pbc:
        Per-axis periodic boundary condition flags.  Periodic axes wrap the
        stencil around; non-periodic axes treat outside points as zero
        (GPAW's zero boundary for finite systems).
    spacing:
        Grid spacing ``h`` in atomic units (isotropic); enters the finite-
        difference coefficients as ``1/h^2``.
    dtype:
        ``float64`` or ``complex128``.
    """

    shape: tuple[int, int, int]
    pbc: tuple[bool, bool, bool] = (True, True, True)
    spacing: float = 0.2
    dtype: np.dtype = field(default=np.dtype(np.float64))

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", check_shape3(self.shape, "shape"))
        pbc = tuple(bool(p) for p in self.pbc)
        if len(pbc) != 3:
            raise ValueError(f"pbc must have 3 entries, got {self.pbc!r}")
        object.__setattr__(self, "pbc", pbc)
        if not self.spacing > 0:
            raise ValueError(f"spacing must be > 0, got {self.spacing}")
        dtype = np.dtype(self.dtype)
        if dtype not in (np.dtype(np.float64), np.dtype(np.complex128)):
            raise ValueError(f"dtype must be float64 or complex128, got {dtype}")
        object.__setattr__(self, "dtype", dtype)

    @property
    def n_points(self) -> int:
        """Total number of grid points."""
        nx, ny, nz = self.shape
        return nx * ny * nz

    @property
    def bytes_per_point(self) -> int:
        """8 for real grids, 16 for complex grids (section IV)."""
        return self.dtype.itemsize

    @property
    def nbytes(self) -> int:
        """Memory footprint of one grid."""
        return self.n_points * self.bytes_per_point

    def empty(self) -> np.ndarray:
        """An uninitialized array with this grid's shape and dtype."""
        return np.empty(self.shape, dtype=self.dtype)

    def zeros(self) -> np.ndarray:
        """A zero-filled array with this grid's shape and dtype."""
        return np.zeros(self.shape, dtype=self.dtype)

    def random(self, seed: int = 0) -> np.ndarray:
        """A reproducible random grid (useful in tests and benchmarks)."""
        rng = np.random.default_rng(seed)
        if self.dtype == np.dtype(np.complex128):
            return (
                rng.standard_normal(self.shape) + 1j * rng.standard_normal(self.shape)
            ).astype(self.dtype)
        return rng.standard_normal(self.shape).astype(self.dtype)

    def coordinates(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Physical coordinates of every point along each axis (open grids
        place points at ``h, 2h, ...``; periodic at ``0, h, ...``)."""
        axes = []
        for n, periodic in zip(self.shape, self.pbc):
            if periodic:
                axes.append(np.arange(n) * self.spacing)
            else:
                axes.append((np.arange(n) + 1) * self.spacing)
        return tuple(np.meshgrid(*axes, indexing="ij"))  # type: ignore[return-value]

    def check_array(self, array: np.ndarray, name: str = "array") -> None:
        """Validate that ``array`` belongs to this descriptor."""
        if array.shape != self.shape:
            raise ValueError(
                f"{name} has shape {array.shape}, descriptor expects {self.shape}"
            )
        if array.dtype != self.dtype:
            raise ValueError(
                f"{name} has dtype {array.dtype}, descriptor expects {self.dtype}"
            )


def wavefunction_count(n_valence_electrons: int, spin_polarized: bool = False) -> int:
    """Number of wave-function grids for a system (section II).

    "For every valence electron there may be up to two wave-functions":
    spin-paired systems need one band per electron pair, spin-polarized up
    to one per electron per spin channel.  We return the upper bound GPAW
    allocates.
    """
    if n_valence_electrons < 0:
        raise ValueError(f"n_valence_electrons must be >= 0, got {n_valence_electrons}")
    return 2 * n_valence_electrons if spin_polarized else n_valence_electrons
