"""Local padded arrays and scatter/gather between global and distributed form.

The functional engine works on :class:`LocalGrid` objects — one block of a
global grid, stored padded by the halo width.  ``scatter``/``gather`` move
whole grids between the two representations; they are the test oracle for
every distributed operation (scatter -> distributed op -> gather must equal
the sequential op).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.grid.decompose import Decomposition
from repro.grid.halo import HaloSpec


@dataclass
class LocalGrid:
    """One domain's padded block of one distributed grid."""

    decomp: Decomposition
    domain: int
    halo: HaloSpec
    data: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        block = self.decomp.block_shape(self.domain)
        expected = self.halo.padded_shape(block)
        if self.data is None:
            self.data = np.zeros(expected, dtype=self.decomp.grid.dtype)
        elif tuple(self.data.shape) != expected:
            raise ValueError(
                f"padded array shape {self.data.shape} does not match "
                f"block {block} + halo {self.halo.width} = {expected}"
            )

    @property
    def block_shape(self) -> tuple[int, int, int]:
        return self.decomp.block_shape(self.domain)

    @property
    def interior(self) -> np.ndarray:
        """View of the block without ghost shells (writable)."""
        return self.data[self.halo.interior(self.data.shape)]

    def fill_from_global(self, global_array: np.ndarray) -> None:
        """Copy this domain's block out of a global array."""
        self.decomp.grid.check_array(global_array, "global_array")
        self.interior[...] = global_array[self.decomp.block_slices(self.domain)]

    def add_to_global(self, global_array: np.ndarray) -> None:
        """Write this domain's block into a global array."""
        self.decomp.grid.check_array(global_array, "global_array")
        global_array[self.decomp.block_slices(self.domain)] = self.interior


def scatter(
    global_array: np.ndarray, decomp: Decomposition, halo: HaloSpec
) -> list[LocalGrid]:
    """Split a global array into per-domain padded blocks."""
    decomp.grid.check_array(global_array, "global_array")
    out = []
    for domain in range(decomp.n_domains):
        lg = LocalGrid(decomp, domain, halo)
        lg.fill_from_global(global_array)
        out.append(lg)
    return out


def gather(locals_: Sequence[LocalGrid]) -> np.ndarray:
    """Reassemble a global array from all domains' blocks."""
    if not locals_:
        raise ValueError("gather() needs at least one LocalGrid")
    decomp = locals_[0].decomp
    if len(locals_) != decomp.n_domains:
        raise ValueError(
            f"gather() needs all {decomp.n_domains} domains, got {len(locals_)}"
        )
    seen = {lg.domain for lg in locals_}
    if seen != set(range(decomp.n_domains)):
        raise ValueError("gather() requires exactly one LocalGrid per domain")
    out = decomp.grid.empty()
    for lg in locals_:
        lg.add_to_global(out)
    return out
