"""The 2D grid × band process layout.

The paper's decomposition constraint (section IV) forces every rank to
hold the same subset of *every* wave function, so at 16 k cores the
domain blocks shrink to slivers.  The escape is a second parallel axis:
split the ``P`` ranks into ``nb`` *band groups*, each owning ``G/nb``
wave functions on its own ``P/nb``-rank domain decomposition.  This
module pins down the bookkeeping every plane shares:

* global rank = ``group * ranks_per_group + domain`` (groups are
  contiguous rank ranges, so a group maps onto a compact torus
  partition);
* band ``b`` lives in group ``b // bands_per_group``;
* the orthogonalization ring sends to the next group and receives from
  the previous one, always between ranks holding the *same* domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from repro.util.validation import check_divisible, check_positive_int


@dataclass(frozen=True)
class BandGroups:
    """``P = n_ranks`` processes split into ``n_groups`` band groups
    over ``n_bands`` wave functions."""

    n_ranks: int
    n_bands: int
    n_groups: int

    def __post_init__(self) -> None:
        check_positive_int(self.n_ranks, "n_ranks")
        check_positive_int(self.n_bands, "n_bands")
        check_positive_int(self.n_groups, "n_groups")
        check_divisible(self.n_bands, self.n_groups, "n_bands", "band groups")
        check_divisible(self.n_ranks, self.n_groups, "n_ranks", "band groups")

    @property
    def ranks_per_group(self) -> int:
        return self.n_ranks // self.n_groups

    @property
    def bands_per_group(self) -> int:
        return self.n_bands // self.n_groups

    # -- rank <-> (group, domain) ------------------------------------------
    def group_of(self, rank: int) -> int:
        self._check_rank(rank)
        return rank // self.ranks_per_group

    def domain_of(self, rank: int) -> int:
        """The rank's position inside its group's domain decomposition."""
        self._check_rank(rank)
        return rank % self.ranks_per_group

    def rank_of(self, group: int, domain: int) -> int:
        self._check_group(group)
        if not 0 <= domain < self.ranks_per_group:
            raise ValueError(
                f"domain must be in 0..{self.ranks_per_group - 1}, got {domain}"
            )
        return group * self.ranks_per_group + domain

    # -- band ownership -----------------------------------------------------
    def bands_of(self, group: int) -> range:
        """The global band indices group ``group`` owns."""
        self._check_group(group)
        lo = group * self.bands_per_group
        return range(lo, lo + self.bands_per_group)

    def group_of_band(self, band: int) -> int:
        if not 0 <= band < self.n_bands:
            raise ValueError(f"band must be in 0..{self.n_bands - 1}, got {band}")
        return band // self.bands_per_group

    # -- the orthogonalization ring ----------------------------------------
    def ring_send_group(self, group: int) -> int:
        self._check_group(group)
        return (group + 1) % self.n_groups

    def ring_recv_group(self, group: int) -> int:
        self._check_group(group)
        return (group - 1) % self.n_groups

    def band_peers(self, rank: int) -> list[int]:
        """The ranks holding the same domain in every group (self included),
        in group order — the canonical summation order for band-axis
        reductions."""
        domain = self.domain_of(rank)
        return [self.rank_of(g, domain) for g in range(self.n_groups)]

    @cached_property
    def _str(self) -> str:
        return (
            f"BandGroups({self.n_groups} x {self.ranks_per_group} ranks, "
            f"{self.bands_per_group} bands/group)"
        )

    def describe(self) -> str:
        return self._str

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank must be in 0..{self.n_ranks - 1}, got {rank}")

    def _check_group(self, group: int) -> None:
        if not 0 <= group < self.n_groups:
            raise ValueError(
                f"group must be in 0..{self.n_groups - 1}, got {group}"
            )
