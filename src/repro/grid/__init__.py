"""Real-space grids, domain decomposition, and halo exchange geometry.

This package is GPAW's grid substrate (section IV of the paper):

* :class:`~repro.grid.grid.GridDescriptor` — a uniform 3D real-space grid
  with per-axis periodic/zero boundary conditions.
* :class:`~repro.grid.decompose.Decomposition` — the division of a grid
  into ``P`` quadrilateral blocks, choosing the process-grid factorization
  that minimizes the aggregated block surface (GPAW's default rule).
* :mod:`repro.grid.halo` — the halo-exchange geometry: which slab of which
  local array goes to which neighbour, for a stencil of a given radius.
* :mod:`repro.grid.array` — local padded arrays plus scatter/gather between
  a global array and its distributed blocks.
"""

from repro.grid.grid import GridDescriptor
from repro.grid.decompose import Decomposition
from repro.grid.bandgroups import BandGroups
from repro.grid.halo import HaloSpec, HaloMessage, halo_messages
from repro.grid.array import LocalGrid, scatter, gather
from repro.grid.redistribute import (
    BandMove,
    Transfer,
    band_regroup_plan,
    redistribute,
    transfer_plan,
)

__all__ = [
    "GridDescriptor",
    "Decomposition",
    "BandGroups",
    "HaloSpec",
    "HaloMessage",
    "halo_messages",
    "LocalGrid",
    "scatter",
    "gather",
    "BandMove",
    "Transfer",
    "band_regroup_plan",
    "redistribute",
    "transfer_plan",
]
