"""Command-line interface: regenerate any paper table/figure from a shell.

Usage::

    python -m repro table1
    python -m repro fig2
    python -m repro fig5 --batch-size 8
    python -m repro fig6
    python -m repro fig7
    python -m repro headline
    python -m repro ablation
    python -m repro wholeapp
    python -m repro validate          # quick model-vs-DES cross-check
    python -m repro simscale          # DES events/sec sweep vs rank count
    python -m repro schedule flat-optimized --cores 8 --grids 4 --batch-size 2
    python -m repro chaos --seed 0    # fault-injection survival matrix
    python -m repro mtbf              # Daly checkpoint-cadence sweep @16k cores
    python -m repro trace --approach hybrid-multiple --out trace.json
    python -m repro trace --diff real:sim
    python -m repro timeline --planes real sim model
    python -m repro metrics           # instrumented SCF -> metrics snapshot
    python -m repro plan --cores 16384   # rank every feasible configuration
    python -m repro critpath --plane sim # blame-bucket attribution
    python -m repro doctor            # run -> attribute -> conformance verdict
    python -m repro doctor --delay-rank 2 --strict   # straggler demo

The shared ``--approach/--cores/--grids/--batch-size/--shape`` options
are declared once, from :data:`repro.core.jobspec.CLI_KNOBS`; each
subcommand only names the knobs it takes and their defaults.

Every command prints the same rows the corresponding benchmark asserts
on; this is the interactive face of ``pytest benchmarks/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis import (
    ablation_subgroups,
    line_plot,
    fig2_rows,
    fig5_rows,
    fig6_rows,
    fig7_rows,
    format_table,
    headline_numbers,
    table1,
)
from repro.analysis.experiments import FIG7_JOB
from repro.core import (
    ALL_APPROACHES,
    FDJob,
    PerformanceModel,
    WholeAppModel,
    simulate_fd,
)
from repro.core.jobspec import add_spec_cli
from repro.grid import GridDescriptor
from repro.util.units import MB

_NAMES = ["flat-original", "flat-optimized", "hybrid-multiple", "hybrid-master-only"]
_SHORT = {"flat-original": "orig", "flat-optimized": "opt",
          "hybrid-multiple": "hyb-mult", "hybrid-master-only": "hyb-master"}


def _cmd_table1(_args: argparse.Namespace) -> str:
    return format_table(["item", "value"], table1(),
                        title="Table I — hardware description of a BG/P node")


def _cmd_fig2(_args: argparse.Namespace) -> str:
    points = fig2_rows()
    return format_table(
        ["message bytes", "bandwidth MB/s"],
        [[p.message_bytes, round(p.bandwidth / MB, 2)] for p in points],
        title="Fig 2 — ping-pong bandwidth between neighbouring nodes",
    )


def _cmd_fig5(args: argparse.Namespace) -> str:
    batching = args.batch_size > 1
    rows = fig5_rows(batching)
    title = (
        f"Fig 5 — speedup, 32 grids of 144^3 "
        f"({'batch-size 8' if batching else 'batching disabled'})"
    )
    if args.plot:
        series = {
            _SHORT[n]: [
                (r.n_cores, r.speedups[n]) for r in rows if n in r.speedups
            ]
            for n in _NAMES
        }
        return line_plot(series, x_log=True, title=title)
    table = [
        [r.n_cores] + [round(r.speedups.get(n, float("nan")), 1) for n in _NAMES]
        for r in rows
    ]
    return format_table(["cores"] + [_SHORT[n] for n in _NAMES], table, title=title)


def _cmd_fig6(_args: argparse.Namespace) -> str:
    rows = fig6_rows()
    table = [
        [r.n_cores]
        + [round(r.times[n], 3) for n in _NAMES]
        + [round(r.flat_comm_mb, 1), round(r.hybrid_comm_mb, 1)]
        for r in rows
    ]
    return format_table(
        ["cores=grids"] + [_SHORT[n] + " s" for n in _NAMES]
        + ["flat MB/node", "hyb MB/node"],
        table,
        title="Fig 6 — Gustafson graph: one 192^3 grid per CPU-core",
    )


def _cmd_fig7(args: argparse.Namespace) -> str:
    rows = fig7_rows()
    title = "Fig 7 — speedup vs flat-original @1k, 2816 grids of 192^3"
    if args.plot:
        series = {
            _SHORT[n]: [(r.n_cores, r.speedups[n]) for r in rows] for n in _NAMES
        }
        return line_plot(series, x_log=True, title=title)
    table = [[r.n_cores] + [round(r.speedups[n], 2) for n in _NAMES] for r in rows]
    return format_table(
        ["cores"] + [_SHORT[n] for n in _NAMES], table, title=title,
    )


def _cmd_headline(_args: argparse.Namespace) -> str:
    h = headline_numbers()
    return format_table(
        ["quantity", "model", "paper"],
        [
            ["speedup vs original @16k cores", f"{h.speedup_vs_original:.2f}", "1.94"],
            ["utilization, original", f"{h.utilization_original:.0%}", "36%"],
            ["utilization, hybrid multiple", f"{h.utilization_hybrid:.0%}", "70%"],
            ["hybrid vs flat optimized", f"{h.hybrid_vs_flat_optimized:.2f}", "~1.10"],
        ],
        title="Section VIII — headline numbers",
    )


def _cmd_ablation(_args: argparse.Namespace) -> str:
    sub, hyb = ablation_subgroups()
    diff = abs(sub.total - hyb.total) / hyb.total
    return (
        "Section VII-A — static sub-groups ablation\n"
        f"  flat + static sub-groups : {sub.total:.4f} s\n"
        f"  hybrid multiple          : {hyb.total:.4f} s\n"
        f"  difference               : {diff:.1%} (paper: identical)"
    )


def _cmd_wholeapp(args: argparse.Namespace) -> str:
    model = WholeAppModel()
    job = FDJob(GridDescriptor((192, 192, 192)), args.grids)
    rows = []
    for cores in (1024, 4096, 16384):
        f = model.original(job, cores).fractions()
        g = model.gains(job, cores)
        rows.append([
            cores, f"{f['fd']:.0%}", f"{f['subspace']:.0%}",
            round(g["fd_only"], 2), round(g["amdahl"], 2), round(g["full"], 2),
        ])
    return format_table(
        ["cores", "FD share", "subspace share", "FD-only", "Amdahl", "full rewrite"],
        rows,
        title=f"Section VIII-A — whole application, {args.grids} bands of 192^3",
    )


def _cmd_validate(args: argparse.Namespace) -> str:
    pm = PerformanceModel()
    job = FDJob(GridDescriptor((48, 48, 48)), 16)
    lines = ["model-vs-DES cross-validation (32 cores, 16 grids of 48^3):"]
    worst = 0.0
    for a in ALL_APPROACHES:
        b = 4 if a.supports_batching else 1
        model = pm.evaluate(job, a, args.cores, batch_size=b)
        sim = simulate_fd(job, a, args.cores, batch_size=b)
        ratio = model.total / sim.total
        if a.name != "flat-original":
            worst = max(worst, abs(ratio - 1))
        lines.append(
            f"  {a.name:20s} model {model.total * 1e3:8.3f} ms  "
            f"DES {sim.total * 1e3:8.3f} ms  ratio {ratio:5.3f}"
        )
    lines.append(f"worst optimized-approach deviation: {worst:.1%}")
    return "\n".join(lines)


def _cmd_simscale(args: argparse.Namespace) -> str:
    """DES throughput sweep: events/sec and wall time vs rank count."""
    import time

    from repro.core.approaches import approach_by_name

    approach = approach_by_name(args.approach)
    job = FDJob(GridDescriptor(tuple(args.shape)), args.grids)
    rows = []
    exact = True
    for n in args.ranks:
        t0 = time.perf_counter()
        res = simulate_fd(job, approach, n, batch_size=args.batch_size,
                          engine="compiled")
        wall = time.perf_counter() - t0
        row = [n, res.events, f"{wall:.3f}", f"{res.events / wall:,.0f}"]
        if n <= args.reference_max:
            t0 = time.perf_counter()
            ref = simulate_fd(job, approach, n, batch_size=args.batch_size,
                              engine="reference")
            ref_wall = time.perf_counter() - t0
            exact = exact and (ref.total, ref.events) == (res.total, res.events)
            row += [f"{ref_wall:.3f}", f"{ref_wall / wall:.2f}x"]
        else:
            row += ["-", "-"]
        rows.append(row)
    table = format_table(
        ["ranks", "events", "compiled s", "events/s", "reference s", "speedup"],
        rows,
        title=(
            f"DES replay scaling — {args.approach}, {args.grids} grids of "
            f"{'x'.join(str(s) for s in args.shape)}, batch {args.batch_size}"
        ),
    )
    note = (
        "engines agree exactly (same totals and event counts)"
        if exact else "ENGINE MISMATCH — compiled and reference disagree"
    )
    out = (
        f"{table}\n{note}; reference engine run up to "
        f"{args.reference_max} ranks"
    )
    if not exact:
        raise SystemExit(out)
    return out


def _cmd_bandpar(args: argparse.Namespace) -> str:
    """Band-group sweep of the modeled FD + ring-orthogonalization step."""
    from repro.core.bandpar import BandParallelModel

    model = BandParallelModel()
    job = FDJob(GridDescriptor(tuple(args.shape)), args.grids)
    timings = model.sweep(job, args.cores, max_groups=args.max_groups)
    rows = [
        [
            t.n_band_groups,
            f"{t.fd * 1e3:.3f}",
            f"{t.subspace_compute * 1e3:.3f}",
            f"{t.subspace_ring_comm * 1e3:.3f}",
            f"{t.total * 1e3:.3f}",
        ]
        for t in timings
    ]
    table = format_table(
        ["band groups", "FD ms", "GEMM ms", "ring ms", "step ms"],
        rows,
        title=(
            f"2D grid x band decomposition — {args.grids} bands of "
            f"{'x'.join(str(s) for s in args.shape)} on {args.cores} cores"
        ),
    )
    best = min(timings, key=lambda t: t.total)
    return table + (
        f"\nmodeled best nb = {best.n_band_groups} at {args.cores} cores "
        f"({best.total * 1e3:.3f} ms per step)"
    )


def _cmd_plan(args: argparse.Namespace) -> str:
    """Rank every feasible configuration of a problem at a core count."""
    from repro.core.jobspec import ProblemSpec
    from repro.core.planner import Planner

    problem = ProblemSpec(shape=tuple(args.shape), n_grids=args.grids)
    result = Planner().rank(
        problem,
        args.cores,
        max_groups=args.max_groups,
        approaches=[args.approach] if args.approach else None,
        des_top_k=args.des_check,
    )
    headers = ["rank", "approach", "batch", "nb", "FD ms", "subspace ms",
               "step ms"]
    if args.des_check:
        headers.append("DES ms")
    rows = []
    for ch in result.choices[: args.top]:
        lay = ch.spec.layout
        row = [
            ch.rank, lay.approach, lay.batch_size, lay.n_band_groups,
            f"{ch.fd_time * 1e3:.3f}",
            f"{ch.subspace_time * 1e3:.3f}",
            f"{ch.predicted_time * 1e3:.3f}",
        ]
        if args.des_check:
            row.append(
                "-" if ch.des_time is None else f"{ch.des_time * 1e3:.3f}"
            )
        rows.append(row)
    table = format_table(
        headers, rows,
        title=(
            f"planner — {args.grids} grids of "
            f"{'x'.join(str(s) for s in args.shape)} on {args.cores} cores"
        ),
    )
    lines = [table]
    if len(result.choices) > args.top:
        lines.append(
            f"({len(result.choices) - args.top} more feasible choices not shown)"
        )
    for r in result.rejected:
        lines.append(f"rejected {r.approach} nb={r.n_band_groups}: {r.reason}")
    best = result.best()
    lay = best.spec.layout
    lines.append(
        f"planner best: {lay.approach} batch={lay.batch_size} "
        f"nb={lay.n_band_groups} — {best.predicted_time * 1e3:.3f} ms per "
        f"step (config {best.spec.config_hash()})"
    )
    return "\n".join(lines)


def _cmd_calibrate(args: argparse.Namespace) -> str:
    """Re-run the calibration grid fit against the paper anchors."""
    from repro.analysis.calibration import anchor_error, fit_compute_knobs
    from repro.machine.spec import BGP_SPEC

    result = fit_compute_knobs()
    rows = [
        [f"{t * 1e9:.0f}", e, round(err, 4)] for t, e, err in result.grid
    ]
    table = format_table(
        ["t_point ns", "halo exponent", "anchor error"],
        rows,
        title="calibration grid (sum of squared relative anchor errors)",
    )
    shipped = anchor_error(BGP_SPEC)
    summary = (
        f"\nbest: t_point={result.spec.stencil_point_time * 1e9:.0f} ns, "
        f"exponent={result.spec.halo_compute_exponent} "
        f"(error {result.error:.4f}); shipped spec error {shipped:.4f}"
    )
    return table + summary


def _cmd_schedule(args: argparse.Namespace) -> str:
    """Print the compiled schedule IR for a named approach."""
    from repro.core.approaches import approach_by_name
    from repro.core.schedule import compile_schedule, timing_plane_workers
    from repro.grid.decompose import Decomposition

    approach = approach_by_name(args.approach)
    grid = GridDescriptor(tuple(args.shape))
    decomp = Decomposition(grid, approach.domains_for(args.cores))
    plan = compile_schedule(
        approach,
        decomp,
        args.grids,
        args.batch_size,
        args.ramp_up,
        n_workers=timing_plane_workers(approach, args.cores),
    )
    return plan.describe(args.domain)


def _cmd_chaos(args: argparse.Namespace) -> str:
    """Run the seeded chaos suite and print the survival matrix."""
    from repro.analysis.chaos import run_chaos_suite, suite_passed, survival_matrix

    outcomes = run_chaos_suite(
        seed=args.seed, n_ranks=args.ranks, scf=not args.no_scf,
        controller=args.controller,
        flightrec_dir=getattr(args, "flightrec_dir", None),
    )
    table = survival_matrix(outcomes)
    ok = suite_passed(outcomes)
    verdict = "chaos suite: PASS" if ok else "chaos suite: FAIL"
    out = f"{table}\n{verdict} (seed {args.seed})"
    if getattr(args, "flightrec_dir", None) and args.controller:
        out += f"\nflight-recorder dumps in {args.flightrec_dir}/"
    if not ok:
        raise SystemExit(out)
    return out


def _cmd_mtbf(args: argparse.Namespace) -> str:
    """Daly checkpoint-cadence sweep at paper scale."""
    from repro.analysis.resilience import format_mtbf_table, mtbf_sweep

    job = FDJob(GridDescriptor(tuple(args.shape)), args.grids)
    rows = mtbf_sweep(job, n_cores=args.cores)
    note = (
        f"\n(workload: {args.grids} bands of "
        f"{args.shape[0]}^3 on {args.cores} cores)"
    )
    return format_mtbf_table(rows) + note


def _cmd_trace(args: argparse.Namespace) -> str:
    """Emit a Chrome-trace JSON (or a cross-plane diff) for one config."""
    import json

    from repro.analysis.timeline import step_trace_for
    from repro.obs.export import chrome_trace, diff_step_kinds, format_diff

    shape = tuple(args.shape)
    if args.diff:
        try:
            a, b = args.diff.split(":")
        except ValueError:
            raise SystemExit(
                f"--diff wants PLANE:PLANE (e.g. real:sim), got {args.diff!r}"
            )
        traces = {
            p: step_trace_for(
                p, args.approach, args.cores, args.grids, shape,
                args.batch_size, args.ramp_up,
            )
            for p in (a, b)
        }
        head = (
            f"step-kind seconds, {args.approach} @ {args.cores} cores, "
            f"{args.grids} grids of {'x'.join(map(str, shape))}"
        )
        return head + "\n" + format_diff(
            diff_step_kinds(traces[a], traces[b]), a, b
        )
    tracer = step_trace_for(
        args.plane, args.approach, args.cores, args.grids, shape,
        args.batch_size, args.ramp_up,
    )
    payload = json.dumps(chrome_trace(tracer), indent=1)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(payload)
        return (
            f"wrote {len(tracer)} spans ({args.plane} plane) to {args.out} — "
            "open in chrome://tracing or ui.perfetto.dev"
        )
    return payload


def _cmd_timeline(args: argparse.Namespace) -> str:
    """ASCII Gantt + utilization panel across planes."""
    from repro.analysis.timeline import timeline_panel

    return timeline_panel(
        args.approach,
        args.cores,
        args.grids,
        tuple(args.shape),
        args.batch_size,
        args.ramp_up,
        planes=tuple(args.planes),
        diff=("real", "sim") if args.diff else None,
    )


def _cmd_metrics(args: argparse.Namespace) -> str:
    """Run a small instrumented SCF and print the whole-run metrics."""
    import json

    import numpy as np

    from repro.core.jobspec import JobSpec, LayoutSpec, ProblemSpec, RuntimeSpec
    from repro.dft.distributed_scf import DistributedSCF
    from repro.dft.checkpoint import MemoryCheckpointStore
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.export import format_metrics

    registry = MetricsRegistry()
    x, y, z = np.meshgrid(*(np.arange(args.size),) * 3, indexing="ij")
    r2 = sum((c - (args.size - 1) / 2) ** 2 for c in (x, y, z))
    v = 0.05 * r2
    store = MemoryCheckpointStore(metrics=registry)
    spec = JobSpec(
        problem=ProblemSpec(
            shape=(args.size,) * 3, n_grids=args.bands,
            pbc=(False, False, False),
        ),
        layout=LayoutSpec(n_cores=args.ranks),
        runtime=RuntimeSpec(
            tolerance=1e-3, max_iterations=args.iterations
        ),
    )
    DistributedSCF.from_spec(
        spec, v, checkpoint_store=store, metrics=registry
    ).run()
    if args.json:
        return json.dumps(registry.snapshot(), indent=1)
    head = (
        f"metrics — SCF, {args.bands} band(s), {args.ranks} ranks, "
        f"{args.size}^3, <= {args.iterations} iterations"
    )
    return head + "\n" + format_metrics(registry)


def _cmd_critpath(args: argparse.Namespace) -> str:
    """Critical-path blame attribution of one configuration's trace."""
    from repro.analysis.timeline import step_trace_for
    from repro.core.jobspec import spec_from_args
    from repro.obs.critpath import critical_path, plan_for_spec

    spec = spec_from_args(args)
    tracer = step_trace_for(
        args.plane, args.approach, args.cores, args.grids,
        tuple(args.shape), args.batch_size, args.ramp_up,
    )
    # the model plane is a single representative worker: no cross-rank
    # edges exist, so the plan is only needed for the executing planes
    plan = plan_for_spec(spec) if args.plane in ("real", "sim") else None
    result = critical_path(tracer, plan=plan)
    head = (
        f"critical-path attribution — {args.approach} @ {args.cores} "
        f"cores, {args.grids} grids of {'x'.join(map(str, args.shape))}, "
        f"{args.plane} plane"
    )
    return head + "\n" + result.format()


def _cmd_doctor(args: argparse.Namespace) -> str:
    """One-shot diagnosis: run, attribute, conformance verdict."""
    from repro.core.jobspec import spec_from_args
    from repro.core.simrun import simulate_spec
    from repro.obs.conformance import check_conformance
    from repro.obs.critpath import plan_for_spec
    from repro.obs.spans import SpanTracer

    spec = spec_from_args(args)
    if args.placement != "auto":
        spec = spec.with_runtime(placement=args.placement)
    fault_plan = None
    if args.delay_rank is not None:
        from repro.transport.faults import FaultPlan

        fault_plan = FaultPlan(
            seed=0, inject={(args.delay_rank, 0): "delay"}, delay=args.delay
        )
    tracer = SpanTracer(plane="sim")
    simulate_spec(spec, fault_plan=fault_plan, step_tracer=tracer)
    report = check_conformance(tracer, spec, plan=plan_for_spec(spec))
    head = (
        f"doctor — {spec.layout.approach} @ {spec.layout.n_cores} cores, "
        f"{spec.problem.n_grids} grids of "
        f"{'x'.join(map(str, spec.problem.shape))} (DES trace vs model)"
    )
    verdict = (
        "doctor: OK" if not report.findings
        else f"doctor: {len(report.findings)} finding(s)"
    )
    out = "\n".join(
        [head, report.critpath.format(), report.format(), verdict]
    )
    if args.strict and report.findings:
        raise SystemExit(out)
    return out


def _cmd_report(args: argparse.Namespace) -> str:
    """Every experiment in one run — a regenerated EXPERIMENTS digest."""
    sections = [
        _cmd_table1(args),
        _cmd_fig2(args),
        _cmd_fig5(argparse.Namespace(batch_size=1, plot=False)),
        _cmd_fig5(argparse.Namespace(batch_size=8, plot=False)),
        _cmd_fig6(args),
        _cmd_fig7(argparse.Namespace(plot=False)),
        _cmd_ablation(args),
        _cmd_headline(args),
        _cmd_wholeapp(argparse.Namespace(grids=2816)),
        _cmd_validate(argparse.Namespace(cores=32)),
    ]
    banner = (
        "Reproduction report — 'GPAW optimized for Blue Gene/P using "
        "hybrid programming' (IPDPS 2009)\n"
        + "=" * 72
    )
    return banner + "\n\n" + "\n\n".join(sections)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables and figures.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("table1", help="Table I: BG/P node description")
    sub.add_parser("fig2", help="Fig 2: bandwidth vs message size")
    p5 = sub.add_parser("fig5", help="Fig 5: speedup, 32 grids of 144^3")
    p5.add_argument("--batch-size", type=int, default=8,
                    help="8 = right panel (default); 1 = left panel")
    p5.add_argument("--plot", action="store_true", help="ASCII chart instead of a table")
    sub.add_parser("fig6", help="Fig 6: Gustafson graph")
    p7 = sub.add_parser("fig7", help="Fig 7: large-job speedup")
    p7.add_argument("--plot", action="store_true", help="ASCII chart instead of a table")
    sub.add_parser("headline", help="Section VIII headline numbers")
    sub.add_parser("ablation", help="Section VII-A sub-groups ablation")
    pw = sub.add_parser("wholeapp", help="Section VIII-A whole-app outlook")
    add_spec_cli(pw, {"grids": 2816})
    pv = sub.add_parser("validate", help="model-vs-DES cross-check")
    add_spec_cli(pv, {"cores": 32})
    sub.add_parser("report", help="all experiments in one run")
    sub.add_parser("calibrate", help="re-fit the compute knobs to the anchors")
    pb = sub.add_parser(
        "bandpar", help="band-group sweep of the 2D grid x band model"
    )
    add_spec_cli(pb, {"cores": 16384, "grids": 2816, "shape": (192, 192, 192)})
    pb.add_argument("--max-groups", type=int, default=8)
    pp = sub.add_parser(
        "plan", help="rank every feasible configuration with the model"
    )
    add_spec_cli(pp, {
        "approach": None, "cores": 16384, "grids": 2816,
        "shape": (192, 192, 192),
    })
    pp.add_argument("--max-groups", type=int, default=8)
    pp.add_argument("--top", type=int, default=10,
                    help="ranked rows to print (default 10)")
    pp.add_argument("--des-check", type=int, default=0, metavar="K",
                    help="DES-replay the top K choices with the compiled "
                         "engine (tractable well past a thousand ranks)")
    psc = sub.add_parser(
        "simscale", help="DES throughput sweep: events/sec vs rank count"
    )
    add_spec_cli(psc, {
        "approach": "flat-optimized", "grids": 16, "batch_size": 4,
        "shape": (64, 64, 64), "ramp_up": False,
    })
    psc.add_argument("--ranks", type=int, nargs="+",
                     default=[8, 64, 512, 4096],
                     help="rank counts to sweep (default: 8 64 512 4096)")
    psc.add_argument("--reference-max", type=int, default=512, metavar="N",
                     help="also run the generator reference engine up to N "
                          "ranks and report the compiled speedup "
                          "(default 512)")
    ps = sub.add_parser(
        "schedule", help="print the compiled schedule IR for an approach"
    )
    ps.add_argument("approach", help="approach name (e.g. flat-optimized)")
    add_spec_cli(ps, {
        "cores": 8, "grids": 4, "batch_size": 1, "shape": (24, 24, 24),
        "ramp_up": False,
    })
    ps.add_argument("--domain", type=int, default=0,
                    help="which rank's step list to print")
    pc = sub.add_parser(
        "chaos", help="seeded fault-injection suite + survival matrix"
    )
    pc.add_argument("--seed", type=int, default=0,
                    help="fault-plan seed; identical seeds replay identically")
    pc.add_argument("--ranks", type=int, default=2)
    pc.add_argument("--no-scf", action="store_true",
                    help="skip the (slower) SCF checkpoint-resume scenario")
    pc.add_argument("--controller", action="store_true",
                    help="add RecoveryController scenarios: kill mid-run "
                         "with band groups (nb=2,4), static vs adaptive "
                         "checkpoint cadence")
    pc.add_argument("--flightrec-dir", metavar="DIR", default=None,
                    help="write flight-recorder crash dumps (JSON) from the "
                         "controller scenarios into this directory")
    pm = sub.add_parser(
        "mtbf", help="Daly checkpoint-cadence sweep at paper scale"
    )
    add_spec_cli(pm, {"cores": 16384, "grids": 512, "shape": (128, 128, 128)})

    def _trace_config(p: argparse.ArgumentParser) -> None:
        add_spec_cli(p, {
            "approach": "hybrid-multiple", "cores": 8, "grids": 4,
            "batch_size": 2, "shape": (16, 16, 16), "ramp_up": False,
        })

    pt = sub.add_parser(
        "trace",
        help="emit Chrome-trace JSON of one configuration's schedule steps",
    )
    _trace_config(pt)
    pt.add_argument("--plane", choices=["real", "sim", "model"],
                    default="real",
                    help="which execution plane to trace (default real)")
    pt.add_argument("--out", help="write the JSON here instead of stdout")
    pt.add_argument("--diff", metavar="PLANE:PLANE",
                    help="print per-step-kind deltas between two planes "
                         "(e.g. real:sim) instead of JSON")
    pl = sub.add_parser(
        "timeline", help="ASCII Gantt + utilization panel across planes"
    )
    _trace_config(pl)
    pl.add_argument("--planes", nargs="+", default=["real", "sim"],
                    choices=["real", "sim", "model"],
                    help="planes to render (default: real sim)")
    pl.add_argument("--diff", action="store_true",
                    help="append the real-vs-sim step-kind diff")
    pcp = sub.add_parser(
        "critpath",
        help="critical-path blame attribution of one configuration",
    )
    _trace_config(pcp)
    pcp.add_argument("--plane", choices=["real", "sim", "model"],
                     default="sim",
                     help="which execution plane to attribute (default sim)")
    pd = sub.add_parser(
        "doctor",
        help="run + attribute + model-conformance verdict in one table",
    )
    _trace_config(pd)
    pd.add_argument("--placement", choices=["auto", "cyclic", "spread"],
                    default="auto",
                    help="DES domain-to-rank strategy (default: the spec's)")
    pd.add_argument("--delay-rank", type=int, default=None, metavar="RANK",
                    help="inject a delay fault on this rank's first send "
                         "(straggler demo)")
    pd.add_argument("--delay", type=float, default=0.05,
                    help="injected delay seconds (default 0.05)")
    pd.add_argument("--strict", action="store_true",
                    help="exit nonzero when any finding is raised")
    pme = sub.add_parser(
        "metrics", help="run a small instrumented SCF and dump its metrics"
    )
    pme.add_argument("--ranks", type=int, default=2)
    pme.add_argument("--bands", type=int, default=2)
    pme.add_argument("--size", type=int, default=10,
                     help="grid edge length (size^3 points)")
    pme.add_argument("--iterations", type=int, default=6)
    pme.add_argument("--json", action="store_true",
                     help="machine-readable snapshot (the CI artifact shape)")
    return parser


_COMMANDS = {
    "table1": _cmd_table1,
    "fig2": _cmd_fig2,
    "fig5": _cmd_fig5,
    "fig6": _cmd_fig6,
    "fig7": _cmd_fig7,
    "headline": _cmd_headline,
    "ablation": _cmd_ablation,
    "wholeapp": _cmd_wholeapp,
    "validate": _cmd_validate,
    "simscale": _cmd_simscale,
    "bandpar": _cmd_bandpar,
    "plan": _cmd_plan,
    "report": _cmd_report,
    "calibrate": _cmd_calibrate,
    "schedule": _cmd_schedule,
    "chaos": _cmd_chaos,
    "mtbf": _cmd_mtbf,
    "trace": _cmd_trace,
    "timeline": _cmd_timeline,
    "metrics": _cmd_metrics,
    "critpath": _cmd_critpath,
    "doctor": _cmd_doctor,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    print(_COMMANDS[args.command](args))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
