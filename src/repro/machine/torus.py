"""The 3D torus (or mesh) point-to-point network.

:class:`TorusTopology` is pure geometry: coordinates, neighbours,
dimension-ordered routes, hop distances, with or without wrap-around links.

:class:`TorusNetwork` puts the geometry on the DES: every *directed* link
(node, direction) is a capacity-1 :class:`~repro.des.Resource`, and a
transfer holds every link of its route for the whole message duration
(a wormhole/cut-through idealization — exact for the single-hop
nearest-neighbour traffic the stencil exchange generates, and a reasonable
contention model for the rare multi-hop case).  Links are acquired in a
global canonical order, which makes concurrent transfers provably
deadlock-free (a total order on resources admits no wait cycles).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Iterable

from typing import Optional

from repro.des import Resource, Simulator
from repro.des.core import Event
from repro.des.trace import Tracer
from repro.machine.spec import TorusSpec
from repro.util.validation import check_shape3

#: The six axial directions: (dimension, step).
DIRECTIONS: tuple[tuple[int, int], ...] = (
    (0, +1), (0, -1), (1, +1), (1, -1), (2, +1), (2, -1),
)


@dataclass(frozen=True)
class TorusTopology:
    """Geometry of a 3D torus/mesh of nodes."""

    shape: tuple[int, int, int]
    torus: bool = True

    def __post_init__(self) -> None:
        object.__setattr__(self, "shape", check_shape3(self.shape, "shape"))

    @property
    def n_nodes(self) -> int:
        sx, sy, sz = self.shape
        return sx * sy * sz

    # -- coordinate mapping ------------------------------------------------
    def coords(self, node: int) -> tuple[int, int, int]:
        """Node id -> (x, y, z), x varying slowest (C order)."""
        sx, sy, sz = self.shape
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} outside 0..{self.n_nodes - 1}")
        x, rem = divmod(node, sy * sz)
        y, z = divmod(rem, sz)
        return (x, y, z)

    def node_at(self, coords: Iterable[int]) -> int:
        """(x, y, z) -> node id; coordinates are wrapped on a torus."""
        x, y, z = coords
        sx, sy, sz = self.shape
        if self.torus:
            x, y, z = x % sx, y % sy, z % sz
        if not (0 <= x < sx and 0 <= y < sy and 0 <= z < sz):
            raise ValueError(f"coords {(x, y, z)} outside mesh {self.shape}")
        return (x * sy + y) * sz + z

    def neighbor(self, node: int, dim: int, step: int) -> int | None:
        """The neighbour of ``node`` one step along ``dim``.

        Returns None at a mesh boundary (no wrap-around link exists).
        """
        if dim not in (0, 1, 2):
            raise ValueError(f"dim must be 0, 1 or 2, got {dim}")
        if step not in (-1, +1):
            raise ValueError(f"step must be -1 or +1, got {step}")
        c = list(self.coords(node))
        c[dim] += step
        size = self.shape[dim]
        if not self.torus and not 0 <= c[dim] < size:
            return None
        c[dim] %= size
        return self.node_at(c)

    # -- distances and routes -----------------------------------------------
    def _axis_steps(self, a: int, b: int, dim: int) -> list[int]:
        """Signed unit steps along ``dim`` from a's to b's coordinate."""
        ca, cb = self.coords(a)[dim], self.coords(b)[dim]
        size = self.shape[dim]
        delta = cb - ca
        if self.torus:
            # choose the shorter way around; ties go positive
            if delta > size // 2 or -delta > (size - 1) // 2:
                delta -= size if delta > 0 else -size
        step = 1 if delta > 0 else -1
        return [step] * abs(delta)

    def hop_distance(self, a: int, b: int) -> int:
        """Minimal number of links between two nodes."""
        return sum(len(self._axis_steps(a, b, d)) for d in range(3))

    def route(self, src: int, dst: int) -> list[tuple[int, int, int]]:
        """Dimension-ordered route: list of (node, dim, step) hops.

        Each entry is a directed link leaving ``node`` along ``dim`` in
        direction ``step``; the route visits X hops first, then Y, then Z —
        the deterministic routing real BG/P uses by default.
        """
        hops: list[tuple[int, int, int]] = []
        here = src
        for dim in range(3):
            for step in self._axis_steps(src, dst, dim):
                hops.append((here, dim, step))
                nxt = self.neighbor(here, dim, step)
                assert nxt is not None, "route stepped off the mesh"
                here = nxt
        assert here == dst
        return hops

    def max_hops(self) -> int:
        """Network diameter in links."""
        if self.torus:
            return sum(s // 2 for s in self.shape)
        return sum(s - 1 for s in self.shape)


class TorusNetwork:
    """DES-backed torus: transfer processes with link contention."""

    def __init__(
        self,
        sim: Simulator,
        topology: TorusTopology,
        spec: TorusSpec,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self.spec = spec
        self.tracer = tracer
        #: directed link resources, created lazily: (node, dim, step) -> Resource
        self._links: dict[tuple[int, int, int], Resource] = {}
        #: total bytes injected per node (for comm-volume accounting)
        self.bytes_sent: dict[int, int] = {}

    def link(self, node: int, dim: int, step: int) -> Resource:
        """The capacity-1 resource of one directed link."""
        key = (node, dim, step)
        res = self._links.get(key)
        if res is None:
            res = Resource(self.sim, capacity=1, name=f"link{key}")
            self._links[key] = res
        return res

    def transfer(self, src: int, dst: int, nbytes: float) -> Generator[Event, object, None]:
        """Process: move ``nbytes`` from ``src`` to ``dst``.

        Holds every link of the dimension-ordered route for the message
        duration.  Links are *acquired* in canonical (sorted) order so that
        concurrent transfers cannot deadlock; they are all released when the
        message completes.
        """
        if src == dst:
            # Self-send: a memcpy at memory bandwidth, no links involved.
            yield self.sim.timeout(self.spec.message_overhead)
            return
        route = self.topology.route(src, dst)
        duration = self.spec.message_time(nbytes, hops=len(route))
        links = [self.link(*hop) for hop in sorted(route)]
        for link in links:
            yield link.acquire()
        start = self.sim.now
        try:
            yield self.sim.timeout(duration)
            self.bytes_sent[src] = self.bytes_sent.get(src, 0) + int(nbytes)
        finally:
            for link in links:
                link.release()
        if self.tracer is not None:
            for node, dim, step in route:
                sign = "+" if step > 0 else "-"
                self.tracer.record(
                    f"link{node}.{sign}{'xyz'[dim]}", start, self.sim.now,
                    f"{src}->{dst}",
                )
