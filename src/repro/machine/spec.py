"""Hardware constants of a Blue Gene/P node and its networks (Table I).

The defaults (:data:`BGP_SPEC`) encode the paper's Table I plus the two
communication-model parameters calibrated from the paper's own message-size
experiment (Figure 2):

* effective asymptotic single-link bandwidth ``~375 MB/s`` (the figure
  saturates slightly below the 425 MB/s raw link rate), and
* per-message overhead ``~2.7 us``, chosen so that half the asymptotic
  bandwidth is reached near a 10^3-byte message — exactly where Figure 2
  crosses half-bandwidth (the latency-bandwidth model reaches B/2 at
  ``size = overhead * B``).

All specs are frozen dataclasses: a simulation's hardware cannot drift
mid-run, and specs can be used as dict keys for caching.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.util.units import GB, GFLOPS, KIB, MB, MHZ, MIB, US, format_bytes, format_rate


@dataclass(frozen=True)
class CoreSpec:
    """One PowerPC 450 core."""

    frequency_hz: float = 850 * MHZ
    #: double-hummer FPU: 2 FMAs (4 flops) per cycle
    flops_per_cycle: float = 4.0
    l1_bytes: int = 64 * KIB

    @property
    def peak_flops(self) -> float:
        """Peak floating-point rate of one core (flop/s)."""
        return self.frequency_hz * self.flops_per_cycle


@dataclass(frozen=True)
class NodeSpec:
    """One compute node: four cores sharing L3, memory and the torus links."""

    core: CoreSpec = CoreSpec()
    n_cores: int = 4
    l3_bytes: int = 8 * MIB
    memory_bytes: int = 2 * GB
    memory_bandwidth: float = 13.6 * GB  # bytes/s

    @property
    def peak_flops(self) -> float:
        """Peak node rate; Table I lists 13.6 Gflops/node."""
        return self.n_cores * self.core.peak_flops


@dataclass(frozen=True)
class TorusSpec:
    """The 3D torus point-to-point network, per node.

    Six bidirectional links (+x, -x, +y, -y, +z, -z); Table I quotes the
    aggregate as ``6 x 2 x 425 MB/s = 5.1 GB/s``.
    """

    #: raw unidirectional bandwidth of one link (Table I)
    link_bandwidth: float = 425 * MB
    #: effective achievable bandwidth for MPI messages (Fig 2 asymptote)
    effective_bandwidth: float = 375 * MB
    #: per-message software + injection overhead (calibrated to Fig 2)
    message_overhead: float = 2.7 * US
    #: additional per-hop latency for multi-hop routes
    per_hop_latency: float = 0.1 * US
    n_links: int = 6

    @property
    def aggregate_bandwidth(self) -> float:
        """Total bidirectional torus bandwidth per node (5.1 GB/s)."""
        return self.n_links * 2 * self.link_bandwidth

    def message_time(self, nbytes: float, hops: int = 1) -> float:
        """Time for one message of ``nbytes`` over ``hops`` links (no contention)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if hops < 1:
            raise ValueError(f"hops must be >= 1, got {hops}")
        return self.message_overhead + (hops - 1) * self.per_hop_latency + nbytes / self.effective_bandwidth

    def bandwidth(self, nbytes: float, hops: int = 1) -> float:
        """Achieved bandwidth (bytes/s) for one message of ``nbytes``."""
        if nbytes <= 0:
            return 0.0
        return nbytes / self.message_time(nbytes, hops)

    @property
    def half_bandwidth_size(self) -> float:
        """Message size achieving half the asymptotic bandwidth (~10^3 B)."""
        return self.message_overhead * self.effective_bandwidth


@dataclass(frozen=True)
class TreeSpec:
    """The collective (tree) network used for reductions and broadcasts."""

    bandwidth: float = 850 * MB  # 6.8 Gb/s
    per_stage_latency: float = 1.3 * US

    def collective_time(self, nbytes: float, n_nodes: int) -> float:
        """Time for a broadcast/reduction of ``nbytes`` over ``n_nodes``.

        The hardware tree pipelines payloads, so cost is one traversal
        (depth * stage latency) plus the streaming time of the payload.
        """
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        if n_nodes == 1:
            return 0.0
        depth = max(1, (n_nodes - 1).bit_length())
        return depth * self.per_stage_latency + nbytes / self.bandwidth


@dataclass(frozen=True)
class ThreadSpec:
    """Costs of the software threading layer (pthreads + MPI thread modes).

    These are not in Table I; they are the calibrated knobs behind the
    paper's two hybrid approaches:

    * ``mpi_multiple_overhead`` — extra cost per MPI call in
      ``MPI_THREAD_MULTIPLE`` mode (lock acquisition), paid by
      *Hybrid multiple*.
    * ``barrier_time`` — a 4-thread in-node barrier, paid once per *grid*
      by *Hybrid master-only* (the reason it loses, section VI).
    * ``join_time`` — one final thread join, paid once per FD *invocation*
      by *Hybrid multiple* ("the synchronization penalty is constant").
    * ``spawn_time`` — creating/waking the worker threads at invocation
      start.
    """

    mpi_multiple_overhead: float = 3.0 * US
    barrier_time: float = 25.0 * US
    join_time: float = 5.0 * US
    spawn_time: float = 5.0 * US
    #: CPU time consumed by one MPI call (argument checking, queue setup,
    #: DMA descriptor injection) on an 850 MHz PPC450 — paid by the calling
    #: thread and not overlappable.  This is what batching amortizes.
    mpi_call_cpu_time: float = 2.0 * US


@dataclass(frozen=True)
class MachineSpec:
    """A full machine: node spec + network specs + compute-kernel calibration."""

    node: NodeSpec = NodeSpec()
    torus: TorusSpec = TorusSpec()
    tree: TreeSpec = TreeSpec()
    threads: ThreadSpec = ThreadSpec()
    #: minimum nodes for the partition to close into a torus (else mesh)
    torus_min_nodes: int = 512
    #: calibrated stencil cost: seconds per grid point per core for the
    #: 13-point double-precision stencil on a *large* block (memory-bound
    #: on a PPC450; the compute model's primary free parameter)
    stencil_point_time: float = 110e-9
    #: small-block penalty: the ghost shells must be streamed from memory
    #: too, so per-point cost scales with (padded volume / block volume)
    #: raised to this exponent (0 = no penalty, 1 = fully memory bound;
    #: 0.4 calibrated against the paper's utilization figures —
    #: see repro.analysis.calibration for the reproducible fit)
    halo_compute_exponent: float = 0.4
    #: bytes per grid point (real-valued grids; complex would be 16)
    bytes_per_point: int = 8

    def with_(self, **kwargs: Any) -> "MachineSpec":
        """Return a copy with some fields replaced (calibration helper)."""
        return replace(self, **kwargs)


#: The default Blue Gene/P installation modelled throughout the library.
BGP_SPEC = MachineSpec()


def table1_rows(spec: MachineSpec = BGP_SPEC) -> list[tuple[str, str]]:
    """Regenerate Table I ("Hardware description of a Blue Gene/P node")."""
    node = spec.node
    torus = spec.torus
    return [
        ("Node CPU", f"{node.n_cores} PowerPC 450 cores"),
        ("CPU frequency", f"{node.core.frequency_hz / MHZ:.0f} MHz"),
        ("L1 cache (private)", f"{node.core.l1_bytes // KIB}KB per core"),
        ("L2 cache (private)", "Seven stream prefetching"),
        ("L3 cache (shared)", f"{node.l3_bytes // MIB}MB"),
        ("Main memory", format_bytes(node.memory_bytes)),
        ("Main memory bandwidth", format_rate(node.memory_bandwidth)),
        ("Peak performance", f"{node.peak_flops / GFLOPS:.1f} Gflops/node"),
        (
            "Torus bandwidth",
            f"{torus.n_links} x 2 x {torus.link_bandwidth / MB:.0f}MB/s"
            f" = {torus.aggregate_bandwidth / GB:.1f}GB/s",
        ),
    ]
