"""Parameterised hardware model of a Blue Gene/P installation.

Everything the paper's evaluation depends on is a number in
:class:`~repro.machine.spec.MachineSpec` (Table I of the paper) or a rule in
this package:

* :mod:`repro.machine.spec` — node and network constants (Table I).
* :mod:`repro.machine.partition` — partition shapes and the mesh-vs-torus
  rule (torus topology only for partitions of >= 512 nodes), plus the three
  node modes (SMP / DUAL / VN a.k.a. "virtual mode").
* :mod:`repro.machine.torus` — the 3D torus point-to-point network as DES
  resources with dimension-ordered routing.
* :mod:`repro.machine.tree` — the collective tree network timing model.
* :mod:`repro.machine.node` — a compute node: 4 cores + a DMA engine.
* :mod:`repro.machine.machine` — ties nodes + networks into one `Machine`.
"""

from repro.machine.spec import (
    BGP_SPEC,
    CoreSpec,
    MachineSpec,
    NodeSpec,
    TorusSpec,
    TreeSpec,
    table1_rows,
)
from repro.machine.partition import (
    NodeMode,
    Partition,
    partition_shape,
)
from repro.machine.torus import TorusTopology, TorusNetwork
from repro.machine.tree import TreeNetwork
from repro.machine.node import Node
from repro.machine.machine import Machine

__all__ = [
    "BGP_SPEC",
    "CoreSpec",
    "MachineSpec",
    "NodeSpec",
    "TorusSpec",
    "TreeSpec",
    "table1_rows",
    "NodeMode",
    "Partition",
    "partition_shape",
    "TorusTopology",
    "TorusNetwork",
    "TreeNetwork",
    "Node",
    "Machine",
]
