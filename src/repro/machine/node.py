"""A compute node: four cores and a DMA engine.

Cores are capacity-1 DES resources: a simulated thread *computes* by
holding a core for the kernel duration.  The DMA engine moves torus
messages without core involvement (the key hardware property behind the
paper's latency-hiding: non-blocking MPI progresses asynchronously), so
non-blocking transfers never hold a core here — the DMA object only counts
concurrent transfers for introspection.
"""

from __future__ import annotations

from typing import Generator

from typing import Optional

from repro.des import Resource, Simulator
from repro.des.core import Event
from repro.des.trace import Tracer
from repro.machine.spec import NodeSpec


class DmaEngine:
    """Bookkeeping for in-flight DMA transfers of one node."""

    def __init__(self) -> None:
        self.in_flight = 0
        self.completed = 0

    def begin(self) -> None:
        self.in_flight += 1

    def end(self) -> None:
        if self.in_flight <= 0:
            raise RuntimeError("DMA end() without matching begin()")
        self.in_flight -= 1
        self.completed += 1


class Node:
    """One BG/P node inside the DES machine."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        spec: NodeSpec,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self.spec = spec
        self.tracer = tracer
        self.cores = [
            Resource(sim, capacity=1, name=f"node{node_id}.core{c}")
            for c in range(spec.n_cores)
        ]
        self.dma = DmaEngine()
        #: cumulative busy seconds per core (for utilization reporting)
        self.core_busy: list[float] = [0.0] * spec.n_cores

    def compute(self, core: int, seconds: float) -> Generator[Event, object, None]:
        """Process: occupy ``core`` for ``seconds`` of computation."""
        if not 0 <= core < self.spec.n_cores:
            raise ValueError(f"core {core} outside 0..{self.spec.n_cores - 1}")
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        yield self.cores[core].acquire()
        start = self.sim.now
        try:
            yield self.sim.timeout(seconds)
        finally:
            self.cores[core].release()
        self.core_busy[core] += seconds
        if self.tracer is not None:
            self.tracer.record(
                f"node{self.node_id}.core{core}", start, self.sim.now, "compute"
            )

    def utilization(self, elapsed: float) -> float:
        """Mean busy fraction of the node's cores over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return sum(self.core_busy) / (self.spec.n_cores * elapsed)
