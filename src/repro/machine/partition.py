"""Blue Gene/P partitions and node modes.

A BG/P job runs on a *partition* — a contiguous block of nodes whose shape
is fixed by the machine's wiring.  Two rules matter for the paper:

* Partitions of **512 or more nodes** (a midplane and up) close their X/Y/Z
  dimensions into a **torus**; smaller partitions are an open **mesh**
  (section V of the paper).
* A node runs in one of three modes (section III): **SMP** (one MPI rank,
  up to 4 threads), **DUAL** (two ranks of two hardware threads) and
  **VN** — *virtual node* mode, the paper's "virtual mode" — where the four
  cores appear as four single-threaded MPI ranks with 512 MB each.

Partition shapes follow the real machine's building blocks: a midplane is
an 8x8x8 torus of 512 nodes, a rack stacks two midplanes (8x8x16), and
multi-rack rows extend Y then X.  Sub-midplane partitions halve dimensions
(mesh).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.validation import check_positive_int


class NodeMode(enum.Enum):
    """How the four cores of a node are exposed to the application."""

    #: one MPI rank per node, all four cores available to threads
    SMP = "smp"
    #: two MPI ranks per node, two cores each
    DUAL = "dual"
    #: four MPI ranks per node ("virtual mode" in the paper)
    VN = "vn"

    @property
    def ranks_per_node(self) -> int:
        return {NodeMode.SMP: 1, NodeMode.DUAL: 2, NodeMode.VN: 4}[self]

    @property
    def cores_per_rank(self) -> int:
        return 4 // self.ranks_per_node

    @property
    def memory_per_rank_fraction(self) -> float:
        """Fraction of node memory visible to each rank (VN: 512 MB of 2 GB)."""
        return 1.0 / self.ranks_per_node


#: Known partition shapes, keyed by node count.  Shapes below 512 nodes are
#: meshes (halved midplane dimensions); 512+ are tori built from midplanes.
_PARTITION_SHAPES: dict[int, tuple[int, int, int]] = {
    16: (4, 2, 2),
    32: (4, 4, 2),
    64: (4, 4, 4),
    128: (8, 4, 4),
    256: (8, 8, 4),
    512: (8, 8, 8),       # midplane
    1024: (8, 8, 16),     # rack
    2048: (8, 8, 32),     # row of 2 racks
    4096: (8, 16, 32),    # 4 racks (the paper's machine)
    8192: (16, 16, 32),
    16384: (16, 32, 32),
}


def partition_shape(n_nodes: int) -> tuple[int, int, int]:
    """Return the X,Y,Z node-grid shape of an ``n_nodes`` partition.

    Known BG/P shapes are used when available; other counts get the most
    cubic 3-factorization (useful for small test partitions like 2 or 8
    nodes, which real BG/P would not allocate but our simulator accepts).
    """
    n_nodes = check_positive_int(n_nodes, "n_nodes")
    if n_nodes in _PARTITION_SHAPES:
        return _PARTITION_SHAPES[n_nodes]
    from repro.util.factorize import best_grid_factorization

    return best_grid_factorization(n_nodes, lambda f: max(f) - min(f))


@dataclass(frozen=True)
class Partition:
    """A job's allocation: node-grid shape, topology kind, node mode.

    ``mapping`` mirrors BG/P's ``BG_MAPPING`` environment variable: the
    order in which rank numbers sweep the node grid and the cores.

    * ``"TXYZ"`` (default) — the core index varies fastest: ranks
      0..3 share node 0, 4..7 node 1, ...  (the layout MPICH2 uses when
      virtual-node jobs are submitted normally).
    * ``"XYZT"`` — the core index varies slowest: ranks 0..N-1 occupy
      core 0 of every node, N..2N-1 core 1, ...  (spreads consecutive
      ranks over distinct nodes).
    """

    n_nodes: int
    mode: NodeMode = NodeMode.SMP
    torus_min_nodes: int = 512
    mapping: str = "TXYZ"

    def __post_init__(self) -> None:
        check_positive_int(self.n_nodes, "n_nodes")
        if self.mapping not in ("TXYZ", "XYZT"):
            raise ValueError(
                f"mapping must be 'TXYZ' or 'XYZT', got {self.mapping!r}"
            )

    @property
    def shape(self) -> tuple[int, int, int]:
        """Node-grid dimensions (X, Y, Z)."""
        return partition_shape(self.n_nodes)

    @property
    def is_torus(self) -> bool:
        """True if the partition wires into a torus (>= 512 nodes)."""
        return self.n_nodes >= self.torus_min_nodes

    @property
    def n_ranks(self) -> int:
        """Total MPI ranks in this partition under the node mode."""
        return self.n_nodes * self.mode.ranks_per_node

    @property
    def rank_grid_shape(self) -> tuple[int, int, int]:
        """The 3D shape of the *rank* grid used by ``MPI_Cart_create``.

        In VN mode the four ranks of a node extend the Z dimension — the
        mapping the BG/P system software uses for its default "XYZT" order,
        so virtual-mode neighbours along Z alternate intra/inter node.
        """
        sx, sy, sz = self.shape
        return (sx, sy, sz * self.mode.ranks_per_node)

    def node_of_rank(self, rank: int) -> int:
        """Which node hosts ``rank`` under the partition's mapping."""
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} outside 0..{self.n_ranks - 1}")
        if self.mapping == "TXYZ":
            return rank // self.mode.ranks_per_node
        return rank % self.n_nodes  # XYZT: core index in the high bits

    def core_slot_of_rank(self, rank: int) -> int:
        """Which hardware-thread slot of its node ``rank`` occupies."""
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} outside 0..{self.n_ranks - 1}")
        if self.mapping == "TXYZ":
            return rank % self.mode.ranks_per_node
        return rank // self.n_nodes

    def ranks_of_node(self, node: int) -> list[int]:
        """All ranks hosted by ``node``."""
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} outside 0..{self.n_nodes - 1}")
        rpn = self.mode.ranks_per_node
        if self.mapping == "TXYZ":
            return list(range(node * rpn, (node + 1) * rpn))
        return [node + slot * self.n_nodes for slot in range(rpn)]
