"""The collective tree network (broadcast / reduce / barrier).

BG/P routes MPI collectives over a dedicated tree-structured network and
global barriers over a separate interrupt network, so collectives do not
contend with the torus point-to-point traffic.  The model is therefore
analytic: a pipelined traversal of the tree (depth x stage latency +
payload streaming time), exposed both as a plain function and as a DES
process for use inside simulated MPI.
"""

from __future__ import annotations

from typing import Generator

from repro.des import Simulator
from repro.des.core import Event
from repro.machine.spec import TreeSpec


class TreeNetwork:
    """DES wrapper over the analytic tree-collective timing model."""

    #: time for a global barrier on the dedicated interrupt network —
    #: near-constant on real hardware (~1.3 us)
    BARRIER_TIME = 1.3e-6

    def __init__(self, sim: Simulator, spec: TreeSpec, n_nodes: int) -> None:
        if n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
        self.sim = sim
        self.spec = spec
        self.n_nodes = n_nodes

    def collective_time(self, nbytes: float) -> float:
        """Analytic time of one broadcast/reduce of ``nbytes``."""
        return self.spec.collective_time(nbytes, self.n_nodes)

    def collective(self, nbytes: float) -> Generator[Event, object, None]:
        """Process: one tree collective (all participants finish together)."""
        yield self.sim.timeout(self.collective_time(nbytes))

    def barrier(self) -> Generator[Event, object, None]:
        """Process: one global barrier on the interrupt network."""
        yield self.sim.timeout(self.BARRIER_TIME if self.n_nodes > 1 else 0.0)
