"""The assembled simulated machine: nodes + torus + tree on one DES clock.

:class:`Machine` is what the simulated MPI layer (:mod:`repro.smpi`) runs
on.  It owns the partition geometry (node-grid shape, mesh vs torus) and
lazily creates node objects, so a 4096-node machine costs nothing until
ranks actually touch nodes.
"""

from __future__ import annotations

from typing import Generator

from typing import Optional

from repro.des import Simulator
from repro.des.core import Event
from repro.des.trace import Tracer
from repro.machine.node import Node
from repro.machine.partition import NodeMode, Partition
from repro.machine.spec import BGP_SPEC, MachineSpec
from repro.machine.torus import TorusNetwork, TorusTopology
from repro.machine.tree import TreeNetwork


class Machine:
    """A partition of a simulated Blue Gene/P."""

    def __init__(
        self,
        n_nodes: int,
        mode: NodeMode = NodeMode.SMP,
        spec: MachineSpec = BGP_SPEC,
        sim: Simulator | None = None,
        tracer: Optional[Tracer] = None,
        mapping: str = "TXYZ",
    ) -> None:
        self.spec = spec
        self.sim = sim if sim is not None else Simulator()
        self.tracer = tracer
        self.partition = Partition(
            n_nodes, mode=mode, torus_min_nodes=spec.torus_min_nodes,
            mapping=mapping,
        )
        self.topology = TorusTopology(
            self.partition.shape, torus=self.partition.is_torus
        )
        self.torus = TorusNetwork(self.sim, self.topology, spec.torus, tracer=tracer)
        self.tree = TreeNetwork(self.sim, spec.tree, n_nodes)
        self._nodes: dict[int, Node] = {}

    # -- structure -----------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.partition.n_nodes

    @property
    def n_ranks(self) -> int:
        return self.partition.n_ranks

    @property
    def mode(self) -> NodeMode:
        return self.partition.mode

    def node(self, node_id: int) -> Node:
        """The node object for ``node_id`` (created on first use)."""
        if not 0 <= node_id < self.n_nodes:
            raise ValueError(f"node {node_id} outside 0..{self.n_nodes - 1}")
        nd = self._nodes.get(node_id)
        if nd is None:
            nd = Node(self.sim, node_id, self.spec.node, tracer=self.tracer)
            self._nodes[node_id] = nd
        return nd

    # -- activity -------------------------------------------------------------
    def transfer(
        self, src_node: int, dst_node: int, nbytes: float
    ) -> Generator[Event, object, None]:
        """Process: a DMA-driven torus transfer between two nodes.

        The DMA engine performs the move; no core is held.  Intra-node
        "transfers" degenerate to a memcpy inside
        :meth:`TorusNetwork.transfer`.
        """
        src = self.node(src_node)
        src.dma.begin()
        try:
            yield from self.torus.transfer(src_node, dst_node, nbytes)
        finally:
            src.dma.end()

    def compute(
        self, node_id: int, core: int, seconds: float
    ) -> Generator[Event, object, None]:
        """Process: computation on one core of one node."""
        yield from self.node(node_id).compute(core, seconds)

    def utilization(self, elapsed: float | None = None) -> float:
        """Mean core-busy fraction over the touched nodes."""
        elapsed = self.sim.now if elapsed is None else elapsed
        if elapsed <= 0 or not self._nodes:
            return 0.0
        return sum(nd.utilization(elapsed) for nd in self._nodes.values()) / len(
            self._nodes
        )
