"""Finite-difference stencil kernels (section II-A of the paper).

The paper's operation is a 13-point stencil: a linear combination of a
point, its two nearest neighbours in all six axial directions, and itself —
the radius-2 central-difference Laplacian GPAW applies to wave functions
and the electrostatic potential.

* :mod:`repro.stencil.coefficients` — exact central-difference coefficient
  tables (radius 1..4) and the paper's C1..C13 constants.
* :mod:`repro.stencil.kernel` — vectorized NumPy application on padded
  local arrays and on global arrays (the sequential oracle).
* :mod:`repro.stencil.reference` — a naive triple-loop implementation used
  only to validate the vectorized kernels in tests.
"""

from repro.stencil.coefficients import (
    StencilCoefficients,
    laplacian_coefficients,
    paper_constants,
)
from repro.stencil.kernel import (
    apply_stencil_batch,
    apply_stencil_padded,
    apply_stencil_global,
    flops_per_point,
)
from repro.stencil.gradient import (
    apply_gradient_global,
    apply_gradient_padded,
    gradient_weights,
)

__all__ = [
    "StencilCoefficients",
    "laplacian_coefficients",
    "paper_constants",
    "apply_stencil_batch",
    "apply_stencil_padded",
    "apply_stencil_global",
    "flops_per_point",
    "apply_gradient_global",
    "apply_gradient_padded",
    "gradient_weights",
]
