"""Central-difference coefficients for the real-space Laplacian.

GPAW approximates the Laplacian with per-axis central differences of
radius ``r`` (accuracy order ``2r``).  The classic coefficient rows for the
second derivative are exact rationals; we store them exactly and scale by
``1/h^2`` on construction.

The paper writes the radius-2 (13-point) case explicitly as constants
C1..C13; :func:`paper_constants` reproduces that layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

import numpy as np

from repro.util.validation import check_positive_int

#: Exact second-derivative central-difference weights, by radius.
#: Entry r maps to (center, [w1, w2, ... wr]) such that
#:   f''(x) ~ (center*f(x) + sum_d wd*(f(x-d) + f(x+d))) / h^2
_SECOND_DERIVATIVE_WEIGHTS: dict[int, tuple[Fraction, list[Fraction]]] = {
    1: (Fraction(-2), [Fraction(1)]),
    2: (Fraction(-5, 2), [Fraction(4, 3), Fraction(-1, 12)]),
    3: (
        Fraction(-49, 18),
        [Fraction(3, 2), Fraction(-3, 20), Fraction(1, 90)],
    ),
    4: (
        Fraction(-205, 72),
        [Fraction(8, 5), Fraction(-1, 5), Fraction(8, 315), Fraction(-1, 560)],
    ),
}

MAX_RADIUS = max(_SECOND_DERIVATIVE_WEIGHTS)


@dataclass(frozen=True)
class StencilCoefficients:
    """An axis-symmetric 3D stencil: one centre weight + per-distance weights.

    ``apply`` semantics::

        out[p] = center * in[p] + sum_{axis, dist, sign} weights[dist-1] * in[p +/- dist*e_axis]

    The same per-distance weights apply along all three axes (the grids are
    isotropic), matching GPAW's Laplacian and the paper's C1..C13 form.
    """

    center: float
    weights: tuple[float, ...]  # weight at distance 1, 2, ... radius

    @property
    def radius(self) -> int:
        return len(self.weights)

    @property
    def n_points(self) -> int:
        """Points touched per output point (13 for radius 2)."""
        return 1 + 6 * self.radius

    def scale(self, factor: float) -> "StencilCoefficients":
        """A scaled stencil (e.g. ``-1/2 * laplacian`` for kinetic energy)."""
        return StencilCoefficients(
            center=self.center * factor,
            weights=tuple(w * factor for w in self.weights),
        )


def laplacian_coefficients(radius: int = 2, spacing: float = 1.0) -> StencilCoefficients:
    """The 3D Laplacian stencil of a given radius on spacing ``h``.

    The centre weight is three times the 1D centre (one per axis); distance
    weights are shared by all axes.
    """
    check_positive_int(radius, "radius")
    if radius not in _SECOND_DERIVATIVE_WEIGHTS:
        raise ValueError(
            f"radius must be in 1..{MAX_RADIUS}, got {radius}"
        )
    if not spacing > 0:
        raise ValueError(f"spacing must be > 0, got {spacing}")
    center_1d, weights = _SECOND_DERIVATIVE_WEIGHTS[radius]
    h2 = spacing * spacing
    return StencilCoefficients(
        center=3 * float(center_1d) / h2,
        weights=tuple(float(w) / h2 for w in weights),
    )


def paper_constants(spacing: float = 1.0) -> list[float]:
    """The 13 constants C1..C13 exactly as the paper lists them.

    Order (section II-A): C1 centre; C2/C3 x-+1; C4/C5 x-+2; C6/C7 y-+1;
    C8/C9 y-+2; C10/C11 z-+1; C12/C13 z-+2.
    """
    st = laplacian_coefficients(radius=2, spacing=spacing)
    w1, w2 = st.weights
    return [
        st.center,
        w1, w1, w2, w2,  # x: -1, +1, -2, +2
        w1, w1, w2, w2,  # y
        w1, w1, w2, w2,  # z
    ]


def coefficients_sum(coeffs: StencilCoefficients) -> float:
    """Sum of all stencil weights.

    For any consistent Laplacian discretization this is 0 (a constant field
    has zero Laplacian) — a property tests rely on.
    """
    return coeffs.center + 6 * float(np.sum(coeffs.weights))
