"""Vectorized stencil application.

Two entry points:

* :func:`apply_stencil_padded` — the production kernel: operates on one
  domain's halo-padded array, writing a separate output block.  All terms
  are shifted *views* of the padded array (no copies), accumulated with
  in-place ``+=`` into the output — the NumPy idiom for stencils.
* :func:`apply_stencil_global` — the sequential oracle: applies the same
  stencil to a whole (undistributed) grid with periodic or zero boundary
  handling.  Every distributed code path in the library is tested against
  it.

The input and output are always separate arrays; GPAW guarantees this for
its FD operation (section IV), which is what makes the point order — and
hence the parallelization — free.
"""

from __future__ import annotations

import numpy as np

from repro.stencil.coefficients import StencilCoefficients


def flops_per_point(coeffs: StencilCoefficients) -> int:
    """Floating-point operations per output point.

    One multiply per touched point plus the adds joining them:
    13 multiplies + 12 adds = 25 for the paper's radius-2 stencil.
    """
    n = coeffs.n_points
    return 2 * n - 1


def apply_stencil_padded(
    padded: np.ndarray,
    coeffs: StencilCoefficients,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Apply the stencil to the interior of a halo-padded array.

    Parameters
    ----------
    padded:
        Block extended by ``coeffs.radius`` ghost points per side, with the
        ghosts already filled (halo exchange / zero walls done).
    out:
        Optional pre-allocated output of the *block* (unpadded) shape.

    Returns
    -------
    The block-shaped result (``out`` if given).
    """
    w = coeffs.radius
    for axis, size in enumerate(padded.shape):
        if size < 2 * w + 1:
            raise ValueError(
                f"padded axis {axis} has {size} points; needs >= {2 * w + 1} "
                f"for radius {w}"
            )
    block_shape = tuple(s - 2 * w for s in padded.shape)
    if out is None:
        out = np.empty(block_shape, dtype=padded.dtype)
    elif out.shape != block_shape:
        raise ValueError(f"out shape {out.shape} != block shape {block_shape}")
    elif out is padded or np.shares_memory(out, padded):
        raise ValueError("out must not alias the input (separate grids)")

    interior = padded[w:-w, w:-w, w:-w]
    np.multiply(interior, coeffs.center, out=out)
    for axis in range(3):
        for dist in range(1, w + 1):
            weight = coeffs.weights[dist - 1]
            lo: list[slice] = [slice(w, -w)] * 3
            hi: list[slice] = [slice(w, -w)] * 3
            lo[axis] = slice(w - dist, -w - dist)
            hi[axis] = slice(w + dist, padded.shape[axis] - w + dist or None)
            out += weight * padded[tuple(lo)]
            out += weight * padded[tuple(hi)]
    return out


def apply_stencil_global(
    array: np.ndarray,
    coeffs: StencilCoefficients,
    pbc: tuple[bool, bool, bool] = (True, True, True),
) -> np.ndarray:
    """Sequential oracle: apply the stencil to a full grid.

    Periodic axes wrap (``np.roll``); non-periodic axes treat outside
    points as zero.
    """
    w = coeffs.radius
    for axis, size in enumerate(array.shape):
        if size < w and pbc[axis]:
            # np.roll would double-wrap; keep semantics strict instead.
            raise ValueError(
                f"axis {axis} has {size} points < radius {w}; too small for "
                "a periodic stencil"
            )
    out = coeffs.center * array
    for axis in range(3):
        for dist in range(1, w + 1):
            weight = coeffs.weights[dist - 1]
            if pbc[axis]:
                out += weight * np.roll(array, +dist, axis=axis)
                out += weight * np.roll(array, -dist, axis=axis)
            else:
                shifted = np.zeros_like(array)
                src: list[slice] = [slice(None)] * 3
                dst: list[slice] = [slice(None)] * 3
                # shift down: point p sees p-dist
                src[axis] = slice(0, array.shape[axis] - dist)
                dst[axis] = slice(dist, None)
                shifted[tuple(dst)] = array[tuple(src)]
                out += weight * shifted
                shifted = np.zeros_like(array)
                src = [slice(None)] * 3
                dst = [slice(None)] * 3
                src[axis] = slice(dist, None)
                dst[axis] = slice(0, array.shape[axis] - dist)
                shifted[tuple(dst)] = array[tuple(src)]
                out += weight * shifted
    return out
