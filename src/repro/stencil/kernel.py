"""Vectorized stencil application.

Three entry points:

* :func:`apply_stencil_padded` — the production kernel: operates on one
  domain's halo-padded array, writing a separate output block.  All terms
  are shifted *views* of the padded array (no copies), accumulated through
  a caller-provided scratch buffer (``np.multiply(..., out=scratch)`` /
  ``out += scratch``) so the kernel allocates **nothing** when both
  ``out`` and ``scratch`` are supplied.
* :func:`apply_stencil_batch` — the same kernel over a stacked 4-D
  ``(ngrids, nx, ny, nz)`` array.  The slice bookkeeping is computed once
  per batch and each grid is processed with a shared scratch buffer, so
  the per-call Python dispatch amortizes over the whole batch while the
  working set of every array operation stays cache-sized (processing the
  full 4-D stack per term is measurably *slower* on a memory-bound host —
  the stacked operands stream through DRAM instead of L2).
* :func:`apply_stencil_global` — the sequential oracle: applies the same
  stencil to a whole (undistributed) grid with periodic or zero boundary
  handling.  Every distributed code path in the library is tested against
  it, **bit-identically**: the oracle mirrors the fused kernel's exact
  accumulation order.

Accumulation order (shared by all three kernels, and the contract that
makes distributed results bit-identical to the oracle)::

    out = center * interior
    for dist in 1..radius:
        s    = (((((x_lo + x_hi) + y_lo) + y_hi) + z_lo) + z_hi)
        s   *= weights[dist - 1]
        out += s

where ``?_lo``/``?_hi`` are the views shifted by ``-dist``/``+dist``
along each axis.  This evaluates 15 array operations for the paper's
radius-2 stencil instead of the 25 (plus ~12 temporaries) of the naive
``out += weight * view`` form — the fewer passes over memory, the better,
because the kernel is memory-bandwidth-bound (Malas et al., PAPERS.md).

The input and output are always separate arrays; GPAW guarantees this for
its FD operation (section IV), which is what makes the point order — and
hence the parallelization — free.
"""

from __future__ import annotations

import numpy as np

from repro.stencil.coefficients import StencilCoefficients

Slices3 = tuple[slice, slice, slice]

#: Per-(padded shape, radius) cache of the interior slice and the shifted
#: term slices, grouped by distance in the canonical accumulation order.
_SLICE_CACHE: dict[
    tuple[tuple[int, int, int], int],
    tuple[Slices3, list[list[Slices3]]],
] = {}


def flops_per_point(coeffs: StencilCoefficients) -> int:
    """Floating-point operations per output point.

    One multiply per touched point plus the adds joining them:
    13 multiplies + 12 adds = 25 for the paper's radius-2 stencil.
    """
    n = coeffs.n_points
    return 2 * n - 1


def _term_slices(
    padded_shape: tuple[int, int, int], w: int
) -> tuple[Slices3, list[list[Slices3]]]:
    """Interior slice + per-distance shifted slices (x_lo, x_hi, y_lo, ...)."""
    key = (padded_shape, w)
    cached = _SLICE_CACHE.get(key)
    if cached is not None:
        return cached
    interior: Slices3 = tuple(slice(w, s - w) for s in padded_shape)  # type: ignore[assignment]
    groups: list[list[Slices3]] = []
    for dist in range(1, w + 1):
        terms: list[Slices3] = []
        for axis in range(3):
            lo: list[slice] = list(interior)
            hi: list[slice] = list(interior)
            lo[axis] = slice(w - dist, padded_shape[axis] - w - dist)
            hi[axis] = slice(w + dist, padded_shape[axis] - w + dist)
            terms.append(tuple(lo))  # type: ignore[arg-type]
            terms.append(tuple(hi))  # type: ignore[arg-type]
        groups.append(terms)
    _SLICE_CACHE[key] = (interior, groups)
    return interior, groups


def _fused_apply(
    padded: np.ndarray,
    coeffs: StencilCoefficients,
    out: np.ndarray,
    scratch: np.ndarray,
    interior: Slices3,
    groups: list[list[Slices3]],
) -> None:
    """The zero-allocation inner kernel (canonical accumulation order)."""
    np.multiply(padded[interior], coeffs.center, out=out)
    for dist_groups, weight in zip(groups, coeffs.weights):
        np.add(padded[dist_groups[0]], padded[dist_groups[1]], out=scratch)
        for sl in dist_groups[2:]:
            np.add(scratch, padded[sl], out=scratch)
        np.multiply(scratch, weight, out=scratch)
        np.add(out, scratch, out=out)


def _check_padded_shape(shape: tuple[int, ...], w: int) -> None:
    for axis, size in enumerate(shape):
        if size < 2 * w + 1:
            raise ValueError(
                f"padded axis {axis} has {size} points; needs >= {2 * w + 1} "
                f"for radius {w}"
            )


def _check_buffer(
    name: str,
    buf: np.ndarray,
    block_shape: tuple[int, ...],
    dtype: np.dtype,
    *others: np.ndarray,
) -> None:
    if buf.shape != block_shape:
        raise ValueError(f"{name} shape {buf.shape} != block shape {block_shape}")
    if buf.dtype != dtype:
        raise ValueError(f"{name} dtype {buf.dtype} != input dtype {dtype}")
    for other in others:
        if buf is other or np.shares_memory(buf, other):
            raise ValueError(f"{name} must not alias the input or output")


def apply_stencil_padded(
    padded: np.ndarray,
    coeffs: StencilCoefficients,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Apply the stencil to the interior of a halo-padded array.

    Parameters
    ----------
    padded:
        Block extended by ``coeffs.radius`` ghost points per side, with the
        ghosts already filled (halo exchange / zero walls done).
    out:
        Optional pre-allocated output of the *block* (unpadded) shape.
    scratch:
        Optional block-shaped accumulation buffer of the same dtype as
        ``padded``.  When both ``out`` and ``scratch`` are supplied the
        kernel performs **zero** array allocations; steady-state callers
        borrow both from a :class:`repro.core.workspace.Workspace`.

    Returns
    -------
    The block-shaped result (``out`` if given).
    """
    w = coeffs.radius
    _check_padded_shape(padded.shape, w)
    block_shape = tuple(s - 2 * w for s in padded.shape)
    if out is None:
        out = np.empty(block_shape, dtype=padded.dtype)
    else:
        _check_buffer("out", out, block_shape, padded.dtype, padded)
    if scratch is None:
        scratch = np.empty(block_shape, dtype=padded.dtype)
    else:
        _check_buffer("scratch", scratch, block_shape, padded.dtype, padded, out)

    interior, groups = _term_slices(padded.shape, w)
    _fused_apply(padded, coeffs, out, scratch, interior, groups)
    return out


def apply_stencil_batch(
    padded_stack: np.ndarray,
    coeffs: StencilCoefficients,
    out_stack: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Apply the stencil to a stacked batch of halo-padded grids.

    ``padded_stack`` is a 4-D ``(ngrids, nx, ny, nz)`` array — the regime
    the paper targets (thousands of wave-function grids per rank, already
    grouped by :func:`repro.core.batching.batch_schedule`).  The slice
    bookkeeping is resolved once for the whole batch and every grid is
    processed through one shared block-shaped ``scratch``, so steady-state
    batched execution allocates nothing and the per-grid results are
    bit-identical to :func:`apply_stencil_padded`.

    Parameters
    ----------
    out_stack:
        Optional ``(ngrids, *block_shape)`` output stack.
    scratch:
        Optional single block-shaped buffer shared across the batch.
    """
    if padded_stack.ndim != 4:
        raise ValueError(
            f"padded_stack must be 4-D (ngrids, nx, ny, nz), got "
            f"shape {padded_stack.shape}"
        )
    w = coeffs.radius
    n_grids = padded_stack.shape[0]
    padded_shape = padded_stack.shape[1:]
    _check_padded_shape(padded_shape, w)
    block_shape = tuple(s - 2 * w for s in padded_shape)
    stack_shape = (n_grids,) + block_shape
    if out_stack is None:
        out_stack = np.empty(stack_shape, dtype=padded_stack.dtype)
    else:
        _check_buffer("out_stack", out_stack, stack_shape, padded_stack.dtype,
                      padded_stack)
    if scratch is None:
        scratch = np.empty(block_shape, dtype=padded_stack.dtype)
    else:
        _check_buffer("scratch", scratch, block_shape, padded_stack.dtype,
                      padded_stack, out_stack)

    interior, groups = _term_slices(padded_shape, w)
    for g in range(n_grids):
        _fused_apply(padded_stack[g], coeffs, out_stack[g], scratch,
                     interior, groups)
    return out_stack


def apply_stencil_global(
    array: np.ndarray,
    coeffs: StencilCoefficients,
    pbc: tuple[bool, bool, bool] = (True, True, True),
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
    term_buf: np.ndarray | None = None,
    term_buf2: np.ndarray | None = None,
) -> np.ndarray:
    """Sequential oracle: apply the stencil to a full grid.

    Periodic axes wrap; non-periodic axes treat outside points as zero.
    The accumulation order mirrors :func:`_fused_apply` exactly, so
    distributed results are bit-identical to this oracle.

    All four buffers are optional and full-grid shaped; passing them
    (borrowed from a :class:`repro.core.workspace.Workspace`) makes the
    call allocation-free.  ``term_buf``/``term_buf2`` hold the shifted
    grids — the first add of each distance needs two simultaneously.
    The buffered path performs the same operations in the same order as
    the allocating one, so results stay bit-identical either way.
    """
    w = coeffs.radius
    for axis, size in enumerate(array.shape):
        if size < 2 * w and pbc[axis]:
            # A distance-w neighbour in opposite directions would reach the
            # same point through different wraps; the halo machinery cannot
            # represent that, so keep the semantics strict.
            raise ValueError(
                f"axis {axis} has {size} points < 2*radius {2 * w}; too "
                "small for a periodic stencil"
            )
    if out is None:
        out = np.empty_like(array)
    else:
        _check_buffer("out", out, array.shape, array.dtype, array)
    if scratch is None:
        scratch = np.empty_like(array)
    else:
        _check_buffer("scratch", scratch, array.shape, array.dtype, array, out)
    if term_buf is None:
        term_buf = np.empty_like(array)
    else:
        _check_buffer("term_buf", term_buf, array.shape, array.dtype,
                      array, out, scratch)
    if term_buf2 is None:
        term_buf2 = np.empty_like(array)
    else:
        _check_buffer("term_buf2", term_buf2, array.shape, array.dtype,
                      array, out, scratch, term_buf)

    def term(buf: np.ndarray, axis: int, dist: int, sign: int) -> np.ndarray:
        """Fill ``buf`` with the grid shifted so point p sees
        p + sign*dist along ``axis`` (the slab-copy form of np.roll)."""
        n = array.shape[axis]
        src: list[slice] = [slice(None)] * 3
        dst: list[slice] = [slice(None)] * 3
        if pbc[axis]:
            s = (-sign * dist) % n
            if s == 0:
                np.copyto(buf, array)
                return buf
            dst[axis] = slice(0, s)
            src[axis] = slice(n - s, None)
            buf[tuple(dst)] = array[tuple(src)]
            dst[axis] = slice(s, None)
            src[axis] = slice(0, n - s)
            buf[tuple(dst)] = array[tuple(src)]
            return buf
        gap: list[slice] = [slice(None)] * 3
        if sign < 0:
            src[axis] = slice(0, n - dist)
            dst[axis] = slice(dist, None)
            gap[axis] = slice(0, dist)
        else:
            src[axis] = slice(dist, None)
            dst[axis] = slice(0, n - dist)
            gap[axis] = slice(n - dist, None)
        buf[tuple(gap)] = 0.0
        buf[tuple(dst)] = array[tuple(src)]
        return buf

    np.multiply(array, coeffs.center, out=out)
    for dist in range(1, w + 1):
        weight = coeffs.weights[dist - 1]
        np.add(
            term(term_buf, 0, dist, -1),
            term(term_buf2, 0, dist, +1),
            out=scratch,
        )
        for axis in (1, 2):
            np.add(scratch, term(term_buf, axis, dist, -1), out=scratch)
            np.add(scratch, term(term_buf, axis, dist, +1), out=scratch)
        np.multiply(scratch, weight, out=scratch)
        np.add(out, scratch, out=out)
    return out
