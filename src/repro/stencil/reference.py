"""Naive triple-loop stencil — the oracle's oracle.

Deliberately written point-by-point, straight from the paper's equation
for ``A'_{x,y,z}``, with explicit wrap/zero boundary handling.  Only used
in tests on tiny grids to validate the vectorized kernels.
"""

from __future__ import annotations

import numpy as np

from repro.stencil.coefficients import StencilCoefficients


def apply_stencil_naive(
    array: np.ndarray,
    coeffs: StencilCoefficients,
    pbc: tuple[bool, bool, bool] = (True, True, True),
) -> np.ndarray:
    """Apply the stencil one point at a time (slow, obviously correct)."""
    nx, ny, nz = array.shape
    out = np.zeros_like(array)
    w = coeffs.radius

    def sample(x: int, y: int, z: int) -> complex:
        idx = [x, y, z]
        for axis, n in enumerate((nx, ny, nz)):
            if 0 <= idx[axis] < n:
                continue
            if pbc[axis]:
                idx[axis] %= n
            else:
                return 0.0
        return array[idx[0], idx[1], idx[2]]

    for x in range(nx):
        for y in range(ny):
            for z in range(nz):
                acc = coeffs.center * array[x, y, z]
                for dist in range(1, w + 1):
                    cw = coeffs.weights[dist - 1]
                    acc += cw * (sample(x - dist, y, z) + sample(x + dist, y, z))
                    acc += cw * (sample(x, y - dist, z) + sample(x, y + dist, z))
                    acc += cw * (sample(x, y, z - dist) + sample(x, y, z + dist))
                out[x, y, z] = acc
    return out
