"""First-derivative (gradient) stencils.

GPAW needs first derivatives of the wave functions for forces and for the
kinetic-energy density; they are central-difference stencils of the same
family as the Laplacian and ride on the same halo machinery (their radius
is what sets the halo width).  Weights are exact rationals, antisymmetric
about the centre (the centre weight is zero).
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np

from repro.util.validation import check_in, check_positive_int

#: Exact first-derivative central-difference weights by radius:
#:   f'(x) ~ sum_d w_d * (f(x+d) - f(x-d)) / h
_FIRST_DERIVATIVE_WEIGHTS: dict[int, list[Fraction]] = {
    1: [Fraction(1, 2)],
    2: [Fraction(2, 3), Fraction(-1, 12)],
    3: [Fraction(3, 4), Fraction(-3, 20), Fraction(1, 60)],
    4: [Fraction(4, 5), Fraction(-1, 5), Fraction(4, 105), Fraction(-1, 280)],
}

MAX_RADIUS = max(_FIRST_DERIVATIVE_WEIGHTS)


def gradient_weights(radius: int = 2, spacing: float = 1.0) -> tuple[float, ...]:
    """Per-distance weights of the d/dx stencil (antisymmetric)."""
    check_positive_int(radius, "radius")
    if radius not in _FIRST_DERIVATIVE_WEIGHTS:
        raise ValueError(f"radius must be in 1..{MAX_RADIUS}, got {radius}")
    if not spacing > 0:
        raise ValueError(f"spacing must be > 0, got {spacing}")
    return tuple(float(w) / spacing for w in _FIRST_DERIVATIVE_WEIGHTS[radius])


def apply_gradient_global(
    array: np.ndarray,
    axis: int,
    radius: int = 2,
    spacing: float = 1.0,
    periodic: bool = True,
) -> np.ndarray:
    """d/dx_axis of a full grid, wrapping or zero-extending at the walls."""
    check_in(axis, (0, 1, 2), "axis")
    weights = gradient_weights(radius, spacing)
    out = np.zeros_like(array)
    for dist, w in enumerate(weights, start=1):
        if periodic:
            out += w * (np.roll(array, -dist, axis=axis) - np.roll(array, +dist, axis=axis))
        else:
            fwd = np.zeros_like(array)
            bwd = np.zeros_like(array)
            src: list[slice] = [slice(None)] * array.ndim
            dst: list[slice] = [slice(None)] * array.ndim
            n = array.shape[axis]
            # forward sample: point p sees p + dist
            src[axis] = slice(dist, None)
            dst[axis] = slice(0, n - dist)
            fwd[tuple(dst)] = array[tuple(src)]
            # backward sample: point p sees p - dist
            src[axis] = slice(0, n - dist)
            dst[axis] = slice(dist, None)
            bwd[tuple(dst)] = array[tuple(src)]
            out += w * (fwd - bwd)
    return out


def apply_gradient_padded(
    padded: np.ndarray,
    axis: int,
    radius: int = 2,
    spacing: float = 1.0,
    out: np.ndarray | None = None,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """d/dx_axis on a halo-padded block (ghosts already filled).

    The padded array must carry ``radius`` ghost layers on every side, the
    same layout the Laplacian engine uses — one halo exchange serves both
    operators.  With both ``out`` and ``scratch`` (block-shaped, same
    dtype) supplied, the kernel allocates nothing: each term is fused as
    ``np.subtract(hi, lo, out=scratch)`` / ``scratch *= weight`` /
    ``out += scratch``, bit-identical to the naive ``weight * (hi - lo)``
    accumulation.
    """
    check_in(axis, (0, 1, 2), "axis")
    weights = gradient_weights(radius, spacing)
    w = radius
    for ax, size in enumerate(padded.shape):
        if size < 2 * w + 1:
            raise ValueError(
                f"padded axis {ax} has {size} points; needs >= {2 * w + 1}"
            )
    block_shape = tuple(s - 2 * w for s in padded.shape)
    if out is None:
        out = np.zeros(block_shape, dtype=padded.dtype)
    elif out.shape != block_shape:
        raise ValueError(f"out shape {out.shape} != block shape {block_shape}")
    else:
        out[...] = 0.0
    if scratch is None:
        scratch = np.empty(block_shape, dtype=padded.dtype)
    elif scratch.shape != block_shape:
        raise ValueError(
            f"scratch shape {scratch.shape} != block shape {block_shape}"
        )
    elif scratch.dtype != padded.dtype:
        raise ValueError(
            f"scratch dtype {scratch.dtype} != input dtype {padded.dtype}"
        )
    elif scratch is out or np.shares_memory(scratch, out):
        raise ValueError("scratch must not alias the output")
    for dist, weight in enumerate(weights, start=1):
        lo: list[slice] = [slice(w, -w)] * 3
        hi: list[slice] = [slice(w, -w)] * 3
        lo[axis] = slice(w - dist, -w - dist)
        hi[axis] = slice(w + dist, padded.shape[axis] - w + dist)
        np.subtract(padded[tuple(hi)], padded[tuple(lo)], out=scratch)
        np.multiply(scratch, weight, out=scratch)
        np.add(out, scratch, out=out)
    return out
