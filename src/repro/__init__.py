"""repro — reproduction of "GPAW optimized for Blue Gene/P using hybrid
programming" (Kristensen, Happe & Vinter, IPDPS 2009).

The library has three layers:

* **numerics** — :mod:`repro.stencil`, :mod:`repro.grid`,
  :mod:`repro.transport`, :mod:`repro.core.engine`: the distributed
  13-point finite-difference operation with real NumPy data, bit-identical
  to the sequential kernel under all four programming approaches.
* **performance** — :mod:`repro.des`, :mod:`repro.machine`,
  :mod:`repro.smpi`, :mod:`repro.netmodel`, :mod:`repro.core.simrun`,
  :mod:`repro.core.perfmodel`: a simulated Blue Gene/P (discrete-event
  torus, tree network, node modes, simulated MPI) plus a calibrated
  closed-form model that regenerates the paper's figures up to 16384
  cores.
* **application** — :mod:`repro.dft`: a mini real-space DFT layer
  (multigrid Poisson, FD Hamiltonian, eigensolvers, orthogonalization,
  SCF) providing the physics workloads; :mod:`repro.analysis`: one
  experiment driver per paper table/figure.

Most users want the names re-exported here; see README.md for a tour.
"""

from repro.core import (
    ALL_APPROACHES,
    Approach,
    DistributedStencil,
    FDJob,
    FDTiming,
    FLAT_OPTIMIZED,
    FLAT_ORIGINAL,
    HYBRID_MASTER_ONLY,
    HYBRID_MULTIPLE,
    JobSpec,
    LayoutSpec,
    PerformanceModel,
    Planner,
    ProblemSpec,
    RuntimeSpec,
    SequentialStencil,
    SpecMismatchError,
    WholeAppModel,
    approach_by_name,
    simulate_fd,
)
from repro.grid import Decomposition, GridDescriptor, HaloSpec, gather, scatter
from repro.machine import BGP_SPEC, Machine, MachineSpec, NodeMode
from repro.stencil import laplacian_coefficients
from repro.transport import InprocTransport, run_ranks

__version__ = "1.0.0"

__all__ = [
    "ALL_APPROACHES",
    "Approach",
    "DistributedStencil",
    "FDJob",
    "FDTiming",
    "FLAT_OPTIMIZED",
    "FLAT_ORIGINAL",
    "HYBRID_MASTER_ONLY",
    "HYBRID_MULTIPLE",
    "JobSpec",
    "LayoutSpec",
    "PerformanceModel",
    "Planner",
    "ProblemSpec",
    "RuntimeSpec",
    "SequentialStencil",
    "SpecMismatchError",
    "WholeAppModel",
    "approach_by_name",
    "simulate_fd",
    "Decomposition",
    "GridDescriptor",
    "HaloSpec",
    "gather",
    "scatter",
    "BGP_SPEC",
    "Machine",
    "MachineSpec",
    "NodeMode",
    "laplacian_coefficients",
    "InprocTransport",
    "run_ranks",
    "__version__",
]
