"""Typed transport errors and failure attribution.

A distributed engine that fails with a bare ``RuntimeError`` at 16384
ranks is undebuggable: *which* rank, *which* message, *which* compiled
schedule step?  This module gives every transport failure a type (so
supervisors can decide between retry and crash) and a :class:`StepInfo`
payload (so every failure points at the schedule-IR step that was being
interpreted when it happened).

Layering: the transport cannot import :mod:`repro.core.schedule` (the
engine imports the transport), so the wire-tag encoding is mirrored here
and cross-checked by tests against ``schedule.message_tag``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: mirrors repro.core.schedule.message_tag: tag = seq * 8 + dim * 2 + dir
_HALO_TAG_STRIDE = 8
#: mirrors repro.grid.redistribute.redistribute's default tag_base
REDIST_TAG_BASE = 1 << 24
#: mirrors repro.dft.checkpoint's gather tag space
CHECKPOINT_TAG_BASE = 1 << 26
#: mirrors repro.core.schedule.RING_TAG_BASE (band orthogonalization ring)
RING_TAG_BASE = 1 << 27
#: mirrors repro.transport.inproc.RankEndpoint._COLL_TAG_BASE
COLL_TAG_BASE = 1 << 28

_DIR_SIGN = {0: "+", 1: "-"}


def decode_halo_tag(tag: int) -> tuple[int, int, int]:
    """Invert the halo wire-tag encoding: ``tag -> (seq, dim, step)``.

    ``step`` is +1/-1, matching :func:`repro.core.schedule.message_tag`.
    """
    if tag < 0:
        raise ValueError(f"halo tags are non-negative, got {tag}")
    seq, rest = divmod(tag, _HALO_TAG_STRIDE)
    dim, parity = divmod(rest, 2)
    return seq, dim, (+1 if parity == 0 else -1)


def describe_tag(tag: int) -> str:
    """Human-readable meaning of a wire tag (halo, collective, ...).

    Used by timeout messages so "recv(tag=13) timed out" becomes
    "halo exchange seq 1, dim 2, -z direction" — the difference between
    grepping a tag table and reading the failure.
    """
    if tag < 0:
        return "any tag"
    if tag >= COLL_TAG_BASE:
        return f"collective round {tag - COLL_TAG_BASE}"
    if tag >= RING_TAG_BASE:
        phase, stage = divmod(tag - RING_TAG_BASE, 1 << 12)
        name = {0: "overlap", 1: "rotate", 2: "band-sum"}.get(
            phase, f"phase {phase}"
        )
        return f"band ring {name} stage {stage}"
    if tag >= CHECKPOINT_TAG_BASE:
        return f"checkpoint gather slot {tag - CHECKPOINT_TAG_BASE}"
    if tag >= REDIST_TAG_BASE:
        return f"redistribution transfer {tag - REDIST_TAG_BASE}"
    seq, dim, step = decode_halo_tag(tag)
    axis = "xyz"[dim] if dim < 3 else f"dim{dim}"
    sign = "+" if step > 0 else "-"
    return f"halo exchange seq {seq}, {sign}{axis} direction"


@dataclass(frozen=True)
class StepInfo:
    """Schedule-IR coordinates of a failure: which compiled step died.

    Attached by the engine's IR interpreter when a transport call raises
    while a step is being executed; carried by every
    :class:`TransportError` subclass through ``attach_step``.
    """

    rank: int
    worker: int
    step_kind: str  # PostSend / PostRecv / WaitAll / ...
    seq: Optional[int] = None  # exchange round
    dim: Optional[int] = None
    direction: Optional[int] = None  # +1 / -1
    peer: Optional[int] = None  # src or dst domain
    grid_ids: tuple[int, ...] = ()  # caller grid ids of the batch

    def describe(self) -> str:
        parts = [f"rank {self.rank}", f"worker {self.worker}", self.step_kind]
        if self.seq is not None:
            parts.append(f"round {self.seq}")
        if self.dim is not None and self.direction is not None:
            axis = "xyz"[self.dim] if self.dim < 3 else f"dim{self.dim}"
            parts.append(f"{'+' if self.direction > 0 else '-'}{axis}")
        if self.peer is not None:
            parts.append(f"peer {self.peer}")
        if self.grid_ids:
            parts.append(f"grids {list(self.grid_ids)}")
        return " ".join(parts)


class TransportError(RuntimeError):
    """Base of all transport failures (misuse, timeout, fault injection).

    Subclasses form the error taxonomy supervisors dispatch on;
    ``step_info`` (attached by the engine) attributes the failure to one
    compiled schedule step.  ``transient`` marks errors a bounded retry
    can plausibly fix (a lost or corrupted message) as opposed to
    permanent ones (a dead rank).
    """

    transient = False

    def __init__(self, message: str, step_info: Optional[StepInfo] = None):
        super().__init__(message)
        self.step_info = step_info

    def attach_step(self, info: StepInfo) -> "TransportError":
        """Attribute this failure to a schedule step (idempotent)."""
        if self.step_info is None:
            self.step_info = info
            self.args = (f"{self.args[0]} [at step: {info.describe()}]",)
        return self


class HaloTimeoutError(TransportError):
    """A bounded receive wait expired: message lost or peer desynced."""

    transient = True


class CorruptPayloadError(TransportError):
    """A received payload failed its checksum."""

    transient = True


class PeerDeadError(TransportError):
    """A peer rank is known dead (broken barrier, failed join)."""

    transient = False


class RankKilledError(TransportError):
    """This rank was killed by the fault plan (simulated rank death)."""

    transient = False


def is_transient(exc: BaseException) -> bool:
    """True when a bounded retry could plausibly clear the failure."""
    return isinstance(exc, TransportError) and exc.transient
