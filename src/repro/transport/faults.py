"""Deterministic fault injection for any transport.

At 16384 cores, lost messages, corrupted payloads and dead ranks are
operating conditions, not anomalies.  This module lets the test suite
(and the ``repro chaos`` CLI) subject the *real* engine to those
conditions deterministically:

* :class:`FaultPlan` — a seeded, replayable schedule of faults.  Every
  decision is a pure function of ``(seed, rank, op_index)`` via per-rank
  counter-based RNG streams, so the injected fault sequence is identical
  across runs regardless of thread interleaving — the property the
  seeded-replay tests pin down.
* :class:`FaultyEndpoint` — wraps any ``RankEndpoint``-compatible
  endpoint and injects message *delay*, *drop*, *duplication*, payload
  *corruption*, and *rank kill at operation N*.
* Checksum framing — payloads are wrapped in a checksummed frame
  (CRC32 + dtype/shape header), so corruption is caught at ``recv`` as a
  typed :class:`~repro.transport.errors.CorruptPayloadError` instead of
  silently wrong numerics.

Faults are **one-shot**: a fault fires at most once per plan, so a
supervised retry of the same invocation (sharing the plan) models a
*transient* fault clearing — while a fresh plan with the same seed
replays the identical sequence.
"""

from __future__ import annotations

import struct
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Any, Optional, Sequence

import numpy as np

from repro.transport.errors import CorruptPayloadError, RankKilledError
from repro.transport.inproc import ANY_SOURCE, ANY_TAG, TransportStats

#: the injectable fault kinds, in decision order
FAULT_KINDS = ("delay", "drop", "duplicate", "corrupt")

_MAGIC = b"RF1\0"
_HEADER = struct.Struct("<4sI8sB")  # magic, crc32, dtype str, ndim
_DIM = struct.Struct("<q")


# -- checksummed payload framing ----------------------------------------------
def encode_payload(payload: np.ndarray) -> np.ndarray:
    """Wrap an array in a checksummed uint8 frame (CRC32 of the body)."""
    src = np.asarray(payload)  # ascontiguousarray would promote 0-d to 1-d
    arr = np.ascontiguousarray(src)
    body = arr.view(np.uint8).reshape(-1) if arr.size else np.empty(0, np.uint8)
    dt = arr.dtype.str.encode("ascii")
    if len(dt) > 8:
        raise ValueError(f"dtype string {dt!r} too long to frame")
    crc = zlib.crc32(body.tobytes())
    header = _HEADER.pack(_MAGIC, crc, dt.ljust(8, b" "), src.ndim)
    dims = b"".join(_DIM.pack(d) for d in src.shape)
    frame = np.empty(len(header) + len(dims) + body.nbytes, dtype=np.uint8)
    frame[: len(header)] = np.frombuffer(header, np.uint8)
    frame[len(header): len(header) + len(dims)] = np.frombuffer(dims, np.uint8)
    frame[len(header) + len(dims):] = body
    return frame


def decode_payload(frame: np.ndarray) -> np.ndarray:
    """Unwrap a checksummed frame; raises ``CorruptPayloadError`` on
    checksum mismatch or malformed header."""
    raw = np.ascontiguousarray(frame, dtype=np.uint8).tobytes()
    if len(raw) < _HEADER.size:
        raise CorruptPayloadError(
            f"framed payload too short ({len(raw)} bytes)"
        )
    magic, crc, dt, ndim = _HEADER.unpack_from(raw)
    if magic != _MAGIC:
        raise CorruptPayloadError(
            f"framed payload has bad magic {magic!r} (checksum mode mismatch?)"
        )
    offset = _HEADER.size
    shape = tuple(
        _DIM.unpack_from(raw, offset + i * _DIM.size)[0] for i in range(ndim)
    )
    offset += ndim * _DIM.size
    body = raw[offset:]
    actual = zlib.crc32(body)
    if actual != crc:
        raise CorruptPayloadError(
            f"payload checksum mismatch: header says {crc:#010x}, "
            f"body hashes to {actual:#010x} — message corrupted in flight"
        )
    dtype = np.dtype(dt.rstrip(b" ").decode("ascii"))
    return np.frombuffer(body, dtype=dtype).reshape(shape).copy()


# -- the fault plan -----------------------------------------------------------
@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for replay comparison and crash reports."""

    rank: int
    op_index: int
    kind: str
    op: str  # which endpoint call ("isend", "recv", ...)
    detail: str = ""


class FaultPlan:
    """A seeded, replayable schedule of transport faults.

    ``p_delay``/``p_drop``/``p_duplicate``/``p_corrupt`` are per-*send*
    probabilities; ``kill_at`` maps a rank to the transport-operation
    index at which it dies (sends, receives, barriers and allreduces all
    count).  Decisions are drawn from per-rank
    ``numpy.random.Philox``-free counter streams: fault ``k`` of rank
    ``r`` depends only on ``(seed, r, k)``, never on thread timing.

    The timing knobs (``delay``, ``retransmit_timeout``,
    ``restart_time``) are consumed by the functional plane (real sleeps)
    and the DES runner (simulated seconds) respectively.
    """

    def __init__(
        self,
        seed: int,
        p_delay: float = 0.0,
        p_drop: float = 0.0,
        p_duplicate: float = 0.0,
        p_corrupt: float = 0.0,
        kill_at: Optional[dict[int, int]] = None,
        inject: Optional[dict[tuple[int, int], str]] = None,
        delay: float = 0.01,
        retransmit_timeout: float = 1e-4,
        restart_time: float = 1.0,
        metrics=None,
    ):
        for name in ("p_delay", "p_drop", "p_duplicate", "p_corrupt"):
            p = locals()[name]
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if p_delay + p_drop + p_duplicate + p_corrupt > 1.0 + 1e-12:
            raise ValueError("fault probabilities must sum to <= 1")
        for key, kind in (inject or {}).items():
            if kind not in FAULT_KINDS:
                raise ValueError(
                    f"inject[{key}] must be one of {FAULT_KINDS}, got {kind!r}"
                )
        self.seed = seed
        self.probabilities = (p_delay, p_drop, p_duplicate, p_corrupt)
        self.kill_at = dict(kill_at or {})
        self.inject = dict(inject or {})
        self.delay = delay
        self.retransmit_timeout = retransmit_timeout
        self.restart_time = restart_time
        from repro.obs.metrics import resolve_registry

        #: injected faults also count into ``faults_injected_total{kind=}``
        #: on this registry (the null registry by default)
        self.metrics = resolve_registry(metrics)
        self._lock = threading.Lock()
        self._fired: set[tuple[int, int, str]] = set()
        self._op_counts: dict[int, int] = {}
        self._send_counts: dict[int, int] = {}
        self._events: dict[int, list[FaultEvent]] = {}

    def replica(self) -> "FaultPlan":
        """A fresh plan with identical parameters (replays from scratch)."""
        p_delay, p_drop, p_duplicate, p_corrupt = self.probabilities
        return FaultPlan(
            self.seed,
            p_delay=p_delay,
            p_drop=p_drop,
            p_duplicate=p_duplicate,
            p_corrupt=p_corrupt,
            kill_at=self.kill_at,
            inject=self.inject,
            delay=self.delay,
            retransmit_timeout=self.retransmit_timeout,
            restart_time=self.restart_time,
            metrics=self.metrics if self.metrics.enabled else None,
        )

    # -- deterministic decisions ------------------------------------------
    def decide(self, rank: int, op_index: int) -> Optional[str]:
        """The fault kind planned for operation ``op_index`` of ``rank``.

        Pure: depends only on (seed, rank, op_index) and the explicit
        ``inject`` table (which takes precedence — the chaos suite pins
        single faults to exact operations with it).  ``None`` means the
        operation proceeds cleanly.
        """
        explicit = self.inject.get((rank, op_index))
        if explicit is not None:
            return explicit
        u = np.random.default_rng([self.seed, rank, op_index]).random()
        acc = 0.0
        for kind, p in zip(FAULT_KINDS, self.probabilities):
            acc += p
            if u < acc:
                return kind
        return None

    # -- one-shot firing (thread-safe) -------------------------------------
    def next_op(self, rank: int) -> int:
        """Allocate the next operation index of ``rank`` (kill clock).

        Every endpoint call counts — sends, receives, barriers,
        allreduces — so ``kill_at`` can place a death anywhere in the
        schedule, mid-iteration included.
        """
        with self._lock:
            op = self._op_counts.get(rank, 0)
            self._op_counts[rank] = op + 1
            return op

    def next_send(self, rank: int) -> int:
        """Allocate the next *send* index of ``rank`` (fault clock).

        Message faults are per-send; a dedicated counter keeps the
        decision stream aligned with the messages actually on the wire,
        so ``inject[(rank, n)]`` always means "rank's n-th send".
        """
        with self._lock:
            op = self._send_counts.get(rank, 0)
            self._send_counts[rank] = op + 1
            return op

    def should_kill(self, rank: int, op_index: int) -> bool:
        kill = self.kill_at.get(rank)
        if kill is None or op_index < kill:
            return False
        return self._fire(rank, kill, "kill", "op")

    def take_fault(self, rank: int, op_index: int, op: str) -> Optional[str]:
        """The fault to inject now, or None (fires each fault once)."""
        kind = self.decide(rank, op_index)
        if kind is None or not self._fire(rank, op_index, kind, op):
            return None
        return kind

    def _fire(self, rank: int, op_index: int, kind: str, op: str) -> bool:
        with self._lock:
            key = (rank, op_index, kind)
            if key in self._fired:
                return False
            self._fired.add(key)
            self._events.setdefault(rank, []).append(
                FaultEvent(rank=rank, op_index=op_index, kind=kind, op=op)
            )
        self.metrics.counter("faults_injected_total", kind=kind).inc()
        return True

    @property
    def events(self) -> tuple[FaultEvent, ...]:
        """Every fault injected so far, in (rank, op_index) order.

        Per-rank sequences are deterministic; the global sort removes the
        only thread-timing dependence, so two runs with equal seeds
        compare equal.
        """
        with self._lock:
            flat = [e for evs in self._events.values() for e in evs]
        return tuple(sorted(flat, key=lambda e: (e.rank, e.op_index, e.kind)))


# -- the endpoint wrapper -----------------------------------------------------
class _DroppedSendHandle:
    """Handle of a send the fault plan swallowed."""

    def __init__(self, nbytes: int):
        self.nbytes = nbytes

    def wait(self, timeout: Optional[float] = None) -> None:
        return None

    @property
    def complete(self) -> bool:
        return True


class _DecodingRecvHandle:
    """Wraps an inner recv handle; decodes the checksummed frame."""

    def __init__(self, inner: Any):
        self._inner = inner

    @property
    def complete(self) -> bool:
        return self._inner.complete

    def wait(self, timeout: Optional[float] = None) -> np.ndarray:
        return decode_payload(self._inner.wait(timeout))


class FaultyEndpoint:
    """A ``RankEndpoint``-compatible wrapper injecting planned faults.

    Payloads are framed with a checksum (unless ``checksum=False``), so
    the *corrupt* fault — and any real bit-flip on an unreliable
    transport — surfaces as ``CorruptPayloadError`` at the receiver.
    Framing copies, so zero-copy send semantics are disabled; the engine
    falls back to reclaiming its own buffers.
    """

    zero_copy_sends = False

    def __init__(self, inner: Any, plan: FaultPlan, checksum: bool = True):
        self.inner = inner
        self.plan = plan
        self.checksum = checksum
        self.rank = inner.rank

    @property
    def size(self) -> int:
        return self.inner.size

    # -- fault machinery ---------------------------------------------------
    def _op(self, op: str) -> int:
        """Count one transport operation; dies here if the plan says so."""
        idx = self.plan.next_op(self.rank)
        if self.plan.should_kill(self.rank, idx):
            raise RankKilledError(
                f"rank {self.rank} killed by fault plan at operation {idx} "
                f"(during {op})"
            )
        return idx

    # -- sending -----------------------------------------------------------
    def isend(
        self, dst: int, payload: np.ndarray, tag: int = 0, copy: bool = True
    ) -> Any:
        self._op("isend")
        send_idx = self.plan.next_send(self.rank)
        frame = encode_payload(payload) if self.checksum else np.array(
            payload, order="C", copy=True
        )
        kind = self.plan.take_fault(self.rank, send_idx, "isend")
        if kind == "drop":
            return _DroppedSendHandle(frame.nbytes)
        if kind == "delay":
            time.sleep(self.plan.delay)
        if kind == "corrupt":
            if self.checksum:
                # flip a stored-checksum byte: body and header now disagree
                frame = frame.copy()
                frame[len(_MAGIC)] ^= 0xFF
            # without checksums corruption would be silent; don't inject it
        handle = self.inner.isend(dst, frame, tag=tag)
        if kind == "duplicate":
            self.inner.isend(dst, frame, tag=tag)
        return handle

    def send(self, dst: int, payload: np.ndarray, tag: int = 0) -> None:
        self.isend(dst, payload, tag).wait()

    # -- receiving ---------------------------------------------------------
    def irecv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        self._op("irecv")
        inner = self.inner.irecv(src=src, tag=tag)
        return _DecodingRecvHandle(inner) if self.checksum else inner

    def recv(
        self, src: int = ANY_SOURCE, tag: int = ANY_TAG,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        self._op("recv")
        payload = self.inner.recv(src=src, tag=tag, timeout=timeout)
        return decode_payload(payload) if self.checksum else payload

    # -- synchronization ---------------------------------------------------
    def waitall(self, handles: Sequence[Any]) -> list[Any]:
        return [h.wait() for h in handles]

    def barrier(self, timeout: Optional[float] = None) -> None:
        self._op("barrier")
        self.inner.barrier(timeout=timeout)

    # -- collectives -------------------------------------------------------
    _COLL_TAG_BASE = 1 << 28

    def allreduce(self, value: np.ndarray | float, round_id: int = 0) -> np.ndarray:
        """Sum-allreduce routed through *this* endpoint's faulty sends.

        Re-implements the inproc gather-to-root + broadcast so collective
        traffic is subject to the same faults and framing as halo
        traffic (delegating to the inner endpoint would bypass both).
        """
        self._op("allreduce")
        payload = np.atleast_1d(np.asarray(value, dtype=np.float64))
        tag = self._COLL_TAG_BASE + round_id
        if self.size == 1:
            return payload.copy()
        if self.rank == 0:
            total = payload.astype(np.float64, copy=True)
            for _ in range(self.size - 1):
                total += self.recv(src=ANY_SOURCE, tag=tag)
            for dst in range(1, self.size):
                self.isend(dst, total, tag=tag + 1)
            return total
        self.isend(0, payload, tag=tag)
        return self.recv(src=0, tag=tag + 1)


class FaultyTransport:
    """Wraps a whole transport so every endpoint injects the same plan.

    Presents the surface :func:`repro.transport.inproc.run_ranks`
    consumes (``size`` / ``endpoint`` / ``abort`` / ``stats``); any
    transport with that surface can be wrapped, not just the in-process
    one.
    """

    def __init__(self, inner: Any, plan: FaultPlan, checksum: bool = True):
        self.inner = inner
        self.plan = plan
        self.checksum = checksum

    @property
    def size(self) -> int:
        return self.inner.size

    @property
    def stats(self) -> list[TransportStats]:
        return self.inner.stats

    @property
    def default_timeout(self) -> float:
        return self.inner.default_timeout

    def endpoint(self, rank: int) -> FaultyEndpoint:
        return FaultyEndpoint(self.inner.endpoint(rank), self.plan, self.checksum)

    def abort(self, dead_rank: Optional[int] = None) -> None:
        self.inner.abort(dead_rank)
