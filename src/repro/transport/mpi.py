"""Real-MPI transport: the same engine, an actual cluster.

The functional engine talks to a small endpoint interface (``isend`` /
``irecv`` / ``waitall`` / ``barrier`` / ``allreduce``).  This module
implements it over `mpi4py`, so the identical
:class:`~repro.core.engine.DistributedStencil` code that the test suite
runs on in-process threads runs unchanged under ``mpirun`` — one rank per
process, NumPy buffers on the wire.

mpi4py is an *optional* dependency: importing this module without it
raises :class:`MpiUnavailableError` with an actionable message, and
:func:`mpi_available` lets callers probe first.  (The offline CI for this
repository has no MPI; the adapter is exercised by the interface-
conformance tests below the guard and by any user with `mpirun`.)

Usage on a cluster::

    # engine_script.py
    from repro.transport.mpi import MpiEndpoint
    ep = MpiEndpoint()          # wraps MPI.COMM_WORLD
    out = engine.apply(ep, my_blocks, approach=HYBRID_MULTIPLE, batch_size=8)

    $ mpirun -n 64 python engine_script.py
"""

from __future__ import annotations

from typing import Any, Optional, Sequence

import numpy as np

from repro.transport.inproc import TransportStats

#: wildcard markers, mirroring repro.transport.inproc
ANY_SOURCE = -1
ANY_TAG = -1


class MpiUnavailableError(RuntimeError):
    """Raised when mpi4py is not installed/importable."""


def validate_peer(rank: int, size: int, what: str = "peer", wildcard: bool = False) -> int:
    """Validate a peer rank before it reaches the MPI library.

    mpi4py surfaces an out-of-range rank as an opaque ``MPI_ERR_RANK``
    from deep inside the library; checking here turns the same bug into
    an immediate :class:`ValueError` naming the offending value — the
    error path the conformance tests exercise without an MPI runtime.
    """
    if isinstance(rank, bool) or not isinstance(rank, (int, np.integer)):
        raise TypeError(f"{what} rank must be an integer, got {rank!r}")
    if wildcard and rank == ANY_SOURCE:
        return ANY_SOURCE
    if not 0 <= rank < size:
        raise ValueError(
            f"{what} rank {rank} out of range for communicator of size {size}"
        )
    return int(rank)


def validate_tag(tag: int, wildcard: bool = False) -> int:
    """Validate a message tag (non-negative, or ``ANY_TAG`` on receives)."""
    if isinstance(tag, bool) or not isinstance(tag, (int, np.integer)):
        raise TypeError(f"tag must be an integer, got {tag!r}")
    if wildcard and tag == ANY_TAG:
        return ANY_TAG
    if tag < 0:
        raise ValueError(f"tag must be non-negative, got {tag}")
    return int(tag)


def mpi_available() -> bool:
    """True if mpi4py can be imported in this interpreter."""
    try:
        import mpi4py  # noqa: F401
    except ImportError:
        return False
    return True


def _require_mpi():
    try:
        from mpi4py import MPI
    except ImportError as exc:  # pragma: no cover - depends on environment
        raise MpiUnavailableError(
            "repro.transport.mpi needs mpi4py (pip install mpi4py); the "
            "in-process transport (repro.transport.inproc) has the same "
            "interface and no dependencies"
        ) from exc
    return MPI


class MpiRecvHandle:
    """Handle for a posted mpi4py receive."""

    def __init__(self, request: Any):
        self._request = request
        self._payload: Optional[np.ndarray] = None
        self._done = False

    @property
    def complete(self) -> bool:
        return self._done

    def wait(self, timeout: Optional[float] = None) -> np.ndarray:
        if not self._done:
            self._payload = self._request.wait()
            self._done = True
        return self._payload  # type: ignore[return-value]


class MpiSendHandle:
    """Handle for a posted mpi4py send."""

    def __init__(self, request: Any, nbytes: int):
        self._request = request
        self.nbytes = nbytes

    @property
    def complete(self) -> bool:
        return bool(self._request.Test())

    def wait(self, timeout: Optional[float] = None) -> None:
        self._request.wait()
        return None


class MpiEndpoint:
    """``RankEndpoint``-compatible adapter over an mpi4py communicator.

    Payloads travel via mpi4py's pickle-based lowercase API; the arrays
    the engine sends are modest halo slabs, for which the pickling
    overhead is negligible next to the wire time.  (A buffer-based
    fast path is a natural extension; the interface would not change.)
    """

    #: mpi4py snapshots (pickles) the payload inside ``isend``, so the
    #: receiver never shares the sender's buffer — senders reclaim their
    #: message buffers immediately after posting.
    zero_copy_sends = False

    def __init__(self, comm: Any = None, metrics=None):
        MPI = _require_mpi()
        self._MPI = MPI
        self.comm = comm if comm is not None else MPI.COMM_WORLD
        self.rank = self.comm.Get_rank()
        #: local message accounting, same shape as the inproc transport's
        #: per-rank stats — a thin view over the shared metrics registry
        #: when one is passed (the old ``.messages``/``.bytes`` attribute
        #: API survives as deprecated aliases on TransportStats).
        self.stats = TransportStats(registry=metrics, rank=self.rank)

    @property
    def size(self) -> int:
        return self.comm.Get_size()

    # -- point to point -------------------------------------------------------
    def isend(
        self, dst: int, payload: np.ndarray, tag: int = 0, copy: bool = True
    ) -> MpiSendHandle:
        dst = validate_peer(dst, self.size, "destination")
        tag = validate_tag(tag)
        # ``copy`` mirrors the inproc endpoint's interface.  mpi4py's isend
        # pickles the payload (its own snapshot) either way, so the flag
        # only changes whether a contiguous staging copy may be skipped.
        data = payload if not copy else np.ascontiguousarray(payload)
        req = self.comm.isend(data, dest=dst, tag=tag)
        self.stats.record_message(data.nbytes)
        return MpiSendHandle(req, data.nbytes)

    def send(self, dst: int, payload: np.ndarray, tag: int = 0) -> None:
        dst = validate_peer(dst, self.size, "destination")
        tag = validate_tag(tag)
        data = np.ascontiguousarray(payload)
        self.comm.send(data, dest=dst, tag=tag)
        self.stats.record_message(data.nbytes)

    def irecv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> MpiRecvHandle:
        MPI = self._MPI
        src = validate_peer(src, self.size, "source", wildcard=True)
        tag = validate_tag(tag, wildcard=True)
        mpi_src = MPI.ANY_SOURCE if src == ANY_SOURCE else src
        mpi_tag = MPI.ANY_TAG if tag == ANY_TAG else tag
        return MpiRecvHandle(self.comm.irecv(source=mpi_src, tag=mpi_tag))

    def recv(
        self, src: int = ANY_SOURCE, tag: int = ANY_TAG,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        MPI = self._MPI
        src = validate_peer(src, self.size, "source", wildcard=True)
        tag = validate_tag(tag, wildcard=True)
        mpi_src = MPI.ANY_SOURCE if src == ANY_SOURCE else src
        mpi_tag = MPI.ANY_TAG if tag == ANY_TAG else tag
        return self.comm.recv(source=mpi_src, tag=mpi_tag)

    # -- synchronization ---------------------------------------------------------
    def waitall(self, handles: Sequence[Any]) -> list[Any]:
        return [h.wait() for h in handles]

    def barrier(self, timeout: Optional[float] = None) -> None:
        self.comm.Barrier()

    def allreduce(self, value: np.ndarray | float, round_id: int = 0) -> np.ndarray:
        payload = np.atleast_1d(np.asarray(value, dtype=np.float64))
        out = np.empty_like(payload)
        self.comm.Allreduce(payload, out, op=self._MPI.SUM)
        return out
