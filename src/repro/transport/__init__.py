"""Functional message transports for the *numerics* plane.

The performance plane runs on simulated time (:mod:`repro.smpi`); this
package is its functional counterpart: real NumPy buffers moving between
real rank contexts, so the four programming approaches can be executed
end-to-end and checked for bit-identical results against the sequential
stencil.

:class:`~repro.transport.inproc.InprocTransport` runs every rank in one OS
thread (NumPy releases the GIL, so kernels genuinely overlap), with an
mpi4py-flavoured non-blocking API: ``isend``/``irecv``/``waitall``/
``barrier`` and (source, tag) matching.  Message payloads are copied at
send time — eager buffered semantics — which keeps arbitrary schedules
deadlock-free and the engine's correctness independent of timing.
"""

from repro.transport.inproc import (
    InprocTransport,
    RankEndpoint,
    TransportError,
    run_ranks,
)

__all__ = [
    "InprocTransport",
    "RankEndpoint",
    "TransportError",
    "run_ranks",
]
