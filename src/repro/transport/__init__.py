"""Functional message transports for the *numerics* plane.

The performance plane runs on simulated time (:mod:`repro.smpi`); this
package is its functional counterpart: real NumPy buffers moving between
real rank contexts, so the four programming approaches can be executed
end-to-end and checked for bit-identical results against the sequential
stencil.

:class:`~repro.transport.inproc.InprocTransport` runs every rank in one OS
thread (NumPy releases the GIL, so kernels genuinely overlap), with an
mpi4py-flavoured non-blocking API: ``isend``/``irecv``/``waitall``/
``barrier`` and (source, tag) matching.  Message payloads are copied at
send time — eager buffered semantics — which keeps arbitrary schedules
deadlock-free and the engine's correctness independent of timing.

The robustness layer (docs/ROBUSTNESS.md) lives alongside:

* :mod:`repro.transport.errors` — the typed error taxonomy
  (``PeerDeadError`` / ``CorruptPayloadError`` / ``HaloTimeoutError`` /
  ``RankKilledError``) with schedule-step attribution,
* :mod:`repro.transport.faults` — seeded deterministic fault injection
  (:class:`FaultPlan` / :class:`FaultyTransport`) with checksummed
  payload framing,
* :mod:`repro.transport.supervisor` — bounded-retry supervision with
  crash reports.
"""

from repro.transport.errors import (
    CorruptPayloadError,
    HaloTimeoutError,
    PeerDeadError,
    RankKilledError,
    StepInfo,
    TransportError,
    decode_halo_tag,
    describe_tag,
    is_transient,
)
from repro.transport.faults import (
    FaultEvent,
    FaultPlan,
    FaultyEndpoint,
    FaultyTransport,
)
from repro.transport.inproc import (
    AttributableBarrier,
    GroupEndpoint,
    InprocTransport,
    RankEndpoint,
    run_ranks,
)
from repro.transport.supervisor import (
    CrashReport,
    RetryPolicy,
    SupervisedResult,
    crash_report_from,
    run_ranks_supervised,
)

__all__ = [
    "AttributableBarrier",
    "CorruptPayloadError",
    "CrashReport",
    "FaultEvent",
    "FaultPlan",
    "FaultyEndpoint",
    "FaultyTransport",
    "GroupEndpoint",
    "HaloTimeoutError",
    "InprocTransport",
    "PeerDeadError",
    "RankEndpoint",
    "RankKilledError",
    "RetryPolicy",
    "StepInfo",
    "SupervisedResult",
    "TransportError",
    "crash_report_from",
    "decode_halo_tag",
    "describe_tag",
    "is_transient",
    "run_ranks",
    "run_ranks_supervised",
]
