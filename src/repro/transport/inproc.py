"""In-process threaded rank transport with MPI-like non-blocking semantics.

Design notes
------------

* **Eager buffered sends.**  ``isend`` copies the payload and deposits it
  in the destination's mailbox immediately; the send handle is complete at
  once.  This mirrors MPI's buffered mode: no schedule can deadlock on
  send order, which is the right property for a correctness oracle (the
  *timing* consequences of schedules live in the performance plane).
* **(source, tag) matching** with FIFO non-overtaking per (source, tag)
  pair, like MPI — receivers block on a condition variable until a match
  arrives.
* **Instrumentation.**  The transport counts messages and bytes per rank
  (:class:`TransportStats`, a view over :mod:`repro.obs.metrics`
  counters when a registry is passed); tests use this to verify that
  e.g. batching really reduces the message count by the batch factor.
"""

from __future__ import annotations

import threading
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.transport.errors import (
    HaloTimeoutError,
    PeerDeadError,
    TransportError,
    describe_tag,
)
from repro.util.validation import check_positive_int

#: wildcard markers, mirroring repro.smpi.datatypes
ANY_SOURCE = -1
ANY_TAG = -1

_DEFAULT_TIMEOUT = 60.0  # a stuck functional test fails loudly, not forever


@dataclass
class _Mail:
    src: int
    tag: int
    payload: np.ndarray


@dataclass
class SendHandle:
    """Completed-at-once handle for an eager send."""

    nbytes: int

    def wait(self, timeout: float = _DEFAULT_TIMEOUT) -> None:
        return None

    @property
    def complete(self) -> bool:
        return True


class RecvHandle:
    """Handle for a posted receive; ``wait()`` returns the payload."""

    def __init__(self, endpoint: "RankEndpoint", src: int, tag: int):
        self._endpoint = endpoint
        self.src = src
        self.tag = tag
        self._payload: Optional[np.ndarray] = None
        self._done = False

    @property
    def complete(self) -> bool:
        return self._done

    def wait(self, timeout: Optional[float] = None) -> np.ndarray:
        if self._done:
            return self._payload  # type: ignore[return-value]
        self._payload = self._endpoint._take(self.src, self.tag, timeout)
        self._done = True
        return self._payload


class TransportStats:
    """Per-rank message accounting — a thin view over metrics counters.

    Historically a plain ``@dataclass`` of two ints, now backed by
    :class:`repro.obs.metrics.Counter` so every transport reports through
    the one registry.  Two modes:

    * standalone (``TransportStats()``) — owns private counters; behaves
      exactly like the old dataclass, including ``st.messages == 0``.
    * registry-backed (``TransportStats(registry=reg, rank=r)``) — views
      the shared ``transport_messages_total`` / ``transport_bytes_total``
      counters labeled with the rank, so a registry snapshot and this
      object report the *same* numbers (pinned by test).

    Increment through :meth:`record_message`.  ``.messages``/``.bytes``
    remain as **deprecated aliases**: readable, and assignable only
    upward (``st.messages += 1`` still works; counters cannot decrease).
    Assigning through them emits a :class:`DeprecationWarning` — the
    dataclass-style mutation path will be removed once nothing trips the
    warning.
    """

    __slots__ = ("_messages", "_bytes")

    def __init__(
        self,
        messages: int = 0,
        bytes: int = 0,
        registry=None,
        rank: Optional[int] = None,
    ):
        from repro.obs.metrics import Counter

        if registry is not None:
            labels = {} if rank is None else {"rank": rank}
            self._messages = registry.counter("transport_messages_total", **labels)
            self._bytes = registry.counter("transport_bytes_total", **labels)
        else:
            self._messages = Counter("transport_messages_total")
            self._bytes = Counter("transport_bytes_total")
        if messages:
            self._messages.inc(messages)
        if bytes:
            self._bytes.inc(bytes)

    def record_message(self, nbytes: int) -> None:
        """Account one sent message of ``nbytes`` payload bytes."""
        self._messages.inc(1)
        self._bytes.inc(nbytes)

    # -- deprecated attribute API (pre-registry dataclass shape) ----------
    @property
    def messages(self) -> int:
        return int(self._messages.value)

    @messages.setter
    def messages(self, value: int) -> None:
        warnings.warn(
            "assigning TransportStats.messages is deprecated; "
            "use record_message()",
            DeprecationWarning,
            stacklevel=2,
        )
        self._messages.inc(value - self._messages.value)

    @property
    def bytes(self) -> int:
        return int(self._bytes.value)

    @bytes.setter
    def bytes(self, value: int) -> None:
        warnings.warn(
            "assigning TransportStats.bytes is deprecated; "
            "use record_message()",
            DeprecationWarning,
            stacklevel=2,
        )
        self._bytes.inc(value - self._bytes.value)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TransportStats):
            return (self.messages, self.bytes) == (other.messages, other.bytes)
        return NotImplemented

    def __repr__(self) -> str:
        return f"TransportStats(messages={self.messages}, bytes={self.bytes})"


class AttributableBarrier:
    """A barrier that knows *who* arrived when it fails.

    ``threading.Barrier`` reports only "broken"; at any useful rank count
    the first question is which rank is missing.  This barrier tracks the
    arrival set per generation, so a timeout or abort names the arrived
    and missing ranks — the attribution the failure-injection suite
    asserts on.
    """

    def __init__(self, size: int):
        self.size = size
        self._cond = threading.Condition()
        self._arrived: set[int] = set()
        self._generation = 0
        self._broken = False
        self._dead: list[int] = []

    def _failure_message(self, rank: int) -> str:
        arrived = sorted(self._arrived)
        missing = sorted(set(range(self.size)) - self._arrived)
        msg = (
            f"rank {rank}: barrier failed — arrived ranks {arrived}, "
            f"missing ranks {missing}"
        )
        if self._dead:
            msg += f" (known dead: {sorted(self._dead)})"
        return msg

    def wait(self, rank: int, timeout: float) -> None:
        with self._cond:
            if self._broken:
                raise PeerDeadError(self._failure_message(rank))
            gen = self._generation
            self._arrived.add(rank)
            if len(self._arrived) == self.size:
                self._generation += 1
                self._arrived = set()
                self._cond.notify_all()
                return
            ok = self._cond.wait_for(
                lambda: self._generation != gen or self._broken, timeout=timeout
            )
            if self._broken:
                raise PeerDeadError(self._failure_message(rank))
            if not ok:
                message = self._failure_message(rank) + f" after {timeout}s"
                self._broken = True
                self._cond.notify_all()
                raise HaloTimeoutError(message)

    def abort(self, dead_rank: Optional[int] = None) -> None:
        """Break the barrier (a rank died); wakes every waiter."""
        with self._cond:
            if dead_rank is not None:
                self._dead.append(dead_rank)
            self._broken = True
            self._cond.notify_all()


class InprocTransport:
    """A set of ``size`` rank endpoints sharing mailboxes in one process.

    ``default_timeout`` bounds every blocking wait (receives, barriers):
    a schedule bug — ranks disagreeing on batch sizes, a died peer — fails
    loudly with :class:`TransportError` instead of hanging the test run.
    """

    def __init__(
        self,
        size: int,
        default_timeout: float = _DEFAULT_TIMEOUT,
        metrics=None,
    ):
        check_positive_int(size, "size")
        if not default_timeout > 0:
            raise ValueError(f"default_timeout must be > 0, got {default_timeout}")
        self.size = size
        self.default_timeout = default_timeout
        #: optional repro.obs.metrics.MetricsRegistry; when given, per-rank
        #: stats are views over its transport_{messages,bytes}_total counters
        self.metrics = metrics
        self._boxes: list[list[_Mail]] = [[] for _ in range(size)]
        self._conds = [threading.Condition() for _ in range(size)]
        self.stats = [
            TransportStats(registry=metrics, rank=r) for r in range(size)
        ]
        self._barrier = AttributableBarrier(size)

    def endpoint(self, rank: int) -> "RankEndpoint":
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside 0..{self.size - 1}")
        return RankEndpoint(self, rank)

    def abort(self, dead_rank: Optional[int] = None) -> None:
        """Unblock barrier waiters after a rank death (see ``run_ranks``)."""
        self._barrier.abort(dead_rank)


class RankEndpoint:
    """One rank's view of the transport (thread-safe)."""

    #: ``isend(copy=False)`` hands the payload to the receiver by
    #: reference; the *receiver* owns (and may recycle) the buffer after
    #: consuming it.  Senders over transports without this property must
    #: keep or reclaim their buffers themselves.
    zero_copy_sends = True

    def __init__(self, transport: InprocTransport, rank: int):
        self.transport = transport
        self.rank = rank

    @property
    def size(self) -> int:
        return self.transport.size

    # -- sending ----------------------------------------------------------
    def isend(
        self, dst: int, payload: np.ndarray, tag: int = 0, copy: bool = True
    ) -> SendHandle:
        """Eager non-blocking send of an array.

        By default the payload is snapshotted with a *single* contiguous
        copy (MPI buffered-send semantics; the sender may reuse the array
        immediately).  With ``copy=False`` the payload is handed to the
        destination by reference — the zero-copy fast path for buffers the
        sender exclusively owns (e.g. borrowed from a
        :class:`repro.core.workspace.Workspace`) and will not touch until
        the receiver has consumed them.  ``copy=False`` requires a
        C-contiguous payload, so the receiver sees the same layout either
        way.
        """
        tr = self.transport
        if not 0 <= dst < tr.size:
            raise ValueError(f"dst {dst} outside 0..{tr.size - 1}")
        if copy:
            # One pass even for non-contiguous payloads (ascontiguousarray
            # followed by .copy() would copy those twice).
            data = np.array(payload, order="C", copy=True)
        else:
            if not payload.flags.c_contiguous:
                raise ValueError(
                    "copy=False requires a C-contiguous payload"
                )
            data = payload
        cond = tr._conds[dst]
        with cond:
            tr._boxes[dst].append(_Mail(src=self.rank, tag=tag, payload=data))
            cond.notify_all()
        tr.stats[self.rank].record_message(data.nbytes)
        return SendHandle(nbytes=data.nbytes)

    def send(self, dst: int, payload: np.ndarray, tag: int = 0) -> None:
        """Blocking send (trivially complete under eager semantics)."""
        self.isend(dst, payload, tag).wait()

    # -- receiving -----------------------------------------------------------
    def irecv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvHandle:
        """Post a receive; completion happens inside ``wait()``."""
        return RecvHandle(self, src, tag)

    def recv(
        self, src: int = ANY_SOURCE, tag: int = ANY_TAG,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        """Blocking receive; returns the payload array."""
        return self._take(src, tag, timeout)

    def _take(self, src: int, tag: int, timeout: Optional[float]) -> np.ndarray:
        tr = self.transport
        timeout = tr.default_timeout if timeout is None else timeout
        cond = tr._conds[self.rank]
        box = tr._boxes[self.rank]

        def find() -> Optional[int]:
            for i, mail in enumerate(box):
                if src in (ANY_SOURCE, mail.src) and tag in (ANY_TAG, mail.tag):
                    return i
            return None

        with cond:
            deadline = timeout
            idx = find()
            if idx is None:
                ok = cond.wait_for(lambda: find() is not None, timeout=deadline)
                if not ok:
                    raise HaloTimeoutError(
                        f"rank {self.rank}: recv(src={src}, tag={tag}) timed out "
                        f"after {timeout}s — message is {describe_tag(tag)}; "
                        f"lost message, dead peer, or schedule deadlock?"
                    )
                idx = find()
            assert idx is not None
            return box.pop(idx).payload

    # -- synchronization --------------------------------------------------------
    def waitall(self, handles: Sequence[SendHandle | RecvHandle]) -> list[Any]:
        """Complete every handle; returns recv payloads (None for sends)."""
        return [h.wait() for h in handles]

    def barrier(self, timeout: Optional[float] = None) -> None:
        """Block until all ranks arrive.

        On failure the error names the arrived and the missing ranks
        (an :class:`AttributableBarrier` underneath).
        """
        timeout = self.transport.default_timeout if timeout is None else timeout
        self.transport._barrier.wait(self.rank, timeout=timeout)

    # -- collectives ------------------------------------------------------------
    _COLL_TAG_BASE = 1 << 28  # tag space reserved for collective rounds

    def allreduce(self, value: np.ndarray | float, round_id: int = 0) -> np.ndarray:
        """Sum-allreduce over all ranks; returns the reduced array.

        Gather-to-root + broadcast over the point-to-point layer — the
        functional twin of :meth:`repro.smpi.comm.RankContext.allreduce`.
        Concurrent collectives must use distinct ``round_id`` values; a
        *sequence* of allreduces on the same id is safe (FIFO matching).
        """
        tr = self.transport
        payload = np.atleast_1d(np.asarray(value, dtype=np.float64))
        tag = self._COLL_TAG_BASE + round_id
        if tr.size == 1:
            return payload.copy()
        if self.rank == 0:
            total = payload.astype(np.float64, copy=True)
            for _ in range(tr.size - 1):
                total += self.recv(src=ANY_SOURCE, tag=tag)
            for dst in range(1, tr.size):
                self.isend(dst, total, tag=tag + 1)
            return total
        self.isend(0, payload, tag=tag)
        return self.recv(src=0, tag=tag + 1)


class GroupEndpoint:
    """A contiguous sub-communicator view over one rank's endpoint.

    The band-parallel SCF splits the ``P`` transport ranks into ``nb``
    groups of ``P/nb``; inside a group the FD engine and the Poisson
    solver must see an ordinary ``size``-rank communicator whose rank 0
    is the group's first global rank.  This wrapper translates ranks by
    a fixed ``base`` offset and otherwise delegates — the engine drives
    it exactly like a :class:`RankEndpoint` (same ``isend``/``irecv``/
    ``waitall``/``allreduce`` surface, same zero-copy contract).

    Group collectives offset their ``round_id`` into a reserved band so
    a group rooted at global rank 0 can never capture another group's
    contribution to a concurrently running *global* collective.
    """

    #: round_id offset separating group collectives from global ones
    _GROUP_COLL_OFFSET = 1 << 16

    def __init__(self, endpoint: RankEndpoint, base: int, size: int):
        if size < 1:
            raise ValueError(f"group size must be >= 1, got {size}")
        if not 0 <= base <= endpoint.size - size:
            raise ValueError(
                f"group [{base}, {base + size}) outside the "
                f"{endpoint.size}-rank transport"
            )
        if not base <= endpoint.rank < base + size:
            raise ValueError(
                f"rank {endpoint.rank} is not inside group "
                f"[{base}, {base + size})"
            )
        self.endpoint = endpoint
        self.base = base
        self._size = size

    @property
    def zero_copy_sends(self) -> bool:
        return getattr(self.endpoint, "zero_copy_sends", False)

    @property
    def rank(self) -> int:
        return self.endpoint.rank - self.base

    @property
    def size(self) -> int:
        return self._size

    def _global(self, rank: int, what: str) -> int:
        if not 0 <= rank < self._size:
            raise ValueError(
                f"{what} {rank} outside group 0..{self._size - 1}"
            )
        return rank + self.base

    def isend(
        self, dst: int, payload: np.ndarray, tag: int = 0, copy: bool = True
    ) -> SendHandle:
        return self.endpoint.isend(
            self._global(dst, "dst"), payload, tag=tag, copy=copy
        )

    def send(self, dst: int, payload: np.ndarray, tag: int = 0) -> None:
        self.isend(dst, payload, tag).wait()

    def irecv(self, src: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvHandle:
        if src != ANY_SOURCE:
            src = self._global(src, "src")
        return self.endpoint.irecv(src=src, tag=tag)

    def recv(
        self, src: int = ANY_SOURCE, tag: int = ANY_TAG,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        if src != ANY_SOURCE:
            src = self._global(src, "src")
        return self.endpoint._take(src, tag, timeout)

    def waitall(self, handles: Sequence[SendHandle | RecvHandle]) -> list[Any]:
        return self.endpoint.waitall(handles)

    def allreduce(self, value: np.ndarray | float, round_id: int = 0) -> np.ndarray:
        """Sum-allreduce over the group's ranks only."""
        payload = np.atleast_1d(np.asarray(value, dtype=np.float64))
        tag = (
            RankEndpoint._COLL_TAG_BASE
            + self._GROUP_COLL_OFFSET
            + round_id
        )
        if self._size == 1:
            return payload.copy()
        ep = self.endpoint
        if self.rank == 0:
            total = payload.astype(np.float64, copy=True)
            for _ in range(self._size - 1):
                total += ep.recv(src=ANY_SOURCE, tag=tag)
            for dst in range(1, self._size):
                ep.isend(self.base + dst, total, tag=tag + 1)
            return total
        ep.isend(self.base, payload, tag=tag)
        return ep.recv(src=self.base, tag=tag + 1)


def run_ranks(
    size: int,
    fn: Callable[..., Any],
    *args: Any,
    transport: Optional[InprocTransport] = None,
    supervisor: "Any" = None,
) -> list[Any]:
    """Run ``fn(endpoint, *args)`` on ``size`` rank threads; join and return.

    Exceptions in any rank are re-raised in the caller (after all threads
    have been joined), with the failing rank identified.  A
    :class:`~repro.transport.errors.TransportError` subclass is re-raised
    as the *same type* (with ``failed_rank`` and any attached schedule
    step preserved), so callers can dispatch on the taxonomy.

    ``supervisor`` switches to supervised execution: pass a
    :class:`repro.transport.supervisor.RetryPolicy` (the whole invocation
    is retried with exponential backoff on transient failures, and
    permanent ones produce a crash report) — see
    :func:`repro.transport.supervisor.run_ranks_supervised`, to which
    this delegates.
    """
    if supervisor is not None:
        from repro.transport.supervisor import run_ranks_supervised

        return run_ranks_supervised(
            size, fn, *args, transport=transport, policy=supervisor
        ).results
    tr = transport if transport is not None else InprocTransport(size)
    if tr.size != size:
        raise ValueError(f"transport size {tr.size} != requested size {size}")
    results: list[Any] = [None] * size
    errors: list[tuple[int, BaseException]] = []

    def runner(rank: int) -> None:
        try:
            results[rank] = fn(tr.endpoint(rank), *args)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors.append((rank, exc))
            # Unblock peers stuck in the barrier so the join terminates.
            tr.abort(dead_rank=rank)

    threads = [
        threading.Thread(target=runner, args=(rank,), name=f"rank{rank}")
        for rank in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        # The first appended error is the root cause: peers only fail
        # with PeerDeadError *after* the abort it triggered.
        primary = [e for e in errors if not isinstance(e[1], PeerDeadError)]
        rank, exc = (primary or errors)[0]
        # Preserve the taxonomy: a typed transport failure surfaces as the
        # same type, step attribution and transience flags intact.
        cls = type(exc) if isinstance(exc, TransportError) else TransportError
        wrapped = cls(f"rank {rank} failed: {exc!r}")
        if isinstance(exc, TransportError):
            wrapped.step_info = exc.step_info
        wrapped.failed_rank = rank
        wrapped.peer_errors = tuple(errors)
        raise wrapped from exc
    return results
