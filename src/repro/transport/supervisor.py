"""Supervised rank execution: bounded retry, backoff, crash reports.

``run_ranks`` fails fast; this module decides what happens *next*.  A
transient failure (lost or corrupted message — ``transient`` in the
error taxonomy) is retried with exponential backoff on a fresh
transport; a permanent one (dead rank) produces a :class:`CrashReport`
naming the failed rank, the error type, the schedule-IR step it died at
and every fault the plan injected — then re-raises the typed error so
callers up the stack (e.g. the SCF recovery loop) can act on it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.transport.errors import StepInfo, TransportError, is_transient
from repro.transport.inproc import InprocTransport, run_ranks


@dataclass(frozen=True)
class RetryPolicy:
    """How the supervisor retries transient failures.

    ``backoff_base * backoff_factor**attempt`` seconds are slept between
    attempts; ``max_retries`` bounds the retries (total attempts =
    ``max_retries + 1``).
    """

    max_retries: int = 2
    backoff_base: float = 0.01
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")

    def backoff(self, attempt: int) -> float:
        return self.backoff_base * self.backoff_factor ** attempt


@dataclass(frozen=True)
class CrashReport:
    """Everything known about a failed supervised invocation."""

    failed_rank: Optional[int]
    error_type: str
    message: str
    transient: bool
    attempts: int
    step_info: Optional[StepInfo] = None
    fault_events: tuple = ()
    peer_errors: tuple = ()

    def format(self) -> str:
        lines = [
            f"crash report: rank {self.failed_rank} died with "
            f"{self.error_type} after {self.attempts} attempt(s)",
            f"  error     : {self.message}",
            f"  transient : {self.transient}",
            f"  step      : "
            + (self.step_info.describe() if self.step_info else "(not attributed)"),
        ]
        if self.fault_events:
            lines.append("  injected faults:")
            for ev in self.fault_events:
                lines.append(
                    f"    rank {ev.rank} op {ev.op_index}: {ev.kind} ({ev.op})"
                )
        for rank, exc in self.peer_errors[1:]:
            lines.append(f"  also failed: rank {rank}: {exc!r}")
        return "\n".join(lines)


@dataclass
class SupervisedResult:
    """Outcome of a supervised invocation that eventually succeeded."""

    results: list
    attempts: int
    reports: list[CrashReport] = field(default_factory=list)


def crash_report_from(
    exc: TransportError, attempts: int = 1, fault_events: tuple = ()
) -> CrashReport:
    """Build a :class:`CrashReport` from a raised :class:`TransportError`.

    Public so any recovery layer (e.g. :class:`repro.dft.recovery
    .RecoveryController`) can attribute a failure it caught itself,
    without going through :func:`run_ranks_supervised`.
    """
    return CrashReport(
        failed_rank=getattr(exc, "failed_rank", None),
        error_type=type(exc).__name__,
        message=str(exc),
        transient=is_transient(exc),
        attempts=attempts,
        step_info=exc.step_info,
        fault_events=fault_events,
        peer_errors=getattr(exc, "peer_errors", ()),
    )


#: backward-compatible private alias
_report_from = crash_report_from


def run_ranks_supervised(
    size: int,
    fn: Callable[..., Any],
    *args: Any,
    transport: Optional[Any] = None,
    transport_factory: Optional[Callable[[int], Any]] = None,
    policy: Optional[RetryPolicy] = None,
    tracer: Optional[Any] = None,
    on_crash: Optional[Callable[[CrashReport], None]] = None,
    metrics=None,
) -> SupervisedResult:
    """Run ``fn`` on ``size`` ranks under a retry supervisor.

    ``transport_factory(attempt)`` builds the transport for each attempt
    (a retry must not see the previous attempt's stale mailboxes); when
    only ``transport`` is given it is used for attempt 0 and fresh
    :class:`InprocTransport`\\ s of the same size for retries.  Transient
    failures are retried per ``policy``; each failure's
    :class:`CrashReport` is collected (and appended to ``tracer`` as a
    zero-length span, so a Gantt chart shows where the run crashed), and
    the final failure is re-raised with ``.crash_report`` attached.

    ``metrics`` (a :class:`repro.obs.metrics.MetricsRegistry`) counts
    crashes per error type and retries, and observes each backoff sleep
    into the ``supervisor_backoff_seconds`` histogram.
    """
    from repro.obs.metrics import resolve_registry

    policy = policy if policy is not None else RetryPolicy()
    registry = resolve_registry(metrics)

    def make_transport(attempt: int) -> Any:
        if transport_factory is not None:
            return transport_factory(attempt)
        if attempt == 0 and transport is not None:
            return transport
        return InprocTransport(size)

    reports: list[CrashReport] = []
    attempt = 0
    while True:
        tr = make_transport(attempt)
        plan = getattr(tr, "plan", None)
        try:
            results = run_ranks(size, fn, *args, transport=tr)
            return SupervisedResult(
                results=results, attempts=attempt + 1, reports=reports
            )
        except TransportError as exc:
            fault_events = plan.events if plan is not None else ()
            report = _report_from(exc, attempt + 1, fault_events)
            reports.append(report)
            registry.counter(
                "supervisor_crashes_total", error=report.error_type
            ).inc()
            if tracer is not None:
                tracer.record(
                    f"supervisor.rank{report.failed_rank}",
                    float(attempt),
                    float(attempt),
                    f"crash: {report.error_type}",
                )
            if on_crash is not None:
                on_crash(report)
            if is_transient(exc) and attempt < policy.max_retries:
                backoff = policy.backoff(attempt)
                registry.counter("supervisor_retries_total").inc()
                registry.histogram("supervisor_backoff_seconds").observe(backoff)
                time.sleep(backoff)
                attempt += 1
                continue
            exc.crash_report = report
            raise
