"""``python -m repro`` — entry point for the experiment CLI."""

import sys

from repro.cli import main

sys.exit(main())
