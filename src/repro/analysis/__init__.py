"""Experiment drivers and reporting: one function per paper table/figure.

Each ``fig*``/``table*`` function returns plain data structures (rows of
numbers) that the benchmark harness prints in the paper's layout and the
tests assert shape criteria on.  Formatting helpers render aligned text
tables so benchmark output is readable in a terminal.
"""

from repro.analysis.experiments import (
    Fig5Row,
    Fig6Row,
    Fig7Row,
    HeadlineNumbers,
    ablation_subgroups,
    fig2_rows,
    fig5_rows,
    fig6_rows,
    fig7_rows,
    headline_numbers,
    table1,
)
from repro.analysis.formatting import format_table
from repro.analysis.asciiplot import line_plot
from repro.analysis.chaos import (
    ChaosOutcome,
    run_chaos_suite,
    suite_passed,
    survival_matrix,
)
from repro.analysis.resilience import (
    ResilienceRow,
    checkpoint_bytes,
    format_mtbf_table,
    mtbf_sweep,
    optimal_checkpoint_interval,
    resilience_overhead,
)
from repro.analysis.calibration import (
    FitResult,
    PaperAnchors,
    anchor_error,
    fit_compute_knobs,
)
from repro.analysis.scaling import (
    crossover_cores,
    gustafson_crossover,
    isoefficiency_grids,
    parallel_efficiency,
)
from repro.analysis.timeline import (
    model_step_trace,
    real_step_trace,
    sim_step_trace,
    step_trace_for,
    timeline_panel,
)

__all__ = [
    "Fig5Row",
    "Fig6Row",
    "Fig7Row",
    "HeadlineNumbers",
    "ablation_subgroups",
    "fig2_rows",
    "fig5_rows",
    "fig6_rows",
    "fig7_rows",
    "headline_numbers",
    "table1",
    "format_table",
    "line_plot",
    "FitResult",
    "PaperAnchors",
    "anchor_error",
    "fit_compute_knobs",
    "crossover_cores",
    "gustafson_crossover",
    "isoefficiency_grids",
    "parallel_efficiency",
    "ChaosOutcome",
    "ResilienceRow",
    "checkpoint_bytes",
    "format_mtbf_table",
    "mtbf_sweep",
    "optimal_checkpoint_interval",
    "resilience_overhead",
    "run_chaos_suite",
    "suite_passed",
    "survival_matrix",
    "model_step_trace",
    "real_step_trace",
    "sim_step_trace",
    "step_trace_for",
    "timeline_panel",
]
