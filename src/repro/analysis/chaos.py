"""The chaos suite: seeded fault campaigns against the functional plane.

``repro chaos --seed N`` runs the *real* distributed engine — the same
compiled schedules, transport and SCF the correctness tests use — under
a deterministic :class:`~repro.transport.faults.FaultPlan`, and prints a
survival matrix: which fault class was injected, how many faults fired,
how many attempts the supervisor needed, and whether the recovered
result is bit-identical to the fault-free oracle.

Every scenario is a pure function of the seed, so a CI failure replays
locally with the same command line.  Expected outcomes:

* transient faults (delay / drop / duplicate / corruption) — recovered,
  bit-identical;
* a killed rank under plain supervision — *crashed*, but with a typed,
  step-attributed crash report (never a hang);
* a paper-scale DES storm (512 ranks, compiled replay engine) run twice
  from pristine plan replicas — bit-identical makespan and event counts;
* a killed rank mid-SCF with checkpointing — recovered via
  checkpoint/restart, converging to the sequential energy;
* (``--controller``) a killed rank mid-band-parallel-SCF under the
  :class:`~repro.dft.recovery.RecoveryController` — the planner picks a
  degraded layout on the survivors (no caller-supplied shrink target),
  the checkpoint is regrouped onto it, and the run converges to the
  fault-free oracle; run twice to compare static vs adaptive
  checkpoint cadence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import DistributedStencil
from repro.grid import Decomposition, GridDescriptor, HaloSpec, gather, scatter
from repro.stencil import apply_stencil_global, laplacian_coefficients
from repro.transport import (
    FaultPlan,
    FaultyTransport,
    InprocTransport,
    RetryPolicy,
    TransportError,
    run_ranks_supervised,
)


@dataclass(frozen=True)
class ChaosOutcome:
    """One scenario's row in the survival matrix."""

    scenario: str
    injected: int  # fault events that actually fired
    attempts: int
    outcome: str  # "recovered" | "crashed" | "clean"
    identical: bool  # bit-identical to the fault-free oracle
    errors: tuple[str, ...]  # error types seen across attempts


class _StencilScenario:
    """A small distributed stencil application with a known oracle."""

    def __init__(self, n_ranks: int, shape=(8, 8, 8), n_grids: int = 4):
        self.n_ranks = n_ranks
        gd = GridDescriptor(shape)
        self.decomp = Decomposition(gd, n_ranks)
        coeffs = laplacian_coefficients(2, gd.spacing)
        self.engine = DistributedStencil(self.decomp, coeffs)
        fields = {gid: gd.random(seed=gid) for gid in range(n_grids)}
        self.blocks = {
            gid: scatter(fields[gid], self.decomp, HaloSpec(2)) for gid in fields
        }
        self.oracle = {
            gid: apply_stencil_global(fields[gid], coeffs) for gid in fields
        }

    def rank_fn(self, ep):
        mine = {gid: self.blocks[gid][ep.rank] for gid in self.blocks}
        return self.engine.apply(ep, mine)

    def check(self, results) -> bool:
        return all(
            np.array_equal(
                gather([results[r][gid] for r in range(self.n_ranks)]),
                self.oracle[gid],
            )
            for gid in self.oracle
        )

    def run(
        self, name: str, plan: FaultPlan, max_retries: int, timeout: float
    ) -> ChaosOutcome:
        def factory(attempt: int):
            return FaultyTransport(
                InprocTransport(self.n_ranks, default_timeout=timeout), plan
            )

        try:
            res = run_ranks_supervised(
                self.n_ranks,
                self.rank_fn,
                transport_factory=factory,
                policy=RetryPolicy(max_retries=max_retries, backoff_base=0.0),
            )
        except TransportError as exc:
            report = getattr(exc, "crash_report", None)
            errors = tuple(
                {type(exc).__name__}
                | {r.error_type for r in ([report] if report else [])}
            )
            return ChaosOutcome(
                scenario=name,
                injected=len(plan.events),
                attempts=(report.attempts if report else 1),
                outcome="crashed",
                identical=False,
                errors=errors,
            )
        errors = tuple(sorted({r.error_type for r in res.reports}))
        return ChaosOutcome(
            scenario=name,
            injected=len(plan.events),
            attempts=res.attempts,
            outcome="recovered" if res.reports else "clean",
            identical=self.check(res.results),
            errors=errors,
        )


def _des_replay_scale(seed: int) -> ChaosOutcome:
    """Paper-scale DES storm: 512 ranks, compiled engine, replayed twice.

    The compiled replay engine makes fault campaigns at paper scale
    tractable inside the suite.  A seeded storm over 512 simulated ranks
    runs twice from pristine :meth:`FaultPlan.replica` copies and must
    agree bit-exactly on makespan, fault count, message count and
    fired-event count — any heap-order drift in the engine shows up here
    before it can corrupt a larger campaign.
    """
    from repro.core import FDJob, simulate_fd
    from repro.core.approaches import FLAT_OPTIMIZED

    job = FDJob(GridDescriptor((48, 48, 48)), 8)
    plan = FaultPlan(
        seed=seed, p_delay=0.1, p_drop=0.05, p_duplicate=0.05,
        p_corrupt=0.05, delay=3e-4, retransmit_timeout=1e-4,
    )
    a, b = (
        simulate_fd(job, FLAT_OPTIMIZED, 512, batch_size=4,
                    fault_plan=plan.replica(), engine="compiled")
        for _ in range(2)
    )
    identical = (
        (a.total, a.fault_events, a.messages, a.events)
        == (b.total, b.fault_events, b.messages, b.events)
    )
    return ChaosOutcome(
        scenario="des-storm-512r",
        injected=a.fault_events,
        attempts=2,
        outcome="clean",
        identical=identical,
        errors=(),
    )


def _scf_kill_resume(seed: int, timeout: float) -> ChaosOutcome:
    """Rank kill mid-SCF; checkpoint/restart resumes and completes."""
    from repro.core.jobspec import (
        JobSpec, LayoutSpec, ProblemSpec, RuntimeSpec,
    )
    from repro.dft import DistributedSCF, MemoryCheckpointStore

    n = 6
    gd = GridDescriptor((n, n, n), pbc=(False,) * 3, spacing=0.6)
    x, y, z = gd.coordinates()
    c = (n + 1) * 0.6 / 2
    v = 0.5 * ((x - c) ** 2 + 1.44 * (y - c) ** 2 + 1.96 * (z - c) ** 2)
    spec = JobSpec(
        problem=ProblemSpec.from_grid(gd, 1),
        layout=LayoutSpec(n_cores=2),
        runtime=RuntimeSpec(
            mixing=0.6, tolerance=0.0, max_iterations=4,
            band_iterations=4, seed=seed,
        ),
    )

    def make(store):
        return DistributedSCF.from_spec(
            spec, v, occupations=[2.0], checkpoint_store=store
        )

    oracle = make(None).run()  # fault-free twin, no shared store
    scf = make(MemoryCheckpointStore())
    # ~1400 transport ops per SCF iteration at this size: op 3500 lands
    # mid-iteration 3, after checkpoints 1 and 2 committed
    plan = FaultPlan(seed=seed, kill_at={1: 3500})
    errors: list[str] = []

    def factory(attempt: int):
        return FaultyTransport(InprocTransport(2, default_timeout=timeout), plan)

    try:
        res = scf.run_with_recovery(
            max_restarts=2,
            transport_factory=factory,
            on_restart=lambda k, exc: errors.append(type(exc).__name__),
        )
    except TransportError as exc:
        return ChaosOutcome(
            scenario="scf-kill-resume",
            injected=len(plan.events),
            attempts=1,
            outcome="crashed",
            identical=False,
            errors=(type(exc).__name__,),
        )
    identical = bool(
        np.isfinite(res.total_energy)
        and abs(res.total_energy - oracle.total_energy) < 1e-6
    )
    return ChaosOutcome(
        scenario="scf-kill-resume",
        injected=len(plan.events),
        attempts=res.restarts + 1,
        outcome="recovered" if res.restarts else "clean",
        identical=identical,
        errors=tuple(sorted(set(errors))),
    )


def _controller_kill(
    seed: int, timeout: float, nb: int, adaptive: bool,
    flightrec_dir: str | None = None,
) -> ChaosOutcome:
    """Rank kill mid-band-parallel SCF; the RecoveryController replans.

    Unlike ``scf-kill-resume`` no shrink target is supplied: the
    controller consumes the crash report, asks the planner for the best
    feasible layout on the survivors, and regroups the checkpoint onto
    it.  With ``adaptive=True`` the checkpoint cadence is derived live
    from Daly's interval instead of the static ``checkpoint_every``.
    ``flightrec_dir`` attaches a flight recorder and writes its crash
    dump(s) there as JSON — the CI artifact on fatal injections.
    """
    from repro.core import DegradationError, DegradationPolicy
    from repro.core.jobspec import (
        JobSpec, LayoutSpec, ProblemSpec, RuntimeSpec,
    )
    from repro.dft import (
        DistributedSCF,
        MemoryCheckpointStore,
        RecoveryController,
    )

    n = 6
    gd = GridDescriptor((n, n, n), pbc=(False,) * 3, spacing=0.6)
    x, y, z = gd.coordinates()
    c = (n + 1) * 0.6 / 2
    v = 0.5 * ((x - c) ** 2 + 1.44 * (y - c) ** 2 + 1.96 * (z - c) ** 2)
    spec = JobSpec(
        problem=ProblemSpec.from_grid(gd, 4),
        layout=LayoutSpec(n_cores=4, n_band_groups=nb),
        runtime=RuntimeSpec(
            mixing=0.6, tolerance=0.0, max_iterations=4,
            band_iterations=4, checkpoint_every=1, seed=seed,
        ),
    )

    def make(store):
        return DistributedSCF.from_spec(
            spec, v, occupations=[2.0] * 4, checkpoint_store=store
        )

    oracle = make(None).run()  # fault-free twin, no shared store
    scf = make(MemoryCheckpointStore())
    # ~200 transport ops per rank per SCF iteration at this size: op 400
    # lands mid-run, after at least one checkpoint committed (static
    # cadence; the adaptive cadence may checkpoint less often, in which
    # case the degraded layout replays from scratch — still exact)
    plan = FaultPlan(seed=seed, kill_at={2: 400})

    def factory(attempt: int, n_ranks: int):
        inner = InprocTransport(n_ranks, default_timeout=timeout)
        return FaultyTransport(inner, plan) if attempt == 0 else inner

    policy = DegradationPolicy(
        max_restarts=2,
        adaptive_cadence=adaptive,
        expected_mtbf=0.5 if adaptive else None,
    )
    recorder = None
    if flightrec_dir is not None:
        from repro.obs import FlightRecorder

        recorder = FlightRecorder(capacity=8, plane="real")
    ctrl = RecoveryController(
        scf, policy=policy, transport_factory=factory,
        flight_recorder=recorder,
    )
    name = f"ctrl-kill-nb{nb}" + ("-adaptive" if adaptive else "")
    try:
        res = ctrl.run()
    except (TransportError, DegradationError) as exc:
        _write_flight_dumps(ctrl, name, flightrec_dir)
        return ChaosOutcome(
            scenario=name,
            injected=len(plan.events),
            attempts=len(ctrl.reports) or 1,
            outcome="crashed",
            identical=False,
            errors=(type(exc).__name__,),
        )
    _write_flight_dumps(ctrl, name, flightrec_dir)
    identical = bool(
        np.isfinite(res.total_energy)
        and abs(res.total_energy - oracle.total_energy) < 1e-8
    )
    return ChaosOutcome(
        scenario=name,
        injected=len(plan.events),
        attempts=res.restarts + 1,
        outcome="recovered" if res.restarts else "clean",
        identical=identical,
        errors=tuple(sorted({r.error_type for r in ctrl.reports})),
    )


def _write_flight_dumps(ctrl, scenario: str, flightrec_dir: str | None) -> None:
    """Persist the controller's flight-recorder dumps as JSON artifacts."""
    if flightrec_dir is None or not getattr(ctrl, "flight_dumps", None):
        return
    import json
    import os

    os.makedirs(flightrec_dir, exist_ok=True)
    for i, dump in enumerate(ctrl.flight_dumps):
        path = os.path.join(flightrec_dir, f"flightrec-{scenario}-{i}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(dump, fh, indent=1)


def run_chaos_suite(
    seed: int = 0,
    n_ranks: int = 2,
    timeout: float = 1.0,
    scf: bool = True,
    controller: bool = False,
    flightrec_dir: str | None = None,
) -> list[ChaosOutcome]:
    """Run every chaos scenario for one seed; deterministic per seed."""
    sc = _StencilScenario(n_ranks)
    outcomes = []
    # one targeted fault per kind, pinned to an early send of rank 0
    for kind in ("delay", "duplicate", "drop", "corrupt"):
        plan = FaultPlan(seed=seed, inject={(0, 1): kind}, delay=0.001)
        outcomes.append(sc.run(f"one-{kind}", plan, max_retries=2, timeout=timeout))
    # a probabilistic storm of transient faults.  The network stays lossy
    # across retries (fresh sends draw fresh decisions), so an attempt
    # only succeeds when its ~16-send window draws no drop/corrupt —
    # the retry budget must cover several lossy windows.
    storm = FaultPlan(
        seed=seed, p_drop=0.04, p_corrupt=0.04, p_duplicate=0.06,
        p_delay=0.06, delay=0.0005,
    )
    outcomes.append(sc.run("storm", storm, max_retries=12, timeout=timeout))
    # a killed rank: permanent — must crash with attribution, not hang
    kill = FaultPlan(seed=seed, kill_at={min(1, n_ranks - 1): 5})
    outcomes.append(sc.run("rank-kill", kill, max_retries=2, timeout=timeout))
    # paper-scale determinism: the compiled DES replays a 512-rank storm
    # twice from pristine plan replicas; any heap-order drift shows up
    # as a makespan or event-count mismatch
    outcomes.append(_des_replay_scale(seed))
    if scf:
        outcomes.append(_scf_kill_resume(seed, timeout))
    if controller:
        # planner-driven degradation, kill mid-run with nb in {2, 4};
        # the adaptive row exists to compare cadence policies side by
        # side in the printed matrix
        outcomes.append(
            _controller_kill(
                seed, timeout, nb=2, adaptive=False,
                flightrec_dir=flightrec_dir,
            )
        )
        outcomes.append(
            _controller_kill(
                seed, timeout, nb=4, adaptive=False,
                flightrec_dir=flightrec_dir,
            )
        )
        outcomes.append(
            _controller_kill(
                seed, timeout, nb=2, adaptive=True,
                flightrec_dir=flightrec_dir,
            )
        )
    return outcomes


def survival_matrix(outcomes: list[ChaosOutcome]) -> str:
    """The chaos outcomes as an aligned text table."""
    from repro.analysis.formatting import format_table

    return format_table(
        ["scenario", "injected", "attempts", "outcome", "bit-identical", "errors"],
        [
            [
                o.scenario,
                o.injected,
                o.attempts,
                o.outcome,
                "yes" if o.identical else "no",
                ",".join(o.errors) or "-",
            ]
            for o in outcomes
        ],
        title="Chaos survival matrix",
    )


def suite_passed(outcomes: list[ChaosOutcome]) -> bool:
    """The CI gate: transients recover bit-identically, kills attribute.

    * every scenario except the kill ones must end ``recovered`` or
      ``clean`` with a bit-identical result;
    * ``rank-kill`` must end ``crashed`` with a typed error (attribution
      instead of a hang);
    * ``scf-kill-resume`` (when present) must end ``recovered`` with the
      oracle energy;
    * ``ctrl-kill-*`` (when present) must end ``recovered`` with the
      oracle energy on whatever degraded layout the planner chose.
    """
    ok = True
    for o in outcomes:
        if o.scenario == "rank-kill":
            ok &= o.outcome == "crashed" and bool(o.errors)
        else:
            ok &= o.outcome in ("recovered", "clean") and o.identical
    return ok
