"""Timeline panel: one configuration's step trace from any plane.

The three planes emit the same :class:`~repro.obs.spans.StepSpan` schema —
the functional engine via :func:`~repro.obs.spans.engine_hook`, the DES
via ``simulate_fd(step_tracer=...)``, the analytic model via
:meth:`~repro.core.perfmodel.PerformanceModel.step_trace` — so this module
only has to *configure* each plane identically and hand the traces to the
exporters.  ``step_trace_for(plane, ...)`` is the single dispatch the
``repro trace`` / ``repro timeline`` commands (and the CI artifact) use.

The real and simulated planes execute the same compiled plan, so with
``n_cores >= 4`` (where the timing planes' worker count equals the
functional plane's full thread team) the per-worker step-kind *sequences*
are identical across planes — the cross-plane consistency tests assert
exactly that.  The model plane traces only the representative worker
``rank0.w0``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.approaches import Approach, approach_by_name
from repro.core.perfmodel import FDJob, PerformanceModel
from repro.grid.array import scatter
from repro.grid.decompose import Decomposition
from repro.grid.grid import GridDescriptor
from repro.grid.halo import HaloSpec
from repro.obs.export import (
    ascii_gantt,
    diff_step_kinds,
    format_diff,
    format_utilization,
    utilization_report,
)
from repro.obs.spans import SpanTracer, engine_hook

__all__ = [
    "PLANES",
    "real_step_trace",
    "sim_step_trace",
    "model_step_trace",
    "step_trace_for",
    "timeline_panel",
]

PLANES = ("real", "sim", "model")


def _resolve(approach) -> Approach:
    return approach_by_name(approach) if isinstance(approach, str) else approach


def real_step_trace(
    approach,
    n_cores: int,
    n_grids: int,
    shape: Sequence[int] = (24, 24, 24),
    batch_size: int = 1,
    ramp_up: bool = False,
    seed: int = 0,
    metrics=None,
) -> SpanTracer:
    """Run the functional engine for real and trace every schedule step.

    Scatters ``n_grids`` random grids over ``approach.domains_for(n_cores)``
    rank threads, applies the distributed Laplacian once with
    :func:`~repro.obs.spans.engine_hook` attached, and returns the shared
    ``SpanTracer(plane="real")`` (raw ``time.perf_counter`` timestamps —
    exporters normalize).  ``metrics`` optionally instruments the
    in-process transport of the run.
    """
    from repro.core.engine import DistributedStencil
    from repro.stencil.coefficients import laplacian_coefficients
    from repro.transport.inproc import InprocTransport, run_ranks

    approach = _resolve(approach)
    gd = GridDescriptor(tuple(shape))
    decomp = Decomposition(gd, approach.domains_for(n_cores))
    coeffs = laplacian_coefficients(2, spacing=gd.spacing)
    engine = DistributedStencil(decomp, coeffs)
    halo = HaloSpec(coeffs.radius)

    arrays = {gid: gd.random(seed=seed + gid) for gid in range(n_grids)}
    blocks = {gid: scatter(a, decomp, halo) for gid, a in arrays.items()}
    tracer = SpanTracer(plane="real")

    def rank_fn(ep):
        mine = {gid: blocks[gid][ep.rank] for gid in arrays}
        return engine.apply(
            ep,
            mine,
            approach=approach,
            batch_size=batch_size,
            ramp_up=ramp_up,
            on_step=engine_hook(tracer, ep.rank),
        )

    transport = (
        InprocTransport(decomp.n_domains, metrics=metrics)
        if metrics is not None
        else None
    )
    run_ranks(decomp.n_domains, rank_fn, transport=transport)
    return tracer


def sim_step_trace(
    approach,
    n_cores: int,
    n_grids: int,
    shape: Sequence[int] = (24, 24, 24),
    batch_size: int = 1,
    ramp_up: bool = False,
) -> SpanTracer:
    """Replay the same configuration on the DES and trace it at sim time."""
    from repro.core.simrun import simulate_fd

    approach = _resolve(approach)
    job = FDJob(GridDescriptor(tuple(shape)), n_grids)
    tracer = SpanTracer(plane="sim")
    simulate_fd(
        job, approach, n_cores, batch_size=batch_size, ramp_up=ramp_up,
        step_tracer=tracer,
    )
    return tracer


def model_step_trace(
    approach,
    n_cores: int,
    n_grids: int,
    shape: Sequence[int] = (24, 24, 24),
    batch_size: int = 1,
    ramp_up: bool = False,
) -> SpanTracer:
    """The analytic model's reconstructed timeline (worker ``rank0.w0``)."""
    approach = _resolve(approach)
    job = FDJob(GridDescriptor(tuple(shape)), n_grids)
    return PerformanceModel().step_trace(
        job, approach, n_cores, batch_size=batch_size, ramp_up=ramp_up
    )


def step_trace_for(
    plane: str,
    approach,
    n_cores: int,
    n_grids: int,
    shape: Sequence[int] = (24, 24, 24),
    batch_size: int = 1,
    ramp_up: bool = False,
) -> SpanTracer:
    """Dispatch to the named plane's tracer with identical configuration.

    Every returned tracer carries the
    :meth:`~repro.core.jobspec.JobSpec.config_hash` of the traced
    configuration, so exported artifacts from different planes of the
    same run are mechanically linkable.
    """
    if plane == "real":
        tracer = real_step_trace(
            approach, n_cores, n_grids, shape, batch_size, ramp_up
        )
    elif plane == "sim":
        tracer = sim_step_trace(
            approach, n_cores, n_grids, shape, batch_size, ramp_up
        )
    elif plane == "model":
        tracer = model_step_trace(
            approach, n_cores, n_grids, shape, batch_size, ramp_up
        )
    else:
        raise ValueError(f"unknown plane {plane!r}; expected one of {PLANES}")
    from repro.core.jobspec import JobSpec, LayoutSpec, ProblemSpec

    tracer.config_hash = JobSpec(
        problem=ProblemSpec(shape=tuple(shape), n_grids=n_grids),
        layout=LayoutSpec(
            approach=_resolve(approach).name,
            n_cores=n_cores,
            batch_size=batch_size,
            ramp_up=ramp_up,
        ),
    ).config_hash()
    return tracer


def timeline_panel(
    approach,
    n_cores: int,
    n_grids: int,
    shape: Sequence[int] = (24, 24, 24),
    batch_size: int = 1,
    ramp_up: bool = False,
    planes: Sequence[str] = ("real", "sim"),
    width: int = 72,
    diff: Optional[tuple[str, str]] = None,
) -> str:
    """Gantt + utilization for each requested plane, one text panel.

    ``diff=("real", "sim")`` appends the per-step-kind time comparison
    between two of the traced planes.
    """
    approach = _resolve(approach)
    traces = {
        p: step_trace_for(
            p, approach, n_cores, n_grids, shape, batch_size, ramp_up
        )
        for p in planes
    }
    header = (
        f"timeline — {approach.name}, {n_cores} cores, {n_grids} grids of "
        f"{'x'.join(str(s) for s in shape)}, batch {batch_size}"
    )
    sections = [header]
    for p, tr in traces.items():
        sections.append(
            f"[{p}]\n"
            + ascii_gantt(tr, width=width, normalize=True)
            + "\n"
            + format_utilization(utilization_report(tr), title=f"{p} utilization")
        )
    if diff is not None:
        a, b = diff
        for name in (a, b):
            if name not in traces:
                traces[name] = step_trace_for(
                    name, approach, n_cores, n_grids, shape, batch_size, ramp_up
                )
        sections.append(
            f"step-kind diff ({a} vs {b})\n"
            + format_diff(diff_step_kinds(traces[a], traces[b]), a, b)
        )
    return "\n\n".join(sections)
