"""Terminal line plots for the reproduced figures.

The paper's evaluation is four line plots; this renders their series as
ASCII charts so the CLI and examples can show *curves*, not just tables.
Deliberately minimal: linear or logarithmic axes, multiple series with
distinct markers, and a legend.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_MARKERS = "ox+*@%&$"


def _scale(value: float, lo: float, hi: float, log: bool) -> float:
    """Normalize value into [0, 1] under the chosen axis transform."""
    if log:
        if value <= 0 or lo <= 0:
            raise ValueError("log axes need strictly positive data")
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi == lo:
        return 0.5
    return (value - lo) / (hi - lo)


def line_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    x_log: bool = False,
    y_log: bool = False,
    title: str = "",
) -> str:
    """Render ``{name: [(x, y), ...]}`` as an ASCII chart.

    Each series gets a marker; the legend maps markers to names.  Points
    are plotted individually (no interpolation) — the paper's figures are
    point series joined by eye anyway.
    """
    if not series or all(not pts for pts in series.values()):
        return "(no data)"
    xs = [x for pts in series.values() for x, _ in pts]
    ys = [y for pts in series.values() for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)

    canvas = [[" "] * width for _ in range(height)]
    for (name, pts), marker in zip(series.items(), _MARKERS):
        for x, y in pts:
            col = round(_scale(x, x_lo, x_hi, x_log) * (width - 1))
            row = height - 1 - round(_scale(y, y_lo, y_hi, y_log) * (height - 1))
            canvas[row][col] = marker

    def fmt(v: float) -> str:
        return f"{v:.3g}"

    lines = []
    if title:
        lines.append(title)
    y_labels = [fmt(y_hi), fmt(y_lo)]
    label_w = max(len(s) for s in y_labels)
    for i, row in enumerate(canvas):
        label = fmt(y_hi) if i == 0 else (fmt(y_lo) if i == height - 1 else "")
        lines.append(f"{label.rjust(label_w)} |{''.join(row)}|")
    lines.append(f"{' ' * label_w} +{'-' * width}+")
    x_axis = f"{fmt(x_lo)}{' ' * (width - len(fmt(x_lo)) - len(fmt(x_hi)))}{fmt(x_hi)}"
    lines.append(f"{' ' * label_w}  {x_axis}")
    legend = "   ".join(
        f"{marker} {name}" for (name, _), marker in zip(series.items(), _MARKERS)
    )
    lines.append(f"{' ' * label_w}  legend: {legend}")
    return "\n".join(lines)
