"""Calibration as code: fit the model's free knobs to the paper's anchors.

The performance model has two free compute parameters
(``stencil_point_time``, ``halo_compute_exponent``) plus the thread-layer
costs; DESIGN.md §5 records the values we ship.  This module makes the
fit reproducible: an error functional over the paper's published anchors
and a grid search that recovers (or improves on) the shipped defaults —
so a re-calibration against different anchors is one function call, not
archaeology.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.approaches import FLAT_OPTIMIZED, FLAT_ORIGINAL, HYBRID_MULTIPLE
from repro.core.perfmodel import FDJob, PerformanceModel
from repro.grid.grid import GridDescriptor
from repro.machine.spec import BGP_SPEC, MachineSpec


@dataclass(frozen=True)
class PaperAnchors:
    """Every number section VIII and Fig 7 state outright."""

    headline_speedup: float = 1.94  # hybrid vs original @16k
    utilization_original: float = 0.36
    utilization_hybrid: float = 0.70
    fig7_hybrid_vs_original_1k: float = 16.5
    fig7_original_self: float = 8.5  # original 1k -> 16k
    hybrid_over_optimized: float = 1.10


_JOB = FDJob(GridDescriptor((192, 192, 192)), 2816)


def anchor_error(spec: MachineSpec, anchors: PaperAnchors = PaperAnchors()) -> float:
    """Sum of squared relative errors of the model against the anchors."""
    pm = PerformanceModel(spec)
    orig_16k = pm.evaluate(_JOB, FLAT_ORIGINAL, 16384)
    orig_1k = pm.evaluate(_JOB, FLAT_ORIGINAL, 1024)
    hm_16k = pm.best_batch_size(_JOB, HYBRID_MULTIPLE, 16384)
    opt_16k = pm.best_batch_size(_JOB, FLAT_OPTIMIZED, 16384)

    predictions = {
        "headline_speedup": orig_16k.total / hm_16k.total,
        "utilization_original": orig_16k.utilization,
        "utilization_hybrid": hm_16k.utilization,
        "fig7_hybrid_vs_original_1k": orig_1k.total / hm_16k.total,
        "fig7_original_self": orig_1k.total / orig_16k.total,
        "hybrid_over_optimized": opt_16k.total / hm_16k.total,
    }
    error = 0.0
    for name, predicted in predictions.items():
        target = getattr(anchors, name)
        error += ((predicted - target) / target) ** 2
    return error


@dataclass(frozen=True)
class FitResult:
    """Outcome of a calibration grid search."""

    spec: MachineSpec
    error: float
    grid: tuple[tuple[float, float, float], ...]  # (t_point, exponent, error)


def fit_compute_knobs(
    t_points: tuple[float, ...] = (90e-9, 100e-9, 110e-9, 120e-9, 130e-9),
    exponents: tuple[float, ...] = (0.2, 0.25, 0.3, 0.35, 0.4),
    base: MachineSpec = BGP_SPEC,
    anchors: PaperAnchors = PaperAnchors(),
) -> FitResult:
    """Grid-search the two compute knobs against the anchors."""
    best_spec = base
    best_err = float("inf")
    grid = []
    for t in t_points:
        for e in exponents:
            spec = base.with_(stencil_point_time=t, halo_compute_exponent=e)
            err = anchor_error(spec, anchors)
            grid.append((t, e, err))
            if err < best_err:
                best_err, best_spec = err, spec
    return FitResult(spec=best_spec, error=best_err, grid=tuple(grid))
