"""Plain-text table rendering for benchmark output.

The benchmark harness prints each reproduced table/figure as an aligned
text table so results can be compared against the paper at a glance.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render rows as an aligned, pipe-separated text table.

    Floats are shown with 3 significant digits; everything else via str().
    """

    def cell(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, header has {len(headers)}"
            )
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("-+-".join("-" * w for w in widths))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)
