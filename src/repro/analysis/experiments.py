"""The paper's evaluation, experiment by experiment.

Workload parameters are taken verbatim from section VII:

* **Fig 5** — 32 grids of 144^3 (the largest single-core-feasible job),
  1..4096 cores, batching off (left) / batch-size 8 (right).
* **Fig 6** — Gustafson scaling: grids = cores, 192^3 grids, best
  batch-size per point; right axis: communication per node.
* **Fig 7** — 2816 grids of 192^3, 1k..16k cores, best batch-size,
  speedups relative to Flat original at 1k cores.
* **Headline** (section VIII) — 1.94x at 16384 cores, utilization
  36% -> 70%, hybrid 10% over flat optimized.
* **Section VII-A ablation** — flat optimized with static sub-groups
  behaves identically to hybrid multiple.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.approaches import (
    ALL_APPROACHES,
    Approach,
    FLAT_OPTIMIZED,
    FLAT_ORIGINAL,
    HYBRID_MULTIPLE,
)
from repro.core.perfmodel import FDJob, FDTiming, PerformanceModel
from repro.grid.grid import GridDescriptor
from repro.machine.spec import BGP_SPEC, MachineSpec, table1_rows
from repro.netmodel.pingpong import BandwidthPoint, measured_bandwidth_curve

#: Fig 5 workload (section VII: "a relatively small job containing only 32
#: real-space grids ... size of 144^3")
FIG5_JOB = FDJob(GridDescriptor((144, 144, 144)), 32)
FIG5_CORES = (1, 16, 64, 256, 512, 1024, 2048, 4096)

#: Fig 6/7 grid size (section VII-A: 192^3)
FIG67_GRID = GridDescriptor((192, 192, 192))
FIG6_CORES = (16, 64, 256, 512, 1024, 2048, 4096, 8192, 16384)
FIG7_JOB = FDJob(FIG67_GRID, 2816)
FIG7_CORES = (1024, 2048, 4096, 8192, 16384)


def table1(spec: MachineSpec = BGP_SPEC) -> list[tuple[str, str]]:
    """Table I: hardware description of a Blue Gene/P node."""
    return table1_rows(spec)


def fig2_rows(spec: MachineSpec = BGP_SPEC) -> list[BandwidthPoint]:
    """Fig 2: ping-pong bandwidth vs message size on the DES machine."""
    return measured_bandwidth_curve(spec=spec)


@dataclass(frozen=True)
class Fig5Row:
    n_cores: int
    #: speedup vs the one-core sequential run, per approach name
    speedups: dict[str, float]


def fig5_rows(
    batching: bool, spec: MachineSpec = BGP_SPEC, cores: tuple[int, ...] = FIG5_CORES
) -> list[Fig5Row]:
    """Fig 5 (left: batching disabled; right: batch-size 8)."""
    pm = PerformanceModel(spec)
    seq = pm.sequential_time(FIG5_JOB)
    rows = []
    for p in cores:
        speedups = {}
        for a in ALL_APPROACHES:
            if batching and not a.supports_batching and a is not FLAT_ORIGINAL:
                continue
            b = 8 if (batching and a.supports_batching) else 1
            t = pm.evaluate(FIG5_JOB, a, p, batch_size=b)
            speedups[a.name] = seq / t.total
        rows.append(Fig5Row(n_cores=p, speedups=speedups))
    return rows


@dataclass(frozen=True)
class Fig6Row:
    n_cores: int  # == number of grids (one grid per CPU-core)
    #: running time in seconds per approach (best batch-size)
    times: dict[str, float]
    #: inter-node MB per node for the flat and hybrid decompositions
    flat_comm_mb: float
    hybrid_comm_mb: float


def fig6_rows(
    spec: MachineSpec = BGP_SPEC,
    cores: tuple[int, ...] = FIG6_CORES,
    n_iterations: int = 1,
) -> list[Fig6Row]:
    """Fig 6: Gustafson graph, grids = cores, 192^3, best batch-size.

    ``n_iterations`` scales every time by a constant (the paper's absolute
    scale corresponds to repeated applications of the FD operation; the
    shape is iteration-count invariant).
    """
    pm = PerformanceModel(spec)
    rows = []
    for p in cores:
        job = FDJob(FIG67_GRID, p)
        times = {}
        for a in ALL_APPROACHES:
            t = (
                pm.best_batch_size(job, a, p)
                if a.supports_batching
                else pm.evaluate(job, a, p)
            )
            times[a.name] = t.total * n_iterations
        flat = pm.best_batch_size(job, FLAT_OPTIMIZED, p)
        hyb = pm.best_batch_size(job, HYBRID_MULTIPLE, p)
        rows.append(
            Fig6Row(
                n_cores=p,
                times=times,
                flat_comm_mb=flat.comm_bytes_per_node / 1e6 * n_iterations,
                hybrid_comm_mb=hyb.comm_bytes_per_node / 1e6 * n_iterations,
            )
        )
    return rows


@dataclass(frozen=True)
class Fig7Row:
    n_cores: int
    #: speedup relative to Flat original at 1024 cores, per approach
    speedups: dict[str, float]


def fig7_rows(
    spec: MachineSpec = BGP_SPEC, cores: tuple[int, ...] = FIG7_CORES
) -> list[Fig7Row]:
    """Fig 7: 2816-grid job, speedups vs Flat original at 1k cores."""
    pm = PerformanceModel(spec)
    base = pm.evaluate(FIG7_JOB, FLAT_ORIGINAL, cores[0]).total
    rows = []
    for p in cores:
        speedups = {}
        for a in ALL_APPROACHES:
            t = (
                pm.best_batch_size(FIG7_JOB, a, p)
                if a.supports_batching
                else pm.evaluate(FIG7_JOB, a, p)
            )
            speedups[a.name] = base / t.total
        rows.append(Fig7Row(n_cores=p, speedups=speedups))
    return rows


@dataclass(frozen=True)
class HeadlineNumbers:
    """Section VIII's summary numbers."""

    speedup_vs_original: float  # paper: 1.94 at 16384 cores
    utilization_original: float  # paper: 0.36
    utilization_hybrid: float  # paper: 0.70
    hybrid_vs_flat_optimized: float  # paper: ~1.10


def headline_numbers(spec: MachineSpec = BGP_SPEC) -> HeadlineNumbers:
    """Reproduce the conclusion's numbers at 16384 cores."""
    pm = PerformanceModel(spec)
    orig = pm.evaluate(FIG7_JOB, FLAT_ORIGINAL, 16384)
    hm = pm.best_batch_size(FIG7_JOB, HYBRID_MULTIPLE, 16384)
    opt = pm.best_batch_size(FIG7_JOB, FLAT_OPTIMIZED, 16384)
    return HeadlineNumbers(
        speedup_vs_original=orig.total / hm.total,
        utilization_original=orig.utilization,
        utilization_hybrid=hm.utilization,
        hybrid_vs_flat_optimized=opt.total / hm.total,
    )


def ablation_subgroups(
    spec: MachineSpec = BGP_SPEC, n_cores: int = 16384
) -> tuple[FDTiming, FDTiming]:
    """Section VII-A: Flat optimized with static sub-groups vs Hybrid multiple.

    The modified flat approach gives each of the node's four processes its
    own sub-group of whole grids on a node-level decomposition — exactly
    hybrid multiple's structure, minus threads.  We model it as hybrid
    multiple with the thread costs removed (no MULTIPLE lock, no
    spawn/join).  The paper found "its performance is identical with the
    Hybrid multiple"; the model should agree to within a few percent.

    Returns ``(subgroup_flat, hybrid_multiple)`` timings.
    """
    no_thread_cost = spec.with_(
        threads=spec.threads.__class__(
            mpi_multiple_overhead=0.0,
            barrier_time=spec.threads.barrier_time,
            join_time=0.0,
            spawn_time=0.0,
            mpi_call_cpu_time=spec.threads.mpi_call_cpu_time,
        )
    )
    subgroup = PerformanceModel(no_thread_cost).best_batch_size(
        FIG7_JOB, HYBRID_MULTIPLE, n_cores
    )
    hybrid = PerformanceModel(spec).best_batch_size(FIG7_JOB, HYBRID_MULTIPLE, n_cores)
    return subgroup, hybrid


def approaches_in_figure_order() -> list[Approach]:
    """The legend order the paper uses."""
    return list(ALL_APPROACHES)
