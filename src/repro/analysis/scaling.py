"""Scaling analysis: efficiency, iso-efficiency, and crossover finding.

Utilities answering the questions the paper's figures raise but do not
plot: at what point does hybrid multiple overtake flat optimized
(Fig 6's "at 512 CPU-cores" remark, generalized), how much work per core
does each approach need to sustain a target efficiency (iso-efficiency),
and how parallel efficiency decays along Fig 5/7's axes.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.approaches import Approach
from repro.core.perfmodel import FDJob, PerformanceModel
from repro.grid.grid import GridDescriptor
from repro.machine.spec import BGP_SPEC, MachineSpec


def parallel_efficiency(
    job: FDJob,
    approach: Approach,
    n_cores: int,
    pm: Optional[PerformanceModel] = None,
    batch_size: Optional[int] = None,
) -> float:
    """``T_seq / (P * T_par)`` — classic strong-scaling efficiency."""
    pm = pm or PerformanceModel()
    seq = pm.sequential_time(job)
    if batch_size is None:
        t = (
            pm.best_batch_size(job, approach, n_cores)
            if approach.supports_batching
            else pm.evaluate(job, approach, n_cores)
        )
    else:
        t = pm.evaluate(job, approach, n_cores, batch_size=batch_size)
    return seq / (n_cores * t.total)


def crossover_cores(
    job: FDJob,
    contender: Approach,
    incumbent: Approach,
    cores: Sequence[int] = (16, 64, 256, 512, 1024, 2048, 4096, 8192, 16384),
    spec: MachineSpec = BGP_SPEC,
) -> Optional[int]:
    """Smallest probed core count where ``contender`` beats ``incumbent``.

    Returns None if it never does within the probe set.  With grids =
    cores (the Fig 6 workload built per probe), hybrid multiple vs flat
    optimized reproduces the paper's 512-core remark.
    """
    pm = PerformanceModel(spec)
    for p in cores:
        probe_job = FDJob(job.grid, max(job.n_grids, 1))
        a = (
            pm.best_batch_size(probe_job, contender, p)
            if contender.supports_batching
            else pm.evaluate(probe_job, contender, p)
        )
        b = (
            pm.best_batch_size(probe_job, incumbent, p)
            if incumbent.supports_batching
            else pm.evaluate(probe_job, incumbent, p)
        )
        if a.total < b.total:
            return p
    return None


def gustafson_crossover(
    grid: GridDescriptor,
    contender: Approach,
    incumbent: Approach,
    cores: Sequence[int] = (16, 64, 256, 512, 1024, 2048, 4096, 8192, 16384),
    spec: MachineSpec = BGP_SPEC,
) -> Optional[int]:
    """Crossover under the Fig 6 workload (one grid per core)."""
    pm = PerformanceModel(spec)
    for p in cores:
        job = FDJob(grid, p)
        a = (
            pm.best_batch_size(job, contender, p)
            if contender.supports_batching
            else pm.evaluate(job, contender, p)
        )
        b = (
            pm.best_batch_size(job, incumbent, p)
            if incumbent.supports_batching
            else pm.evaluate(job, incumbent, p)
        )
        if a.total < b.total:
            return p
    return None


def isoefficiency_grids(
    grid: GridDescriptor,
    approach: Approach,
    n_cores: int,
    target_utilization: float,
    max_grids: int = 1 << 16,
    spec: MachineSpec = BGP_SPEC,
) -> Optional[int]:
    """Fewest grids sustaining ``target_utilization`` at ``n_cores``.

    Doubles the grid count until the model's utilization reaches the
    target, then bisects.  Returns None when even ``max_grids`` cannot
    reach it (a per-message/latency floor no amount of work amortizes).
    """
    if not 0 < target_utilization < 1:
        raise ValueError(
            f"target_utilization must be in (0, 1), got {target_utilization}"
        )
    pm = PerformanceModel(spec)

    def util(n_grids: int) -> float:
        job = FDJob(grid, n_grids)
        t = (
            pm.best_batch_size(job, approach, n_cores)
            if approach.supports_batching
            else pm.evaluate(job, approach, n_cores)
        )
        return t.utilization

    lo, hi = 1, 1
    while util(hi) < target_utilization:
        hi *= 2
        if hi > max_grids:
            return None
        lo = hi // 2
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if util(mid) >= target_utilization:
            hi = mid
        else:
            lo = mid
    return hi
