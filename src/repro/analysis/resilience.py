"""Checkpoint-cadence and MTBF analysis at paper scale.

The robustness layer (docs/ROBUSTNESS.md) makes a run *survive* faults;
this module answers the operations question that follows: **how often
should a 16384-core run checkpoint, and what does surviving cost?**

The model is Daly's first-order checkpoint optimum [Daly, FGCS 2006]:
for a checkpoint that takes ``delta`` seconds and a system mean time
between failures ``M``, the optimal checkpoint interval is

    tau_opt = sqrt(2 * delta * M)

and the fraction of wall time lost to resilience is approximately

    overhead = delta / tau      (writing checkpoints)
             + tau / (2 * M)    (lost work since the last checkpoint)
             + R / M            (restart time per failure)

System MTBF shrinks linearly with node count — the reason checkpointing
is existential at BG/P scale: a node MTBF of years becomes a system MTBF
of hours at 4096 nodes.

The sweep sizes the checkpoint itself from the same
:class:`~repro.core.perfmodel.FDJob` the performance model evaluates —
the SCF state the functional plane's
:class:`~repro.dft.checkpoint.SCFCheckpoint` actually saves (all wave
functions plus three density/potential fields), so the analytic cadence
and the functional checkpoint format describe the same data.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.perfmodel import FDJob
from repro.machine.spec import BGP_SPEC, MachineSpec

#: aggregate I/O bandwidth assumed for checkpoint dumps (bytes/s).  A
#: BG/P rack-scale GPFS installation sustained a few GB/s; the sweep
#: exposes this as a knob.
DEFAULT_IO_BANDWIDTH = 4e9

#: supervisor restart penalty (job relaunch + checkpoint read), seconds
DEFAULT_RESTART_TIME = 180.0


def optimal_checkpoint_interval(checkpoint_time: float, mtbf: float) -> float:
    """Daly's first-order optimum ``sqrt(2 * delta * M)`` (seconds)."""
    if checkpoint_time <= 0 or mtbf <= 0:
        raise ValueError("checkpoint_time and mtbf must be positive")
    return math.sqrt(2.0 * checkpoint_time * mtbf)


def resilience_overhead(
    interval: float,
    checkpoint_time: float,
    mtbf: float,
    restart_time: float = DEFAULT_RESTART_TIME,
) -> float:
    """Fraction of wall time lost to checkpoints, rework and restarts."""
    if interval <= 0 or mtbf <= 0:
        raise ValueError("interval and mtbf must be positive")
    return checkpoint_time / interval + interval / (2.0 * mtbf) + restart_time / mtbf


def checkpoint_bytes(job: FDJob, n_bands: int | None = None) -> float:
    """Size of one committed SCF checkpoint for ``job`` (bytes).

    Mirrors :data:`repro.dft.checkpoint.CHECKPOINT_FIELDS`: every band's
    interior (``job.n_grids`` wave functions unless ``n_bands`` is
    given) plus the density history and two potentials.
    """
    bands = job.n_grids if n_bands is None else n_bands
    field = job.grid.bytes_per_point * math.prod(job.grid.shape)
    return float((bands + 3) * field)


@dataclass(frozen=True)
class ResilienceRow:
    """One MTBF point of the cadence sweep."""

    node_mtbf_years: float
    system_mtbf_hours: float  # node MTBF / node count
    checkpoint_time: float  # seconds per dump
    interval: float  # Daly-optimal seconds between dumps
    iterations_per_checkpoint: float  # SCF iterations between dumps
    overhead: float  # fraction of wall time lost
    efficiency: float  # 1 / (1 + overhead)
    failures_per_day: float


def mtbf_sweep(
    job: FDJob,
    node_mtbf_years: tuple[float, ...] = (50.0, 10.0, 2.0, 0.5),
    n_cores: int = 16384,
    iteration_time: float | None = None,
    io_bandwidth: float = DEFAULT_IO_BANDWIDTH,
    restart_time: float = DEFAULT_RESTART_TIME,
    spec: MachineSpec = BGP_SPEC,
) -> list[ResilienceRow]:
    """Daly cadence sweep for ``job`` at ``n_cores`` (paper scale).

    ``iteration_time`` is the wall time of one SCF iteration (so the
    sweep can report the cadence in iterations); when omitted it is
    estimated as ~40 FD applications of the analytic model's best
    hybrid configuration — the paper's workload mix.
    """
    if n_cores < 4 or n_cores % 4:
        raise ValueError(f"n_cores must be a multiple of 4, got {n_cores}")
    n_nodes = n_cores // 4
    delta = checkpoint_bytes(job) / io_bandwidth
    if iteration_time is None:
        from repro.core.approaches import HYBRID_MULTIPLE
        from repro.core.perfmodel import PerformanceModel

        model = PerformanceModel(spec)
        fd = model.best_batch_size(job, HYBRID_MULTIPLE, n_cores)
        iteration_time = 40.0 * fd.total
    rows = []
    for years in node_mtbf_years:
        node_mtbf = years * 365.25 * 24 * 3600
        system_mtbf = node_mtbf / n_nodes
        tau = optimal_checkpoint_interval(delta, system_mtbf)
        over = resilience_overhead(tau, delta, system_mtbf, restart_time)
        rows.append(
            ResilienceRow(
                node_mtbf_years=years,
                system_mtbf_hours=system_mtbf / 3600.0,
                checkpoint_time=delta,
                interval=tau,
                iterations_per_checkpoint=tau / iteration_time,
                overhead=over,
                efficiency=1.0 / (1.0 + over),
                failures_per_day=86400.0 / system_mtbf,
            )
        )
    return rows


def format_mtbf_table(rows: list[ResilienceRow]) -> str:
    """The sweep as an aligned text table (benchmark-harness style)."""
    from repro.analysis.formatting import format_table

    return format_table(
        [
            "node MTBF (yr)",
            "system MTBF (h)",
            "dump (s)",
            "interval (s)",
            "iters/ckpt",
            "overhead",
            "efficiency",
            "fails/day",
        ],
        [
            [
                r.node_mtbf_years,
                r.system_mtbf_hours,
                r.checkpoint_time,
                r.interval,
                r.iterations_per_checkpoint,
                r.overhead,
                r.efficiency,
                r.failures_per_day,
            ]
            for r in rows
        ],
        title="Daly checkpoint cadence vs node MTBF",
    )
