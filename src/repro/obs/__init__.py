"""repro.obs — the unified telemetry plane.

One metrics registry and one span schema shared by all three execution
planes (real engine, DES simulation, analytic model), plus the exporters
that turn any plane's trace into Chrome-tracing JSON, an ASCII Gantt, or
the paper's compute/comm/sync utilization breakdown.  See
``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import (
    ascii_gantt,
    chrome_trace,
    diff_step_kinds,
    format_diff,
    format_metrics,
    format_utilization,
    parse_chrome_trace,
    utilization_report,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    log_spaced_buckets,
    resolve_registry,
)
from repro.obs.spans import (
    COMM_STEPS,
    COMPUTE_STEPS,
    SYNC_STEPS,
    SpanTracer,
    StepSpan,
    engine_hook,
    step_category,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "log_spaced_buckets",
    "resolve_registry",
    "StepSpan",
    "SpanTracer",
    "engine_hook",
    "step_category",
    "COMM_STEPS",
    "COMPUTE_STEPS",
    "SYNC_STEPS",
    "ascii_gantt",
    "chrome_trace",
    "parse_chrome_trace",
    "utilization_report",
    "format_utilization",
    "diff_step_kinds",
    "format_diff",
    "format_metrics",
]
