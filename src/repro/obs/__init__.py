"""repro.obs — the unified telemetry plane.

One metrics registry and one span schema shared by all three execution
planes (real engine, DES simulation, analytic model), plus the exporters
that turn any plane's trace into Chrome-tracing JSON, an ASCII Gantt, or
the paper's compute/comm/sync utilization breakdown.  On top of the raw
telemetry sits the attribution layer: critical-path blame buckets
(:mod:`repro.obs.critpath`), measured-vs-model drift detection
(:mod:`repro.obs.conformance`) and the crash-coupled flight recorder
(:mod:`repro.obs.flightrec`).  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.conformance import (
    CommDrift,
    ConformanceReport,
    LoadImbalance,
    PerfFinding,
    StragglerRank,
    check_conformance,
)
from repro.obs.critpath import (
    BLAME_BUCKETS,
    CriticalPathResult,
    blame_bucket,
    critical_path,
)
from repro.obs.export import (
    ascii_gantt,
    chrome_trace,
    diff_step_kinds,
    format_diff,
    format_metrics,
    format_utilization,
    parse_chrome_trace,
    utilization_report,
)
from repro.obs.flightrec import FlightRecorder, IterationRecord
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    log_spaced_buckets,
    resolve_registry,
)
from repro.obs.spans import (
    COMM_STEPS,
    COMPUTE_STEPS,
    SYNC_STEPS,
    SpanTracer,
    StepSpan,
    engine_hook,
    step_category,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "log_spaced_buckets",
    "resolve_registry",
    "StepSpan",
    "SpanTracer",
    "engine_hook",
    "step_category",
    "COMM_STEPS",
    "COMPUTE_STEPS",
    "SYNC_STEPS",
    "ascii_gantt",
    "chrome_trace",
    "parse_chrome_trace",
    "utilization_report",
    "format_utilization",
    "diff_step_kinds",
    "format_diff",
    "format_metrics",
    "BLAME_BUCKETS",
    "CriticalPathResult",
    "blame_bucket",
    "critical_path",
    "CommDrift",
    "ConformanceReport",
    "LoadImbalance",
    "PerfFinding",
    "StragglerRank",
    "check_conformance",
    "FlightRecorder",
    "IterationRecord",
]
