"""Trace exporters: Chrome tracing JSON, ASCII Gantt, utilization report.

Every consumer here takes "a trace" — a :class:`~repro.obs.spans
.SpanTracer` or any iterable of span-shaped objects (``resource`` /
``start`` / ``end``; :class:`~repro.obs.spans.StepSpan` adds the
schedule-IR tagging) — so real, simulated and modeled traces all export
through the same three views:

* :func:`chrome_trace` — the ``chrome://tracing`` / Perfetto JSON array
  format.  Step metadata rides in ``args`` at full float precision, so
  :func:`parse_chrome_trace` round-trips the exact span set (the ``ts``/
  ``dur`` microsecond fields are for the viewer, not the source of
  truth).
* :func:`ascii_gantt` — the terminal Gantt chart.  This is the *one*
  implementation; ``repro.des.trace.Tracer.gantt`` delegates here.
* :func:`utilization_report` — the paper's compute/comm/sync breakdown
  and utilization %, computable from any plane's trace (the acceptance
  check diffs a real-run report against the perfmodel's).
"""

from __future__ import annotations

import json
import re
from typing import Iterable, Optional, Union

from repro.obs.spans import SpanTracer, StepSpan, step_category

__all__ = [
    "ascii_gantt",
    "chrome_trace",
    "parse_chrome_trace",
    "utilization_report",
    "format_utilization",
    "diff_step_kinds",
    "format_diff",
    "format_metrics",
]

_RESOURCE_RE = re.compile(r"^rank(\d+)\.w(\d+)$")


def _as_spans(trace) -> list:
    if isinstance(trace, SpanTracer):
        return trace.spans()
    return list(trace)


def _sort_key(span) -> tuple:
    """Deterministic total order for any span shape (see des.trace.Span
    for why ``sorted(spans)`` alone is not deterministic)."""
    key = getattr(span, "sort_key", None)
    if key is not None:
        return key
    return (
        span.start,
        span.end,
        span.resource,
        getattr(span, "step_kind", getattr(span, "label", "")),
    )


# -- ASCII Gantt ---------------------------------------------------------------
def ascii_gantt(
    trace,
    width: int = 72,
    resources: Optional[Iterable[str]] = None,
    fill: str = "#",
    normalize: bool = False,
) -> str:
    """Render a trace as an ASCII Gantt chart.

    One row per resource, time flowing right; overlapping spans merge
    visually.  ``normalize=True`` shifts the time axis so the earliest
    span starts at zero — required for real-engine traces whose raw
    timestamps are ``time.perf_counter`` values (DES traces already
    start near zero, and ``des.trace.Tracer.gantt`` delegates here with
    the historical ``normalize=False``).
    """
    spans = _as_spans(trace)
    rows = (
        list(resources)
        if resources is not None
        else sorted({s.resource for s in spans})
    )
    t0 = min((s.start for s in spans), default=0.0) if normalize else 0.0
    total = max((s.end - t0 for s in spans), default=0.0)
    if total <= 0 or not rows:
        return "(empty trace)"
    name_w = max(len(r) for r in rows)
    by_resource: dict[str, list] = {r: [] for r in rows}
    for s in spans:
        if s.resource in by_resource:
            by_resource[s.resource].append(s)
    lines = []
    for r in rows:
        cells = [" "] * width
        for s in sorted(by_resource[r], key=_sort_key):
            lo = int((s.start - t0) / total * (width - 1))
            hi = max(lo, int((s.end - t0) / total * (width - 1)))
            for i in range(lo, hi + 1):
                cells[i] = fill
        lines.append(f"{r.rjust(name_w)} |{''.join(cells)}|")
    lines.append(f"{' ' * name_w} 0{'~'.center(width - 2)}{total:.3g}s")
    return "\n".join(lines)


# -- Chrome tracing JSON -------------------------------------------------------
def _pid_tid(resource: str, fallback: int) -> tuple[int, int]:
    """Map a resource name onto Chrome's (process, thread) rows.

    ``rank3.w1`` becomes pid 3 / tid 1 so the viewer groups workers under
    their rank; anything else gets its own process row.
    """
    m = _RESOURCE_RE.match(resource)
    if m:
        return int(m.group(1)), int(m.group(2))
    return 10_000 + fallback, 0


def chrome_trace(trace) -> dict:
    """Export a trace as ``chrome://tracing`` JSON (object format).

    Emits one complete ("X") event per span with microsecond ``ts``/
    ``dur`` relative to the earliest span, plus process/thread metadata
    naming the rows.  The exact raw ``start``/``end`` floats and all
    schedule-IR tags travel in ``args`` — :func:`parse_chrome_trace`
    rebuilds the span set from those, losslessly.
    """
    spans = sorted(_as_spans(trace), key=_sort_key)
    t0 = min((s.start for s in spans), default=0.0)
    resources = sorted({s.resource for s in spans})
    events: list[dict] = []
    config_hash = getattr(trace, "config_hash", None)
    if config_hash:
        # metadata event ("M"): parse_chrome_trace skips it, so the
        # span round-trip stays lossless while the file still names the
        # JobSpec configuration that produced it
        events.append(
            {
                "ph": "M",
                "name": "job_config",
                "pid": 0,
                "tid": 0,
                "args": {"config_hash": config_hash},
            }
        )
    pids: dict[str, tuple[int, int]] = {}
    for i, r in enumerate(resources):
        pid, tid = _pid_tid(r, i)
        pids[r] = (pid, tid)
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": r.split(".")[0]},
            }
        )
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": r},
            }
        )
    for s in spans:
        pid, tid = pids[s.resource]
        kind = getattr(s, "step_kind", getattr(s, "label", "span"))
        args = {
            "resource": s.resource,
            "start": s.start,
            "end": s.end,
            "plane": getattr(s, "plane", "real"),
            "worker": getattr(s, "worker", 0),
            "grid_ids": list(getattr(s, "grid_ids", ())),
        }
        for key in ("seq", "dim", "direction"):
            val = getattr(s, key, None)
            if val is not None:
                args[key] = val
        events.append(
            {
                "ph": "X",
                "name": kind,
                "cat": step_category(kind),
                "ts": (s.start - t0) * 1e6,
                "dur": (s.end - s.start) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def parse_chrome_trace(data: Union[dict, str]) -> list[StepSpan]:
    """Rebuild the exact :class:`StepSpan` set from Chrome-trace JSON.

    Inverse of :func:`chrome_trace` (metadata events are skipped); the
    spans come back in the exporter's deterministic sort order.
    """
    if isinstance(data, str):
        data = json.loads(data)
    events = data["traceEvents"] if isinstance(data, dict) else data
    spans: list[StepSpan] = []
    for ev in events:
        if ev.get("ph") != "X":
            continue
        args = ev["args"]
        spans.append(
            StepSpan(
                resource=args["resource"],
                step_kind=ev["name"],
                start=args["start"],
                end=args["end"],
                plane=args.get("plane", "real"),
                worker=args.get("worker", 0),
                grid_ids=tuple(args.get("grid_ids", ())),
                seq=args.get("seq"),
                dim=args.get("dim"),
                direction=args.get("direction"),
            )
        )
    return spans


# -- utilization report --------------------------------------------------------
def utilization_report(trace) -> dict:
    """The paper's compute/comm/sync breakdown from any plane's trace.

    Returns makespan, summed seconds per category and per step kind, and
    the Table-style percentages: each category's share of the total
    resource-time (``n_resources * makespan``).  ``utilization`` is the
    compute share — the figure the paper reports going 36% → 70%.
    """
    spans = _as_spans(trace)
    if not spans:
        return {
            "makespan": 0.0,
            "resources": [],
            "categories": {"compute": 0.0, "comm": 0.0, "sync": 0.0, "other": 0.0},
            "fractions": {"compute": 0.0, "comm": 0.0, "sync": 0.0, "other": 0.0},
            "idle": 0.0,
            "utilization": 0.0,
            "step_kinds": {},
        }
    t0 = min(s.start for s in spans)
    makespan = max(s.end for s in spans) - t0
    resources = sorted({s.resource for s in spans})
    categories = {"compute": 0.0, "comm": 0.0, "sync": 0.0, "other": 0.0}
    step_kinds: dict[str, float] = {}
    for s in spans:
        kind = getattr(s, "step_kind", getattr(s, "label", "span"))
        dur = s.end - s.start
        categories[step_category(kind)] += dur
        step_kinds[kind] = step_kinds.get(kind, 0.0) + dur
    wall = makespan * len(resources)  # total resource-time available
    fractions = {
        k: (v / wall if wall > 0 else 0.0) for k, v in categories.items()
    }
    busy = sum(categories.values())
    return {
        "makespan": makespan,
        "resources": resources,
        "categories": categories,
        "fractions": fractions,
        "idle": max(0.0, 1.0 - (busy / wall if wall > 0 else 0.0)),
        "utilization": fractions["compute"],
        "step_kinds": dict(sorted(step_kinds.items())),
    }


def format_utilization(report: dict, title: str = "utilization") -> str:
    """Render a :func:`utilization_report` as the paper-style table."""
    lines = [
        f"{title}: makespan {report['makespan']:.6g}s over "
        f"{len(report['resources'])} worker(s)"
    ]
    for cat in ("compute", "comm", "sync", "other"):
        secs = report["categories"][cat]
        if cat == "other" and secs == 0.0:
            continue
        lines.append(
            f"  {cat:>8}: {secs:10.6g}s  {report['fractions'][cat] * 100:6.2f}%"
        )
    lines.append(f"  {'idle':>8}: {'':>10}   {report['idle'] * 100:6.2f}%")
    lines.append(f"  utilization {report['utilization'] * 100:.2f}%")
    return "\n".join(lines)


# -- metrics snapshot ----------------------------------------------------------
def format_metrics(snapshot) -> str:
    """Render a registry snapshot (or a registry) as aligned text.

    Accepts a :class:`~repro.obs.metrics.MetricsRegistry` or the dict its
    ``snapshot()`` returns — the shape the CI artifact stores.
    """
    if hasattr(snapshot, "snapshot"):
        snapshot = snapshot.snapshot()

    def describe(entry: dict) -> str:
        labels = entry.get("labels") or {}
        if not labels:
            return entry["name"]
        inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        return f"{entry['name']}{{{inner}}}"

    lines: list[str] = []
    for c in snapshot.get("counters", ()):
        lines.append(f"counter    {describe(c):<44} {c['value']:.6g}")
    for g in snapshot.get("gauges", ()):
        lines.append(f"gauge      {describe(g):<44} {g['value']:.6g}")
    for h in snapshot.get("histograms", ()):
        count = h["count"]
        mean = h["sum"] / count if count else 0.0
        extremes = (
            f" min={h['min']:.6g} max={h['max']:.6g}" if count else ""
        )
        lines.append(
            f"histogram  {describe(h):<44} count={count} "
            f"sum={h['sum']:.6g} mean={mean:.6g}{extremes}"
        )
    return "\n".join(lines) if lines else "(no instruments)"


# -- cross-plane diffing -------------------------------------------------------
def diff_step_kinds(trace_a, trace_b) -> dict[str, dict]:
    """Per-step-kind time totals of two traces, with deltas.

    The ``repro trace --diff real:sim`` backend: both traces should come
    from the same compiled plan, so the step-kind *sets* match and the
    interesting output is where the time went differently (e.g. real
    ``WaitAll`` exceeding simulated — an un-modeled pipeline hole).
    """
    ka = _totals(trace_a)
    kb = _totals(trace_b)
    out: dict[str, dict] = {}
    for kind in sorted(set(ka) | set(kb)):
        a, b = ka.get(kind, 0.0), kb.get(kind, 0.0)
        out[kind] = {
            "a": a,
            "b": b,
            "delta": a - b,
            "ratio": (a / b) if b > 0 else None,
        }
    return out


def _totals(trace) -> dict[str, float]:
    out: dict[str, float] = {}
    for s in _as_spans(trace):
        kind = getattr(s, "step_kind", getattr(s, "label", "span"))
        out[kind] = out.get(kind, 0.0) + (s.end - s.start)
    return out


def format_diff(
    diff: dict[str, dict], name_a: str = "a", name_b: str = "b"
) -> str:
    """Render :func:`diff_step_kinds` as an aligned table."""
    lines = [
        f"{'step kind':<18} {name_a:>12} {name_b:>12} {'delta':>12} {'ratio':>8}"
    ]
    for kind, d in diff.items():
        ratio = f"{d['ratio']:.3f}" if d["ratio"] is not None else "-"
        lines.append(
            f"{kind:<18} {d['a']:>12.6g} {d['b']:>12.6g} "
            f"{d['delta']:>+12.6g} {ratio:>8}"
        )
    return "\n".join(lines)
