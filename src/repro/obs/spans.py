"""The unified span schema: one trace format for all three planes.

:mod:`repro.des.trace` gave the DES a ``Span`` of ``(resource, start,
end, label)`` — enough for a Gantt chart, but the label is free text, so
a real engine trace and a simulated trace of the *same compiled plan*
could not be compared mechanically.  This module fixes the schema to the
schedule IR: a :class:`StepSpan` names the **step kind**
(``PostSend``/``WaitAll``/``ComputeInterior``/...), the worker, the grid
batch, the exchange ``seq`` and the originating **plane** (``real``,
``sim`` or ``model``).  Because every plane interprets the same
:class:`~repro.core.schedule.SchedulePlan`, traces become diffable
step-for-step: same per-worker step-kind sequence, differing only in
timestamps.

Producers
---------

* real engine — :func:`engine_hook` adapts a :class:`SpanTracer` to the
  ``on_step`` callback of :meth:`repro.core.engine.DistributedStencil
  .apply`.
* DES — ``simulate_fd(..., step_tracer=...)`` records each replayed step
  at simulated time (:mod:`repro.core.simrun`).
* analytic model — :meth:`repro.core.perfmodel.PerformanceModel
  .step_trace` emits the representative worker's closed-form timeline.

Timestamps are stored **raw** (``time.perf_counter`` for real runs,
simulated seconds for the others); consumers normalize against
:meth:`SpanTracer.t0` so traces from different clocks align at zero.
Exporters live in :mod:`repro.obs.export`.

Unlike ``des.trace.Span``, :class:`StepSpan` deliberately does *not*
use ``order=True`` — see the ordering pitfall documented there; sorting
goes through the explicit :attr:`StepSpan.sort_key`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

__all__ = [
    "COMM_STEPS",
    "COMPUTE_STEPS",
    "SYNC_STEPS",
    "StepSpan",
    "SpanTracer",
    "engine_hook",
    "step_category",
]

#: step kinds whose time is halo-exchange communication
COMM_STEPS = frozenset({"PostSend", "PostRecv", "WaitAll", "RingSendRecv"})
#: step kinds whose time is stencil computation (incl. ghost finalization)
COMPUTE_STEPS = frozenset(
    {"ComputeInterior", "ComputeBoundary", "ApplyLocalWraps", "PartialGemm"}
)
#: step kinds whose time is synchronization (barriers, thread spawn/join)
SYNC_STEPS = frozenset({"GridBarrier", "JoinBarrier"})


def step_category(step_kind: str) -> str:
    """The paper's breakdown bucket of one step kind.

    ``comm`` / ``compute`` / ``sync`` for schedule-IR steps, ``other``
    for free-text labels recorded through the legacy interface.
    """
    if step_kind in COMM_STEPS:
        return "comm"
    if step_kind in COMPUTE_STEPS:
        return "compute"
    if step_kind in SYNC_STEPS:
        return "sync"
    return "other"


@dataclass(frozen=True)
class StepSpan:
    """One schedule-IR step execution on one plane.

    ``seq``/``dim``/``direction`` are ``None`` for compute/barrier steps;
    ``grid_ids`` is empty for steps without a grid batch.  Equality is
    full-field equality, which is what the round-trip tests rely on.
    """

    resource: str  # e.g. "rank3.w1"
    step_kind: str  # schedule-IR type name, or a free label
    start: float
    end: float
    plane: str = "real"  # "real" | "sim" | "model"
    worker: int = 0
    grid_ids: tuple[int, ...] = ()
    seq: Optional[int] = None
    dim: Optional[int] = None
    direction: Optional[int] = None  # +1 / -1 halo step

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(
                f"span ends before it starts: {self.start}..{self.end}"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def category(self) -> str:
        return step_category(self.step_kind)

    @property
    def sort_key(self) -> tuple:
        """Total, deterministic ordering (exporters sort by this)."""
        return (
            self.start,
            self.end,
            self.resource,
            self.step_kind,
            self.worker,
            -1 if self.seq is None else self.seq,
            self.grid_ids,
        )

    def label(self) -> str:
        """Short human-readable tag (Gantt rows, diff reports)."""
        out = self.step_kind
        if self.grid_ids:
            gids = ",".join(str(g) for g in self.grid_ids)
            out += f" g{gids}"
        if self.seq is not None:
            out += f" seq{self.seq}"
        return out


class SpanTracer:
    """Collects :class:`StepSpan`\\ s from concurrently running workers.

    One tracer spans a whole run — the in-process transport executes
    ranks on threads, and all of them record here, so mutation is
    lock-protected.  Per-resource ordering is *insertion* ordering: each
    worker records its own steps sequentially, so filtering by resource
    yields that worker's true execution order even when zero-duration
    steps share a timestamp (sorting by time could not break those ties).
    """

    def __init__(
        self, plane: str = "real", config_hash: Optional[str] = None
    ) -> None:
        self.plane = plane
        #: :meth:`repro.core.jobspec.JobSpec.config_hash` of the run that
        #: produced this trace; producers fill it in when they know the
        #: spec (``DistributedSCF.run``, ``step_trace_for``), exporters
        #: carry it so any artifact traces back to its configuration
        self.config_hash = config_hash
        self._lock = threading.Lock()
        # StepSpan objects interleaved with raw (resource, step, worker,
        # start, end) tuples; record_step defers StepSpan construction so
        # the enabled hot path is one lock + one append (the bench gate's
        # <3% budget), and _materialize builds the dataclasses on first
        # query.
        self._entries: list = []

    # -- recording ---------------------------------------------------------
    def add(self, span: StepSpan) -> None:
        with self._lock:
            self._entries.append(span)

    def record_step(
        self,
        resource: str,
        step,
        worker: int,
        start: float,
        end: float,
    ) -> None:
        """Record one executed schedule-IR step.

        ``step`` is any :data:`repro.core.schedule.Step`; the optional
        attributes are picked up with ``getattr`` so every step type maps
        onto the one schema (mirroring ``engine._step_info``).  The step
        object is stored as-is and converted to a :class:`StepSpan`
        lazily — schedule steps are immutable, so deferral is safe.
        """
        if end < start:
            raise ValueError(f"span ends before it starts: {start}..{end}")
        with self._lock:
            self._entries.append((resource, step, worker, start, end))

    def extend_steps(self, records: Iterable[tuple]) -> None:
        """Bulk-append ``(resource, step, worker, start, end)`` rows.

        One lock acquisition for a whole engine-side buffer; the iterable's
        order becomes the insertion order (the per-resource invariant
        :meth:`step_sequence` relies on).  Rows are validated like
        :meth:`record_step`.
        """
        rows = list(records)
        for r in rows:
            if r[4] < r[3]:
                raise ValueError(f"span ends before it starts: {r[3]}..{r[4]}")
        with self._lock:
            self._entries.extend(rows)

    def record(
        self, resource: str, start: float, end: float, label: str = ""
    ) -> None:
        """Legacy ``des.trace.Tracer``-shaped entry point (free label)."""
        self.add(
            StepSpan(
                resource=resource,
                step_kind=label or "span",
                start=start,
                end=end,
                plane=self.plane,
            )
        )

    def _materialize(self) -> list[StepSpan]:
        """Replace raw records with built spans, in place, under the lock."""
        entries = self._entries
        for i, e in enumerate(entries):
            if type(e) is tuple:
                resource, step, worker, start, end = e
                gid = getattr(step, "grid_id", None)
                grid_ids = getattr(
                    step, "grid_ids", (gid,) if gid is not None else ()
                )
                entries[i] = StepSpan(
                    resource=resource,
                    step_kind=type(step).__name__,
                    start=start,
                    end=end,
                    plane=self.plane,
                    worker=worker,
                    grid_ids=tuple(grid_ids),
                    seq=getattr(step, "seq", None),
                    dim=getattr(step, "dim", None),
                    direction=getattr(step, "step", None),
                )
        return list(entries)

    def drain(self) -> list[StepSpan]:
        """Materialize, return and remove every recorded span.

        The flight recorder's rotation primitive: hooks created by
        :func:`engine_hook` keep a reference to this tracer, so windowing
        must empty the tracer in place rather than swap it out.
        """
        with self._lock:
            out = self._materialize()
            self._entries = []
            return out

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def spans(self, resource: Optional[str] = None) -> list[StepSpan]:
        """All spans in insertion order, optionally for one resource."""
        with self._lock:
            spans = self._materialize()
        if resource is None:
            return spans
        return [s for s in spans if s.resource == resource]

    def resources(self) -> list[str]:
        return sorted({s.resource for s in self.spans()})

    def t0(self) -> float:
        """Earliest timestamp — the zero point for normalization."""
        return min((s.start for s in self.spans()), default=0.0)

    def makespan(self) -> float:
        """Last end minus first start (0 for an empty trace)."""
        spans = self.spans()
        if not spans:
            return 0.0
        return max(s.end for s in spans) - min(s.start for s in spans)

    def busy_time(self, resource: str) -> float:
        """Non-overlapping busy time of one resource."""
        total = 0.0
        last_end = float("-inf")
        for s in sorted(self.spans(resource), key=lambda s: s.sort_key):
            start = max(s.start, last_end)
            if s.end > start:
                total += s.end - start
                last_end = s.end
            else:
                last_end = max(last_end, s.end)
        return total

    def utilization(self, resource: str) -> float:
        """Busy fraction of one resource over the makespan."""
        total = self.makespan()
        return 0.0 if total <= 0 else self.busy_time(resource) / total

    def step_kinds(self) -> dict[str, float]:
        """Total seconds per step kind, across all resources."""
        out: dict[str, float] = {}
        for s in self.spans():
            out[s.step_kind] = out.get(s.step_kind, 0.0) + s.duration
        return out

    def step_sequence(self) -> dict[str, list[str]]:
        """Per-resource ordered step-kind lists — the cross-plane invariant.

        Two traces of the same compiled plan (any planes) must agree on
        this exactly; only the timestamps differ.
        """
        out: dict[str, list[str]] = {}
        for s in self.spans():
            out.setdefault(s.resource, []).append(s.step_kind)
        return out


def engine_hook(
    tracer: SpanTracer, rank: int, worker_prefix: str = "rank"
) -> Callable:
    """An ``on_step`` hook recording real engine steps into ``tracer``.

    Resource naming matches :func:`repro.core.schedule.tracer_hook`
    (``rank{rank}.w{worker}``) so real, simulated and modeled traces of
    the same plan line up row-for-row.  Unlike ``tracer_hook``, one
    :class:`SpanTracer` serves *all* ranks of a run (it is thread-safe),
    and timestamps stay raw — ``time.perf_counter`` is one clock across
    the rank threads, so spans are globally aligned and normalization
    happens at export time.
    """

    names: dict[int, str] = {}

    def hook(step, worker: int, start: float, end: float) -> None:
        resource = names.get(worker)
        if resource is None:
            resource = names[worker] = f"{worker_prefix}{rank}.w{worker}"
        tracer.record_step(resource, step, worker, start, end)

    return hook
