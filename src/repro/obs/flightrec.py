"""Crash-coupled flight recorder: the last K iterations, always on hand.

Post-mortem analysis of a dead run needs the telemetry *leading up to*
the death, but tracing a whole long SCF run to keep the last few
iterations is wasteful.  The :class:`FlightRecorder` keeps a bounded
ring buffer instead: at every iteration boundary it drains its
:class:`~repro.obs.spans.SpanTracer` (one lock + list swap) and
snapshots counter deltas from the metrics registry, appending an
:class:`IterationRecord` to a ``deque(maxlen=K)``.  Steady-state cost
is the span recording itself — the same hook a plain tracer uses — plus
one drain per iteration; the bench gate in ``tools/bench_report.py``
pins the overhead under 3%.

On a crash (:class:`~repro.transport.supervisor.CrashReport`) or a
fatal degradation, :meth:`FlightRecorder.dump` turns the window into a
self-contained JSON artifact: the Chrome trace of the buffered spans
(round-trips :func:`~repro.obs.export.parse_chrome_trace`), the
critical-path blame summary, per-iteration metric deltas and the
formatted crash report.  ``DistributedSCF.run(flight_recorder=...)``
feeds the recorder; :class:`~repro.dft.recovery.RecoveryController`
dumps it automatically on every crash and before declaring a
degradation fatal.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.export import chrome_trace
from repro.obs.critpath import critical_path
from repro.obs.metrics import resolve_registry
from repro.obs.spans import SpanTracer, StepSpan

__all__ = ["FlightRecorder", "IterationRecord"]


@dataclass
class IterationRecord:
    """One iteration's worth of buffered telemetry."""

    iteration: int
    spans: list[StepSpan] = field(default_factory=list)
    #: counter name (with labels) -> increase during this iteration
    metric_deltas: dict[str, float] = field(default_factory=dict)


class FlightRecorder:
    """Bounded ring buffer of recent iterations' spans + metric deltas.

    ``capacity`` is the window K (iterations).  The recorder owns one
    :class:`SpanTracer` (:attr:`tracer`) which producers record into —
    pass it as the ``step_tracer`` of a run, or let
    ``DistributedSCF.run`` wire it when given a ``flight_recorder``.
    ``metrics`` is the registry whose *counters* are delta-snapshotted
    each iteration (``NULL_REGISTRY`` when omitted — deltas stay empty).
    """

    def __init__(
        self,
        capacity: int = 8,
        plane: str = "real",
        metrics=None,
        config_hash: Optional[str] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.metrics = resolve_registry(metrics)
        self.tracer = SpanTracer(plane=plane, config_hash=config_hash)
        self._window: deque[IterationRecord] = deque(maxlen=capacity)
        self._last_counters: dict[str, float] = {}

    # -- recording ---------------------------------------------------------
    @property
    def config_hash(self) -> Optional[str]:
        return self.tracer.config_hash

    @config_hash.setter
    def config_hash(self, value: Optional[str]) -> None:
        self.tracer.config_hash = value

    def _counter_values(self) -> dict[str, float]:
        out: dict[str, float] = {}
        if not self.metrics.enabled:
            return out
        for entry in self.metrics.snapshot().get("counters", ()):
            labels = entry.get("labels") or {}
            key = entry["name"]
            if labels:
                key += "{" + ",".join(
                    f"{k}={v}" for k, v in sorted(labels.items())
                ) + "}"
            out[key] = entry["value"]
        return out

    def mark_iteration(self, iteration: int) -> IterationRecord:
        """Rotate the window at an iteration boundary.

        Drains every span recorded since the previous mark and snapshots
        counter increases; the oldest record falls off when the window
        is full.  Call once per iteration from the coordinating rank.
        """
        counters = self._counter_values()
        deltas = {
            key: value - self._last_counters.get(key, 0.0)
            for key, value in counters.items()
            if value != self._last_counters.get(key, 0.0)
        }
        self._last_counters = counters
        record = IterationRecord(
            iteration=iteration,
            spans=self.tracer.drain(),
            metric_deltas=deltas,
        )
        self._window.append(record)
        return record

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._window)

    @property
    def window(self) -> list[IterationRecord]:
        return list(self._window)

    def spans(self) -> list[StepSpan]:
        """All buffered spans plus any not yet rotated, in record order."""
        out: list[StepSpan] = []
        for record in self._window:
            out.extend(record.spans)
        out.extend(self.tracer.spans())
        return out

    # -- dumping -----------------------------------------------------------
    def dump(self, reason: str, crash_report=None, plan=None) -> dict:
        """The post-mortem artifact: JSON-ready, self-contained.

        ``trace`` round-trips :func:`~repro.obs.export
        .parse_chrome_trace`; ``critical_path`` is the blame summary of
        the whole buffered window; ``crash_report`` (optional) is a
        :class:`~repro.transport.supervisor.CrashReport` embedded as its
        formatted text plus the failure coordinates.
        """
        spans = self.spans()
        tracer = SpanTracer(
            plane=self.tracer.plane, config_hash=self.tracer.config_hash
        )
        for s in spans:
            tracer.add(s)
        cp = critical_path(spans, plan=plan) if spans else None
        out = {
            "reason": reason,
            "config_hash": self.tracer.config_hash,
            "capacity": self.capacity,
            "iterations": [r.iteration for r in self._window],
            "metric_deltas": {
                str(r.iteration): r.metric_deltas for r in self._window
            },
            "trace": chrome_trace(tracer),
            "critical_path": cp.summary() if cp is not None else None,
        }
        if crash_report is not None:
            out["crash_report"] = {
                "failed_rank": crash_report.failed_rank,
                "error_type": crash_report.error_type,
                "transient": crash_report.transient,
                "text": crash_report.format(),
            }
        return out
