"""A lock-aware metrics registry shared by every execution plane.

The paper's headline claims are observability claims: attributing
wall-time and message traffic to compute vs. halo exchange vs.
synchronization per rank.  Before this module each subsystem grew its own
ad-hoc counters (``TransportStats`` in the transports, ``FaultPlan``
event lists, per-test tallies); this registry gives them one shared
currency:

* :class:`Counter` — monotonically increasing total (messages, bytes,
  injected faults, supervisor retries).
* :class:`Gauge` — last-written value (SCF residual, band energy).
* :class:`Histogram` — counts over **fixed log-spaced buckets**
  (checkpoint deposit latency, backoff sleeps).  Fixed buckets make
  snapshots mergeable across ranks and runs — the Prometheus contract.

Instruments are identified by ``(name, labels)``; asking the registry for
the same identity twice returns the *same* instrument, so a per-rank
``TransportStats`` view and a snapshot consumer observe one counter, not
two copies.  All mutation is lock-protected (the in-process transport's
rank threads increment concurrently); reads take the same lock, so a
snapshot taken mid-run is internally consistent per instrument.

**Disabled telemetry must cost nothing.**  :data:`NULL_REGISTRY` is a
:class:`NullRegistry` whose instruments are shared no-op singletons —
``inc``/``set``/``observe`` are empty methods, and the registry hands the
same objects back without allocation.  Code paths take a registry
parameter defaulting to ``None``-means-null and never branch on
enabledness themselves; the overhead gate in ``tools/bench_report.py``
pins the enabled-path cost on the stencil hot loop to <3%.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from typing import Iterable, Optional, Sequence, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "log_spaced_buckets",
    "resolve_registry",
]

LabelValue = Union[str, int]


def _label_key(labels: dict) -> tuple:
    """Canonical, hashable identity of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def log_spaced_buckets(
    lo: float = 1e-6, hi: float = 1e3, per_decade: int = 3
) -> tuple[float, ...]:
    """Fixed log-spaced histogram bucket upper bounds.

    ``per_decade`` bounds per factor of ten from ``lo`` to ``hi``
    inclusive; every histogram sharing the same parameters has mergeable
    buckets (the reason the buckets are fixed rather than adaptive).
    """
    if not (lo > 0 and hi > lo):
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    n = int(round(math.log10(hi / lo) * per_decade))
    bounds = [lo * 10 ** (i / per_decade) for i in range(n + 1)]
    return tuple(bounds)


class _Instrument:
    """Base: name + labels + a lock shared with the owning registry."""

    __slots__ = ("name", "labels", "_lock")

    kind = "instrument"

    def __init__(
        self, name: str, labels: Optional[dict] = None,
        lock: Optional[threading.Lock] = None,
    ):
        self.name = name
        self.labels = dict(labels or {})
        self._lock = lock if lock is not None else threading.Lock()

    def describe(self) -> str:
        if not self.labels:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in sorted(self.labels.items()))
        return f"{self.name}{{{inner}}}"


class Counter(_Instrument):
    """A monotonically increasing total (thread-safe)."""

    __slots__ = ("_value",)

    kind = "counter"

    def __init__(self, name: str = "", labels=None, lock=None):
        super().__init__(name, labels, lock)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got inc({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"name": self.name, "labels": self.labels, "value": self.value}


class Gauge(_Instrument):
    """Last-written value (thread-safe)."""

    __slots__ = ("_value",)

    kind = "gauge"

    def __init__(self, name: str = "", labels=None, lock=None):
        super().__init__(name, labels, lock)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def snapshot(self) -> dict:
        return {"name": self.name, "labels": self.labels, "value": self.value}


class Histogram(_Instrument):
    """Counts over fixed log-spaced buckets (thread-safe).

    ``bounds[i]`` is the inclusive upper edge of bucket ``i``; one
    overflow bucket catches everything above the last bound.  ``count``,
    ``sum``, ``min`` and ``max`` ride along so snapshots can report means
    and extremes without keeping samples.
    """

    __slots__ = ("bounds", "_counts", "_count", "_sum", "_min", "_max")

    kind = "histogram"

    def __init__(
        self, name: str = "", labels=None, lock=None,
        bounds: Optional[Sequence[float]] = None,
    ):
        super().__init__(name, labels, lock)
        b = tuple(bounds) if bounds is not None else log_spaced_buckets()
        if list(b) != sorted(b) or len(set(b)) != len(b):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = b
        self._counts = [0] * (len(b) + 1)  # +1: overflow bucket
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        # bisect_left keeps bounds[i] an *inclusive* upper edge (the
        # Prometheus ``le`` contract): observe(bounds[i]) lands in bucket i.
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> list[int]:
        """Per-bucket counts (last entry is the overflow bucket)."""
        with self._lock:
            return list(self._counts)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "name": self.name,
                "labels": self.labels,
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "bounds": list(self.bounds),
                "buckets": list(self._counts),
            }


class MetricsRegistry:
    """Identity-keyed home of every instrument of one run.

    ``counter``/``gauge``/``histogram`` create on first request and
    return the existing instrument on every later request with the same
    ``(name, labels)`` — callers cache the reference and pay only the
    instrument's own lock per update.  A single registry is meant to span
    all subsystems of a run (transports, checkpoint stores, SCF loop),
    so one :meth:`snapshot` is the whole run's telemetry.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple, _Instrument] = {}

    def _get(self, cls, name: str, labels: dict, **kwargs) -> _Instrument:
        if not name:
            raise ValueError("instrument name must be non-empty")
        key = (cls.kind, name, _label_key(labels))
        with self._lock:
            inst = self._instruments.get(key)
            if inst is None:
                inst = cls(name, labels, **kwargs)
                self._instruments[key] = inst
            elif not isinstance(inst, cls):  # pragma: no cover - defensive
                raise TypeError(
                    f"{name} already registered as {type(inst).__name__}"
                )
            return inst

    def counter(self, name: str, **labels: LabelValue) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: LabelValue) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None,
        **labels: LabelValue,
    ) -> Histogram:
        return self._get(Histogram, name, labels, bounds=bounds)

    def instruments(self) -> list[_Instrument]:
        with self._lock:
            return list(self._instruments.values())

    def value(self, name: str, **labels: LabelValue) -> float:
        """Current value of one counter/gauge (0 if never created)."""
        key_c = ("counter", name, _label_key(labels))
        key_g = ("gauge", name, _label_key(labels))
        with self._lock:
            inst = self._instruments.get(key_c) or self._instruments.get(key_g)
        return inst.value if inst is not None else 0.0

    def total(self, name: str) -> float:
        """Sum of one counter name across all label sets (e.g. all ranks)."""
        return sum(
            i.value for i in self.instruments()
            if i.kind == "counter" and i.name == name
        )

    def snapshot(self) -> dict:
        """JSON-ready dump of every instrument, grouped by kind."""
        out: dict[str, list] = {"counters": [], "gauges": [], "histograms": []}
        for inst in sorted(self.instruments(), key=lambda i: i.describe()):
            out[inst.kind + "s"].append(inst.snapshot())
        return out

    def clear(self) -> None:
        with self._lock:
            self._instruments.clear()


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullRegistry(MetricsRegistry):
    """The disabled registry: shared no-op singletons, no allocation.

    Instrumented code takes this by default and calls ``inc``/``set``/
    ``observe`` unconditionally — the no-op method call is the entire
    disabled-path cost (the property the bench gate measures).
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._counter = _NullCounter("null")
        self._gauge = _NullGauge("null")
        self._histogram = _NullHistogram("null")

    def counter(self, name: str, **labels: LabelValue) -> Counter:
        return self._counter

    def gauge(self, name: str, **labels: LabelValue) -> Gauge:
        return self._gauge

    def histogram(self, name=None, bounds=None, **labels) -> Histogram:
        return self._histogram

    def instruments(self) -> list[_Instrument]:
        return []

    def snapshot(self) -> dict:
        return {"counters": [], "gauges": [], "histograms": []}


#: the shared disabled registry — the default of every ``metrics`` param
NULL_REGISTRY = NullRegistry()


def resolve_registry(metrics: Optional[MetricsRegistry]) -> MetricsRegistry:
    """The registry a ``metrics=None`` parameter resolves to (the null)."""
    return metrics if metrics is not None else NULL_REGISTRY
