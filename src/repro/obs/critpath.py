"""Critical-path attribution over schedule-step traces.

The telemetry plane records *what ran when* (:mod:`repro.obs.spans`);
this module answers *what bound the finish time*.  It reconstructs the
dependency DAG of a trace's :class:`~repro.obs.spans.StepSpan`\\ s —
program order within each worker resource, send→wait message edges and
ring-stage edges across resources — walks the critical path backwards
from the last-ending span, and partitions the whole wall time into typed
**blame buckets**:

``interior_compute``
    ``ComputeInterior``/``PartialGemm`` time on the path — the useful
    work bound.
``boundary_compute``
    ``ComputeBoundary``/``ApplyLocalWraps`` (ghost finalization) time.
``exposed_comm``
    Send/receive/wait time the schedule failed to hide.
``wait_imbalance``
    Idle gaps on the path — time no traced step covered (scheduling
    slack, untraced work between steps).
``barrier_skew``
    ``GridBarrier``/``JoinBarrier`` time (thread sync and spawn/join).
``other``
    Free-label spans recorded through the legacy interface.

The bucket totals partition the makespan *exactly* (the float residual
of the telescoping segment sum — a few ulps — is folded into the largest
bucket), which is what lets per-bucket fractions be read as "share of
the iteration".

Straggler identification uses the whole DAG, not just the path: every
``WaitAll`` *blocked* past its arrival by a producer on another rank (a
late remote ``PostSend`` or ring stage) charges the blocked seconds to
the producer's rank in :attr:`CriticalPathResult.imbalance_by_rank` —
the rank with the largest charge is the straggler.  In a balanced run
sends post long before the matching waits release, so the charges are
≈ 0; a delayed rank shows up whether or not the path routes through the
blocked wait.

Cross-resource edges need to know which peer each receive comes from.
Pass the compiled plan (:class:`~repro.core.schedule.SchedulePlan` or
:class:`~repro.core.schedule.BandSchedulePlan`) and the edges resolve
through :func:`~repro.core.schedule.recv_sources` — exact.  Without a
plan, a wait's producer is matched among *all* same-tag sends on other
resources (the latest one ending by the wait's end), which is correct
for symmetric plans and degrades gracefully to program order only.

The same code runs on all three planes: real-engine traces, DES traces
(``simulate_fd(..., step_tracer=...)``) and the model's reconstructed
timeline (:meth:`~repro.core.perfmodel.PerformanceModel.step_trace`,
single resource, where the path is the whole sequential walk and the
buckets reproduce the model's own compute/comm/sync split).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from repro.obs.spans import SpanTracer, StepSpan

__all__ = [
    "BLAME_BUCKETS",
    "CriticalPathResult",
    "blame_bucket",
    "critical_path",
    "owner_of_resource",
    "plan_for_spec",
]

#: the typed blame buckets, in report order
BLAME_BUCKETS = (
    "interior_compute",
    "boundary_compute",
    "exposed_comm",
    "wait_imbalance",
    "barrier_skew",
    "other",
)

_BUCKET_OF = {
    "ComputeInterior": "interior_compute",
    "PartialGemm": "interior_compute",
    "ComputeBoundary": "boundary_compute",
    "ApplyLocalWraps": "boundary_compute",
    "PostSend": "exposed_comm",
    "PostRecv": "exposed_comm",
    "WaitAll": "exposed_comm",
    "RingSendRecv": "exposed_comm",
    "GridBarrier": "barrier_skew",
    "JoinBarrier": "barrier_skew",
}


def blame_bucket(step_kind: str) -> str:
    """The blame bucket a step kind's critical-path time lands in."""
    return _BUCKET_OF.get(step_kind, "other")


#: leading owner token of a resource name: ``rank3.w1`` -> 3,
#: ``bg1.rank0.w0`` -> 1 (the band group — the unit ring edges connect)
_OWNER_RE = re.compile(r"^(?:bg|rank)(\d+)")


def owner_of_resource(resource: str) -> Optional[int]:
    """The rank (FD traces) or band group (ring traces) of a resource."""
    m = _OWNER_RE.match(resource)
    return int(m.group(1)) if m else None


@dataclass
class CriticalPathResult:
    """One trace's critical path and its blame attribution."""

    #: trace makespan (== critical-path length == sum of the buckets)
    wall_time: float
    #: bucket -> seconds; partitions :attr:`wall_time` exactly
    buckets: dict[str, float]
    #: the spans on the critical path, in time order
    path: list[StepSpan] = field(default_factory=list)
    #: rank/group -> critical-path seconds executed there (incl. gaps)
    by_rank: dict[int, float] = field(default_factory=dict)
    #: rank/group -> seconds *other* ranks spent blocked waiting on it,
    #: summed over every wait in the trace (not only path waits)
    imbalance_by_rank: dict[int, float] = field(default_factory=dict)
    #: spans examined (path + off-path)
    n_spans: int = 0

    @property
    def straggler(self) -> Optional[int]:
        """The rank causing the most blocked waiting (None if nobody)."""
        if not self.imbalance_by_rank:
            return None
        rank, blocked = max(
            self.imbalance_by_rank.items(), key=lambda kv: kv[1]
        )
        return rank if blocked > 0.0 else None

    def fraction(self, bucket: str) -> float:
        return (
            self.buckets.get(bucket, 0.0) / self.wall_time
            if self.wall_time > 0
            else 0.0
        )

    def format(self) -> str:
        """Aligned blame table + straggler line (CLI, flight dumps)."""
        lines = [
            f"critical path: {self.wall_time:.6g} s over "
            f"{len(self.path)} steps ({self.n_spans} spans)",
            f"  {'bucket':<18} {'seconds':>12} {'share':>7}",
        ]
        for b in BLAME_BUCKETS:
            sec = self.buckets.get(b, 0.0)
            if sec == 0.0 and b == "other":
                continue
            lines.append(f"  {b:<18} {sec:>12.6g} {self.fraction(b):>6.1%}")
        for rank in sorted(self.by_rank):
            extra = ""
            blocked = self.imbalance_by_rank.get(rank, 0.0)
            if blocked > 0:
                extra = f"  (peers blocked on it {blocked:.6g} s)"
            lines.append(
                f"  rank {rank}: {self.by_rank[rank]:.6g} s on path{extra}"
            )
        s = self.straggler
        if s is not None:
            lines.append(f"  straggler: rank {s}")
        return "\n".join(lines)

    def summary(self) -> dict:
        """JSON-ready digest (flight-recorder dumps embed this)."""
        return {
            "wall_time": self.wall_time,
            "buckets": dict(self.buckets),
            "by_rank": {str(k): v for k, v in sorted(self.by_rank.items())},
            "imbalance_by_rank": {
                str(k): v for k, v in sorted(self.imbalance_by_rank.items())
            },
            "straggler": self.straggler,
            "path_steps": len(self.path),
            "n_spans": self.n_spans,
        }


def plan_for_spec(spec):
    """The compiled FD :class:`~repro.core.schedule.SchedulePlan` a
    :class:`~repro.core.jobspec.JobSpec`'s traces executed.

    Mirrors the DES runner's compilation (same halo width and timing-
    plane worker count), so traces produced by ``simulate_spec`` or the
    real engine resolve their cross-rank edges exactly.
    """
    from repro.core.schedule import compile_schedule, timing_plane_workers
    from repro.grid.decompose import Decomposition

    approach = spec.approach_obj()
    group_job = spec.group_job()
    group_cores = spec.group_cores
    decomp = Decomposition(
        group_job.grid, approach.domains_for(group_cores)
    )
    return compile_schedule(
        approach,
        decomp,
        group_job.n_grids,
        spec.layout.batch_size,
        spec.layout.ramp_up,
        n_workers=timing_plane_workers(approach, group_cores),
    )


def _empty_result() -> CriticalPathResult:
    return CriticalPathResult(
        wall_time=0.0, buckets={b: 0.0 for b in BLAME_BUCKETS}
    )


def _cross_edges(
    by_resource: dict[str, list[StepSpan]],
    plan,
) -> dict[int, list[StepSpan]]:
    """``id(wait span) -> producer spans`` for every wait in the trace.

    Producers are matched by tag: a ``WaitAll(seq)`` completes the
    ``PostRecv(seq, dim, dir)``\\ s (or ring stages) posted before it on
    the same resource, and each receive's producer is the matching
    ``PostSend``/``RingSendRecv`` on the source owner's resource.  With
    repeated invocations in one trace (tags recur), the producer chosen
    is the latest one ending by the wait's end.
    """
    sources: Optional[dict] = None
    if plan is not None:
        from repro.core.schedule import recv_sources

        sources = recv_sources(plan)

    # producer indexes over the whole trace
    sends: dict[tuple, list[StepSpan]] = {}  # (owner, seq, dim, dir)
    ring_sends: dict[tuple, list[StepSpan]] = {}  # (owner, seq)
    owners: dict[str, Optional[int]] = {}
    for resource, spans in by_resource.items():
        owner = owners.setdefault(resource, owner_of_resource(resource))
        for s in spans:
            if s.step_kind == "PostSend":
                sends.setdefault(
                    (owner, s.seq, s.dim, s.direction), []
                ).append(s)
            elif s.step_kind == "RingSendRecv":
                ring_sends.setdefault((owner, s.seq), []).append(s)

    def latest_by(cands: Iterable[StepSpan], deadline: float):
        best = None
        for c in cands:
            if c.end <= deadline and (best is None or c.end > best.end):
                best = c
        return best

    edges: dict[int, list[StepSpan]] = {}
    for resource, spans in by_resource.items():
        owner = owners[resource]
        pending: dict[int, list[StepSpan]] = {}  # seq -> posted recvs
        ring_pending: dict[int, int] = {}  # seq -> ring stages posted
        for s in spans:
            if s.step_kind == "PostRecv":
                pending.setdefault(s.seq, []).append(s)
            elif s.step_kind == "RingSendRecv":
                ring_pending[s.seq] = ring_pending.get(s.seq, 0) + 1
            elif s.step_kind == "WaitAll":
                preds: list[StepSpan] = []
                for pr in pending.pop(s.seq, ()):
                    if sources is not None:
                        src = sources.get((owner, pr.dim, pr.direction))
                        cands = sends.get(
                            (src, pr.seq, pr.dim, pr.direction), ()
                        )
                    else:
                        cands = [
                            c
                            for key, lst in sends.items()
                            if key[1:] == (pr.seq, pr.dim, pr.direction)
                            for c in lst
                            if c.resource != resource
                        ]
                    hit = latest_by(cands, s.end)
                    if hit is not None:
                        preds.append(hit)
                if ring_pending.pop(s.seq, 0):
                    if sources is not None:
                        src = sources.get(owner)
                        cands = ring_sends.get((src, s.seq), ())
                    else:
                        cands = [
                            c
                            for (o, seq), lst in ring_sends.items()
                            if seq == s.seq
                            for c in lst
                            if c.resource != resource
                        ]
                    hit = latest_by(cands, s.end)
                    if hit is not None:
                        preds.append(hit)
                if preds:
                    edges[id(s)] = preds
    return edges


def critical_path(
    trace: Union[SpanTracer, Iterable[StepSpan]],
    plan=None,
) -> CriticalPathResult:
    """Compute the critical path and blame attribution of one trace.

    ``trace`` is a :class:`~repro.obs.spans.SpanTracer` or any iterable
    of spans in insertion order (per-resource insertion order *is* the
    program order — the invariant every producer maintains).  ``plan``
    (optional) is the compiled schedule the trace executed; with it,
    cross-rank edges resolve exactly via
    :func:`~repro.core.schedule.recv_sources`.
    """
    spans = trace.spans() if isinstance(trace, SpanTracer) else list(trace)
    if not spans:
        return _empty_result()

    by_resource: dict[str, list[StepSpan]] = {}
    position: dict[int, tuple[str, int]] = {}
    for s in spans:
        row = by_resource.setdefault(s.resource, [])
        position[id(s)] = (s.resource, len(row))
        row.append(s)
    cross = _cross_edges(by_resource, plan)

    t0 = min(s.start for s in spans)
    t_end = max(s.end for s in spans)
    wall = t_end - t0
    buckets = {b: 0.0 for b in BLAME_BUCKETS}
    by_rank: dict[int, float] = {}
    path: list[StepSpan] = []

    # straggler attribution: every wait blocked past its arrival by a
    # cross-rank producer charges the blocked seconds to that producer's
    # rank — over the whole DAG, so a straggler is visible even when the
    # critical path happens to stay on the straggler's own resource
    # (e.g. a delayed send stalls the sender and its peers alike)
    imbalance: dict[int, float] = {}
    span_by_id = {id(s): s for s in spans}
    for wait_id, preds in cross.items():
        wait = span_by_id[wait_id]
        owner = owner_of_resource(wait.resource)
        binding = max(preds, key=lambda p: (p.end, p.sort_key))
        blocked = min(binding.end, wait.end) - wait.start
        src_owner = owner_of_resource(binding.resource)
        if blocked > 0 and src_owner is not None and src_owner != owner:
            imbalance[src_owner] = imbalance.get(src_owner, 0.0) + blocked

    def blame(span: StepSpan, lo: float, hi: float) -> None:
        if hi <= lo:
            return
        buckets[blame_bucket(span.step_kind)] += hi - lo
        owner = owner_of_resource(span.resource)
        if owner is not None:
            by_rank[owner] = by_rank.get(owner, 0.0) + (hi - lo)

    def blame_gap(span: StepSpan, lo: float, hi: float) -> None:
        if hi <= lo:
            return
        buckets["wait_imbalance"] += hi - lo
        owner = owner_of_resource(span.resource)
        if owner is not None:
            by_rank[owner] = by_rank.get(owner, 0.0) + (hi - lo)

    cur = max(spans, key=lambda s: (s.end, s.sort_key))
    t_hi = cur.end
    for _ in range(len(spans) + 1):
        path.append(cur)
        resource, idx = position[id(cur)]
        preds = list(cross.get(id(cur), ()))
        if idx > 0:
            preds.append(by_resource[resource][idx - 1])
        binding = (
            max(preds, key=lambda p: (p.end, p.sort_key)) if preds else None
        )
        if binding is None:
            blame(cur, cur.start, t_hi)
            blame_gap(cur, t0, cur.start)
            break
        release = min(binding.end, t_hi)
        if release > cur.start:
            # blocked past its start by the producer: the path continues
            # on the producer's side until it released this span
            blame(cur, release, t_hi)
        else:
            blame(cur, cur.start, t_hi)
            blame_gap(cur, release, cur.start)
        cur, t_hi = binding, release

    # fold the telescoping-sum float residual (a few ulps) into the
    # largest bucket so the totals partition the makespan *exactly*
    residual = wall - sum(buckets.values())
    if residual != 0.0:
        top = max(buckets, key=lambda b: buckets[b])
        buckets[top] += residual
        owner = owner_of_resource(path[-1].resource) if path else None
        if owner is not None and owner in by_rank:
            by_rank[owner] += residual

    path.reverse()
    return CriticalPathResult(
        wall_time=wall,
        buckets=buckets,
        path=path,
        by_rank=by_rank,
        imbalance_by_rank=imbalance,
        n_spans=len(spans),
    )
