"""Model-conformance drift detection: measured trace vs. predicted trace.

The analytic :class:`~repro.core.perfmodel.PerformanceModel` predicts a
per-step timeline for every :class:`~repro.core.jobspec.JobSpec`; the
telemetry plane measures one.  This module closes the loop: align the
two, compute per-step-kind residuals and a scalar **conformance score**,
and turn anomalies into typed :class:`PerfFinding`\\ s —

* :class:`CommDrift` — measured communication time drifted away from
  the model's prediction (congestion, placement, contention the model
  does not capture);
* :class:`StragglerRank` — one rank blocks its peers (from the
  critical-path walk's blocked-wait attribution);
* :class:`LoadImbalance` — per-rank busy time spreads wider than a
  balanced decomposition should allow.

Findings are data, not log lines: ``kind`` is the class name, so
``repro doctor`` tables, tests and metric labels all key off the type.
Every check also writes ``obs_*`` gauges/counters into the supplied
:class:`~repro.obs.metrics.MetricsRegistry` (``NULL_REGISTRY`` when
omitted — the instrument calls are unconditional), so drift shows up in
``repro metrics`` alongside the transport and SCF series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from repro.obs.critpath import CriticalPathResult, critical_path
from repro.obs.metrics import resolve_registry
from repro.obs.spans import SpanTracer, StepSpan

__all__ = [
    "CommDrift",
    "ConformanceReport",
    "LoadImbalance",
    "PerfFinding",
    "StragglerRank",
    "check_conformance",
]


@dataclass(frozen=True)
class PerfFinding:
    """One detected performance anomaly.

    ``severity`` is a unitless magnitude (ratios for drift, seconds for
    blocking) — findings of one kind sort by it; comparing severities
    across kinds is meaningless.
    """

    severity: float
    detail: str

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class CommDrift(PerfFinding):
    """Measured comm time off the model's prediction by ``ratio``."""

    ratio: float = 0.0  # measured / modeled - 1; sign = direction


@dataclass(frozen=True)
class StragglerRank(PerfFinding):
    """``rank`` kept its peers blocked for ``blocked_seconds``."""

    rank: int = -1
    blocked_seconds: float = 0.0


@dataclass(frozen=True)
class LoadImbalance(PerfFinding):
    """Per-rank busy time spread (max/mean - 1) of ``spread``."""

    spread: float = 0.0


@dataclass
class ConformanceReport:
    """The verdict of one measured-vs-model alignment."""

    config_hash: Optional[str]
    #: |measured - modeled| / modeled makespan
    drift: float
    #: ``max(0, 1 - drift)`` — 1.0 is a perfect match
    score: float
    measured_makespan: float
    model_makespan: float
    #: step kind -> (measured per-resource mean seconds, modeled seconds)
    residuals: dict[str, tuple[float, float]] = field(default_factory=dict)
    findings: list[PerfFinding] = field(default_factory=list)
    critpath: Optional[CriticalPathResult] = None

    @property
    def ok(self) -> bool:
        return not self.findings

    def format(self) -> str:
        """Aligned verdict table (``repro doctor``)."""
        lines = [
            f"conformance: score {self.score:.3f}  drift {self.drift:.1%}"
            + (f"  [{self.config_hash}]" if self.config_hash else ""),
            f"  makespan measured {self.measured_makespan:.6g} s"
            f"  modeled {self.model_makespan:.6g} s",
            f"  {'step kind':<18} {'measured':>12} {'modeled':>12} {'ratio':>7}",
        ]
        for kind in sorted(self.residuals):
            meas, mod = self.residuals[kind]
            ratio = f"{meas / mod:7.2f}" if mod > 0 else "    n/a"
            lines.append(f"  {kind:<18} {meas:>12.6g} {mod:>12.6g} {ratio}")
        if self.findings:
            for f in self.findings:
                lines.append(f"  FINDING {f.kind}: {f.detail}")
        else:
            lines.append("  no findings")
        return "\n".join(lines)


def _per_kind_seconds(spans: Iterable[StepSpan]) -> dict[str, float]:
    out: dict[str, float] = {}
    for s in spans:
        out[s.step_kind] = out.get(s.step_kind, 0.0) + s.duration
    return out


def check_conformance(
    measured: Union[SpanTracer, Iterable[StepSpan]],
    spec,
    machine=None,
    metrics=None,
    plan=None,
    comm_drift_threshold: float = 0.5,
    comm_share_floor: float = 0.05,
    straggler_threshold: float = 0.1,
    imbalance_threshold: float = 0.25,
) -> ConformanceReport:
    """Align a measured trace against the model's prediction for ``spec``.

    ``measured`` is a trace of the FD plan ``spec`` compiles to (any
    plane); ``spec`` is the :class:`~repro.core.jobspec.JobSpec` that
    produced it.  The model timeline is rebuilt from the spec alone, so
    a stored trace plus its embedded ``config_hash``'s spec is enough to
    re-run the check offline.

    Thresholds: an exposed-comm residual ratio farther than
    ``comm_drift_threshold`` from 1 raises :class:`CommDrift`, but only
    when the absolute discrepancy exceeds ``comm_share_floor`` of the
    modeled makespan (a fully-hidden tiny leftover is a 0x ratio with
    no performance impact — not drift); a rank
    blocking peers for more than ``straggler_threshold`` of the wall
    time raises :class:`StragglerRank`; per-resource busy-time spread
    (max/mean - 1) beyond ``imbalance_threshold`` raises
    :class:`LoadImbalance`.
    """
    from repro.core.perfmodel import BGP_SPEC, PerformanceModel

    registry = resolve_registry(metrics)
    if machine is None:
        machine = BGP_SPEC

    if isinstance(measured, SpanTracer):
        tracer = measured
    else:
        tracer = SpanTracer(plane="real")
        for s in measured:
            tracer.add(s)

    model = PerformanceModel(machine)
    model_trace = model.step_trace(
        spec.group_job(),
        spec.approach_obj(),
        spec.group_cores,
        spec.layout.batch_size,
        spec.layout.ramp_up,
    )

    spans = tracer.spans()
    measured_makespan = tracer.makespan()
    model_makespan = model_trace.makespan()
    drift = (
        abs(measured_makespan - model_makespan) / model_makespan
        if model_makespan > 0
        else 0.0
    )
    score = max(0.0, 1.0 - drift)

    # per-step-kind residuals: the model emits one representative
    # worker's timeline, so the measured side is the per-resource mean
    resources = {s.resource for s in spans}
    n_resources = max(1, len(resources))
    measured_kinds = {
        k: v / n_resources for k, v in _per_kind_seconds(spans).items()
    }
    model_kinds = _per_kind_seconds(model_trace.spans())
    residuals = {
        kind: (measured_kinds.get(kind, 0.0), model_kinds.get(kind, 0.0))
        for kind in sorted(set(measured_kinds) | set(model_kinds))
    }

    findings: list[PerfFinding] = []

    # compare *exposed* comm only (the blocking kinds): the model's
    # timeline shows comm as WaitAll — the overlap leftovers — while a
    # measured trace also records the nonblocking posting overhead,
    # which the model prices into its per-round comm term instead
    comm_meas = sum(
        meas
        for kind, (meas, _mod) in residuals.items()
        if kind in ("WaitAll", "RingSendRecv")
    )
    comm_mod = sum(
        mod
        for kind, (_meas, mod) in residuals.items()
        if kind in ("WaitAll", "RingSendRecv")
    )
    comm_ratio = comm_meas / comm_mod if comm_mod > 0 else 1.0
    comm_gap = abs(comm_meas - comm_mod)
    if (
        abs(comm_ratio - 1.0) > comm_drift_threshold
        and comm_gap > comm_share_floor * model_makespan
    ):
        findings.append(
            CommDrift(
                severity=abs(comm_ratio - 1.0),
                ratio=comm_ratio - 1.0,
                detail=(
                    f"comm time {comm_meas:.6g} s is {comm_ratio:.2f}x "
                    f"the modeled {comm_mod:.6g} s"
                ),
            )
        )

    cp = critical_path(tracer, plan=plan)
    if cp.imbalance_by_rank and measured_makespan > 0:
        rank, blocked = max(
            cp.imbalance_by_rank.items(), key=lambda kv: kv[1]
        )
        if blocked > straggler_threshold * measured_makespan:
            findings.append(
                StragglerRank(
                    severity=blocked,
                    rank=rank,
                    blocked_seconds=blocked,
                    detail=(
                        f"rank {rank} kept peers blocked {blocked:.6g} s "
                        f"({blocked / measured_makespan:.0%} of wall time)"
                    ),
                )
            )

    if len(resources) > 1:
        busy = [tracer.busy_time(r) for r in sorted(resources)]
        mean = sum(busy) / len(busy)
        spread = max(busy) / mean - 1.0 if mean > 0 else 0.0
        if spread > imbalance_threshold:
            findings.append(
                LoadImbalance(
                    severity=spread,
                    spread=spread,
                    detail=(
                        f"busiest resource is {spread:.0%} above the mean "
                        f"busy time across {len(busy)} resources"
                    ),
                )
            )

    registry.gauge("obs_conformance_score").set(score)
    registry.gauge("obs_conformance_drift").set(drift)
    registry.gauge("obs_comm_drift_ratio").set(comm_ratio)
    for f in findings:
        registry.counter("obs_findings_total", kind=f.kind).inc()

    return ConformanceReport(
        config_hash=tracer.config_hash or spec.config_hash(),
        drift=drift,
        score=score,
        measured_makespan=measured_makespan,
        model_makespan=model_makespan,
        residuals=residuals,
        findings=findings,
        critpath=cp,
    )
