"""Integer factorization helpers used by the 3D domain decomposition.

GPAW divides each real-space grid into ``P`` quadrilateral blocks; when the
user gives no explicit decomposition it picks the factorization
``P = px * py * pz`` that minimizes the aggregated surface of the blocks
(section IV of the paper).  The search over candidate factorizations lives
here; the surface *objective* lives in :mod:`repro.grid.decompose` because it
depends on the grid shape.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Iterator, Sequence


def prime_factors(n: int) -> list[int]:
    """Return the prime factorization of ``n >= 1`` in ascending order.

    >>> prime_factors(360)
    [2, 2, 2, 3, 3, 5]
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    out: list[int] = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1 if d == 2 else 2
    if n > 1:
        out.append(n)
    return out


def divisors(n: int) -> list[int]:
    """Return all positive divisors of ``n`` in ascending order."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    small: list[int] = []
    large: list[int] = []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return small + large[::-1]


@lru_cache(maxsize=4096)
def factorizations_3d(n: int) -> tuple[tuple[int, int, int], ...]:
    """All ordered triples ``(a, b, c)`` with ``a * b * c == n``.

    The result is cached: decompositions are recomputed for every grid in a
    simulation, but the set of process counts in play is tiny.

    >>> sorted(factorizations_3d(4))[:3]
    [(1, 1, 4), (1, 2, 2), (1, 4, 1)]
    """
    out: list[tuple[int, int, int]] = []
    for a in divisors(n):
        m = n // a
        for b in divisors(m):
            out.append((a, b, m // b))
    return tuple(out)


def iter_factorizations_3d(n: int) -> Iterator[tuple[int, int, int]]:
    """Iterate over all ordered 3-factorizations of ``n``."""
    return iter(factorizations_3d(n))


def best_grid_factorization(
    n: int,
    objective: Callable[[tuple[int, int, int]], float],
) -> tuple[int, int, int]:
    """Return the 3-factorization of ``n`` minimizing ``objective``.

    Ties are broken deterministically in favour of the most "cubic"
    factorization (smallest spread between the largest and smallest factor),
    then lexicographically — this keeps decompositions stable across runs,
    which matters because rank layouts are derived from them.
    """
    candidates = factorizations_3d(n)
    return min(
        candidates,
        key=lambda f: (objective(f), max(f) - min(f), f),
    )


def balanced_partition(n: int, parts: int) -> list[int]:
    """Split ``n`` items into ``parts`` contiguous chunks as evenly as possible.

    The first ``n % parts`` chunks get one extra item — the same convention
    MPI block distributions use.

    >>> balanced_partition(10, 4)
    [3, 3, 2, 2]
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    base, extra = divmod(n, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def chunk_offsets(sizes: Sequence[int]) -> list[int]:
    """Exclusive prefix sum of chunk sizes: offsets of each chunk.

    >>> chunk_offsets([3, 3, 2, 2])
    [0, 3, 6, 8]
    """
    out = [0]
    for s in sizes[:-1]:
        out.append(out[-1] + s)
    return out
