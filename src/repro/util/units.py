"""Unit constants and human-readable formatting.

All simulator-internal quantities use SI base units: seconds for time,
bytes for data, bytes/second for rates, and flop/s for compute throughput.
Constants here are multipliers *into* those base units, e.g.::

    latency = 2.7 * US          # 2.7 microseconds, stored in seconds
    bandwidth = 425 * MB        # 425 MB/s, stored in bytes/second

Decimal (KB/MB/GB) and binary (KIB/MIB/GIB) prefixes are both provided;
network hardware is conventionally specified in decimal units while
memory sizes use binary units.
"""

from __future__ import annotations

# --- data sizes (bytes) ----------------------------------------------------
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

# --- time (seconds) ---------------------------------------------------------
NS = 1e-9
US = 1e-6
MS = 1e-3

# --- frequency (Hz) and compute (flop/s) ------------------------------------
MHZ = 1e6
GHZ = 1e9
GFLOPS = 1e9


def format_bytes(n: float) -> str:
    """Format a byte count using decimal prefixes ("1.5 MB")."""
    n = float(n)
    for unit, scale in (("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(n) >= scale:
            return f"{n / scale:.3g} {unit}"
    return f"{n:.3g} B"


def format_time(t: float) -> str:
    """Format a duration in seconds with an appropriate sub-second prefix."""
    t = float(t)
    if abs(t) >= 1.0:
        return f"{t:.3g} s"
    if abs(t) >= MS:
        return f"{t / MS:.3g} ms"
    if abs(t) >= US:
        return f"{t / US:.3g} us"
    return f"{t / NS:.3g} ns"


def format_rate(r: float) -> str:
    """Format a data rate in bytes/second ("425 MB/s")."""
    return f"{format_bytes(r)}/s"
