"""Shared utilities: units, factorization, and validation helpers.

These are small, dependency-free building blocks used across the whole
library — hardware specs express quantities through :mod:`repro.util.units`,
the domain decomposition relies on :mod:`repro.util.factorize`, and public
entry points validate their arguments with :mod:`repro.util.validation`.
"""

from repro.util.units import (
    KB,
    MB,
    GB,
    KIB,
    MIB,
    GIB,
    US,
    MS,
    NS,
    MHZ,
    GHZ,
    GFLOPS,
    format_bytes,
    format_time,
    format_rate,
)
from repro.util.factorize import (
    prime_factors,
    factorizations_3d,
    divisors,
    best_grid_factorization,
)
from repro.util.validation import (
    check_positive_int,
    check_in,
    check_shape3,
)

__all__ = [
    "KB",
    "MB",
    "GB",
    "KIB",
    "MIB",
    "GIB",
    "US",
    "MS",
    "NS",
    "MHZ",
    "GHZ",
    "GFLOPS",
    "format_bytes",
    "format_time",
    "format_rate",
    "prime_factors",
    "factorizations_3d",
    "divisors",
    "best_grid_factorization",
    "check_positive_int",
    "check_in",
    "check_shape3",
]
