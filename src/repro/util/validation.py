"""Argument-validation helpers shared by public entry points.

Raising early with a precise message is cheaper than debugging a simulation
that silently produced nonsense; every public constructor funnels its
integer/enum/shape checks through these helpers so error text stays uniform.
"""

from __future__ import annotations

from typing import Any, Collection, Sequence


def check_positive_int(value: Any, name: str) -> int:
    """Return ``value`` as int, requiring an integral value >= 1."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        # bool is an int subclass; reject it explicitly — "nx=True" is a bug.
        try:
            ivalue = int(value)
        except (TypeError, ValueError):
            raise TypeError(f"{name} must be an integer, got {value!r}") from None
        if ivalue != value:
            raise TypeError(f"{name} must be an integer, got {value!r}")
        value = ivalue
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")
    return int(value)


def check_nonnegative(value: Any, name: str) -> float:
    """Return ``value`` as float, requiring it to be >= 0 and finite."""
    v = float(value)
    if not v >= 0.0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return v


def check_divisible(value: int, divisor: int, name: str, divisor_name: str) -> int:
    """Require ``value`` to be an exact multiple of ``divisor``.

    Both operands are named in the message so a band-group misconfiguration
    reads like the fix ("n_bands (7) must be divisible by band groups (2)")
    instead of a downstream reshape error.
    """
    v = check_positive_int(value, name)
    d = check_positive_int(divisor, divisor_name)
    if v % d:
        raise ValueError(
            f"{name} ({v}) must be divisible by {divisor_name} ({d})"
        )
    return v


def check_in(value: Any, options: Collection[Any], name: str) -> Any:
    """Require ``value`` to be one of ``options``."""
    if value not in options:
        opts = ", ".join(map(repr, options))
        raise ValueError(f"{name} must be one of {opts}; got {value!r}")
    return value


def check_shape3(shape: Sequence[int], name: str) -> tuple[int, int, int]:
    """Return ``shape`` as a validated 3-tuple of positive ints."""
    try:
        items = tuple(shape)
    except TypeError:
        raise TypeError(f"{name} must be a sequence of 3 ints, got {shape!r}") from None
    if len(items) != 3:
        raise ValueError(f"{name} must have length 3, got {shape!r}")
    return tuple(check_positive_int(s, f"{name}[{i}]") for i, s in enumerate(items))  # type: ignore[return-value]
