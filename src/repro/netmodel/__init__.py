"""Network micro-benchmarks: the paper's message-size experiment (Fig 2).

The paper motivates batching with a ping-pong experiment between two
neighbouring nodes: bandwidth saturates only above ~10^5-byte messages and
reaches half its asymptote near 10^3 bytes.  This package reproduces that
experiment two ways — analytically from the latency-bandwidth model and
measured on the DES machine — and asserts they coincide.
"""

from repro.netmodel.pingpong import (
    BandwidthPoint,
    analytic_bandwidth_curve,
    measured_bandwidth_curve,
    default_message_sizes,
)

__all__ = [
    "BandwidthPoint",
    "analytic_bandwidth_curve",
    "measured_bandwidth_curve",
    "default_message_sizes",
]
