"""Ping-pong bandwidth vs message size (Figure 2).

"In this experiment, one MPI message is send between two neighboring BGP
nodes" — we send a message of each size from node 0 to its +x neighbour on
the DES machine, time it, and report achieved bandwidth.  The x-axis spans
10^0 .. 10^7 bytes like the paper's figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.perfmodel import FDJob  # noqa: F401  (re-export convenience)
from repro.machine.machine import Machine
from repro.machine.spec import BGP_SPEC, MachineSpec
from repro.smpi.comm import SimComm


@dataclass(frozen=True)
class BandwidthPoint:
    """One point of the Fig 2 curve."""

    message_bytes: int
    bandwidth: float  # bytes/second
    time: float  # seconds


def default_message_sizes() -> list[int]:
    """Fig 2's x-axis: 1, 2, 4, ... up to 10^7 bytes (log-spaced)."""
    sizes = []
    s = 1
    while s <= 10_000_000:
        sizes.append(s)
        s *= 2
    return sizes


def analytic_bandwidth_curve(
    sizes: list[int] | None = None, spec: MachineSpec = BGP_SPEC
) -> list[BandwidthPoint]:
    """The latency-bandwidth model's prediction of Fig 2."""
    sizes = default_message_sizes() if sizes is None else sizes
    out = []
    for s in sizes:
        t = spec.torus.message_time(s, hops=1)
        out.append(BandwidthPoint(message_bytes=s, bandwidth=s / t, time=t))
    return out


def measured_bandwidth_curve(
    sizes: list[int] | None = None, spec: MachineSpec = BGP_SPEC
) -> list[BandwidthPoint]:
    """Fig 2 measured on the DES machine: one message, two neighbour nodes."""
    sizes = default_message_sizes() if sizes is None else sizes
    out = []
    for s in sizes:
        machine = Machine(8, spec=spec)  # 2x2x2 mesh; nodes 0 and 4 are +x neighbours
        comm = SimComm(machine)
        src_rank, dst_rank = 0, 4
        assert machine.topology.hop_distance(0, 4) == 1

        def sender(ctx, nbytes=s, dst=dst_rank):
            yield from ctx.send(dst, nbytes)

        def receiver(ctx, src=src_rank):
            yield from ctx.recv(src=src)

        machine.sim.spawn(sender(comm.context(src_rank)))
        machine.sim.spawn(receiver(comm.context(dst_rank)))
        t = machine.sim.run()
        out.append(BandwidthPoint(message_bytes=s, bandwidth=s / t, time=t))
    return out
