"""Tests for the SCF total energy (double-counting corrections)."""

import numpy as np
import pytest

from repro.dft import Hamiltonian, SCFLoop
from repro.grid import GridDescriptor


def harmonic(n=14, spacing=0.5):
    gd = GridDescriptor((n, n, n), pbc=(False,) * 3, spacing=spacing)
    x, y, z = gd.coordinates()
    c = (n + 1) * spacing / 2
    v = 0.5 * ((x - c) ** 2 + (y - c) ** 2 + (z - c) ** 2)
    return gd, v


class TestTotalEnergy:
    def run_scf(self, xc="none"):
        gd, v = harmonic()
        scf = SCFLoop(
            gd, v, n_bands=1, occupations=[2.0], mixing=0.6,
            tolerance=1e-5, max_iterations=60, eig_tol=1e-8, xc=xc,
        )
        return gd, v, scf.run()

    def test_double_counting_identity_hartree(self):
        """At self-consistency: sum_f eps = sum_f <T + V_ext> + 2 E_H, so
        E_total = sum_f <T + V_ext> + E_H.  Both routes must agree."""
        gd, v_ext, out = self.run_scf()
        assert out.converged
        h3 = gd.spacing ** 3
        psi = out.states[0]
        bare = Hamiltonian(gd, v_ext)
        t_plus_vext = 2.0 * np.vdot(psi, bare.apply(psi)).real * h3
        e_hartree = 0.5 * float((out.density * out.hartree_potential).sum() * h3)
        direct = t_plus_vext + e_hartree
        assert out.total_energy == pytest.approx(direct, rel=1e-3)

    def test_total_below_band_sum(self):
        """The Hartree double-counting correction is negative."""
        _, _, out = self.run_scf()
        band_sum = 2.0 * out.energies[0]
        assert out.total_energy < band_sum

    def test_total_above_noninteracting(self):
        """Repulsion raises the energy above two non-interacting electrons."""
        gd, v_ext, out = self.run_scf()
        # two non-interacting electrons in the trap: 2 * (3/2) = 3 Ha
        assert out.total_energy > 2 * 1.49
        assert out.total_energy < 2 * out.energies[0]  # but below 2x dressed

    def test_lda_lowers_total_energy(self):
        _, _, hartree = self.run_scf("none")
        _, _, lda = self.run_scf("lda")
        assert lda.converged
        assert lda.total_energy < hartree.total_energy

    def test_unconverged_still_reports_energy(self):
        gd, v = harmonic(n=10)
        scf = SCFLoop(gd, v, n_bands=1, occupations=[2.0],
                      tolerance=1e-14, max_iterations=2, eig_tol=1e-6)
        out = scf.run()
        assert not out.converged
        assert np.isfinite(out.total_energy)
