"""Tests for the workspace arena and the zero-allocation engine path."""

import threading

import numpy as np
import pytest

from repro.core import DistributedStencil, SequentialStencil, Workspace
from repro.core.approaches import ALL_APPROACHES, FLAT_OPTIMIZED
from repro.grid import Decomposition, GridDescriptor, HaloSpec, gather, scatter
from repro.grid.array import LocalGrid
from repro.stencil import laplacian_coefficients
from repro.transport import InprocTransport, run_ranks


class TestWorkspaceBasics:
    def test_borrow_allocates_then_reuses(self):
        ws = Workspace()
        a = ws.borrow((8, 8), np.float64)
        assert a.shape == (8, 8) and a.dtype == np.float64
        assert ws.allocations == 1 and ws.reuses == 0
        assert ws.release(a)
        b = ws.borrow((8, 8), np.float64)
        assert b is a
        assert ws.allocations == 1 and ws.reuses == 1

    def test_distinct_keys_pool_separately(self):
        ws = Workspace()
        a = ws.borrow((4,), np.float64)
        b = ws.borrow((4,), np.float32)
        c = ws.borrow((2, 2), np.float64)
        assert ws.allocations == 3
        for buf in (a, b, c):
            ws.release(buf)
        assert ws.borrow((4,), np.float32) is b
        assert ws.borrow((2, 2), np.float64) is c
        assert ws.borrow((4,), np.float64) is a

    def test_concurrent_borrows_are_distinct(self):
        ws = Workspace()
        a = ws.borrow((4,))
        b = ws.borrow((4,))
        assert a is not b
        assert ws.allocations == 2
        assert ws.n_issued == 2

    def test_release_unknown_array_ignored(self):
        ws = Workspace()
        assert ws.release(np.zeros(3)) is False
        assert ws.n_free == 0

    def test_double_release_ignored(self):
        ws = Workspace()
        a = ws.borrow((4,))
        assert ws.release(a) is True
        assert ws.release(a) is False
        assert ws.n_free == 1

    def test_owns_tracks_outstanding_borrows(self):
        ws = Workspace()
        a = ws.borrow((4,))
        assert ws.owns(a)
        ws.release(a)
        assert not ws.owns(a)
        assert not ws.owns(np.zeros(4))

    def test_borrowing_context_manager(self):
        ws = Workspace()
        with ws.borrowing((5,), np.float64) as buf:
            assert ws.owns(buf)
        assert not ws.owns(buf)
        assert ws.n_free == 1

    def test_clear_drops_pool_keeps_borrows_valid(self):
        ws = Workspace()
        a = ws.borrow((4,))
        b = ws.borrow((4,))
        ws.release(b)
        ws.clear()
        assert ws.n_free == 0
        a[:] = 7.0  # outstanding borrow still usable
        assert ws.release(a)

    def test_dtype_like_keys_normalized(self):
        ws = Workspace()
        a = ws.borrow((3,), "float64")
        ws.release(a)
        assert ws.borrow((3,), np.float64) is a

    def test_thread_safety_smoke(self):
        ws = Workspace()
        errors = []

        def worker():
            try:
                for _ in range(200):
                    buf = ws.borrow((16,))
                    buf[:] = 1.0
                    ws.release(buf)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert ws.n_issued == 0
        # every borrow was either a fresh allocation or a pool hit
        assert ws.allocations + ws.reuses == 8 * 200


def _run_iterations(n_iters, n_ranks=1, n_grids=4, shape=(12, 12, 12),
                    approach=FLAT_OPTIMIZED, batch_size=2):
    """Run several steady-state apply calls reusing the output blocks.

    Returns (engine, gathered last result, expected).
    """
    gd = GridDescriptor(shape)
    decomp = Decomposition(gd, n_ranks)
    coeffs = laplacian_coefficients(2, spacing=gd.spacing)
    engine = DistributedStencil(decomp, coeffs)
    halo = HaloSpec(2)
    arrays = {gid: gd.random(seed=gid) for gid in range(n_grids)}
    blocks = {gid: scatter(a, decomp, halo) for gid, a in arrays.items()}
    allocs_per_iter = []

    def rank_fn(ep):
        mine = {gid: blocks[gid][ep.rank] for gid in arrays}
        result = None
        for _ in range(n_iters):
            before = engine.workspace.allocations
            result = engine.apply(
                ep, mine, approach=approach, batch_size=batch_size, out=result
            )
            allocs_per_iter.append(engine.workspace.allocations - before)
        return result

    results = run_ranks(n_ranks, rank_fn)
    gathered = {
        gid: gather([results[r][gid] for r in range(n_ranks)])
        for gid in arrays
    }
    expected = SequentialStencil(gd, coeffs).apply(arrays)
    return engine, gathered, expected, allocs_per_iter


class TestZeroAllocationSteadyState:
    def test_single_rank_strictly_zero_after_warmup(self):
        """With one rank the schedule is deterministic: after the first
        apply, the arena serves every borrow and allocations stop."""
        engine, gathered, expected, allocs = _run_iterations(4, n_ranks=1)
        assert allocs[0] > 0  # warm-up actually exercised the arena
        assert allocs[1:] == [0, 0, 0]
        for gid in expected:
            np.testing.assert_array_equal(gathered[gid], expected[gid])
        assert engine.workspace.n_issued == 0  # everything returned

    @pytest.mark.parametrize("approach", ALL_APPROACHES, ids=lambda a: a.name)
    def test_multi_rank_allocations_bounded(self, approach):
        """With rank threads the pool's peak depends on interleaving, so
        the count is not exactly deterministic — but it must be bounded by
        peak concurrent demand, not grow with the iteration count.  A
        per-iteration leak (the pre-arena behaviour) would allocate
        hundreds of arrays here."""
        gd = GridDescriptor((12, 12, 12))
        decomp = Decomposition(gd, 4)
        coeffs = laplacian_coefficients(2, spacing=gd.spacing)
        engine = DistributedStencil(decomp, coeffs)
        halo = HaloSpec(2)
        arrays = {gid: gd.random(seed=gid) for gid in range(4)}
        blocks = {gid: scatter(a, decomp, halo) for gid, a in arrays.items()}
        batch = 2 if approach.supports_batching else 1
        n_iters = 20

        def rank_fn(ep):
            mine = {gid: blocks[gid][ep.rank] for gid in arrays}
            result = None
            for i in range(n_iters):
                result = engine.apply(
                    ep, mine, approach=approach, batch_size=batch, out=result
                )
                if i == 2:
                    ep.barrier()
                    if ep.rank == 0:
                        settled.append(engine.workspace.allocations)
                    ep.barrier()
            return result

        settled = []
        run_ranks(4, rank_fn)
        # growth after the 3-iteration warm-up: transient timing peaks
        # only, never proportional to the remaining 17 iterations
        assert engine.workspace.allocations - settled[0] <= 8
        assert engine.workspace.n_issued == 0

    def test_steady_state_results_stay_correct(self):
        engine, gathered, expected, _ = _run_iterations(3, n_ranks=4)
        for gid in expected:
            np.testing.assert_array_equal(gathered[gid], expected[gid])

    def test_out_reuse_returns_same_localgrids(self):
        gd = GridDescriptor((8, 8, 8))
        decomp = Decomposition(gd, 1)
        coeffs = laplacian_coefficients(2)
        engine = DistributedStencil(decomp, coeffs)
        halo = HaloSpec(2)
        blocks = scatter(gd.random(seed=0), decomp, halo)

        def rank_fn(ep):
            first = engine.apply(ep, {0: blocks[ep.rank]})
            second = engine.apply(ep, {0: blocks[ep.rank]}, out=first)
            assert second is first
            assert second[0].data is first[0].data
            return second

        run_ranks(1, rank_fn)

    def test_out_with_wrong_grid_ids_rejected(self):
        gd = GridDescriptor((8, 8, 8))
        decomp = Decomposition(gd, 1)
        engine = DistributedStencil(decomp, laplacian_coefficients(2))
        halo = HaloSpec(2)
        blocks = scatter(gd.random(seed=0), decomp, halo)

        def rank_fn(ep):
            first = engine.apply(ep, {0: blocks[ep.rank]})
            with pytest.raises(ValueError):
                engine.apply(ep, {1: blocks[ep.rank]}, out=first)

        run_ranks(1, rank_fn)

    def test_gradient_engine_uses_arena(self):
        gd = GridDescriptor((10, 10, 10))
        decomp = Decomposition(gd, 1)
        engine = DistributedStencil.gradient(decomp, axis=0)
        halo = HaloSpec(2)
        blocks = scatter(gd.random(seed=3), decomp, halo)

        def rank_fn(ep):
            result = engine.apply(ep, {0: blocks[ep.rank]})
            before = engine.workspace.allocations
            result = engine.apply(ep, {0: blocks[ep.rank]}, out=result)
            assert engine.workspace.allocations == before
            return result

        run_ranks(1, rank_fn)
        assert engine.workspace.allocations > 0


class TestArenaTransportIntegration:
    def test_zero_copy_round_trip_recycles_buffer(self):
        """A buffer sent copy=False lands in the receiver's hands as the
        same object and can be released into the shared arena."""
        ws = Workspace()
        tr = InprocTransport(2)
        sent = []

        def fn(ep):
            if ep.rank == 0:
                buf = ws.borrow((6,), np.float64)
                buf[:] = np.arange(6.0)
                sent.append(buf)
                ep.isend(1, buf, tag=0, copy=False)
                return None
            payload = ep.recv(src=0, tag=0)
            got = payload.copy()
            assert ws.release(payload)  # receiver recycles sender's buffer
            return got

        results = run_ranks(2, fn, transport=tr)
        np.testing.assert_array_equal(results[1], np.arange(6.0))
        assert ws.n_free == 1
        assert ws.borrow((6,), np.float64) is sent[0]
