"""Tests for repro.grid.decompose (domain decomposition)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.grid import Decomposition, GridDescriptor


def make(shape=(12, 12, 12), n=8, pbc=(True, True, True), domains_shape=None):
    return Decomposition(GridDescriptor(shape, pbc=pbc), n, domains_shape)


class TestFactorizationChoice:
    def test_cube_prefers_cubic_split(self):
        d = make((144, 144, 144), 8)
        assert d.domains_shape == (2, 2, 2)

    def test_64_domains_on_cube(self):
        d = make((192, 192, 192), 64)
        assert d.domains_shape == (4, 4, 4)

    def test_elongated_grid_splits_long_axis(self):
        d = make((64, 8, 8), 8)
        assert d.domains_shape == (8, 1, 1)

    def test_explicit_shape_respected(self):
        d = make((12, 12, 12), 8, domains_shape=(8, 1, 1))
        assert d.domains_shape == (8, 1, 1)

    def test_explicit_shape_must_factor(self):
        with pytest.raises(ValueError):
            make((12, 12, 12), 8, domains_shape=(2, 2, 3))

    def test_too_many_domains_per_axis_rejected(self):
        with pytest.raises(ValueError):
            make((4, 4, 4), 8, domains_shape=(8, 1, 1))

    def test_single_domain(self):
        d = make((10, 10, 10), 1)
        assert d.domains_shape == (1, 1, 1)
        assert d.block_shape(0) == (10, 10, 10)


class TestBlockGeometry:
    def test_coords_roundtrip(self):
        d = make((12, 12, 12), 8)
        for domain in range(8):
            assert d.domain_at(d.coords_of(domain)) == domain

    def test_even_split(self):
        d = make((12, 12, 12), 8)
        for domain in range(8):
            assert d.block_shape(domain) == (6, 6, 6)

    def test_uneven_split_balanced(self):
        d = make((13, 12, 12), 8)
        shapes = {d.block_shape(i)[0] for i in range(8)}
        assert shapes == {6, 7}

    def test_slices_tile_global_grid(self):
        d = make((13, 11, 12), 12)
        cover = np.zeros((13, 11, 12), dtype=int)
        for domain in range(12):
            cover[d.block_slices(domain)] += 1
        assert np.all(cover == 1)

    def test_total_points_conserved(self):
        d = make((13, 11, 7), 6)
        assert d.total_points() == 13 * 11 * 7

    def test_max_block_points(self):
        d = make((13, 12, 12), 8)
        assert d.max_block_points() == 7 * 6 * 6

    def test_coords_bounds(self):
        d = make((12, 12, 12), 8)
        with pytest.raises(ValueError):
            d.coords_of(8)
        with pytest.raises(ValueError):
            d.domain_at((2, 0, 0))

    @settings(max_examples=30)
    @given(
        st.tuples(
            st.integers(min_value=4, max_value=24),
            st.integers(min_value=4, max_value=24),
            st.integers(min_value=4, max_value=24),
        ),
        st.sampled_from([1, 2, 3, 4, 6, 8, 12]),
    )
    def test_property_blocks_partition_grid(self, shape, n):
        d = Decomposition(GridDescriptor(shape), n)
        cover = np.zeros(shape, dtype=int)
        for domain in range(n):
            cover[d.block_slices(domain)] += 1
        assert np.all(cover == 1)


class TestNeighbors:
    def test_periodic_wrap(self):
        d = make((12, 12, 12), 8)  # 2x2x2
        dom = d.domain_at((1, 0, 0))
        assert d.neighbor(dom, 0, +1) == d.domain_at((0, 0, 0))

    def test_nonperiodic_wall(self):
        d = make((12, 12, 12), 8, pbc=(False, False, False))
        dom = d.domain_at((1, 0, 0))
        assert d.neighbor(dom, 0, +1) is None
        assert d.neighbor(dom, 0, -1) == d.domain_at((0, 0, 0))

    def test_single_domain_periodic_self(self):
        d = make((12, 12, 12), 1)
        assert d.neighbor(0, 0, +1) == 0

    def test_invalid_args(self):
        d = make((12, 12, 12), 8)
        with pytest.raises(ValueError):
            d.neighbor(0, 3, 1)
        with pytest.raises(ValueError):
            d.neighbor(0, 0, 2)


class TestCommunicationAccounting:
    def test_face_points(self):
        d = make((12, 10, 8), 1)
        assert d.face_points(0, 0) == 10 * 8
        assert d.face_points(0, 1) == 12 * 8
        assert d.face_points(0, 2) == 12 * 10

    def test_send_bytes_periodic_cube(self):
        d = make((12, 12, 12), 8)  # blocks 6x6x6, width 2, 8 B/pt
        assert d.send_bytes(0, 0, +1, 2) == 6 * 6 * 2 * 8

    def test_send_bytes_zero_for_wall(self):
        d = make((12, 12, 12), 8, pbc=(False, False, False))
        dom = d.domain_at((1, 0, 0))
        assert d.send_bytes(dom, 0, +1, 2) == 0
        assert d.send_bytes(dom, 0, -1, 2) > 0

    def test_send_bytes_zero_for_self_wrap(self):
        d = make((12, 12, 12), 1)
        assert d.send_bytes(0, 0, +1, 2) == 0

    def test_comm_bytes_six_faces(self):
        d = make((12, 12, 12), 8)
        assert d.comm_bytes(0, 2) == 6 * (6 * 6 * 2 * 8)

    def test_max_comm_bytes(self):
        d = make((12, 12, 12), 8)
        assert d.max_comm_bytes(2) == d.comm_bytes(0, 2)

    def test_finer_decomposition_increases_total_surface(self):
        """The physics behind Fig 6: more domains => more aggregate comm."""
        grid = GridDescriptor((192, 192, 192))
        coarse = Decomposition(grid, 64)
        fine = Decomposition(grid, 256)
        total_coarse = sum(coarse.comm_bytes(i, 2) for i in range(64))
        total_fine = sum(fine.comm_bytes(i, 2) for i in range(256))
        assert total_fine > total_coarse

    def test_four_times_finer_split_costs_cube_root_more(self):
        """Flat mode divides grids 4x more than hybrid; aggregate surface
        grows ~ 4^(1/3) ~ 1.59 (the gap between the Fig 6 comm curves)."""
        grid = GridDescriptor((192, 192, 192))
        hybrid = Decomposition(grid, 64)
        flat = Decomposition(grid, 256)
        total_hybrid = sum(hybrid.comm_bytes(i, 2) for i in range(64))
        total_flat = sum(flat.comm_bytes(i, 2) for i in range(256))
        ratio = total_flat / total_hybrid
        assert 1.3 < ratio < 1.9

    @given(st.sampled_from([1, 2, 4, 8, 16, 32, 64]))
    def test_property_chosen_shape_minimizes_surface(self, n):
        grid = GridDescriptor((96, 96, 96))
        chosen = Decomposition(grid, n)
        chosen_total = sum(chosen.comm_bytes(i, 2) for i in range(n))
        from repro.util.factorize import factorizations_3d

        for alt in factorizations_3d(n):
            if max(alt) > 96:
                continue
            d = Decomposition(grid, n, domains_shape=alt)
            alt_total = sum(d.comm_bytes(i, 2) for i in range(n))
            assert chosen_total <= alt_total + 1e-9
