"""Tests for the simulated MPI layer: p2p semantics, thread modes, collectives."""

import pytest

from repro.des import SimulationError, Simulator
from repro.machine import Machine, NodeMode
from repro.machine.spec import BGP_SPEC
from repro.smpi import SimComm, ThreadMode
from repro.smpi.datatypes import ANY_SOURCE, ANY_TAG


def make_comm(n_nodes=8, mode=NodeMode.SMP, thread_mode=ThreadMode.SINGLE):
    machine = Machine(n_nodes, mode)
    return machine, SimComm(machine, thread_mode)


class TestPointToPoint:
    def test_blocking_send_recv(self):
        machine, comm = make_comm()
        got = []

        def sender(ctx):
            yield from ctx.send(1, 1000, tag=7, payload="hello")

        def receiver(ctx):
            status = yield from ctx.recv(src=0, tag=7)
            got.append((status.source, status.tag, status.nbytes))

        machine.sim.spawn(sender(comm.context(0)))
        machine.sim.spawn(receiver(comm.context(1)))
        machine.sim.run()
        assert got == [(0, 7, 1000)]

    def test_payload_passes_through(self):
        machine, comm = make_comm()

        def sender(ctx):
            yield from ctx.send(1, 8, payload={"x": 42})

        def receiver(ctx):
            req = yield from ctx.irecv(src=0)
            payload = yield req.event
            return payload

        machine.sim.spawn(sender(comm.context(0)))
        proc = machine.sim.spawn(receiver(comm.context(1)))
        machine.sim.run()
        assert proc.value == {"x": 42}

    def test_transfer_time_matches_network_model(self):
        machine, comm = make_comm()
        nbytes = 200_000

        def sender(ctx):
            yield from ctx.send(1, nbytes)

        def receiver(ctx):
            yield from ctx.recv(src=0)

        machine.sim.spawn(sender(comm.context(0)))
        machine.sim.spawn(receiver(comm.context(1)))
        machine.sim.run()
        hops = machine.topology.hop_distance(0, 1)
        assert machine.sim.now == pytest.approx(
            BGP_SPEC.torus.message_time(nbytes, hops)
        )

    def test_recv_before_send(self):
        """A posted receive completes when the message later arrives."""
        machine, comm = make_comm()
        times = []

        def receiver(ctx):
            status = yield from ctx.recv(src=0)
            times.append(machine.sim.now)
            assert status.nbytes == 500

        def sender(ctx):
            yield machine.sim.timeout(1.0)
            yield from ctx.send(1, 500)

        machine.sim.spawn(receiver(comm.context(1)))
        machine.sim.spawn(sender(comm.context(0)))
        machine.sim.run()
        assert times[0] > 1.0

    def test_unexpected_message_queued(self):
        """A message arriving before its recv is buffered, not lost."""
        machine, comm = make_comm()
        got = []

        def sender(ctx):
            yield from ctx.send(1, 100, tag=3)

        def late_receiver(ctx):
            yield machine.sim.timeout(10.0)
            status = yield from ctx.recv(src=0, tag=3)
            got.append(status.tag)

        machine.sim.spawn(sender(comm.context(0)))
        machine.sim.spawn(late_receiver(comm.context(1)))
        machine.sim.run()
        assert got == [3]

    def test_tag_matching_selects_correct_message(self):
        machine, comm = make_comm()
        order = []

        def sender(ctx):
            yield from ctx.send(1, 100, tag=1, payload="first")
            yield from ctx.send(1, 100, tag=2, payload="second")

        def receiver(ctx):
            req2 = yield from ctx.irecv(src=0, tag=2)
            req1 = yield from ctx.irecv(src=0, tag=1)
            p2 = yield req2.event
            p1 = yield req1.event
            order.extend([p2, p1])

        machine.sim.spawn(sender(comm.context(0)))
        machine.sim.spawn(receiver(comm.context(1)))
        machine.sim.run()
        assert order == ["second", "first"]

    def test_any_source_any_tag(self):
        machine, comm = make_comm()
        got = []

        def sender(ctx, tag):
            yield from ctx.send(2, 64, tag=tag)

        def receiver(ctx):
            for _ in range(2):
                status = yield from ctx.recv(src=ANY_SOURCE, tag=ANY_TAG)
                got.append(status.source)

        machine.sim.spawn(sender(comm.context(0), 5))
        machine.sim.spawn(sender(comm.context(1), 6))
        machine.sim.spawn(receiver(comm.context(2)))
        machine.sim.run()
        assert sorted(got) == [0, 1]

    def test_fifo_non_overtaking_same_pair(self):
        """Messages between one (src, dst, tag) pair arrive in send order."""
        machine, comm = make_comm()
        got = []

        def sender(ctx):
            for i in range(4):
                yield from ctx.send(1, 50_000, tag=0, payload=i)

        def receiver(ctx):
            for _ in range(4):
                req = yield from ctx.irecv(src=0, tag=0)
                payload = yield req.event
                got.append(payload)

        machine.sim.spawn(sender(comm.context(0)))
        machine.sim.spawn(receiver(comm.context(1)))
        machine.sim.run()
        assert got == [0, 1, 2, 3]

    def test_isend_waitall_overlaps_transfers(self):
        """Non-blocking sends in different directions overlap (section V)."""
        machine, comm = make_comm(8)
        nbytes = 1_000_000

        def sender(ctx):
            reqs = []
            for dst, tag in ((1, 0), (2, 1), (4, 2)):
                req = yield from ctx.isend(dst, nbytes, tag=tag)
                reqs.append(req)
            yield from ctx.waitall(reqs)

        def receiver(ctx, tag):
            yield from ctx.recv(src=0, tag=tag)

        machine.sim.spawn(sender(comm.context(0)))
        # nodes 1, 2, 4 are distinct neighbours of node 0 in a 2x2x2 mesh
        machine.sim.spawn(receiver(comm.context(1), 0))
        machine.sim.spawn(receiver(comm.context(2), 1))
        machine.sim.spawn(receiver(comm.context(4), 2))
        machine.sim.run()
        one = BGP_SPEC.torus.message_time(nbytes, 1)
        assert machine.sim.now == pytest.approx(one, rel=0.01)

    def test_intranode_send_is_cheap_in_vn_mode(self):
        """VN-mode ranks on one node exchange via memcpy, not the torus."""
        machine, comm = make_comm(2, NodeMode.VN)
        assert machine.partition.node_of_rank(0) == machine.partition.node_of_rank(1)

        def sender(ctx):
            yield from ctx.send(1, 10_000_000)

        def receiver(ctx):
            yield from ctx.recv(src=0)

        machine.sim.spawn(sender(comm.context(0)))
        machine.sim.spawn(receiver(comm.context(1)))
        machine.sim.run()
        assert machine.sim.now == pytest.approx(BGP_SPEC.torus.message_overhead)

    def test_invalid_dst_rejected(self):
        machine, comm = make_comm(2)

        def bad(ctx):
            yield from ctx.send(99, 100)

        with pytest.raises(ValueError):
            machine.sim.run_process(bad(comm.context(0)))

    def test_negative_bytes_rejected(self):
        machine, comm = make_comm(2)

        def bad(ctx):
            yield from ctx.send(1, -5)

        with pytest.raises(ValueError):
            machine.sim.run_process(bad(comm.context(0)))

    def test_context_rank_bounds(self):
        _, comm = make_comm(2)
        with pytest.raises(ValueError):
            comm.context(2)

    def test_accounting(self):
        machine, comm = make_comm()

        def sender(ctx):
            yield from ctx.send(1, 1234)

        def receiver(ctx):
            yield from ctx.recv()

        machine.sim.spawn(sender(comm.context(0)))
        machine.sim.spawn(receiver(comm.context(1)))
        machine.sim.run()
        assert comm.messages_sent == 1
        assert comm.bytes_sent == 1234


class TestThreadModes:
    def test_single_mode_detects_concurrent_calls(self):
        """Section III-A: SINGLE forbids concurrent calls; we detect misuse."""
        machine, comm = make_comm(2, NodeMode.SMP, ThreadMode.SINGLE)
        ctx = comm.context(0)
        p1 = machine.sim.spawn(thread_gen(ctx, 0))
        p2 = machine.sim.spawn(thread_gen(ctx, 1))
        machine.sim.spawn(recv_gen(comm.context(1)))
        machine.sim.run()
        assert any(
            p.triggered and not p.ok and isinstance(p.value, SimulationError)
            for p in (p1, p2)
        )

    def test_multiple_mode_allows_concurrent_calls(self):
        machine, comm = make_comm(2, NodeMode.SMP, ThreadMode.MULTIPLE)
        ctx = comm.context(0)
        p1 = machine.sim.spawn(thread_gen(ctx, 0))
        p2 = machine.sim.spawn(thread_gen(ctx, 1))
        machine.sim.spawn(recv_gen(comm.context(1)))
        machine.sim.run()
        assert p1.ok and p2.ok

    def test_multiple_mode_pays_lock_overhead(self):
        """Every MPI call in MULTIPLE costs the lock overhead."""
        overhead = BGP_SPEC.threads.mpi_multiple_overhead

        def one_isend(comm):
            ctx = comm.context(0)

            def proc():
                req = yield from ctx.isend(1, 0)
                yield req.event

            return proc

        m_single, c_single = make_comm(2, NodeMode.SMP, ThreadMode.SINGLE)
        m_single.sim.spawn(recv_gen(c_single.context(1)))
        m_single.sim.spawn(one_isend(c_single)())
        t_single = m_single.sim.run()

        m_multi, c_multi = make_comm(2, NodeMode.SMP, ThreadMode.MULTIPLE)
        m_multi.sim.spawn(recv_gen(c_multi.context(1)))
        m_multi.sim.spawn(one_isend(c_multi)())
        t_multi = m_multi.sim.run()

        assert t_multi == pytest.approx(t_single + 2 * overhead)

    def test_multiple_mode_lock_serializes_threads(self):
        """Concurrent calls from one rank's threads queue on the MPI lock."""
        machine, comm = make_comm(2, NodeMode.SMP, ThreadMode.MULTIPLE)
        ctx = comm.context(0)
        overhead = BGP_SPEC.threads.mpi_multiple_overhead
        n_threads = 4
        start_times = []

        def thread():
            t0 = machine.sim.now
            req = yield from ctx.isend(1, 0)
            start_times.append(machine.sim.now - t0)
            yield req.event

        def receiver(rctx):
            for _ in range(n_threads):
                yield from rctx.recv()

        for _ in range(n_threads):
            machine.sim.spawn(thread())
        machine.sim.spawn(receiver(comm.context(1)))
        machine.sim.run()
        # The k-th thread leaves the lock at (k+1) * overhead.
        assert sorted(start_times)[-1] == pytest.approx(n_threads * overhead)


def thread_gen(ctx, tag):
    yield from ctx.send(1, 5_000_000, tag=tag)


def recv_gen(ctx):
    yield from ctx.recv(tag=0)
    yield from ctx.recv(tag=1)


class TestCollectives:
    def test_barrier_releases_all_together(self):
        machine, comm = make_comm(4)
        times = []

        def proc(rank, delay):
            ctx = comm.context(rank)
            yield machine.sim.timeout(delay)
            yield from ctx.barrier()
            times.append(machine.sim.now)

        for rank, delay in enumerate((0.0, 1.0, 2.0, 3.0)):
            machine.sim.spawn(proc(rank, delay))
        machine.sim.run()
        assert len(times) == 4
        assert all(t == pytest.approx(times[0]) for t in times)
        assert times[0] >= 3.0

    def test_barrier_reusable(self):
        machine, comm = make_comm(2)
        checkpoints = []

        def proc(rank):
            ctx = comm.context(rank)
            for i in range(3):
                yield from ctx.barrier()
                checkpoints.append((i, rank))

        machine.sim.spawn(proc(0))
        machine.sim.spawn(proc(1))
        machine.sim.run()
        assert len(checkpoints) == 6
        rounds = [i for i, _ in checkpoints]
        assert rounds == sorted(rounds)

    def test_allreduce_pays_tree_time(self):
        machine, comm = make_comm(16)
        nbytes = 1_000_000

        def proc(rank):
            yield from comm.context(rank).allreduce(nbytes)

        for rank in range(16):
            machine.sim.spawn(proc(rank))
        machine.sim.run()
        assert machine.sim.now == pytest.approx(
            BGP_SPEC.tree.collective_time(nbytes, 16)
        )

    def test_allreduce_negative_bytes(self):
        machine, comm = make_comm(2)

        def bad(ctx):
            yield from ctx.allreduce(-1)

        with pytest.raises(ValueError):
            machine.sim.run_process(bad(comm.context(0)))


class TestRankContext:
    def test_default_core_assignment_vn(self):
        machine, comm = make_comm(2, NodeMode.VN)
        # ranks 0-3 on node 0, cores 0-3
        for rank in range(4):
            ctx = comm.context(rank)
            assert ctx.node == 0
            assert ctx.core == rank

    def test_default_core_assignment_smp(self):
        machine, comm = make_comm(4, NodeMode.SMP)
        ctx = comm.context(2)
        assert ctx.node == 2
        assert ctx.core == 0

    def test_on_core_clones_context(self):
        machine, comm = make_comm(2, NodeMode.SMP)
        ctx = comm.context(0)
        t3 = ctx.on_core(3)
        assert t3.rank == ctx.rank and t3.node == ctx.node and t3.core == 3

    def test_compute_occupies_named_core(self):
        machine, comm = make_comm(2, NodeMode.SMP)
        ctx = comm.context(0)
        machine.sim.spawn(ctx.compute(1.0))
        machine.sim.spawn(ctx.on_core(1).compute(1.0))
        machine.sim.run()
        assert machine.sim.now == pytest.approx(1.0)
        assert machine.node(0).core_busy[0] == pytest.approx(1.0)
        assert machine.node(0).core_busy[1] == pytest.approx(1.0)
