"""Unit + property tests for repro.util.factorize."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.util.factorize import (
    balanced_partition,
    best_grid_factorization,
    chunk_offsets,
    divisors,
    factorizations_3d,
    prime_factors,
)


class TestPrimeFactors:
    def test_one_has_no_factors(self):
        assert prime_factors(1) == []

    def test_prime(self):
        assert prime_factors(13) == [13]

    def test_composite(self):
        assert prime_factors(360) == [2, 2, 2, 3, 3, 5]

    def test_large_prime_tail(self):
        assert prime_factors(2 * 9973) == [2, 9973]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            prime_factors(0)

    @given(st.integers(min_value=1, max_value=100_000))
    def test_product_reconstructs(self, n):
        product = math.prod(prime_factors(n))
        assert product == n

    @given(st.integers(min_value=2, max_value=100_000))
    def test_factors_are_prime(self, n):
        for p in prime_factors(n):
            assert all(p % d for d in range(2, int(p**0.5) + 1))


class TestDivisors:
    def test_one(self):
        assert divisors(1) == [1]

    def test_twelve(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]

    def test_perfect_square(self):
        assert divisors(36) == [1, 2, 3, 4, 6, 9, 12, 18, 36]

    @given(st.integers(min_value=1, max_value=20_000))
    def test_all_divide_and_sorted(self, n):
        ds = divisors(n)
        assert ds == sorted(ds)
        assert all(n % d == 0 for d in ds)
        assert ds[0] == 1 and ds[-1] == n


class TestFactorizations3D:
    def test_unit(self):
        assert factorizations_3d(1) == ((1, 1, 1),)

    def test_count_for_p2(self):
        # 4 = 2^2: multichoose -> (1,1,4)x3 orders, (1,2,2)x3 orders = 6
        assert len(factorizations_3d(4)) == 6

    @given(st.integers(min_value=1, max_value=512))
    def test_products_and_uniqueness(self, n):
        fs = factorizations_3d(n)
        assert all(a * b * c == n for a, b, c in fs)
        assert len(set(fs)) == len(fs)

    @given(st.integers(min_value=1, max_value=256))
    def test_closed_under_permutation(self, n):
        fs = set(factorizations_3d(n))
        for a, b, c in list(fs):
            assert (c, b, a) in fs and (b, a, c) in fs


class TestBestGridFactorization:
    def test_minimizes_objective(self):
        # Objective: surface of blocks from a cube of side 12.
        def surface(f):
            bx, by, bz = 12 / f[0], 12 / f[1], 12 / f[2]
            return bx * by + by * bz + bx * bz

        best = best_grid_factorization(8, surface)
        assert sorted(best) == [2, 2, 2]

    def test_tie_break_is_deterministic(self):
        results = {best_grid_factorization(64, lambda f: 0.0) for _ in range(10)}
        assert len(results) == 1

    def test_tie_break_prefers_cubic(self):
        best = best_grid_factorization(27, lambda f: 0.0)
        assert best == (3, 3, 3)


class TestBalancedPartition:
    def test_even(self):
        assert balanced_partition(8, 4) == [2, 2, 2, 2]

    def test_uneven(self):
        assert balanced_partition(10, 4) == [3, 3, 2, 2]

    def test_more_parts_than_items(self):
        assert balanced_partition(2, 4) == [1, 1, 0, 0]

    def test_zero_items(self):
        assert balanced_partition(0, 3) == [0, 0, 0]

    def test_rejects_zero_parts(self):
        with pytest.raises(ValueError):
            balanced_partition(3, 0)

    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=64))
    def test_sums_and_balance(self, n, parts):
        chunks = balanced_partition(n, parts)
        assert sum(chunks) == n
        assert len(chunks) == parts
        assert max(chunks) - min(chunks) <= 1
        assert chunks == sorted(chunks, reverse=True)


class TestChunkOffsets:
    def test_basic(self):
        assert chunk_offsets([3, 3, 2, 2]) == [0, 3, 6, 8]

    def test_single(self):
        assert chunk_offsets([5]) == [0]

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=20))
    def test_offsets_match_cumsum(self, sizes):
        offs = chunk_offsets(sizes)
        for i in range(1, len(sizes)):
            assert offs[i] == offs[i - 1] + sizes[i - 1]
