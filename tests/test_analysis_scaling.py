"""Tests for the scaling-analysis utilities."""

import pytest

from repro.analysis.scaling import (
    crossover_cores,
    gustafson_crossover,
    isoefficiency_grids,
    parallel_efficiency,
)
from repro.core import (
    FDJob,
    FLAT_OPTIMIZED,
    FLAT_ORIGINAL,
    HYBRID_MULTIPLE,
)
from repro.grid import GridDescriptor

GRID192 = GridDescriptor((192, 192, 192))
GRID144 = GridDescriptor((144, 144, 144))


class TestEfficiency:
    def test_in_unit_interval_and_decays(self):
        job = FDJob(GRID144, 32)
        effs = [
            parallel_efficiency(job, HYBRID_MULTIPLE, p)
            for p in (64, 1024, 4096)
        ]
        assert all(0 < e <= 1.05 for e in effs)
        assert effs == sorted(effs, reverse=True)

    def test_hybrid_more_efficient_than_original_at_scale(self):
        job = FDJob(GRID192, 2816)
        assert parallel_efficiency(job, HYBRID_MULTIPLE, 16384) > parallel_efficiency(
            job, FLAT_ORIGINAL, 16384
        )

    def test_explicit_batch_size(self):
        job = FDJob(GRID144, 32)
        e1 = parallel_efficiency(job, FLAT_OPTIMIZED, 4096, batch_size=1)
        e8 = parallel_efficiency(job, FLAT_OPTIMIZED, 4096, batch_size=8)
        assert e8 > e1


class TestCrossover:
    def test_hybrid_overtakes_flat_by_512_on_gustafson(self):
        """The generalized Fig 6 remark: 'At 512 CPU-cores Hybrid multiple
        is faster than Flat optimized' — our model has the crossover at or
        before 512."""
        p = gustafson_crossover(GRID192, HYBRID_MULTIPLE, FLAT_OPTIMIZED)
        assert p is not None
        assert p <= 512

    def test_optimized_always_beats_original(self):
        p = crossover_cores(FDJob(GRID192, 256), FLAT_OPTIMIZED, FLAT_ORIGINAL)
        assert p == 16  # from the first probe on

    def test_never_crossing_returns_none(self):
        p = crossover_cores(
            FDJob(GRID192, 256), FLAT_ORIGINAL, HYBRID_MULTIPLE,
            cores=(1024, 4096, 16384),
        )
        assert p is None


class TestIsoefficiency:
    def test_more_cores_need_more_grids(self):
        g1 = isoefficiency_grids(GRID192, HYBRID_MULTIPLE, 1024, 0.7)
        g2 = isoefficiency_grids(GRID192, HYBRID_MULTIPLE, 16384, 0.7)
        assert g1 is not None and g2 is not None
        assert g2 >= g1

    def test_original_needs_more_work_than_hybrid(self):
        """The latency-hiding approaches reach 60% utilization with less
        work per core than the original blocking code."""
        g_orig = isoefficiency_grids(GRID192, FLAT_ORIGINAL, 16384, 0.6)
        g_hyb = isoefficiency_grids(GRID192, HYBRID_MULTIPLE, 16384, 0.6)
        assert g_hyb is not None
        assert g_orig is None or g_orig > g_hyb

    def test_unreachable_target_returns_none(self):
        assert isoefficiency_grids(
            GRID192, FLAT_ORIGINAL, 16384, 0.99, max_grids=1 << 12
        ) is None

    def test_target_validated(self):
        with pytest.raises(ValueError):
            isoefficiency_grids(GRID192, HYBRID_MULTIPLE, 1024, 1.5)

    def test_result_is_minimal(self):
        from repro.core import PerformanceModel

        g = isoefficiency_grids(GRID192, HYBRID_MULTIPLE, 1024, 0.7)
        assert g is not None and g > 1
        pm = PerformanceModel()
        at = pm.best_batch_size(FDJob(GRID192, g), HYBRID_MULTIPLE, 1024)
        below = pm.best_batch_size(FDJob(GRID192, g - 1), HYBRID_MULTIPLE, 1024)
        assert at.utilization >= 0.7
        assert below.utilization < 0.7
