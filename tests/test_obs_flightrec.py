"""Flight recorder: bounded window, SCF wiring, crash-coupled dumps."""

import pytest

from repro.core.jobspec import JobSpec, LayoutSpec, ProblemSpec, RuntimeSpec
from repro.grid import GridDescriptor
from repro.obs import FlightRecorder
from repro.obs.export import parse_chrome_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import StepSpan


def _harmonic(n=6):
    gd = GridDescriptor((n, n, n), pbc=(False,) * 3, spacing=0.6)
    x, y, z = gd.coordinates()
    c = (n + 1) * 0.6 / 2
    v = 0.5 * ((x - c) ** 2 + 1.44 * (y - c) ** 2 + 1.96 * (z - c) ** 2)
    return gd, v


def _span(i, kind="ComputeInterior", resource="rank0.w0"):
    return StepSpan(resource=resource, step_kind=kind,
                    start=float(i), end=float(i) + 0.5)


class TestRingBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_window_is_bounded(self):
        rec = FlightRecorder(capacity=3)
        for it in range(7):
            rec.tracer.add(_span(it))
            rec.mark_iteration(it)
        assert len(rec) == 3
        assert [r.iteration for r in rec.window] == [4, 5, 6]
        # only the windowed spans remain
        assert len(rec.spans()) == 3

    def test_unrotated_spans_are_included(self):
        rec = FlightRecorder(capacity=2)
        rec.tracer.add(_span(0))
        rec.mark_iteration(0)
        rec.tracer.add(_span(1))  # not yet rotated
        assert len(rec.spans()) == 2

    def test_metric_deltas_only_record_changes(self):
        reg = MetricsRegistry()
        rec = FlightRecorder(capacity=4, metrics=reg)
        reg.counter("scf_iterations_total").inc()
        r0 = rec.mark_iteration(0)
        assert r0.metric_deltas == {"scf_iterations_total": 1.0}
        # nothing changed -> empty delta map, not a full snapshot
        r1 = rec.mark_iteration(1)
        assert r1.metric_deltas == {}
        reg.counter("scf_iterations_total").inc(3)
        r2 = rec.mark_iteration(2)
        assert r2.metric_deltas == {"scf_iterations_total": 3.0}


class TestSCFWiring:
    def test_run_rotates_every_iteration(self):
        from repro.dft import DistributedSCF

        gd, v = _harmonic()
        spec = JobSpec(
            problem=ProblemSpec.from_grid(gd, 1),
            layout=LayoutSpec(n_cores=2),
            runtime=RuntimeSpec(mixing=0.6, tolerance=0.0,
                                max_iterations=4, band_iterations=4),
        )
        rec = FlightRecorder(capacity=3)
        scf = DistributedSCF.from_spec(spec, v, occupations=[2.0])
        scf.run(flight_recorder=rec)
        # 4 iterations through a capacity-3 ring -> last three retained
        assert [r.iteration for r in rec.window] == [2, 3, 4]
        assert all(r.spans for r in rec.window)
        # the SCF stamped its config hash onto the recorder's tracer
        assert rec.config_hash == spec.config_hash()


class TestDump:
    def test_dump_round_trips_chrome_trace(self):
        rec = FlightRecorder(capacity=2, config_hash="abc123")
        for it in range(3):
            rec.tracer.add(_span(it))
            rec.mark_iteration(it)
        dump = rec.dump("test reason")
        assert dump["reason"] == "test reason"
        assert dump["config_hash"] == "abc123"
        assert dump["iterations"] == [1, 2]
        spans = parse_chrome_trace(dump["trace"])
        assert len(spans) == 2
        assert dump["critical_path"]["wall_time"] > 0

    def test_empty_dump(self):
        rec = FlightRecorder(capacity=2)
        dump = rec.dump("nothing recorded")
        assert dump["critical_path"] is None
        assert parse_chrome_trace(dump["trace"]) == []


class TestControllerCrashDump:
    def test_controller_kill_dumps_the_window(self):
        from repro.core import DegradationPolicy
        from repro.dft import (
            DistributedSCF,
            MemoryCheckpointStore,
            RecoveryController,
        )
        from repro.transport import FaultPlan, FaultyTransport, InprocTransport

        gd, v = _harmonic()
        spec = JobSpec(
            problem=ProblemSpec.from_grid(gd, 4),
            layout=LayoutSpec(n_cores=4, n_band_groups=2),
            runtime=RuntimeSpec(mixing=0.6, tolerance=0.0,
                                max_iterations=4, band_iterations=4,
                                checkpoint_every=1),
        )
        scf = DistributedSCF.from_spec(
            spec, v, occupations=[2.0] * 4,
            checkpoint_store=MemoryCheckpointStore(),
        )
        plan = FaultPlan(seed=0, kill_at={2: 400})

        def factory(attempt, n_ranks):
            inner = InprocTransport(n_ranks, default_timeout=5.0)
            return FaultyTransport(inner, plan) if attempt == 0 else inner

        rec = FlightRecorder(capacity=8)
        ctrl = RecoveryController(
            scf,
            policy=DegradationPolicy(max_restarts=2),
            transport_factory=factory,
            flight_recorder=rec,
        )
        res = ctrl.run()
        assert res.restarts == 1
        assert len(ctrl.flight_dumps) == 1
        dump = ctrl.flight_dumps[0]
        assert dump["crash_report"]["error_type"] == "RankKilledError"
        assert dump["crash_report"]["failed_rank"] == 2
        spans = parse_chrome_trace(dump["trace"])
        assert spans
        assert dump["critical_path"]["n_spans"] == len(spans)
