"""Tests for the first-derivative (gradient) stencils."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stencil.gradient import (
    apply_gradient_global,
    apply_gradient_padded,
    gradient_weights,
)


class TestWeights:
    def test_radius1_classic(self):
        assert gradient_weights(1) == (0.5,)

    def test_radius2_classic(self):
        w = gradient_weights(2)
        assert w[0] == pytest.approx(2 / 3)
        assert w[1] == pytest.approx(-1 / 12)

    def test_spacing_scales_inverse(self):
        assert gradient_weights(2, spacing=0.5)[0] == pytest.approx(4 / 3)

    @pytest.mark.parametrize("radius", [1, 2, 3, 4])
    def test_first_moment_is_one(self, radius):
        """sum_d 2 d w_d = 1: the stencil differentiates x exactly."""
        w = gradient_weights(radius)
        assert sum(2 * d * wd for d, wd in enumerate(w, start=1)) == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            gradient_weights(0)
        with pytest.raises(ValueError):
            gradient_weights(5)
        with pytest.raises(ValueError):
            gradient_weights(2, spacing=0)


class TestGlobalGradient:
    def test_derivative_of_sine(self):
        n, h = 32, 2 * np.pi / 32
        x = np.arange(n) * h
        a = np.sin(x)[:, None, None] * np.ones((1, 4, 4))
        d = apply_gradient_global(a, axis=0, spacing=h)
        expected = np.cos(x)[:, None, None] * np.ones((1, 4, 4))
        np.testing.assert_allclose(d, expected, atol=2e-4)

    def test_constant_has_zero_gradient(self):
        a = np.full((8, 8, 8), 3.0)
        for axis in range(3):
            np.testing.assert_allclose(
                apply_gradient_global(a, axis), 0.0, atol=1e-12
            )

    def test_linear_ramp_exact_interior(self):
        n = 10
        idx = np.arange(n, dtype=float)
        a = idx[:, None, None] * np.ones((1, n, n))
        d = apply_gradient_global(a, axis=0, periodic=False)
        np.testing.assert_allclose(d[2:-2], 1.0, atol=1e-12)

    def test_axis_selection(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal((6, 7, 8))
        dx = apply_gradient_global(a, 0)
        dy = apply_gradient_global(np.moveaxis(a, 1, 0), 0)
        np.testing.assert_allclose(np.moveaxis(apply_gradient_global(a, 1), 1, 0), dy)
        assert dx.shape == a.shape

    def test_invalid_axis(self):
        with pytest.raises(ValueError):
            apply_gradient_global(np.zeros((4, 4, 4)), 3)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=0, max_value=2))
    def test_property_antisymmetric_under_reflection(self, seed, axis):
        """grad(flip(a)) == -flip(grad(a)) for periodic grids.

        Reflection about index 0 (composed with the periodic wrap) maps the
        +d neighbour to the -d neighbour, so the antisymmetric stencil
        flips sign.
        """
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((6, 6, 6))

        def reflect(arr):
            return np.roll(np.flip(arr, axis=axis), 1, axis=axis)

        lhs = apply_gradient_global(reflect(a), axis)
        rhs = -reflect(apply_gradient_global(a, axis))
        np.testing.assert_allclose(lhs, rhs, atol=1e-10)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_property_linearity(self, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((5, 5, 5))
        b = rng.standard_normal((5, 5, 5))
        lhs = apply_gradient_global(a + 2 * b, 1)
        rhs = apply_gradient_global(a, 1) + 2 * apply_gradient_global(b, 1)
        np.testing.assert_allclose(lhs, rhs, atol=1e-10)

    def test_property_integration_by_parts(self):
        """<f, d g> = -<d f, g> on a periodic grid (skew adjoint)."""
        rng = np.random.default_rng(5)
        f = rng.standard_normal((6, 6, 6))
        g = rng.standard_normal((6, 6, 6))
        lhs = np.vdot(f, apply_gradient_global(g, 2))
        rhs = -np.vdot(apply_gradient_global(f, 2), g)
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestPaddedGradient:
    def test_matches_global_on_wrapped_padding(self):
        rng = np.random.default_rng(7)
        a = rng.standard_normal((8, 7, 6))
        padded = np.pad(a, 2, mode="wrap")
        for axis in range(3):
            got = apply_gradient_padded(padded, axis, radius=2, spacing=0.3)
            want = apply_gradient_global(a, axis, radius=2, spacing=0.3)
            np.testing.assert_allclose(got, want, atol=1e-12)

    def test_matches_global_zero_boundary(self):
        rng = np.random.default_rng(8)
        a = rng.standard_normal((6, 6, 6))
        padded = np.pad(a, 2, mode="constant")
        got = apply_gradient_padded(padded, 0)
        want = apply_gradient_global(a, 0, periodic=False)
        np.testing.assert_allclose(got, want, atol=1e-12)

    def test_out_parameter(self):
        padded = np.random.default_rng(9).standard_normal((9, 9, 9))
        out = np.ones((5, 5, 5))
        result = apply_gradient_padded(padded, 0, out=out)
        assert result is out

    def test_out_shape_checked(self):
        with pytest.raises(ValueError):
            apply_gradient_padded(np.zeros((9, 9, 9)), 0, out=np.zeros((3, 3, 3)))

    def test_too_small_padded(self):
        with pytest.raises(ValueError):
            apply_gradient_padded(np.zeros((4, 9, 9)), 0)
