"""Tests for Hamiltonian, eigensolver, orthogonalization, density, SCF."""

import numpy as np
import pytest

from repro.dft import (
    Hamiltonian,
    SCFLoop,
    density_from_states,
    gram_schmidt,
    lowdin,
    lowest_eigenstates,
    overlap_matrix,
)
from repro.dft.density import total_charge
from repro.grid import GridDescriptor


def harmonic_grid(n=24, spacing=0.35, omega=1.0):
    """An open-boundary box with a centred harmonic potential."""
    gd = GridDescriptor((n, n, n), pbc=(False,) * 3, spacing=spacing)
    x, y, z = gd.coordinates()
    c = (n + 1) * spacing / 2
    v = 0.5 * omega**2 * ((x - c) ** 2 + (y - c) ** 2 + (z - c) ** 2)
    return gd, v


class TestHamiltonian:
    def test_free_particle_plane_wave_energy(self):
        """On a periodic grid, exp(ikx) has kinetic energy k_eff^2/2 with
        the discrete dispersion of the radius-2 stencil."""
        n, h = 16, 0.4
        gd = GridDescriptor((n, n, n), spacing=h, dtype=np.complex128)
        ham = Hamiltonian(gd)
        k = 2 * np.pi / (n * h)
        x = np.arange(n) * h
        psi = (np.exp(1j * k * x)[:, None, None] * np.ones((1, n, n))).astype(
            np.complex128
        )
        e = ham.expectation(psi)
        # discrete eigenvalue of -1/2 d2/dx2 for the radius-2 stencil; the
        # constant y/z directions contribute exactly zero (weights sum to 0)
        w1, w2 = 4 / 3 / h**2, -1 / 12 / h**2
        lam = -0.5 * (
            -2.5 / h**2 + 2 * w1 * np.cos(k * h) + 2 * w2 * np.cos(2 * k * h)
        )
        assert e == pytest.approx(lam, rel=1e-10)
        # ... and close to the continuum k^2/2 for this resolution
        assert e == pytest.approx(k**2 / 2, rel=0.01)

    def test_potential_shifts_energy(self):
        gd, v = harmonic_grid(n=12)
        psi = gd.random(seed=1)
        h0 = Hamiltonian(gd)
        hv = Hamiltonian(gd, v)
        shift = np.vdot(psi, v * psi).real / np.vdot(psi, psi).real
        assert hv.expectation(psi) == pytest.approx(h0.expectation(psi) + shift)

    def test_hermitian(self):
        gd, v = harmonic_grid(n=10)
        ham = Hamiltonian(gd, v)
        a, b = gd.random(seed=2), gd.random(seed=3)
        assert np.vdot(a, ham(b)) == pytest.approx(np.vdot(ham(a), b), rel=1e-10)

    def test_with_potential_shares_kinetic(self):
        gd, v = harmonic_grid(n=10)
        h1 = Hamiltonian(gd, v)
        h2 = h1.with_potential(2 * v)
        assert h2.kinetic is h1.kinetic
        psi = gd.random(seed=4)
        np.testing.assert_allclose(h2(psi), h1(psi) + v * psi, rtol=1e-12)

    def test_shape_validation(self):
        gd = GridDescriptor((8, 8, 8))
        with pytest.raises(ValueError):
            Hamiltonian(gd, potential=np.zeros((4, 4, 4)))
        with pytest.raises(ValueError):
            Hamiltonian(gd).apply(np.zeros((4, 4, 4)))

    def test_zero_state_expectation_rejected(self):
        gd = GridDescriptor((8, 8, 8))
        with pytest.raises(ValueError):
            Hamiltonian(gd).expectation(gd.zeros())


class TestEigensolver:
    def test_harmonic_oscillator_spectrum(self):
        """3D harmonic oscillator: E_n = (n + 3/2) omega, degeneracies
        1, 3, 6 for the lowest shells."""
        gd, v = harmonic_grid(n=28, spacing=0.35)
        result = lowest_eigenstates(Hamiltonian(gd, v), k=4, tol=1e-6)
        e = result.energies
        assert e[0] == pytest.approx(1.5, abs=0.03)
        for i in (1, 2, 3):
            assert e[i] == pytest.approx(2.5, abs=0.05)

    def test_states_orthonormal(self):
        gd, v = harmonic_grid(n=16)
        result = lowest_eigenstates(Hamiltonian(gd, v), k=3, tol=1e-8)
        s = overlap_matrix(gd, result.states)
        np.testing.assert_allclose(s, np.eye(3), atol=1e-6)

    def test_states_satisfy_eigen_equation(self):
        gd, v = harmonic_grid(n=16)
        ham = Hamiltonian(gd, v)
        result = lowest_eigenstates(ham, k=2, tol=1e-10)
        for e, psi in zip(result.energies, result.states):
            residual = ham(psi) - e * psi
            assert np.linalg.norm(residual) < 1e-5 * np.linalg.norm(psi)

    def test_k_validated(self):
        gd, v = harmonic_grid(n=8)
        with pytest.raises(ValueError):
            lowest_eigenstates(Hamiltonian(gd, v), k=0)

    def test_deterministic_with_seed(self):
        gd, v = harmonic_grid(n=10)
        a = lowest_eigenstates(Hamiltonian(gd, v), k=2, seed=7)
        b = lowest_eigenstates(Hamiltonian(gd, v), k=2, seed=7)
        np.testing.assert_allclose(a.energies, b.energies, rtol=1e-12)


class TestOrthogonalization:
    def make_states(self, gd, n=4, seed=0):
        rng = np.random.default_rng(seed)
        return rng.standard_normal((n,) + gd.shape)

    def test_gram_schmidt_orthonormalizes(self):
        gd = GridDescriptor((10, 10, 10), spacing=0.3)
        states = gram_schmidt(gd, self.make_states(gd))
        np.testing.assert_allclose(overlap_matrix(gd, states), np.eye(4), atol=1e-10)

    def test_lowdin_orthonormalizes(self):
        gd = GridDescriptor((10, 10, 10), spacing=0.3)
        states = lowdin(gd, self.make_states(gd))
        np.testing.assert_allclose(overlap_matrix(gd, states), np.eye(4), atol=1e-10)

    def test_overlap_matrix_is_bitwise_hermitian(self):
        """The blocked build computes the lower triangle and reflects it,
        so symmetry holds to the bit, not just to round-off."""
        gd = GridDescriptor((9, 8, 7), spacing=0.4)
        s = overlap_matrix(gd, self.make_states(gd, n=5, seed=3))
        assert (s == s.conj().T).all()

    def test_overlap_matrix_matches_naive_gram(self):
        gd = GridDescriptor((8, 8, 8), spacing=0.35)
        states = self.make_states(gd, n=6, seed=1)
        flat = states.reshape(6, -1)
        naive = (flat.conj() @ flat.T) * gd.spacing**3
        np.testing.assert_allclose(
            overlap_matrix(gd, states), naive, rtol=1e-13, atol=1e-13
        )

    def test_overlap_matrix_single_state(self):
        gd = GridDescriptor((6, 6, 6), spacing=0.5)
        states = self.make_states(gd, n=1)
        s = overlap_matrix(gd, states)
        assert s.shape == (1, 1)
        want = np.vdot(states[0], states[0]) * gd.spacing**3
        assert s[0, 0] == pytest.approx(want, rel=1e-13)

    def test_gram_schmidt_preserves_first_direction(self):
        gd = GridDescriptor((8, 8, 8), spacing=0.3)
        states = self.make_states(gd)
        out = gram_schmidt(gd, states)
        cos = np.vdot(out[0], states[0]) / (
            np.linalg.norm(out[0]) * np.linalg.norm(states[0])
        )
        assert abs(cos) == pytest.approx(1.0, rel=1e-10)

    def test_lowdin_is_symmetric_least_change(self):
        """Löwdin treats bands symmetrically: orthogonalizing a permuted
        set is the permutation of the orthogonalized set."""
        gd = GridDescriptor((8, 8, 8), spacing=0.3)
        states = self.make_states(gd)
        perm = [2, 0, 3, 1]
        a = lowdin(gd, states)[perm]
        b = lowdin(gd, states[perm])
        np.testing.assert_allclose(a, b, atol=1e-10)

    def test_dependent_bands_detected(self):
        gd = GridDescriptor((8, 8, 8), spacing=0.3)
        states = self.make_states(gd, n=3)
        states[2] = 0.5 * states[0] - states[1]
        with pytest.raises(ValueError):
            gram_schmidt(gd, states)
        with pytest.raises(ValueError):
            lowdin(gd, states)

    def test_shape_validated(self):
        gd = GridDescriptor((8, 8, 8))
        with pytest.raises(ValueError):
            gram_schmidt(gd, np.zeros((2, 4, 4, 4)))
        with pytest.raises(ValueError):
            overlap_matrix(gd, np.zeros((8, 8, 8)))


class TestDensity:
    def test_charge_counts_electrons(self):
        gd, v = harmonic_grid(n=16)
        result = lowest_eigenstates(Hamiltonian(gd, v), k=2, tol=1e-8)
        rho = density_from_states(gd, result.states)  # 2 e per band
        assert total_charge(gd, rho) == pytest.approx(4.0, rel=1e-4)

    def test_custom_occupations(self):
        gd, v = harmonic_grid(n=12)
        result = lowest_eigenstates(Hamiltonian(gd, v), k=2, tol=1e-6)
        rho = density_from_states(gd, result.states, occupations=[2.0, 0.0])
        rho_single = density_from_states(gd, result.states[:1], occupations=[2.0])
        np.testing.assert_allclose(rho, rho_single, atol=1e-12)

    def test_density_nonnegative_and_real(self):
        gd, v = harmonic_grid(n=12)
        result = lowest_eigenstates(Hamiltonian(gd, v), k=3, tol=1e-6)
        rho = density_from_states(gd, result.states)
        assert rho.dtype == np.float64
        assert rho.min() >= 0

    def test_validation(self):
        gd = GridDescriptor((8, 8, 8))
        with pytest.raises(ValueError):
            density_from_states(gd, np.zeros((2, 4, 4, 4)))
        with pytest.raises(ValueError):
            density_from_states(gd, np.zeros((2,) + gd.shape), occupations=[1.0])
        with pytest.raises(ValueError):
            density_from_states(gd, np.zeros((1,) + gd.shape), occupations=[-1.0])


class TestSCF:
    def test_hartree_loop_converges(self):
        """Two electrons in a harmonic trap: the SCF loop must converge and
        the Hartree repulsion must push the band energy above the
        non-interacting value."""
        gd, v = harmonic_grid(n=16, spacing=0.5)
        non_interacting = lowest_eigenstates(Hamiltonian(gd, v), k=1, tol=1e-7)
        scf = SCFLoop(
            gd, v, n_bands=1, occupations=[2.0], mixing=0.6,
            tolerance=1e-4, max_iterations=40, eig_tol=1e-7,
        )
        result = scf.run()
        assert result.converged
        assert result.energies[0] > non_interacting.energies[0]
        assert total_charge(gd, result.density) == pytest.approx(2.0, rel=1e-3)

    def test_density_change_monotone_tail(self):
        gd, v = harmonic_grid(n=12, spacing=0.5)
        scf = SCFLoop(gd, v, n_bands=1, occupations=[2.0], tolerance=1e-5,
                      max_iterations=30, eig_tol=1e-6)
        result = scf.run()
        assert result.converged
        tail = result.density_change_history[-3:]
        assert tail == sorted(tail, reverse=True)

    def test_validation(self):
        gd, v = harmonic_grid(n=8)
        with pytest.raises(ValueError):
            SCFLoop(gd, v, n_bands=0)
        with pytest.raises(ValueError):
            SCFLoop(gd, v, n_bands=1, mixing=0.0)
        with pytest.raises(ValueError):
            SCFLoop(gd, np.zeros((4, 4, 4)), n_bands=1)
