"""Bit-exactness of the compiled replay engine against the reference engine.

The compiled engine (:mod:`repro.core.simrun_compiled`) claims *hop
parity* with the generator-process reference engine: same heap entries,
same ``(time, seq)`` order, hence identical timestamps, message order
under contention, traces and event counts.  These tests run both engines
on the same configuration and demand **exact** equality — no tolerances
anywhere — on every observable: totals, utilization, byte/message
counters, fired-event counts, the full activity trace (times, resources,
labels, tie order) and the full step trace, including under a seeded
:class:`~repro.transport.faults.FaultPlan` with every fault kind armed.
"""

import pytest

from repro.core import (
    FLAT_OPTIMIZED,
    FLAT_ORIGINAL,
    HYBRID_MASTER_ONLY,
    HYBRID_MULTIPLE,
    FDJob,
    simulate_fd,
)
from repro.core.approaches import FLAT_SUBGROUPS
from repro.grid import GridDescriptor
from repro.obs.spans import SpanTracer
from repro.transport.faults import FaultPlan


def _job(shape=(24, 24, 24), n_grids=8):
    return FDJob(GridDescriptor(shape), n_grids)


def _span_rows(tracer):
    """Spans as raw tuples — Span.__eq__ compares (start, end) only."""
    return [(s.start, s.end, s.resource, s.label) for s in tracer.spans()]


def _step_rows(tracer):
    return [
        (
            s.resource, s.step_kind, s.start, s.end, s.plane, s.worker,
            s.grid_ids, s.seq, s.dim, s.direction,
        )
        for s in tracer.spans()
    ]


def _run_both(approach, n_cores, batch_size=1, ramp_up=False, shape=(24, 24, 24),
              n_grids=8, fault_plan=None, placement="auto"):
    results = []
    for engine in ("reference", "compiled"):
        results.append(
            simulate_fd(
                _job(shape, n_grids),
                approach,
                n_cores,
                batch_size=batch_size,
                ramp_up=ramp_up,
                placement=placement,
                trace=True,
                fault_plan=fault_plan.replica() if fault_plan else None,
                step_tracer=SpanTracer(plane="sim"),
                engine=engine,
            )
        )
    return results


def _assert_identical(ref, cmp):
    assert ref.engine == "reference" and cmp.engine == "compiled"
    assert cmp.total == ref.total
    assert cmp.utilization == ref.utilization
    assert cmp.comm_bytes_per_node == ref.comm_bytes_per_node
    assert cmp.messages == ref.messages
    assert cmp.fault_events == ref.fault_events
    assert cmp.events == ref.events
    assert cmp.ir_steps == ref.ir_steps
    assert _span_rows(cmp.trace) == _span_rows(ref.trace)
    assert _step_rows(cmp.step_trace) == _step_rows(ref.step_trace)


CONFIGS = [
    # (approach, n_cores, batch_size, ramp_up)
    (FLAT_ORIGINAL, 8, 1, False),
    (FLAT_ORIGINAL, 32, 1, False),
    (FLAT_OPTIMIZED, 8, 1, False),
    (FLAT_OPTIMIZED, 32, 4, False),
    (FLAT_OPTIMIZED, 32, 4, True),
    (HYBRID_MULTIPLE, 16, 2, False),
    (HYBRID_MULTIPLE, 32, 4, False),
    (HYBRID_MASTER_ONLY, 16, 2, False),
    (HYBRID_MASTER_ONLY, 32, 1, False),
    (FLAT_SUBGROUPS, 32, 2, False),
]


class TestEngineEquivalence:
    @pytest.mark.parametrize(
        "approach,n_cores,batch_size,ramp_up",
        CONFIGS,
        ids=[f"{a.name}-{c}c-b{b}{'-ramp' if r else ''}" for a, c, b, r in CONFIGS],
    )
    def test_bit_identical(self, approach, n_cores, batch_size, ramp_up):
        ref, cmp = _run_both(approach, n_cores, batch_size, ramp_up)
        _assert_identical(ref, cmp)

    def test_single_core(self):
        ref, cmp = _run_both(FLAT_OPTIMIZED, 1, shape=(16, 16, 16), n_grids=4)
        _assert_identical(ref, cmp)

    def test_spread_placement(self):
        ref, cmp = _run_both(
            FLAT_OPTIMIZED, 32, batch_size=2, placement="spread"
        )
        _assert_identical(ref, cmp)

    def test_without_tracing(self):
        # tracing off exercises the compiled engine's untraced fast path
        job = _job()
        ref = simulate_fd(job, HYBRID_MULTIPLE, 32, batch_size=2,
                          engine="reference")
        cmp = simulate_fd(job, HYBRID_MULTIPLE, 32, batch_size=2,
                          engine="compiled")
        assert cmp.total == ref.total
        assert cmp.utilization == ref.utilization
        assert cmp.messages == ref.messages
        assert cmp.events == ref.events


class TestEngineEquivalenceUnderFaults:
    FAULTY = FaultPlan(
        seed=7,
        p_delay=0.15,
        p_drop=0.1,
        p_duplicate=0.1,
        p_corrupt=0.1,
        delay=3e-4,
        retransmit_timeout=1e-4,
    )

    @pytest.mark.parametrize(
        "approach,n_cores,batch_size",
        [
            (FLAT_OPTIMIZED, 32, 2),
            (HYBRID_MULTIPLE, 32, 2),
            (FLAT_SUBGROUPS, 32, 1),
        ],
        ids=["flat-opt", "hybrid-mult", "subgroups"],
    )
    def test_seeded_faults(self, approach, n_cores, batch_size):
        ref, cmp = _run_both(
            approach, n_cores, batch_size, fault_plan=self.FAULTY
        )
        assert ref.fault_events > 0
        _assert_identical(ref, cmp)

    def test_rank_kill_restart(self):
        plan = FaultPlan(seed=3, kill_at={2: 5, 5: 9}, restart_time=2e-3)
        ref, cmp = _run_both(FLAT_OPTIMIZED, 32, 2, fault_plan=plan)
        _assert_identical(ref, cmp)

    def test_kill_under_hybrid(self):
        plan = FaultPlan(seed=4, kill_at={1: 3}, restart_time=1e-3)
        ref, cmp = _run_both(HYBRID_MASTER_ONLY, 16, 2, fault_plan=plan)
        _assert_identical(ref, cmp)
