"""Tests for repro.smpi.cart — Cartesian communicator and torus embedding."""

import pytest
from hypothesis import given, strategies as st

from repro.machine import Machine, NodeMode
from repro.smpi import CartComm, SimComm


def make_cart(n_nodes=64, mode=NodeMode.SMP, dims=None, periodic=(True, True, True)):
    machine = Machine(n_nodes, mode)
    comm = SimComm(machine)
    return CartComm(comm, dims=dims, periodic=periodic)


class TestConstruction:
    def test_default_dims_cover_ranks(self):
        cart = make_cart(64, NodeMode.VN)
        assert cart.dims == (4, 4, 16)

    def test_custom_dims(self):
        cart = make_cart(64, NodeMode.SMP, dims=(8, 8, 1))
        assert cart.dims == (8, 8, 1)

    def test_dims_must_cover(self):
        machine = Machine(8)
        with pytest.raises(ValueError):
            CartComm(SimComm(machine), dims=(2, 2, 3))


class TestCoordinates:
    def test_roundtrip(self):
        cart = make_cart(64)
        for rank in range(64):
            assert cart.rank_at(cart.coords(rank)) == rank

    def test_coords_bounds(self):
        cart = make_cart(8)
        with pytest.raises(ValueError):
            cart.coords(8)

    def test_periodic_wrap(self):
        cart = make_cart(64)  # 4x4x4
        assert cart.rank_at((4, 0, 0)) == cart.rank_at((0, 0, 0))
        assert cart.rank_at((-1, 0, 0)) == cart.rank_at((3, 0, 0))

    def test_nonperiodic_wall(self):
        cart = make_cart(64, periodic=(False, False, False))
        assert cart.rank_at((4, 0, 0)) is None
        assert cart.rank_at((-1, 0, 0)) is None


class TestShift:
    def test_shift_basic(self):
        cart = make_cart(64)  # 4x4x4
        rank = cart.rank_at((1, 1, 1))
        src, dst = cart.shift(rank, 0, 1)
        assert cart.coords(dst) == (2, 1, 1)
        assert cart.coords(src) == (0, 1, 1)

    def test_shift_wraps_periodic(self):
        cart = make_cart(64)
        rank = cart.rank_at((3, 0, 0))
        _, dst = cart.shift(rank, 0, 1)
        assert cart.coords(dst) == (0, 0, 0)

    def test_shift_null_at_wall(self):
        cart = make_cart(64, periodic=(False, True, True))
        rank = cart.rank_at((3, 0, 0))
        src, dst = cart.shift(rank, 0, 1)
        assert dst is None
        assert cart.coords(src) == (2, 0, 0)

    def test_shift_distance_two(self):
        """The paper's stencil reaches two neighbours deep."""
        cart = make_cart(64)
        rank = cart.rank_at((0, 0, 0))
        src, dst = cart.shift(rank, 2, 2)
        assert cart.coords(dst) == (0, 0, 2)
        assert cart.coords(src) == (0, 0, 2)  # wraps: -2 % 4 == 2

    def test_invalid_dim(self):
        cart = make_cart(8)
        with pytest.raises(ValueError):
            cart.shift(0, 3, 1)

    def test_neighbors_lists_six(self):
        cart = make_cart(64)
        neigh = cart.neighbors(0)
        assert len(neigh) == 6
        dims = [d for d, _, _ in neigh]
        assert dims == [0, 0, 1, 1, 2, 2]

    @given(st.integers(min_value=0, max_value=63), st.integers(min_value=0, max_value=2))
    def test_property_shift_is_symmetric(self, rank, dim):
        """dest's source is the original rank (periodic torus)."""
        cart = make_cart(64)
        _, dst = cart.shift(rank, dim, 1)
        src_of_dst, _ = cart.shift(dst, dim, 1)
        assert src_of_dst == rank


class TestPhysicalEmbedding:
    def test_smp_default_layout_is_physical_on_torus(self):
        """On a real torus partition (>=512 nodes) the default Cart layout
        embeds 1:1 — every Cartesian neighbour is one wire away."""
        cart = make_cart(512, NodeMode.SMP)
        assert cart.comm.machine.topology.torus
        assert cart.max_neighbor_hops() == 1

    def test_mesh_partition_penalizes_periodic_wraparound(self):
        """Section V: partitions under 512 nodes only form a mesh, so
        periodic boundaries must route across the whole dimension."""
        cart = make_cart(64, NodeMode.SMP)  # 4x4x4 mesh
        assert not cart.comm.machine.topology.torus
        assert cart.max_neighbor_hops() == 3  # wrap = dimension size - 1

    def test_mesh_nonperiodic_layout_is_physical(self):
        """Without wrap-around, mesh neighbours are still one hop."""
        cart = make_cart(64, NodeMode.SMP, periodic=(False, False, False))
        assert cart.max_neighbor_hops() == 1

    def test_vn_default_layout_is_physical(self):
        """VN mode: the 4 ranks of a node extend Z; non-periodic neighbours
        are intra-node (0 hops) or one wire (1 hop)."""
        cart = make_cart(16, NodeMode.VN, periodic=(False, False, False))
        assert cart.max_neighbor_hops() <= 1

    def test_bad_layout_detected(self):
        """A transposed layout produces multi-hop 'neighbours'."""
        cart = make_cart(32, NodeMode.SMP, dims=(1, 1, 32))
        assert cart.max_neighbor_hops() > 1

    def test_hops_to_self_zero(self):
        cart = make_cart(8)
        assert cart.hops_to(0, 0) == 0
