"""Tests for the stencil coefficients and kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stencil import (
    StencilCoefficients,
    apply_stencil_batch,
    apply_stencil_global,
    apply_stencil_padded,
    flops_per_point,
    laplacian_coefficients,
    paper_constants,
)
from repro.stencil.coefficients import coefficients_sum
from repro.stencil.reference import apply_stencil_naive


class TestCoefficients:
    def test_radius2_is_13_points(self):
        st2 = laplacian_coefficients(2)
        assert st2.radius == 2
        assert st2.n_points == 13

    def test_radius2_classic_weights(self):
        st2 = laplacian_coefficients(2, spacing=1.0)
        assert st2.center == pytest.approx(3 * -2.5)
        assert st2.weights[0] == pytest.approx(4 / 3)
        assert st2.weights[1] == pytest.approx(-1 / 12)

    def test_spacing_scales_inverse_square(self):
        fine = laplacian_coefficients(2, spacing=0.5)
        coarse = laplacian_coefficients(2, spacing=1.0)
        assert fine.center == pytest.approx(4 * coarse.center)

    @pytest.mark.parametrize("radius", [1, 2, 3, 4])
    def test_weights_sum_to_zero(self, radius):
        """A constant field has zero Laplacian."""
        assert coefficients_sum(laplacian_coefficients(radius)) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            laplacian_coefficients(0)
        with pytest.raises(ValueError):
            laplacian_coefficients(5)

    def test_invalid_spacing(self):
        with pytest.raises(ValueError):
            laplacian_coefficients(2, spacing=-1.0)

    def test_paper_constants_layout(self):
        c = paper_constants()
        assert len(c) == 13
        st2 = laplacian_coefficients(2)
        assert c[0] == st2.center
        # distance-1 pairs: C2/C3 (x), C6/C7 (y), C10/C11 (z)
        for i in (1, 2, 5, 6, 9, 10):
            assert c[i] == st2.weights[0]
        # distance-2 pairs: C4/C5, C8/C9, C12/C13
        for i in (3, 4, 7, 8, 11, 12):
            assert c[i] == st2.weights[1]

    def test_scale(self):
        st2 = laplacian_coefficients(2)
        kinetic = st2.scale(-0.5)
        assert kinetic.center == pytest.approx(-0.5 * st2.center)
        assert kinetic.weights[1] == pytest.approx(-0.5 * st2.weights[1])

    def test_flops_per_point(self):
        assert flops_per_point(laplacian_coefficients(2)) == 25
        assert flops_per_point(laplacian_coefficients(1)) == 13


class TestGlobalKernel:
    def test_constant_field_zero_laplacian_periodic(self):
        st2 = laplacian_coefficients(2)
        a = np.full((8, 8, 8), 3.7)
        out = apply_stencil_global(a, st2)
        np.testing.assert_allclose(out, 0.0, atol=1e-12)

    def test_plane_wave_eigenfunction(self):
        """exp(ikx) is an eigenfunction of the discrete periodic Laplacian."""
        n, h = 16, 0.3
        st2 = laplacian_coefficients(2, spacing=h)
        x = np.arange(n) * h
        k = 2 * np.pi / (n * h)
        wave = np.exp(1j * k * x)[:, None, None] * np.ones((1, n, n))
        out = apply_stencil_global(wave.astype(np.complex128), st2)
        # discrete eigenvalue of the radius-2 second difference
        w1, w2 = st2.weights
        lam = 3 * (-2.5 / h**2) + 2 * w1 * np.cos(k * h) + 2 * w2 * np.cos(2 * k * h)
        # subtract the y/z centre contributions already inside st2.center:
        # centre = 3*c0; y and z directions contribute c0 + 2*(w1+w2) = 0 each
        lam += 2 * (w1 + w2) * 2  # y and z neighbour terms on constant axes
        np.testing.assert_allclose(out, lam * wave, rtol=1e-10)

    def test_quadratic_exact_zero_boundary_interior(self):
        """The FD Laplacian of x^2+y^2+z^2 is exactly 6 in the interior
        (central differences are exact for quadratics)."""
        n, h = 12, 0.25
        st2 = laplacian_coefficients(2, spacing=h)
        idx = np.arange(n) * h
        X, Y, Z = np.meshgrid(idx, idx, idx, indexing="ij")
        a = X**2 + Y**2 + Z**2
        out = apply_stencil_global(a, st2, pbc=(False, False, False))
        inner = out[2:-2, 2:-2, 2:-2]
        np.testing.assert_allclose(inner, 6.0, rtol=1e-9)

    @pytest.mark.parametrize("pbc", [(True, True, True), (False, False, False),
                                     (True, False, True)])
    @pytest.mark.parametrize("radius", [1, 2])
    def test_matches_naive_reference(self, pbc, radius):
        rng = np.random.default_rng(11)
        a = rng.standard_normal((5, 6, 7))
        st_r = laplacian_coefficients(radius, spacing=0.7)
        fast = apply_stencil_global(a, st_r, pbc=pbc)
        slow = apply_stencil_naive(a, st_r, pbc=pbc)
        np.testing.assert_allclose(fast, slow, rtol=1e-12)

    def test_too_small_periodic_grid_rejected(self):
        st2 = laplacian_coefficients(2)
        with pytest.raises(ValueError):
            apply_stencil_global(np.zeros((1, 8, 8)), st2)

    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_periodic_axis_below_twice_radius_rejected(self, radius):
        """A periodic axis with size < 2*radius would let distance-radius
        neighbours alias the same point through both wraps; the halo
        machinery cannot represent that, so the oracle must reject it."""
        st_r = laplacian_coefficients(radius)
        shape = [8, 8, 8]
        shape[1] = 2 * radius - 1
        with pytest.raises(ValueError):
            apply_stencil_global(np.zeros(tuple(shape)), st_r)

    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_periodic_axis_exactly_twice_radius_accepted(self, radius):
        """size == 2*radius is the boundary case the guard must still
        accept; there the two distance-radius wraps land on the same
        point and the result must match the naive modular reference."""
        rng = np.random.default_rng(21)
        shape = (2 * radius, 7, 2 * radius)
        a = rng.standard_normal(shape)
        st_r = laplacian_coefficients(radius, spacing=0.6)
        out = apply_stencil_global(a, st_r)
        np.testing.assert_allclose(
            out, apply_stencil_naive(a, st_r), rtol=1e-11
        )

    def test_small_nonperiodic_axis_still_allowed(self):
        """The tightened guard applies to periodic axes only: zero
        boundaries have no wraps to alias."""
        rng = np.random.default_rng(22)
        a = rng.standard_normal((2, 9, 9))
        st2 = laplacian_coefficients(2)
        out = apply_stencil_global(a, st2, pbc=(False, True, True))
        np.testing.assert_allclose(
            out, apply_stencil_naive(a, st2, pbc=(False, True, True)),
            rtol=1e-11,
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_property_linearity(self, seed):
        """stencil(a*x + b*y) == a*stencil(x) + b*stencil(y)."""
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((6, 6, 6))
        y = rng.standard_normal((6, 6, 6))
        a, b = rng.standard_normal(2)
        st2 = laplacian_coefficients(2)
        lhs = apply_stencil_global(a * x + b * y, st2)
        rhs = a * apply_stencil_global(x, st2) + b * apply_stencil_global(y, st2)
        np.testing.assert_allclose(lhs, rhs, atol=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_property_translation_equivariance_periodic(self, seed):
        """Rolling the input rolls the output (periodic stencils commute
        with translations)."""
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((6, 6, 6))
        st2 = laplacian_coefficients(2)
        rolled = apply_stencil_global(np.roll(a, 2, axis=0), st2)
        np.testing.assert_allclose(
            rolled, np.roll(apply_stencil_global(a, st2), 2, axis=0), atol=1e-10
        )

    def test_property_symmetric_operator(self):
        """<x, L y> == <L x, y>: the discrete Laplacian is self-adjoint."""
        rng = np.random.default_rng(3)
        x = rng.standard_normal((6, 6, 6))
        y = rng.standard_normal((6, 6, 6))
        st2 = laplacian_coefficients(2)
        lhs = np.vdot(x, apply_stencil_global(y, st2))
        rhs = np.vdot(apply_stencil_global(x, st2), y)
        assert lhs == pytest.approx(rhs, rel=1e-10)


class TestPaddedKernel:
    def test_matches_global_on_fully_padded_array(self):
        """A globally periodic grid, manually padded, must reproduce the
        global kernel's output."""
        rng = np.random.default_rng(5)
        a = rng.standard_normal((8, 7, 6))
        w = 2
        padded = np.pad(a, w, mode="wrap")
        st2 = laplacian_coefficients(2, spacing=0.4)
        out = apply_stencil_padded(padded, st2)
        np.testing.assert_allclose(out, apply_stencil_global(a, st2), rtol=1e-12)

    def test_zero_padding_matches_zero_boundary(self):
        rng = np.random.default_rng(6)
        a = rng.standard_normal((6, 6, 6))
        padded = np.pad(a, 2, mode="constant")
        st2 = laplacian_coefficients(2)
        out = apply_stencil_padded(padded, st2)
        np.testing.assert_allclose(
            out, apply_stencil_global(a, st2, pbc=(False, False, False)), rtol=1e-12
        )

    def test_out_parameter_used(self):
        a = np.random.default_rng(0).standard_normal((9, 9, 9))
        st2 = laplacian_coefficients(2)
        out = np.empty((5, 5, 5))
        result = apply_stencil_padded(a, st2, out=out)
        assert result is out

    def test_out_shape_validated(self):
        st2 = laplacian_coefficients(2)
        with pytest.raises(ValueError):
            apply_stencil_padded(np.zeros((9, 9, 9)), st2, out=np.zeros((4, 4, 4)))

    def test_out_aliasing_rejected(self):
        st2 = laplacian_coefficients(2)
        padded = np.zeros((9, 9, 9))
        with pytest.raises(ValueError):
            apply_stencil_padded(padded, st2, out=padded[2:-2, 2:-2, 2:-2])

    def test_too_small_padded_array_rejected(self):
        st2 = laplacian_coefficients(2)
        with pytest.raises(ValueError):
            apply_stencil_padded(np.zeros((4, 9, 9)), st2)

    def test_single_point_block(self):
        """Blocks as small as 1^3 work (deep decompositions)."""
        rng = np.random.default_rng(8)
        padded = rng.standard_normal((5, 5, 5))
        st2 = laplacian_coefficients(2)
        out = apply_stencil_padded(padded, st2)
        assert out.shape == (1, 1, 1)
        expected = apply_stencil_naive(padded, st2, pbc=(False, False, False))
        assert out[0, 0, 0] == pytest.approx(expected[2, 2, 2])

    def test_complex_dtype(self):
        rng = np.random.default_rng(9)
        a = rng.standard_normal((6, 6, 6)) + 1j * rng.standard_normal((6, 6, 6))
        padded = np.pad(a, 2, mode="wrap")
        st2 = laplacian_coefficients(2)
        out = apply_stencil_padded(padded, st2)
        assert out.dtype == np.complex128
        np.testing.assert_allclose(out, apply_stencil_global(a, st2), rtol=1e-12)


class TestFusedAndBatchedKernels:
    """The scratch-based and batched kernels are the hot path; they must be
    *bit-identical* to the plain per-grid kernel and the sequential oracle
    across radii, dtypes, layouts and batch sizes."""

    @pytest.mark.parametrize("radius", [1, 2, 3, 4])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_scratch_kernel_bit_identical(self, radius, dtype):
        rng = np.random.default_rng(radius)
        n = 2 * radius + 3
        padded = rng.standard_normal((n + 2, n, n + 1)).astype(dtype)
        st_r = laplacian_coefficients(radius, spacing=0.8)
        plain = apply_stencil_padded(padded, st_r)
        block_shape = tuple(s - 2 * radius for s in padded.shape)
        out = np.empty(block_shape, dtype=dtype)
        scratch = np.empty(block_shape, dtype=dtype)
        fused = apply_stencil_padded(padded, st_r, out=out, scratch=scratch)
        assert fused is out
        np.testing.assert_array_equal(fused, plain)

    @pytest.mark.parametrize("radius", [1, 2, 3, 4])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    @pytest.mark.parametrize("batch", [1, 7, 64])
    def test_batch_kernel_bit_identical_to_per_grid(self, radius, dtype, batch):
        rng = np.random.default_rng(100 * radius + batch)
        n = 2 * radius + 2
        pshape = (n + 2 * radius,) * 3
        stack = rng.standard_normal((batch,) + pshape).astype(dtype)
        st_r = laplacian_coefficients(radius, spacing=1.1)
        got = apply_stencil_batch(stack, st_r)
        assert got.dtype == dtype
        for g in range(batch):
            np.testing.assert_array_equal(
                got[g], apply_stencil_padded(stack[g], st_r)
            )

    def test_batch_kernel_with_preallocated_buffers(self):
        rng = np.random.default_rng(7)
        st2 = laplacian_coefficients(2)
        stack = rng.standard_normal((5, 9, 9, 9))
        out = np.empty((5, 5, 5, 5))
        scratch = np.empty((5, 5, 5))
        got = apply_stencil_batch(stack, st2, out_stack=out, scratch=scratch)
        assert got is out
        for g in range(5):
            np.testing.assert_array_equal(
                got[g], apply_stencil_padded(stack[g], st2)
            )

    def test_noncontiguous_input_views(self):
        """Strided inputs (every other grid of a big stack, transposed
        blocks) must produce the same bits as their contiguous copies."""
        rng = np.random.default_rng(8)
        st2 = laplacian_coefficients(2)
        big = rng.standard_normal((10, 9, 9, 9))
        strided = big[::2]  # non-contiguous 4-D stack
        assert not strided.flags.c_contiguous
        got = apply_stencil_batch(strided, st2)
        want = apply_stencil_batch(np.ascontiguousarray(strided), st2)
        np.testing.assert_array_equal(got, want)

        transposed = np.asarray(rng.standard_normal((9, 10, 11))).T
        assert not transposed.flags.c_contiguous
        got_t = apply_stencil_padded(transposed, st2)
        want_t = apply_stencil_padded(np.ascontiguousarray(transposed), st2)
        np.testing.assert_array_equal(got_t, want_t)

    @pytest.mark.parametrize("radius", [1, 2, 3])
    def test_matches_oracle_bitwise_on_wrapped_grid(self, radius):
        """The fused padded kernel and the roll-based oracle share one
        accumulation order — their results agree to the last bit."""
        rng = np.random.default_rng(9)
        a = rng.standard_normal((8, 7, 2 * radius + 2))
        padded = np.pad(a, radius, mode="wrap")
        st_r = laplacian_coefficients(radius, spacing=0.4)
        np.testing.assert_array_equal(
            apply_stencil_padded(padded, st_r),
            apply_stencil_global(a, st_r),
        )

    def test_matches_oracle_bitwise_zero_boundary(self):
        rng = np.random.default_rng(10)
        a = rng.standard_normal((6, 6, 6))
        st2 = laplacian_coefficients(2)
        np.testing.assert_array_equal(
            apply_stencil_padded(np.pad(a, 2, mode="constant"), st2),
            apply_stencil_global(a, st2, pbc=(False, False, False)),
        )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_property_batch_equals_oracle(self, seed):
        rng = np.random.default_rng(seed)
        batch = int(rng.integers(1, 9))
        shape = tuple(int(s) for s in rng.integers(4, 9, size=3))
        st2 = laplacian_coefficients(2, spacing=float(rng.uniform(0.3, 1.5)))
        grids = [rng.standard_normal(shape) for _ in range(batch)]
        stack = np.stack([np.pad(g, 2, mode="wrap") for g in grids])
        got = apply_stencil_batch(stack, st2)
        for g in range(batch):
            np.testing.assert_array_equal(
                got[g], apply_stencil_global(grids[g], st2)
            )

    def test_batch_requires_4d(self):
        st2 = laplacian_coefficients(2)
        with pytest.raises(ValueError):
            apply_stencil_batch(np.zeros((9, 9, 9)), st2)

    def test_scratch_shape_and_dtype_validated(self):
        st2 = laplacian_coefficients(2)
        padded = np.zeros((9, 9, 9))
        with pytest.raises(ValueError):
            apply_stencil_padded(padded, st2, scratch=np.zeros((4, 4, 4)))
        with pytest.raises(ValueError):
            apply_stencil_padded(
                padded, st2, scratch=np.zeros((5, 5, 5), dtype=np.float32)
            )

    def test_scratch_aliasing_rejected(self):
        st2 = laplacian_coefficients(2)
        padded = np.zeros((9, 9, 9))
        out = np.empty((5, 5, 5))
        with pytest.raises(ValueError):
            apply_stencil_padded(padded, st2, out=out, scratch=out)
        with pytest.raises(ValueError):
            apply_stencil_padded(
                padded, st2, out=out, scratch=padded[2:-2, 2:-2, 2:-2]
            )

    def test_complex_batch(self):
        rng = np.random.default_rng(12)
        a = rng.standard_normal((2, 9, 9, 9)) + 1j * rng.standard_normal((2, 9, 9, 9))
        st2 = laplacian_coefficients(2)
        got = apply_stencil_batch(a, st2)
        assert got.dtype == np.complex128
        for g in range(2):
            np.testing.assert_array_equal(got[g], apply_stencil_padded(a[g], st2))
