"""Property-based tests of the simulated MPI layer + placement ablation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import FDJob, FLAT_OPTIMIZED, HYBRID_MULTIPLE, simulate_fd
from repro.grid import GridDescriptor
from repro.machine import Machine, NodeMode
from repro.smpi import SimComm, ThreadMode


@settings(max_examples=20, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),  # src
            st.integers(min_value=0, max_value=7),  # dst
            st.integers(min_value=0, max_value=3),  # tag
            st.integers(min_value=0, max_value=10**6),  # bytes
        ),
        min_size=1,
        max_size=20,
    )
)
def test_property_every_message_is_delivered(messages):
    """Arbitrary send/recv patterns complete and deliver exactly once."""
    machine = Machine(8, NodeMode.SMP)
    # MULTIPLE: the generated patterns may issue concurrent calls from one
    # rank (e.g. a self-send), which SINGLE mode correctly rejects.
    comm = SimComm(machine, ThreadMode.MULTIPLE)
    received = []

    # group by (src, dst, tag) so each recv is unambiguous
    for i, (src, dst, tag, nbytes) in enumerate(messages):
        def sender(ctx=comm.context(src), dst=dst, nbytes=nbytes, tag=tag, i=i):
            yield from ctx.send(dst, nbytes, tag=tag * 1000 + i)

        def receiver(ctx=comm.context(dst), src=src, tag=tag, i=i, nbytes=nbytes):
            status = yield from ctx.recv(src=src, tag=tag * 1000 + i)
            received.append((status.source, status.nbytes))

        machine.sim.spawn(sender())
        machine.sim.spawn(receiver())
    machine.sim.run()
    assert len(received) == len(messages)
    assert comm.messages_sent == len(messages)
    assert comm.bytes_sent == sum(m[3] for m in messages)


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=16), st.integers(min_value=1, max_value=4))
def test_property_barrier_rounds_synchronize(n_ranks, rounds):
    """After barrier k, every rank has completed its pre-barrier work."""
    # pick a node count the partition accepts
    machine = Machine(n_ranks, NodeMode.SMP)
    comm = SimComm(machine)
    log = []

    def proc(rank):
        ctx = comm.context(rank)
        for r in range(rounds):
            yield machine.sim.timeout(0.001 * (rank + 1))
            log.append(("work", r, rank))
            yield from ctx.barrier()
            log.append(("past", r, rank))

    for rank in range(n_ranks):
        machine.sim.spawn(proc(rank))
    machine.sim.run()
    # in every round, all "work" entries precede all "past" entries
    for r in range(rounds):
        events = [(kind, rank) for kind, rr, rank in log if rr == r]
        first_past = next(i for i, (k, _) in enumerate(events) if k == "past")
        assert all(k == "past" for k, _ in events[first_past:])
        assert sum(1 for k, _ in events if k == "work") == n_ranks


class TestPlacementAblation:
    def test_spread_never_faster_than_cyclic(self):
        job = FDJob(GridDescriptor((48, 48, 48)), 8)
        cyc = simulate_fd(job, FLAT_OPTIMIZED, 32, 2, placement="cyclic")
        spr = simulate_fd(job, FLAT_OPTIMIZED, 32, 2, placement="spread")
        assert spr.total >= cyc.total

    def test_placement_does_not_change_traffic_volume(self):
        job = FDJob(GridDescriptor((48, 48, 48)), 8)
        cyc = simulate_fd(job, FLAT_OPTIMIZED, 32, 2, placement="cyclic")
        spr = simulate_fd(job, FLAT_OPTIMIZED, 32, 2, placement="spread")
        assert cyc.messages == spr.messages

    def test_cyclic_requires_divisibility(self):
        # flat @24 cores: domain grid (2,3,4) does not divide node grid (1,2,3)
        job = FDJob(GridDescriptor((48, 48, 48)), 4)
        with pytest.raises(ValueError, match="cyclic placement"):
            simulate_fd(job, FLAT_OPTIMIZED, 24, placement="cyclic")

    def test_invalid_placement_rejected(self):
        job = FDJob(GridDescriptor((48, 48, 48)), 4)
        with pytest.raises(ValueError, match="placement"):
            simulate_fd(job, FLAT_OPTIMIZED, 8, placement="random")
