"""The schedule IR: one compiled plan, three consistent consumers.

The cross-plane consistency class is the check that did not exist before
the schedule compiler: the functional interpreter, the DES replay and the
analytic model must all see the *same* compiled plan — same message
counts, same barrier counts — for every approach over a grid of
configurations.
"""

import numpy as np
import pytest

from repro.core import (
    ALL_APPROACHES,
    DistributedStencil,
    FDJob,
    FLAT_OPTIMIZED,
    FLAT_ORIGINAL,
    HYBRID_MASTER_ONLY,
    PerformanceModel,
    SequentialStencil,
    clear_plan_cache,
    compile_schedule,
    plan_cache_stats,
    simulate_fd,
    timing_plane_workers,
    tracer_hook,
)
from repro.core.approaches import FLAT_SUBGROUPS
from repro.core.schedule import (
    GridBarrier,
    PostRecv,
    PostSend,
    WaitAll,
)
from repro.des.trace import Tracer
from repro.grid import Decomposition, GridDescriptor, HaloSpec, gather, scatter
from repro.stencil import laplacian_coefficients
from repro.transport import InprocTransport, run_ranks

EVERY_APPROACH = ALL_APPROACHES + (FLAT_SUBGROUPS,)

#: (n_cores, n_grids, batch_size) grid for the consistency sweep
CONFIGS = [(4, 4, 1), (8, 6, 1), (8, 8, 2)]


def _batch_for(approach, batch_size):
    return batch_size if approach.supports_batching else 1


def _compile(approach, n_cores, n_grids, batch_size, shape=(24, 24, 24)):
    gd = GridDescriptor(shape)
    decomp = Decomposition(gd, approach.domains_for(n_cores))
    plan = compile_schedule(
        approach,
        decomp,
        n_grids,
        batch_size,
        n_workers=timing_plane_workers(approach, n_cores),
    )
    return gd, decomp, plan


class TestCrossPlaneConsistency:
    """All three planes must agree with the compiled plan's accounting."""

    @pytest.mark.parametrize("approach", EVERY_APPROACH, ids=lambda a: a.name)
    @pytest.mark.parametrize("config", CONFIGS, ids=str)
    def test_plan_summary_matches_materialized_steps(self, approach, config):
        n_cores, n_grids, batch = config
        batch = _batch_for(approach, batch)
        _, decomp, plan = _compile(approach, n_cores, n_grids, batch)
        posted = 0
        barriers = 0
        for d in range(decomp.n_domains):
            rp = plan.rank_plan(d)
            sends = sum(
                1 for w in rp.workers for s in w.steps if isinstance(s, PostSend)
            )
            assert sends == rp.message_count == plan.message_count(d)
            posted += sends
            barriers = rp.barrier_count
            assert barriers == plan.grid_barriers_per_rank
        assert posted == plan.total_messages()

    @pytest.mark.parametrize("approach", EVERY_APPROACH, ids=lambda a: a.name)
    @pytest.mark.parametrize("config", CONFIGS, ids=str)
    def test_des_replay_sends_the_planned_messages(self, approach, config):
        n_cores, n_grids, batch = config
        batch = _batch_for(approach, batch)
        gd, _, plan = _compile(approach, n_cores, n_grids, batch)
        result = simulate_fd(FDJob(gd, n_grids), approach, n_cores, batch)
        assert result.messages == plan.total_messages()

    @pytest.mark.parametrize("approach", EVERY_APPROACH, ids=lambda a: a.name)
    @pytest.mark.parametrize("config", CONFIGS, ids=str)
    def test_model_counts_the_planned_messages(self, approach, config):
        n_cores, n_grids, batch = config
        batch = _batch_for(approach, batch)
        gd, _, plan = _compile(approach, n_cores, n_grids, batch)
        timing = PerformanceModel().evaluate(
            FDJob(gd, n_grids), approach, n_cores, batch
        )
        rep = plan.rank_plan(0).workers[0]
        threads = min(4, n_cores) if plan.uses_thread_team else 1
        assert timing.messages_per_rank == rep.message_count * threads

    @pytest.mark.parametrize(
        "approach", ALL_APPROACHES, ids=lambda a: a.name
    )
    def test_functional_engine_shares_the_timing_planes_plan(self, approach):
        """At full nodes the engine compiles to the *same cached object*."""
        n_cores, n_grids, batch = 8, 4, _batch_for(approach, 2)
        gd, decomp, plan = _compile(approach, n_cores, n_grids, batch)
        engine = DistributedStencil(decomp, laplacian_coefficients(2, gd.spacing))
        assert engine.plan_for(approach, n_grids, batch) is plan

    @pytest.mark.parametrize("approach", EVERY_APPROACH, ids=lambda a: a.name)
    def test_functional_run_sends_the_planned_messages(self, approach):
        n_grids, batch = 4, _batch_for(approach, 2)
        gd = GridDescriptor((12, 12, 12))
        decomp = Decomposition(gd, approach.domains_for(8))
        n_ranks = decomp.n_domains
        coeffs = laplacian_coefficients(2, spacing=gd.spacing)
        engine = DistributedStencil(decomp, coeffs)
        halo = HaloSpec(2)
        arrays = {g: gd.random(seed=g) for g in range(n_grids)}
        blocks = {g: scatter(a, decomp, halo) for g, a in arrays.items()}
        transport = InprocTransport(n_ranks)

        def rank_fn(ep):
            mine = {g: blocks[g][ep.rank] for g in arrays}
            return engine.apply(ep, mine, approach=approach, batch_size=batch)

        run_ranks(n_ranks, rank_fn, transport=transport)
        plan = engine.plan_for(approach, n_grids, batch)
        sent = sum(st.messages for st in transport.stats)
        assert sent == plan.total_messages()


class TestBatchValidation:
    """One helper on Approach; one error text across all consumers."""

    def test_error_message(self):
        with pytest.raises(ValueError, match="flat-original does not support batching"):
            FLAT_ORIGINAL.validate_batch_size(2)

    def test_non_positive(self):
        with pytest.raises(ValueError, match="batch_size must be >= 1, got 0"):
            FLAT_OPTIMIZED.validate_batch_size(0)

    def test_valid_passes_through(self):
        assert FLAT_OPTIMIZED.validate_batch_size(4) == 4
        assert FLAT_ORIGINAL.validate_batch_size(1) == 1

    def test_all_consumers_raise_the_same_text(self):
        gd = GridDescriptor((12, 12, 12))
        match = "flat-original does not support batching"
        with pytest.raises(ValueError, match=match):
            compile_schedule(FLAT_ORIGINAL, Decomposition(gd, 4), 4, 2)
        with pytest.raises(ValueError, match=match):
            simulate_fd(FDJob(gd, 4), FLAT_ORIGINAL, 4, batch_size=2)
        with pytest.raises(ValueError, match=match):
            PerformanceModel().evaluate(FDJob(gd, 4), FLAT_ORIGINAL, 4, 2)


class TestPlanCache:
    def test_identical_configs_share_one_plan(self):
        clear_plan_cache()
        gd = GridDescriptor((24, 24, 24))
        a = compile_schedule(FLAT_OPTIMIZED, Decomposition(gd, 8), 4, 2)
        b = compile_schedule(FLAT_OPTIMIZED, Decomposition(gd, 8), 4, 2)
        assert a is b
        stats = plan_cache_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["size"] == 1

    def test_different_configs_do_not_collide(self):
        gd = GridDescriptor((24, 24, 24))
        a = compile_schedule(FLAT_OPTIMIZED, Decomposition(gd, 8), 4, 2)
        b = compile_schedule(FLAT_OPTIMIZED, Decomposition(gd, 8), 4, 1)
        assert a is not b

    def test_clear(self):
        gd = GridDescriptor((24, 24, 24))
        compile_schedule(FLAT_OPTIMIZED, Decomposition(gd, 8), 4, 2)
        clear_plan_cache()
        stats = plan_cache_stats()
        assert stats == {"hits": 0, "misses": 0, "size": 0}

    def test_use_cache_false_bypasses(self):
        gd = GridDescriptor((24, 24, 24))
        a = compile_schedule(
            FLAT_OPTIMIZED, Decomposition(gd, 8), 4, 2, use_cache=False
        )
        b = compile_schedule(
            FLAT_OPTIMIZED, Decomposition(gd, 8), 4, 2, use_cache=False
        )
        assert a is not b


class TestScheduleStructure:
    """The IR must encode the paper's schedules, not just any valid order."""

    def test_double_buffering_posts_ahead_of_drain(self):
        gd = GridDescriptor((24, 24, 24))
        plan = compile_schedule(FLAT_OPTIMIZED, Decomposition(gd, 8), 4, 1)
        steps = plan.rank_plan(0).workers[0].steps
        first_post_seq1 = next(
            i for i, s in enumerate(steps)
            if isinstance(s, PostSend) and s.seq == 1
        )
        first_wait = next(
            i for i, s in enumerate(steps) if isinstance(s, WaitAll)
        )
        assert first_post_seq1 < first_wait, "round 1 must be in flight before round 0 drains"

    def test_blocking_waits_after_every_receive(self):
        gd = GridDescriptor((24, 24, 24))
        plan = compile_schedule(FLAT_ORIGINAL, Decomposition(gd, 8), 2, 1)
        steps = plan.rank_plan(0).workers[0].steps
        for i, s in enumerate(steps):
            if isinstance(s, PostRecv):
                assert isinstance(steps[i + 1], WaitAll)

    def test_master_only_barrier_after_every_grid(self):
        gd = GridDescriptor((24, 24, 24))
        plan = compile_schedule(HYBRID_MASTER_ONLY, Decomposition(gd, 2), 3, 1)
        steps = plan.rank_plan(0).workers[0].steps
        barriers = [s for s in steps if isinstance(s, GridBarrier)]
        assert [b.grid_id for b in barriers] == [0, 1, 2]
        assert plan.grid_barriers_per_rank == 3

    def test_describe_is_human_readable(self):
        gd = GridDescriptor((24, 24, 24))
        plan = compile_schedule(FLAT_OPTIMIZED, Decomposition(gd, 8), 4, 2)
        text = plan.describe(0)
        for token in ("PostSend", "PostRecv", "WaitAll", "ComputeInterior"):
            assert token in text


class TestTracerHook:
    """A real functional run emits the same kind of Gantt trace as the DES."""

    def test_functional_run_fills_a_tracer(self):
        gd = GridDescriptor((12, 12, 12))
        n_ranks, n_grids = 2, 3
        decomp = Decomposition(gd, n_ranks)
        coeffs = laplacian_coefficients(2, spacing=gd.spacing)
        engine = DistributedStencil(decomp, coeffs)
        halo = HaloSpec(2)
        arrays = {g: gd.random(seed=g) for g in range(n_grids)}
        blocks = {g: scatter(a, decomp, halo) for g, a in arrays.items()}
        tracers = [Tracer() for _ in range(n_ranks)]

        def rank_fn(ep):
            mine = {g: blocks[g][ep.rank] for g in arrays}
            return engine.apply(
                ep,
                mine,
                approach=FLAT_OPTIMIZED,
                batch_size=1,
                on_step=tracer_hook(tracers[ep.rank], ep.rank),
            )

        results = run_ranks(n_ranks, rank_fn)

        # the run itself stays bit-identical to the sequential stencil
        expected = SequentialStencil(gd, coeffs).apply(arrays)
        for g in arrays:
            got = gather([results[r][g] for r in range(n_ranks)])
            np.testing.assert_allclose(got, expected[g], rtol=1e-12)

        for rank, tracer in enumerate(tracers):
            resource = f"rank{rank}.w0"
            assert resource in tracer.resources()
            labels = {s.label.split()[0] for s in tracer.spans(resource)}
            assert "ComputeInterior" in labels
            assert "PostSend" in labels
            assert "WaitAll" in labels
            chart = tracer.gantt()
            assert resource in chart and chart.strip()


class TestPlanDependencies:
    """The dependency metadata the critical-path layer resolves edges
    with: every cross-worker edge ends at a WaitAll and starts at the
    PostSend (or ring stage) whose message that wait completes."""

    def _fd_plan(self, approach, cores, n_grids=4, batch=2, shape=(16, 16, 16)):
        decomp = Decomposition(GridDescriptor(shape), approach.domains_for(cores))
        return compile_schedule(
            approach, decomp, n_grids, batch,
            n_workers=timing_plane_workers(approach, cores),
        )

    @pytest.mark.parametrize("name,cores", [
        ("flat-optimized", 4), ("hybrid-multiple", 8),
    ])
    def test_one_edge_per_planned_message(self, name, cores):
        from repro.core import approach_by_name
        from repro.core.schedule import PostSend, plan_dependencies

        approach = approach_by_name(name)

        plan = self._fd_plan(approach, cores)
        deps = plan_dependencies(plan)
        assert len(deps) == plan.total_messages()
        for d in deps:
            assert d.kind == "message"
            src = plan.rank_plan(d.src[0]).workers[d.src[1]].steps[d.src[2]]
            dst = plan.rank_plan(d.dst[0]).workers[d.dst[1]].steps[d.dst[2]]
            assert isinstance(src, PostSend)
            assert isinstance(dst, WaitAll)

    def test_recv_sources_covers_every_receive_direction(self):
        from repro.core.schedule import recv_sources

        plan = self._fd_plan(FLAT_OPTIMIZED, 4)
        sources = recv_sources(plan)
        # every (domain, dim, direction) with a remote peer has a source
        for domain in range(plan.decomp.n_domains):
            for dim, step, src, _nb in plan._directions(domain)[1]:
                assert sources[(domain, dim, step)] == src

    def test_owners_filter_restricts_consumers(self):
        from repro.core.schedule import plan_dependencies

        plan = self._fd_plan(FLAT_OPTIMIZED, 4)
        only0 = plan_dependencies(plan, owners=[0])
        assert only0
        assert all(d.dst[0] == 0 for d in only0)
        assert len(only0) < len(plan_dependencies(plan))

    def test_band_plan_ring_edges(self):
        from repro.core.bandpar import BandParallelModel
        from repro.core.schedule import RingSendRecv, plan_dependencies

        nb = 4
        job = FDJob(GridDescriptor((16, 16, 16)), 16)
        plan = BandParallelModel().band_plan(job, 16, nb)
        deps = plan_dependencies(plan)
        assert deps
        for d in deps:
            assert d.kind == "ring"
            # each group's wait is fed by its ring predecessor
            assert d.src[0] == plan.layout.ring_recv_group(d.dst[0])
            src = plan.group_steps(d.src[0])[d.src[2]]
            dst = plan.group_steps(d.dst[0])[d.dst[2]]
            assert isinstance(src, RingSendRecv)
            assert isinstance(dst, WaitAll)
