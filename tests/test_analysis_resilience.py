"""Resilience analysis: Daly cadence, DES fault replay, chaos suite.

Three planes, one fault model: the analytic sweep prices checkpointing
at paper scale, the DES replays a :class:`FaultPlan` as timing
perturbations, and the chaos suite subjects the functional engine to the
same plan — these tests pin each plane and their agreement points.
"""

import numpy as np
import pytest

from repro.analysis import (
    checkpoint_bytes,
    format_mtbf_table,
    mtbf_sweep,
    optimal_checkpoint_interval,
    resilience_overhead,
    run_chaos_suite,
    suite_passed,
    survival_matrix,
)
from repro.core import FLAT_OPTIMIZED
from repro.core.perfmodel import FDJob
from repro.core.simrun import simulate_fd
from repro.grid import GridDescriptor
from repro.transport import FaultPlan

JOB = FDJob(GridDescriptor((144, 144, 144)), 32)


class TestDalyModel:
    def test_optimum_minimizes_overhead(self):
        """tau_opt = sqrt(2*delta*M) beats every nearby interval."""
        delta, mtbf = 2.0, 3600.0
        tau = optimal_checkpoint_interval(delta, mtbf)
        assert tau == pytest.approx(np.sqrt(2 * delta * mtbf))
        best = resilience_overhead(tau, delta, mtbf)
        for factor in (0.25, 0.5, 0.9, 1.1, 2.0, 4.0):
            assert resilience_overhead(tau * factor, delta, mtbf) >= best

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_checkpoint_interval(0.0, 3600.0)
        with pytest.raises(ValueError):
            resilience_overhead(-1.0, 2.0, 3600.0)

    def test_checkpoint_bytes_mirrors_scf_snapshot(self):
        # (bands + 3 aux fields) x one float64 grid field
        field = 8 * 144**3
        assert checkpoint_bytes(JOB) == (32 + 3) * field
        assert checkpoint_bytes(JOB, n_bands=512) == (512 + 3) * field

    def test_checkpoint_bytes_matches_functional_snapshot(self):
        """The analytic size and an actual SCFCheckpoint must agree."""
        from repro.core.jobspec import (
            JobSpec, LayoutSpec, ProblemSpec, RuntimeSpec,
        )
        from repro.dft import DistributedSCF, MemoryCheckpointStore

        n = 6
        gd = GridDescriptor((n, n, n), pbc=(False,) * 3, spacing=0.6)
        store = MemoryCheckpointStore()
        spec = JobSpec(
            problem=ProblemSpec.from_grid(gd, 2),
            layout=LayoutSpec(n_cores=2),
            runtime=RuntimeSpec(
                tolerance=0.0, max_iterations=1, band_iterations=2,
            ),
        )
        DistributedSCF.from_spec(
            spec, np.zeros(gd.shape), checkpoint_store=store
        ).run()
        ckpt = store.latest()
        assert ckpt.nbytes() == checkpoint_bytes(FDJob(gd, 2))


class TestMtbfSweep:
    def test_sweep_shape_and_monotonicity(self):
        rows = mtbf_sweep(JOB, n_cores=16384, iteration_time=30.0)
        assert [r.node_mtbf_years for r in rows] == [50.0, 10.0, 2.0, 0.5]
        # worse nodes -> shorter intervals, more overhead, more failures
        for a, b in zip(rows, rows[1:]):
            assert b.system_mtbf_hours < a.system_mtbf_hours
            assert b.interval < a.interval
            assert b.overhead > a.overhead
            assert b.failures_per_day > a.failures_per_day
        for r in rows:
            assert 0.0 < r.efficiency < 1.0
            assert r.iterations_per_checkpoint == pytest.approx(r.interval / 30.0)

    def test_system_mtbf_scales_with_node_count(self):
        row_16k = mtbf_sweep(JOB, (10.0,), n_cores=16384, iteration_time=1.0)[0]
        row_4k = mtbf_sweep(JOB, (10.0,), n_cores=4096, iteration_time=1.0)[0]
        assert row_16k.system_mtbf_hours == pytest.approx(
            row_4k.system_mtbf_hours / 4.0
        )

    def test_rejects_non_node_multiples(self):
        with pytest.raises(ValueError, match="multiple of 4"):
            mtbf_sweep(JOB, n_cores=10)

    def test_table_renders(self):
        rows = mtbf_sweep(JOB, (10.0,), iteration_time=30.0)
        text = format_mtbf_table(rows)
        assert "node MTBF" in text and "efficiency" in text


class TestDesFaultReplay:
    """The DES accepts the same FaultPlan as the functional plane."""

    SMALL = FDJob(GridDescriptor((16, 16, 16)), 4)

    def _run(self, plan=None):
        return simulate_fd(self.SMALL, FLAT_OPTIMIZED, 4, fault_plan=plan)

    def test_zero_probability_plan_matches_clean_run(self):
        clean = self._run()
        nulled = self._run(FaultPlan(seed=0))
        assert nulled.total == clean.total  # bit-identical timing
        assert nulled.fault_events == 0

    def test_message_faults_cost_time(self):
        clean = self._run()
        faulty = self._run(FaultPlan(seed=0, p_drop=0.2, p_delay=0.2, delay=0.01))
        assert faulty.fault_events > 0
        assert faulty.total > clean.total

    def test_rank_kill_adds_restart_time(self):
        clean = self._run()
        killed = self._run(FaultPlan(seed=0, kill_at={1: 5}, restart_time=0.5))
        assert killed.total == pytest.approx(clean.total + 0.5, rel=0.05)

    def test_same_seed_same_makespan(self):
        plan = FaultPlan(seed=11, p_drop=0.1, p_duplicate=0.1)
        a = self._run(plan.replica())
        b = self._run(plan.replica())
        assert a.total == b.total and a.fault_events == b.fault_events


class TestChaosSuite:
    def test_seed0_suite_passes(self):
        outcomes = run_chaos_suite(seed=0, scf=False)
        assert suite_passed(outcomes)
        by_name = {o.scenario: o for o in outcomes}
        for kind in ("delay", "duplicate", "drop", "corrupt"):
            o = by_name[f"one-{kind}"]
            assert o.injected == 1 and o.identical
        kill = by_name["rank-kill"]
        assert kill.outcome == "crashed"
        assert "RankKilledError" in kill.errors

    def test_suite_is_deterministic_per_seed(self):
        a = run_chaos_suite(seed=0, scf=False)
        b = run_chaos_suite(seed=0, scf=False)
        assert a == b  # dataclass equality: full survival matrix

    def test_survival_matrix_renders(self):
        outcomes = run_chaos_suite(seed=0, scf=False)
        text = survival_matrix(outcomes)
        assert "rank-kill" in text and "storm" in text

    def test_suite_passed_rejects_hung_or_wrong_outcomes(self):
        from repro.analysis import ChaosOutcome

        good = run_chaos_suite(seed=0, scf=False)
        bad = [
            ChaosOutcome("one-drop", 1, 3, "crashed", False, ("HaloTimeoutError",))
            if o.scenario == "one-drop" else o
            for o in good
        ]
        assert not suite_passed(bad)
