"""Tests for the experiment drivers and formatting (repro.analysis)."""

import pytest

from repro.analysis import (
    ablation_subgroups,
    fig2_rows,
    fig5_rows,
    fig6_rows,
    fig7_rows,
    format_table,
    headline_numbers,
    table1,
)
from repro.netmodel import (
    analytic_bandwidth_curve,
    default_message_sizes,
    measured_bandwidth_curve,
)


class TestTable1:
    def test_nine_rows(self):
        assert len(table1()) == 9

    def test_contents(self):
        rows = dict(table1())
        assert rows["CPU frequency"] == "850 MHz"


class TestFig2:
    def test_sizes_span_paper_axis(self):
        sizes = default_message_sizes()
        assert sizes[0] == 1
        assert sizes[-1] >= 1e6

    def test_measured_matches_analytic(self):
        sizes = [1, 100, 10_000, 1_000_000]
        measured = measured_bandwidth_curve(sizes)
        analytic = analytic_bandwidth_curve(sizes)
        for m, a in zip(measured, analytic):
            assert m.bandwidth == pytest.approx(a.bandwidth, rel=0.01)

    def test_half_bandwidth_near_1e3(self):
        """Fig 2's anchor: ~half the asymptote at 10^3 bytes."""
        points = {p.message_bytes: p for p in measured_bandwidth_curve([1024, 2**23])}
        asymptote = points[2**23].bandwidth
        assert points[1024].bandwidth == pytest.approx(asymptote / 2, rel=0.15)

    def test_saturation_above_1e5(self):
        points = measured_bandwidth_curve([131072, 2**23])
        assert points[0].bandwidth >= 0.9 * points[1].bandwidth

    def test_bandwidth_monotone(self):
        curve = fig2_rows()
        bws = [p.bandwidth for p in curve]
        assert bws == sorted(bws)


class TestFig5:
    def test_all_approaches_present_unbatched(self):
        rows = fig5_rows(batching=False, cores=(512, 1024))
        assert len(rows) == 2
        assert set(rows[0].speedups) == {
            "flat-original",
            "flat-optimized",
            "hybrid-multiple",
            "hybrid-master-only",
        }

    def test_speedups_grow_with_cores(self):
        rows = fig5_rows(batching=True, cores=(512, 1024, 2048, 4096))
        for name in rows[0].speedups:
            series = [r.speedups[name] for r in rows]
            assert series == sorted(series)

    def test_batched_top_two_are_optimized_and_hybrid(self):
        rows = fig5_rows(batching=True, cores=(4096,))
        s = rows[0].speedups
        top_two = sorted(s, key=s.get, reverse=True)[:2]
        assert set(top_two) == {"flat-optimized", "hybrid-multiple"}

    def test_original_is_last_at_scale(self):
        rows = fig5_rows(batching=True, cores=(4096,))
        s = rows[0].speedups
        assert min(s, key=s.get) == "flat-original"

    def test_sequential_point_near_one(self):
        rows = fig5_rows(batching=False, cores=(1,))
        for v in rows[0].speedups.values():
            assert v == pytest.approx(1.0, rel=0.15)


class TestFig6:
    def test_comm_curves_ratio(self):
        rows = fig6_rows(cores=(4096,))
        r = rows[0]
        assert r.flat_comm_mb / r.hybrid_comm_mb == pytest.approx(4 ** (1 / 3), rel=0.15)

    def test_hybrid_wins_from_512(self):
        for r in fig6_rows(cores=(512, 2048, 16384)):
            assert r.times["hybrid-multiple"] < r.times["flat-optimized"]
            assert r.times["hybrid-multiple"] < r.times["flat-original"]

    def test_original_time_rises(self):
        rows = fig6_rows(cores=(1024, 4096, 16384))
        times = [r.times["flat-original"] for r in rows]
        assert times == sorted(times)

    def test_iterations_scale_linearly(self):
        one = fig6_rows(cores=(1024,), n_iterations=1)[0]
        ten = fig6_rows(cores=(1024,), n_iterations=10)[0]
        assert ten.times["flat-original"] == pytest.approx(
            10 * one.times["flat-original"]
        )


class TestFig7:
    def test_reference_point_is_one(self):
        rows = fig7_rows(cores=(1024, 16384))
        assert rows[0].speedups["flat-original"] == pytest.approx(1.0)

    def test_hybrid_reaches_about_16_5(self):
        rows = fig7_rows(cores=(1024, 16384))
        assert rows[-1].speedups["hybrid-multiple"] == pytest.approx(16.5, rel=0.15)

    def test_original_reaches_about_8_5(self):
        rows = fig7_rows(cores=(1024, 16384))
        assert rows[-1].speedups["flat-original"] == pytest.approx(8.5, rel=0.15)

    def test_paper_legend_order_at_16k(self):
        rows = fig7_rows(cores=(1024, 16384))
        s = rows[-1].speedups
        assert (
            s["hybrid-multiple"]
            > s["flat-optimized"]
            > s["hybrid-master-only"]
            > s["flat-original"]
        )


class TestHeadline:
    def test_numbers_near_paper(self):
        h = headline_numbers()
        assert h.speedup_vs_original == pytest.approx(1.94, rel=0.15)
        assert h.utilization_original == pytest.approx(0.36, abs=0.08)
        assert h.utilization_hybrid == pytest.approx(0.70, abs=0.10)
        assert 1.02 < h.hybrid_vs_flat_optimized < 1.3


class TestAblation:
    def test_subgroups_identical_to_hybrid(self):
        """Section VII-A: 'its performance is identical with the Hybrid
        multiple' — decomposition level is the sole cause."""
        subgroup, hybrid = ablation_subgroups()
        assert subgroup.total == pytest.approx(hybrid.total, rel=0.05)
        assert subgroup.comm_bytes_per_node == pytest.approx(
            hybrid.comm_bytes_per_node
        )


class TestFormatting:
    def test_basic_table(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_alignment(self):
        text = format_table(["col"], [[1], [100]])
        lines = text.splitlines()
        assert all(len(l) == len(lines[0]) for l in lines)

    def test_row_length_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456789]])
        assert "0.1235" in text
