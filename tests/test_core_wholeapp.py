"""Tests for the whole-application extrapolation (section VIII-A)."""

import pytest

from repro.core import FDJob, WholeAppModel
from repro.core.approaches import FLAT_ORIGINAL, HYBRID_MULTIPLE
from repro.grid import GridDescriptor


@pytest.fixture(scope="module")
def model():
    return WholeAppModel()


@pytest.fixture(scope="module")
def job():
    return FDJob(GridDescriptor((192, 192, 192)), 2816)


class TestPhaseTimes:
    def test_phases_positive_and_total_sums(self, model, job):
        t = model.original(job, 4096)
        assert t.fd > 0 and t.subspace > 0 and t.density > 0 and t.poisson > 0
        assert t.total == pytest.approx(t.fd + t.subspace + t.density + t.poisson)

    def test_fractions_sum_to_one(self, model, job):
        f = model.original(job, 4096).fractions()
        assert sum(f.values()) == pytest.approx(1.0)

    def test_fd_applied_several_times_per_scf(self, model, job):
        """One SCF step applies the stencil to every band repeatedly."""
        single_fd = model._fd_time(job, FLAT_ORIGINAL, 4096)
        assert model.original(job, 4096).fd == pytest.approx(
            WholeAppModel.FD_APPLICATIONS_PER_SCF * single_fd
        )

    def test_subspace_scales_quadratically_in_bands(self, model):
        small = FDJob(GridDescriptor((96, 96, 96)), 128)
        big = FDJob(GridDescriptor((96, 96, 96)), 256)
        t_small = model._subspace_time(small, 1024, overlapped=False)
        t_big = model._subspace_time(big, 1024, overlapped=False)
        assert t_big / t_small == pytest.approx(4.0, rel=0.05)

    def test_poisson_single_grid_latency_bound(self, model, job):
        """The Poisson phase runs one grid: batching cannot help it, and
        hybrid multiple is substituted by the master-only style (a single
        grid leaves three of its cores idle otherwise).

        At 16384 cores a lone 192^3 grid is pure overhead territory (432
        points per core): per-sweep thread spawn/barrier costs make the
        hybrid *slower* than the original — none of the paper's techniques
        rescues this phase, which is why it must stay a small fraction of
        the application.  At moderate scale the overheads amortize and the
        gap closes."""
        orig16k = model._poisson_time(FLAT_ORIGINAL, job, 16384)
        hyb16k = model._poisson_time(HYBRID_MULTIPLE, job, 16384)
        assert 1.0 < hyb16k / orig16k < 2.0  # hybrid pays thread overhead

        orig1k = model._poisson_time(FLAT_ORIGINAL, job, 1024)
        hyb1k = model._poisson_time(HYBRID_MULTIPLE, job, 1024)
        assert hyb1k / orig1k < hyb16k / orig16k  # overheads amortize

    def test_invalid_cores(self, model, job):
        with pytest.raises(ValueError):
            model.original(job, 0)


class TestScenarios:
    def test_amdahl_only_changes_fd(self, model, job):
        base = model.original(job, 4096)
        amd = model.amdahl(job, 4096)
        assert amd.fd < base.fd
        assert amd.subspace == base.subspace
        assert amd.density == base.density
        assert amd.poisson == base.poisson

    def test_gains_ordered(self, model, job):
        """fd-only gain >= full rewrite gain >= amdahl gain >= 1."""
        g = model.gains(job, 16384)
        assert g["fd_only"] >= g["full"] >= g["amdahl"] >= 1.0

    def test_fd_only_gain_matches_paper_headline(self, model, job):
        g = model.gains(job, 16384)
        assert g["fd_only"] == pytest.approx(1.88, rel=0.1)

    def test_amdahl_dilution(self, model, job):
        """With 2816 bands, the subspace GEMMs dominate: optimizing only
        the FD step gains far less than the FD-only 1.94x — the
        quantitative content of the paper's 'a lot of work remains'."""
        g = model.gains(job, 16384)
        assert 1.05 < g["amdahl"] < 1.5
        assert g["amdahl"] < 0.75 * g["fd_only"]

    def test_fd_share_grows_with_scale(self, model, job):
        """The FD phase loses efficiency fastest, so its share of the
        original app grows with core count — the paper's motivation."""
        shares = [
            model.original(job, p).fractions()["fd"] for p in (1024, 4096, 16384)
        ]
        assert shares == sorted(shares)

    def test_small_band_jobs_approach_fd_only_gain(self, model):
        """With few bands the FD step dominates and the whole-app gain
        approaches the kernel gain — the regime where the paper's
        conjecture holds."""
        lean = FDJob(GridDescriptor((192, 192, 192)), 128)
        g = model.gains(lean, 16384)
        assert g["full"] > 0.5 * g["fd_only"]
        assert g["full"] > 1.2
