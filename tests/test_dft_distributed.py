"""End-to-end composition tests: distributed Poisson over the FD engine."""

import numpy as np
import pytest

from repro.core.approaches import ALL_APPROACHES, FLAT_ORIGINAL
from repro.dft import Laplacian, PoissonSolver
from repro.dft.distributed import DistributedPoissonSolver
from repro.grid import GridDescriptor
from repro.transport import InprocTransport, run_ranks


def gaussian_rho(gd):
    x, y, z = gd.coordinates()
    c = (gd.shape[0] + 1) * gd.spacing / 2
    r2 = (x - c) ** 2 + (y - c) ** 2 + (z - c) ** 2
    return np.exp(-r2 / 2.0)


class TestAllreduce:
    def test_sums_across_ranks(self):
        def fn(ep):
            return ep.allreduce(float(ep.rank + 1))

        results = run_ranks(4, fn)
        for r in results:
            assert r[0] == pytest.approx(10.0)

    def test_array_payload(self):
        def fn(ep):
            return ep.allreduce(np.array([1.0, 10.0 * ep.rank]))

        results = run_ranks(3, fn)
        for r in results:
            np.testing.assert_allclose(r, [3.0, 30.0])

    def test_single_rank(self):
        def fn(ep):
            return ep.allreduce(np.array([7.0]))

        assert run_ranks(1, fn)[0][0] == 7.0

    def test_sequential_rounds_do_not_cross(self):
        def fn(ep):
            first = ep.allreduce(1.0)[0]
            second = ep.allreduce(100.0)[0]
            return (first, second)

        for first, second in run_ranks(4, fn):
            assert (first, second) == (4.0, 400.0)


class TestDistributedPoisson:
    def test_matches_sequential_jacobi_exactly(self):
        """Same operations in the same per-block order: the distributed
        sweep must track the sequential Jacobi solver to round-off."""
        gd = GridDescriptor((12, 12, 12), pbc=(False,) * 3, spacing=0.5)
        rho = gaussian_rho(gd)
        sweeps = 25

        dist = DistributedPoissonSolver(
            gd, n_ranks=4, tolerance=0.0, max_sweeps=sweeps
        )
        got = dist.solve(rho)

        seq = PoissonSolver(gd, method="jacobi", tolerance=0.0, max_iterations=sweeps)
        expected = seq.solve(rho)

        np.testing.assert_allclose(got.potential, expected.potential, atol=1e-12)
        assert got.sweeps == sweeps

    def test_converges_to_multigrid_solution(self):
        gd = GridDescriptor((12, 12, 12), pbc=(False,) * 3, spacing=0.6)
        rho = gaussian_rho(gd)
        dist = DistributedPoissonSolver(gd, n_ranks=8, tolerance=1e-8,
                                        max_sweeps=20000)
        got = dist.solve(rho)
        assert got.converged
        mg = PoissonSolver(gd, tolerance=1e-10).solve(rho)
        np.testing.assert_allclose(got.potential, mg.potential, atol=1e-5)

    def test_solution_satisfies_pde(self):
        gd = GridDescriptor((12, 12, 12), pbc=(False,) * 3, spacing=0.5)
        rho = gaussian_rho(gd)
        got = DistributedPoissonSolver(gd, n_ranks=2, tolerance=1e-9,
                                       max_sweeps=30000).solve(rho)
        assert got.converged
        lhs = Laplacian(gd).apply(got.potential)
        rhs = -4 * np.pi * rho
        assert np.linalg.norm(lhs - rhs) <= 1e-8 * np.linalg.norm(rhs) * 10

    def test_periodic_neutralization(self):
        gd = GridDescriptor((8, 8, 8), spacing=0.5)  # fully periodic
        rho = gaussian_rho(gd)  # non-neutral on purpose
        got = DistributedPoissonSolver(gd, n_ranks=4, tolerance=1e-7,
                                       max_sweeps=30000).solve(rho)
        assert got.converged
        assert abs(got.potential.mean()) < 1e-9

    @pytest.mark.parametrize(
        "approach", [a for a in ALL_APPROACHES], ids=lambda a: a.name
    )
    def test_every_approach_gives_same_answer(self, approach):
        gd = GridDescriptor((8, 8, 8), pbc=(False,) * 3, spacing=0.5)
        rho = gaussian_rho(gd)
        ref = DistributedPoissonSolver(
            gd, n_ranks=4, tolerance=0.0, max_sweeps=10
        ).solve(rho)
        got = DistributedPoissonSolver(
            gd, n_ranks=4, tolerance=0.0, max_sweeps=10, approach=approach
        ).solve(rho)
        np.testing.assert_allclose(got.potential, ref.potential, atol=1e-13)

    def test_zero_rhs(self):
        gd = GridDescriptor((8, 8, 8), pbc=(False,) * 3)
        got = DistributedPoissonSolver(gd, n_ranks=2).solve(gd.zeros())
        assert got.converged
        assert got.sweeps == 0
        np.testing.assert_array_equal(got.potential, 0.0)

    def test_invalid_omega(self):
        gd = GridDescriptor((8, 8, 8))
        with pytest.raises(ValueError):
            DistributedPoissonSolver(gd, n_ranks=2, omega=0.0)

    def test_rho_shape_checked(self):
        gd = GridDescriptor((8, 8, 8))
        solver = DistributedPoissonSolver(gd, n_ranks=2)
        with pytest.raises(ValueError):
            solver.solve(np.zeros((4, 4, 4)))
