"""Exporters: Chrome-trace round trip, Gantt, utilization, diffing.

Includes the acceptance tests for the telemetry plane: a real engine run
exports valid Chrome-trace JSON that reparses into the identical span
set, all three planes agree on the per-worker step-kind sequence of the
same compiled plan, and the model-plane trace's utilization report
reproduces the analytic :class:`FDTiming` breakdown.
"""

import json

import pytest

from repro.analysis.timeline import (
    model_step_trace,
    real_step_trace,
    sim_step_trace,
    step_trace_for,
)
from repro.core import FDJob, PerformanceModel, approach_by_name
from repro.grid import GridDescriptor
from repro.obs.export import (
    ascii_gantt,
    chrome_trace,
    diff_step_kinds,
    format_diff,
    format_metrics,
    format_utilization,
    parse_chrome_trace,
    utilization_report,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import SpanTracer, StepSpan

CONFIG = dict(n_cores=8, n_grids=4, shape=(16, 16, 16), batch_size=2)


def _spans_sorted(tracer):
    return sorted(tracer.spans(), key=lambda s: s.sort_key)


class TestChromeTraceRoundTrip:
    def test_real_engine_run_round_trips_exactly(self):
        tracer = real_step_trace("hybrid-multiple", **CONFIG)
        assert len(tracer) > 0
        payload = json.dumps(chrome_trace(tracer))
        reparsed = parse_chrome_trace(payload)
        assert reparsed == _spans_sorted(tracer)

    def test_sim_and_model_round_trip(self):
        for plane in ("sim", "model"):
            tracer = step_trace_for(plane, "hybrid-multiple", **CONFIG)
            reparsed = parse_chrome_trace(chrome_trace(tracer))
            assert reparsed == _spans_sorted(tracer)

    def test_event_structure(self):
        tracer = SpanTracer()
        tracer.add(StepSpan(resource="rank2.w1", step_kind="WaitAll",
                            start=10.0, end=10.5, seq=3, grid_ids=(0, 1)))
        data = chrome_trace(tracer)
        assert data["displayTimeUnit"] == "ms"
        xs = [e for e in data["traceEvents"] if e["ph"] == "X"]
        ms = [e for e in data["traceEvents"] if e["ph"] == "M"]
        assert len(xs) == 1 and len(ms) == 2  # process + thread names
        (x,) = xs
        assert x["name"] == "WaitAll" and x["cat"] == "comm"
        assert (x["pid"], x["tid"]) == (2, 1)
        assert x["dur"] == pytest.approx(0.5e6)
        assert x["args"]["seq"] == 3

    def test_non_rank_resources_get_synthetic_pids(self):
        tracer = SpanTracer()
        tracer.record("supervisor.rank0", 0.0, 1.0, "crash")
        (x,) = [e for e in chrome_trace(tracer)["traceEvents"]
                if e["ph"] == "X"]
        assert x["pid"] >= 10_000


class TestCrossPlaneConsistency:
    @pytest.mark.parametrize(
        "name", ["flat-original", "flat-optimized", "hybrid-multiple"]
    )
    def test_real_and_sim_step_sequences_match(self, name):
        real = real_step_trace(name, **dict(CONFIG, batch_size=1))
        sim = sim_step_trace(name, **dict(CONFIG, batch_size=1))
        assert real.step_sequence() == sim.step_sequence()

    def test_batched_sequences_match(self):
        real = real_step_trace("hybrid-multiple", **CONFIG)
        sim = sim_step_trace("hybrid-multiple", **CONFIG)
        assert real.step_sequence() == sim.step_sequence()

    def test_subgroups_share_the_kind_alphabet(self):
        # flat-subgroups is the one approach whose worker *structure*
        # differs between planes: the functional engine consolidates each
        # rank into one worker, the timing planes model four sub-group
        # virtual ranks (see timing_plane_workers).  Sequences cannot
        # match worker-for-worker, but both planes must interpret the
        # same step-kind vocabulary per rank.
        real = real_step_trace("flat-subgroups", **CONFIG)
        sim = sim_step_trace("flat-subgroups", **CONFIG)
        assert set(real.step_kinds()) == set(sim.step_kinds())

    def test_master_only_sequences_match(self):
        real = real_step_trace("hybrid-master-only", n_cores=8, n_grids=4,
                               shape=(16, 16, 16))
        sim = sim_step_trace("hybrid-master-only", n_cores=8, n_grids=4,
                             shape=(16, 16, 16))
        assert real.step_sequence() == sim.step_sequence()

    def test_model_sequence_is_subset_of_kind_alphabet(self):
        # the model reconstructs one representative worker, so it cannot
        # match span-for-span — but it must speak the same IR vocabulary
        model = model_step_trace("hybrid-multiple", **CONFIG)
        sim = sim_step_trace("hybrid-multiple", **CONFIG)
        model_kinds = set(model.step_kinds())
        sim_kinds = set(sim.step_kinds())
        assert model_kinds <= sim_kinds | {"JoinBarrier", "GridBarrier"}
        assert model.resources() == ["rank0.w0"]


class TestUtilizationReport:
    def test_empty_trace(self):
        rep = utilization_report(SpanTracer())
        assert rep["makespan"] == 0.0
        assert rep["utilization"] == 0.0

    def test_single_resource_breakdown(self):
        tr = SpanTracer()
        tr.record("rank0.w0", 0.0, 6.0, "ComputeInterior")
        tr.record("rank0.w0", 6.0, 8.0, "WaitAll")
        tr.record("rank0.w0", 8.0, 10.0, "JoinBarrier")
        rep = utilization_report(tr)
        assert rep["makespan"] == pytest.approx(10.0)
        assert rep["fractions"]["compute"] == pytest.approx(0.6)
        assert rep["fractions"]["comm"] == pytest.approx(0.2)
        assert rep["fractions"]["sync"] == pytest.approx(0.2)
        assert rep["idle"] == pytest.approx(0.0)
        assert rep["utilization"] == pytest.approx(0.6)

    @pytest.mark.parametrize(
        "name,batch", [("flat-optimized", 4), ("hybrid-multiple", 4),
                       ("hybrid-master-only", 4), ("flat-original", 1)]
    )
    def test_model_trace_report_matches_fdtiming(self, name, batch):
        """Acceptance: utilization report vs the perfmodel, same config."""
        approach = approach_by_name(name)
        pm = PerformanceModel()
        job = FDJob(GridDescriptor((64, 64, 64)), 16)
        timing = pm.evaluate(job, approach, 256, batch_size=batch)
        rep = utilization_report(
            pm.step_trace(job, approach, 256, batch_size=batch)
        )
        tol = 0.05 * timing.total
        assert rep["makespan"] == pytest.approx(timing.total, abs=tol)
        assert rep["categories"]["comm"] == pytest.approx(
            timing.comm_exposed, abs=tol
        )
        # compute spans exclude the barrier time FDTiming folds into
        # ``compute``; together with sync spans the books balance
        assert (
            rep["categories"]["compute"] + rep["categories"]["sync"]
        ) >= timing.total - timing.comm_exposed - tol

    def test_format_utilization_renders(self):
        tr = SpanTracer()
        tr.record("rank0.w0", 0.0, 1.0, "ComputeInterior")
        text = format_utilization(utilization_report(tr))
        assert "compute" in text and "utilization 100.00%" in text


class TestGantt:
    def test_normalized_gantt_for_raw_timestamps(self):
        tr = SpanTracer()
        tr.record("rank0.w0", 1000.0, 1001.0, "ComputeInterior")
        out = ascii_gantt(tr, width=20, normalize=True)
        assert "rank0.w0" in out and "#" in out

    def test_empty(self):
        assert ascii_gantt(SpanTracer()) == "(empty trace)"


class TestDiff:
    def test_diff_reports_deltas_and_ratios(self):
        a, b = SpanTracer(), SpanTracer()
        a.record("r", 0.0, 2.0, "WaitAll")
        b.record("r", 0.0, 1.0, "WaitAll")
        b.record("r", 1.0, 2.0, "PostSend")
        a.record("r", 2.0, 3.0, "JoinBarrier")
        diff = diff_step_kinds(a, b)
        assert diff["WaitAll"]["delta"] == pytest.approx(1.0)
        assert diff["WaitAll"]["ratio"] == pytest.approx(2.0)
        assert diff["PostSend"]["ratio"] == 0.0  # absent from a
        assert diff["JoinBarrier"]["ratio"] is None  # absent from b
        text = format_diff(diff, "real", "sim")
        assert "real" in text and "WaitAll" in text

    def test_real_vs_sim_diff_covers_all_kinds(self):
        real = real_step_trace("hybrid-multiple", **CONFIG)
        sim = sim_step_trace("hybrid-multiple", **CONFIG)
        diff = diff_step_kinds(real, sim)
        assert set(diff) == set(real.step_kinds()) | set(sim.step_kinds())


class TestFormatMetrics:
    def test_renders_all_kinds(self):
        reg = MetricsRegistry()
        reg.counter("msgs", rank=0).inc(3)
        reg.gauge("residual").set(0.5)
        reg.histogram("lat").observe(0.01)
        text = format_metrics(reg)
        assert "msgs{rank=0}" in text
        assert "residual" in text
        assert "count=1" in text

    def test_empty_registry(self):
        assert format_metrics(MetricsRegistry()) == "(no instruments)"


class TestParseErrorPaths:
    """Malformed payloads fail loudly with typed exceptions, never
    silently return a partial span set."""

    def test_malformed_json_string(self):
        with pytest.raises(json.JSONDecodeError):
            parse_chrome_trace('{"traceEvents": [truncated')

    def test_dict_missing_trace_events(self):
        with pytest.raises(KeyError):
            parse_chrome_trace({"displayTimeUnit": "ms"})

    def test_x_event_missing_args(self):
        with pytest.raises(KeyError):
            parse_chrome_trace(
                {"traceEvents": [{"ph": "X", "name": "WaitAll"}]}
            )

    def test_x_event_args_missing_required_keys(self):
        # args present but truncated: no exact start/end floats
        event = {
            "ph": "X",
            "name": "WaitAll",
            "args": {"resource": "rank0.w0"},
        }
        with pytest.raises(KeyError):
            parse_chrome_trace({"traceEvents": [event]})

    def test_metadata_only_payload_is_empty_not_an_error(self):
        events = [{"ph": "M", "name": "process_name", "args": {"name": "r"}}]
        assert parse_chrome_trace({"traceEvents": events}) == []

    def test_bare_event_list_is_accepted(self):
        tracer = SpanTracer()
        tracer.add(StepSpan(resource="rank0.w0", step_kind="WaitAll",
                            start=0.0, end=1.0))
        events = chrome_trace(tracer)["traceEvents"]
        assert parse_chrome_trace({"traceEvents": events}) == tracer.spans()


class TestGanttDeterminism:
    def test_zero_duration_tie_break_is_stable(self):
        """Spans tied on (start, end) render identically regardless of
        insertion order — sort_key breaks the tie."""
        def build(order):
            tracer = SpanTracer()
            for kind in order:
                tracer.add(StepSpan(resource="rank0.w0", step_kind=kind,
                                    start=1.0, end=1.0))
            tracer.add(StepSpan(resource="rank0.w0",
                                step_kind="ComputeInterior",
                                start=0.0, end=2.0))
            return ascii_gantt(tracer)

        a = build(["PostSend", "WaitAll", "GridBarrier"])
        b = build(["GridBarrier", "PostSend", "WaitAll"])
        assert a == b
