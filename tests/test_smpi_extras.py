"""Tests for sendrecv, bcast and reduce on the simulated MPI layer."""

import pytest

from repro.machine import Machine, NodeMode
from repro.machine.spec import BGP_SPEC
from repro.smpi import SimComm


def make(n_nodes=8):
    machine = Machine(n_nodes, NodeMode.SMP)
    return machine, SimComm(machine)


class TestSendrecv:
    def test_ring_shift_completes(self):
        """The canonical use: every rank shifts one step right."""
        machine, comm = make(4)
        results = []

        def proc(rank):
            ctx = comm.context(rank)
            right = (rank + 1) % 4
            left = (rank - 1) % 4
            status = yield from ctx.sendrecv(right, 1000, src=left)
            results.append((rank, status.source))

        for rank in range(4):
            machine.sim.spawn(proc(rank))
        machine.sim.run()
        assert sorted(results) == [(r, (r - 1) % 4) for r in range(4)]

    def test_send_and_recv_both_complete(self):
        """sendrecv returns only when *both* halves are done."""
        machine, comm = make(2)

        def late_receiver(ctx):
            yield machine.sim.timeout(1.0)  # delays rank 0's send completion?
            yield from ctx.recv(src=0, tag=0)
            yield from ctx.send(0, 100, tag=1)

        def proc(ctx):
            status = yield from ctx.sendrecv(1, 100, src=1, send_tag=0, recv_tag=1)
            return machine.sim.now, status.nbytes

        machine.sim.spawn(late_receiver(comm.context(1)))
        p = machine.sim.spawn(proc(comm.context(0)))
        machine.sim.run()
        t, nbytes = p.value
        assert t > 1.0  # waited for the (delayed) incoming half
        assert nbytes == 100

    def test_distinct_tags(self):
        machine, comm = make(2)
        got = []

        def a(ctx):
            status = yield from ctx.sendrecv(1, 10, src=1, send_tag=7, recv_tag=9)
            got.append(status.tag)

        def b(ctx):
            status = yield from ctx.sendrecv(0, 20, src=0, send_tag=9, recv_tag=7)
            got.append(status.tag)

        machine.sim.spawn(a(comm.context(0)))
        machine.sim.spawn(b(comm.context(1)))
        machine.sim.run()
        assert sorted(got) == [7, 9]


class TestTreeCollectives:
    @pytest.mark.parametrize("op", ["bcast", "reduce", "allreduce"])
    def test_all_ranks_finish_together(self, op):
        machine, comm = make(8)
        times = []

        def proc(rank):
            ctx = comm.context(rank)
            yield from getattr(ctx, op)(10_000)
            times.append(machine.sim.now)

        for rank in range(8):
            machine.sim.spawn(proc(rank))
        machine.sim.run()
        assert len(times) == 8
        assert all(t == pytest.approx(times[0]) for t in times)

    @pytest.mark.parametrize("op", ["bcast", "reduce"])
    def test_tree_timing(self, op):
        machine, comm = make(16)
        nbytes = 500_000

        def proc(rank):
            yield from getattr(comm.context(rank), op)(nbytes)

        for rank in range(16):
            machine.sim.spawn(proc(rank))
        machine.sim.run()
        assert machine.sim.now == pytest.approx(
            BGP_SPEC.tree.collective_time(nbytes, 16)
        )

    def test_negative_bytes_rejected(self):
        machine, comm = make(2)

        def bad(ctx):
            yield from ctx.bcast(-1)

        with pytest.raises(ValueError):
            machine.sim.run_process(bad(comm.context(0)))

    def test_mixed_collectives_do_not_cross(self):
        """A bcast round and a reduce round are separate rendezvous."""
        machine, comm = make(2)
        order = []

        def proc(rank):
            ctx = comm.context(rank)
            yield from ctx.bcast(100)
            order.append(("bcast", rank))
            yield from ctx.reduce(100)
            order.append(("reduce", rank))

        for rank in range(2):
            machine.sim.spawn(proc(rank))
        machine.sim.run()
        kinds = [k for k, _ in order]
        assert kinds == ["bcast", "bcast", "reduce", "reduce"]
