"""StepSpan schema, SpanTracer recording, and the engine hook."""

import threading

import pytest

from repro.core.schedule import ApplyLocalWraps, PostSend, WaitAll
from repro.obs.spans import (
    COMM_STEPS,
    COMPUTE_STEPS,
    SYNC_STEPS,
    SpanTracer,
    StepSpan,
    engine_hook,
    step_category,
)


class TestStepCategory:
    def test_ir_step_kinds_covered(self):
        for kind in COMM_STEPS:
            assert step_category(kind) == "comm"
        for kind in COMPUTE_STEPS:
            assert step_category(kind) == "compute"
        for kind in SYNC_STEPS:
            assert step_category(kind) == "sync"

    def test_free_labels_are_other(self):
        assert step_category("crash: RankDiedError") == "other"


class TestStepSpan:
    def test_rejects_backwards_span(self):
        with pytest.raises(ValueError):
            StepSpan(resource="r", step_kind="WaitAll", start=2.0, end=1.0)

    def test_duration_and_category(self):
        s = StepSpan(resource="r", step_kind="ComputeInterior",
                     start=1.0, end=3.5)
        assert s.duration == 2.5
        assert s.category == "compute"

    def test_equality_is_full_field(self):
        a = StepSpan(resource="r", step_kind="WaitAll", start=0.0, end=1.0,
                     seq=3)
        b = StepSpan(resource="r", step_kind="WaitAll", start=0.0, end=1.0,
                     seq=4)
        assert a != b  # unlike des.trace.Span, non-time fields compare

    def test_sort_key_breaks_timestamp_ties(self):
        a = StepSpan(resource="r", step_kind="PostRecv", start=0.0, end=0.0)
        b = StepSpan(resource="r", step_kind="PostSend", start=0.0, end=0.0)
        assert sorted([b, a], key=lambda s: s.sort_key) == [a, b]

    def test_label_mentions_grids_and_seq(self):
        s = StepSpan(resource="r", step_kind="WaitAll", start=0.0, end=1.0,
                     grid_ids=(2, 3), seq=1)
        assert s.label() == "WaitAll g2,3 seq1"


class TestSpanTracer:
    def test_record_step_extracts_ir_tags(self):
        tr = SpanTracer(plane="sim")
        tr.record_step("rank0.w0", PostSend(seq=2, dim=1, step=-1, dst=3,
                                            grid_ids=(0, 1), nbytes=64),
                       0, 1.0, 2.0)
        (s,) = tr.spans()
        assert s.step_kind == "PostSend"
        assert s.plane == "sim"
        assert s.grid_ids == (0, 1)
        assert (s.seq, s.dim, s.direction) == (2, 1, -1)

    def test_record_step_rejects_backwards(self):
        with pytest.raises(ValueError):
            SpanTracer().record_step("r", WaitAll(seq=0, grid_ids=(0,)),
                                     0, 2.0, 1.0)

    def test_grid_id_promoted_to_tuple(self):
        tr = SpanTracer()
        tr.record_step("r", ApplyLocalWraps(grid_id=5), 0, 0.0, 1.0)
        assert tr.spans()[0].grid_ids == (5,)

    def test_legacy_record_keeps_label(self):
        tr = SpanTracer()
        tr.record("r", 0.0, 1.0, "crash")
        assert tr.spans()[0].step_kind == "crash"
        tr.record("r", 1.0, 2.0)
        assert tr.spans()[1].step_kind == "span"

    def test_insertion_order_preserved_per_resource(self):
        tr = SpanTracer()
        # zero-duration steps at the same instant: sorting by time could
        # not recover this order, insertion order can
        for kind in (PostSend(seq=0, dim=0, step=1, dst=1, grid_ids=(0,),
                              nbytes=8),
                     WaitAll(seq=0, grid_ids=(0,))):
            tr.record_step("rank0.w0", kind, 0, 1.0, 1.0)
        assert tr.step_sequence()["rank0.w0"] == ["PostSend", "WaitAll"]

    def test_makespan_and_busy_time(self):
        tr = SpanTracer()
        tr.record("a", 1.0, 3.0)
        tr.record("a", 2.0, 4.0)  # overlaps: busy time merges
        tr.record("b", 5.0, 6.0)
        assert tr.makespan() == pytest.approx(5.0)
        assert tr.busy_time("a") == pytest.approx(3.0)
        assert tr.t0() == 1.0

    def test_step_kinds_totals(self):
        tr = SpanTracer()
        tr.record("a", 0.0, 1.0, "WaitAll")
        tr.record("b", 0.0, 2.0, "WaitAll")
        assert tr.step_kinds() == {"WaitAll": 3.0}

    def test_concurrent_recording(self):
        tr = SpanTracer()
        step = ApplyLocalWraps(grid_id=0)

        def worker(rank):
            for i in range(500):
                tr.record_step(f"rank{rank}.w0", step, 0, float(i),
                               float(i) + 0.5)

        threads = [threading.Thread(target=worker, args=(r,)) for r in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tr) == 2000
        assert all(len(v) == 500 for v in tr.step_sequence().values())

    def test_len_counts_before_materialization(self):
        tr = SpanTracer()
        tr.record_step("r", ApplyLocalWraps(grid_id=0), 0, 0.0, 1.0)
        assert len(tr) == 1  # raw record counted without building spans


class TestEngineHook:
    def test_hook_names_resources_like_tracer_hook(self):
        tr = SpanTracer()
        hook = engine_hook(tr, rank=3)
        hook(ApplyLocalWraps(grid_id=0), 1, 0.0, 1.0)
        hook(ApplyLocalWraps(grid_id=1), 1, 1.0, 2.0)
        assert tr.resources() == ["rank3.w1"]
        assert all(s.worker == 1 for s in tr.spans())

    def test_one_tracer_serves_all_ranks(self):
        tr = SpanTracer()
        for rank in (0, 1):
            engine_hook(tr, rank)(ApplyLocalWraps(grid_id=0), 0, 0.0, 1.0)
        assert tr.resources() == ["rank0.w0", "rank1.w0"]
