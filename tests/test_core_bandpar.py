"""Tests for the band-parallelization extension model."""

import pytest

from repro.core import FDJob
from repro.core.bandpar import BandParallelModel
from repro.grid import GridDescriptor


@pytest.fixture(scope="module")
def model():
    return BandParallelModel()


@pytest.fixture(scope="module")
def job():
    return FDJob(GridDescriptor((192, 192, 192)), 2816)


class TestValidation:
    def test_groups_must_divide_grids(self, model):
        with pytest.raises(ValueError, match="band groups"):
            model.evaluate(FDJob(GridDescriptor((96, 96, 96)), 7), 64, 2)

    def test_groups_must_divide_cores(self, model, job):
        with pytest.raises(ValueError, match="divisible"):
            model.evaluate(job, 16384, 11)

    def test_positive_args(self, model, job):
        with pytest.raises(ValueError):
            model.evaluate(job, 0, 1)
        with pytest.raises(ValueError):
            model.evaluate(job, 16384, 0)


class TestReduction:
    def test_nb1_has_no_ring_traffic(self, model, job):
        t = model.evaluate(job, 16384, 1)
        assert t.subspace_ring_comm == 0.0

    def test_nb1_fd_matches_hybrid_multiple(self, model, job):
        """One band group IS the paper's hybrid-multiple configuration."""
        from repro.core import HYBRID_MULTIPLE, PerformanceModel

        t = model.evaluate(job, 16384, 1)
        direct = PerformanceModel().best_batch_size(job, HYBRID_MULTIPLE, 16384)
        assert t.fd == pytest.approx(direct.total)


class TestScalingEscape:
    def test_fd_time_drops_with_band_groups(self, model, job):
        """Coarser domain decomposition per group => less FD communication
        and a smaller halo penalty — the constraint the paper's section IV
        imposes is exactly what band parallelization relaxes."""
        fds = [t.fd for t in model.sweep(job, 16384, max_groups=8)]
        assert fds == sorted(fds, reverse=True)

    def test_ring_comm_grows_with_groups(self, model, job):
        rings = [t.subspace_ring_comm for t in model.sweep(job, 16384, 8)]
        assert rings == sorted(rings)

    def test_ring_hides_under_gemm_for_moderate_groups(self, model, job):
        """The ring exchange overlaps the partial GEMMs; for the paper's
        band-heavy job it stays fully hidden up to 8 groups."""
        for t in model.sweep(job, 16384, 8):
            assert t.subspace == t.subspace_compute

    def test_total_improves_or_holds(self, model, job):
        totals = [t.total for t in model.sweep(job, 16384, 8)]
        assert totals[-1] <= totals[0]

    def test_sweep_skips_infeasible_counts(self, model):
        job = FDJob(GridDescriptor((96, 96, 96)), 12)  # 12 grids: nb in {1,2,4}
        nbs = [t.n_band_groups for t in model.sweep(job, 256, max_groups=8)]
        assert nbs == [1, 2, 4]
