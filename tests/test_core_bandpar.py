"""Tests for the band-parallelization extension model.

Also pins the compiled :class:`BandSchedulePlan` structure all three
planes execute, the ``nb = 1`` plan-identity reduction, and the
model-vs-DES cross-validation (<= 5%).
"""

import pytest

from repro.core import FDJob, PartialGemm, RingSendRecv
from repro.core.bandpar import BandParallelModel
from repro.core.schedule import OVERLAP_PHASE, ROTATE_PHASE, WaitAll
from repro.grid import GridDescriptor


@pytest.fixture(scope="module")
def model():
    return BandParallelModel()


@pytest.fixture(scope="module")
def job():
    return FDJob(GridDescriptor((192, 192, 192)), 2816)


class TestValidation:
    def test_groups_must_divide_grids(self, model):
        with pytest.raises(ValueError, match="band groups"):
            model.evaluate(FDJob(GridDescriptor((96, 96, 96)), 7), 64, 2)

    def test_groups_must_divide_cores(self, model, job):
        with pytest.raises(ValueError, match="divisible"):
            model.evaluate(job, 16384, 11)

    def test_positive_args(self, model, job):
        with pytest.raises(ValueError):
            model.evaluate(job, 0, 1)
        with pytest.raises(ValueError):
            model.evaluate(job, 16384, 0)


class TestReduction:
    def test_nb1_has_no_ring_traffic(self, model, job):
        t = model.evaluate(job, 16384, 1)
        assert t.subspace_ring_comm == 0.0

    def test_nb1_fd_matches_hybrid_multiple(self, model, job):
        """One band group IS the paper's hybrid-multiple configuration."""
        from repro.core import HYBRID_MULTIPLE, PerformanceModel

        t = model.evaluate(job, 16384, 1)
        direct = PerformanceModel().best_batch_size(job, HYBRID_MULTIPLE, 16384)
        assert t.fd == pytest.approx(direct.total)


class TestScalingEscape:
    def test_fd_time_drops_with_band_groups(self, model, job):
        """Coarser domain decomposition per group => less FD communication
        and a smaller halo penalty — the constraint the paper's section IV
        imposes is exactly what band parallelization relaxes."""
        fds = [t.fd for t in model.sweep(job, 16384, max_groups=8)]
        assert fds == sorted(fds, reverse=True)

    def test_ring_comm_grows_with_groups(self, model, job):
        rings = [t.subspace_ring_comm for t in model.sweep(job, 16384, 8)]
        assert rings == sorted(rings)

    def test_ring_hides_under_gemm_for_moderate_groups(self, model, job):
        """The ring exchange overlaps the partial GEMMs; for the paper's
        band-heavy job it stays fully hidden up to 8 groups."""
        for t in model.sweep(job, 16384, 8):
            assert t.subspace == t.subspace_compute

    def test_total_improves_or_holds(self, model, job):
        totals = [t.total for t in model.sweep(job, 16384, 8)]
        assert totals[-1] <= totals[0]

    def test_sweep_skips_infeasible_counts(self, model):
        job = FDJob(GridDescriptor((96, 96, 96)), 12)  # 12 grids: nb in {1,2,4}
        nbs = [t.n_band_groups for t in model.sweep(job, 256, max_groups=8)]
        assert nbs == [1, 2, 4]


class TestCompiledPlan:
    """Structure of the plan every plane walks."""

    def test_nb1_degenerates_to_one_gemm_per_phase(self, model, job):
        plan = model.band_plan(job, 16384, 1)
        steps = plan.group_steps(0)
        assert [type(s).__name__ for s in steps] == ["PartialGemm"] * 2
        assert {s.phase for s in steps} == {OVERLAP_PHASE, ROTATE_PHASE}

    def test_nb1_fd_plan_is_the_hybrid_multiple_plan(self, model, job):
        """Identity, not equivalence: same cache key, same object."""
        from repro.core import HYBRID_MULTIPLE, PerformanceModel
        from repro.core.schedule import compile_schedule, timing_plane_workers
        from repro.grid import Decomposition

        timing = PerformanceModel().best_batch_size(job, HYBRID_MULTIPLE, 16384)
        direct = compile_schedule(
            HYBRID_MULTIPLE,
            Decomposition(job.grid, HYBRID_MULTIPLE.domains_for(16384)),
            job.n_grids,
            timing.batch_size,
            n_workers=timing_plane_workers(HYBRID_MULTIPLE, 16384),
        )
        assert model.fd_plan(job, 16384, 1) is direct

    def test_step_counts_per_phase(self, model, job):
        nb = 4
        plan = model.band_plan(job, 16384, nb)
        for phase in (OVERLAP_PHASE, ROTATE_PHASE):
            steps = plan.phase_steps(0, phase)
            kinds = [type(s) for s in steps]
            assert kinds.count(PartialGemm) == nb
            assert kinds.count(RingSendRecv) == nb - 1
            assert kinds.count(WaitAll) == nb - 1

    def test_group_steps_concatenates_the_phases(self, model, job):
        plan = model.band_plan(job, 16384, 4)
        assert plan.group_steps(1) == (
            plan.phase_steps(1, OVERLAP_PHASE) + plan.phase_steps(1, ROTATE_PHASE)
        )
        assert plan.rank_steps(16383) == plan.group_steps(3)

    def test_exchange_posted_before_the_gemm_it_hides_under(self, model, job):
        plan = model.band_plan(job, 16384, 4)
        steps = plan.phase_steps(2, OVERLAP_PHASE)
        for i, st in enumerate(steps):
            if isinstance(st, RingSendRecv):
                assert isinstance(steps[i + 1], PartialGemm)
                assert isinstance(steps[i + 2], WaitAll)
                assert steps[i + 2].seq == st.seq

    def test_gemm_sources_walk_the_ring(self, model, job):
        nb = 4
        plan = model.band_plan(job, 16384, nb)
        for group in range(nb):
            srcs = [
                s.src_group
                for s in plan.phase_steps(group, OVERLAP_PHASE)
                if isinstance(s, PartialGemm)
            ]
            assert srcs == [(group - stage) % nb for stage in range(nb)]

    def test_ring_tags_distinct_across_phases_and_stages(self, model, job):
        plan = model.band_plan(job, 16384, 4)
        tags = [
            s.tag for s in plan.group_steps(0) if isinstance(s, RingSendRecv)
        ]
        assert len(tags) == len(set(tags)) == 6


class TestModelVsDes:
    """The analytic walk and the DES replay price the same plan alike."""

    @pytest.mark.parametrize("nb", [1, 2, 4])
    def test_band_step_within_five_percent(self, nb):
        from repro.core.simrun import simulate_band_step

        small = FDJob(GridDescriptor((48, 48, 48)), 16)
        modeled = BandParallelModel().evaluate(small, 32, nb)
        sim = simulate_band_step(small, 32, nb)
        assert sim.n_groups == nb
        assert sim.total == pytest.approx(modeled.total, rel=0.05)
