"""Direct tests for repro.netmodel and remaining machine edges."""

import pytest

from repro.des import Simulator
from repro.machine import Machine, NodeMode
from repro.machine.spec import BGP_SPEC, TorusSpec
from repro.netmodel import (
    BandwidthPoint,
    analytic_bandwidth_curve,
    default_message_sizes,
    measured_bandwidth_curve,
)


class TestAnalyticCurve:
    def test_default_sizes_are_powers_of_two(self):
        sizes = default_message_sizes()
        assert all(s & (s - 1) == 0 for s in sizes)
        assert sizes == sorted(sizes)

    def test_points_carry_consistent_fields(self):
        for p in analytic_bandwidth_curve([10, 1000]):
            assert isinstance(p, BandwidthPoint)
            assert p.bandwidth == pytest.approx(p.message_bytes / p.time)

    def test_custom_spec_shifts_curve(self):
        fast = BGP_SPEC.with_(torus=TorusSpec(effective_bandwidth=750e6))
        default = analytic_bandwidth_curve([10**6])[0]
        faster = analytic_bandwidth_curve([10**6], spec=fast)[0]
        assert faster.bandwidth > default.bandwidth

    def test_measured_uses_one_hop_neighbours(self):
        # the measured curve's asymptote must match the analytic one-hop model
        m = measured_bandwidth_curve([10**7])[0]
        a = analytic_bandwidth_curve([10**7])[0]
        assert m.bandwidth == pytest.approx(a.bandwidth, rel=1e-6)


class TestMachineEdges:
    def test_dual_mode_machine(self):
        m = Machine(2, NodeMode.DUAL)
        assert m.n_ranks == 4
        assert m.partition.ranks_of_node(0) == [0, 1]

    def test_machine_reuses_external_simulator(self):
        sim = Simulator()
        m = Machine(2, sim=sim)
        assert m.sim is sim
        sim2 = Simulator()
        m2 = Machine(2, sim=sim2)
        assert m2.sim is sim2 and m2.sim is not m.sim

    def test_two_machines_do_not_share_state(self):
        a, b = Machine(4), Machine(4)
        a.sim.run_process(a.transfer(0, 1, 1000))
        assert a.torus.bytes_sent.get(0) == 1000
        assert b.torus.bytes_sent.get(0) is None

    def test_spec_with_composes(self):
        spec = BGP_SPEC.with_(stencil_point_time=1e-9).with_(
            halo_compute_exponent=0.1
        )
        assert spec.stencil_point_time == 1e-9
        assert spec.halo_compute_exponent == 0.1
        assert spec.torus == BGP_SPEC.torus

    def test_simrun_single_core_and_dual(self):
        from repro.core import FDJob, FLAT_OPTIMIZED, simulate_fd
        from repro.grid import GridDescriptor

        job = FDJob(GridDescriptor((16, 16, 16)), 2)
        one = simulate_fd(job, FLAT_OPTIMIZED, 1)
        two = simulate_fd(job, FLAT_OPTIMIZED, 2)
        assert one.messages == 0
        assert two.total < one.total  # two cores beat one
