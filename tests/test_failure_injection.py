"""Failure injection: schedule bugs and dying ranks must fail loudly.

A distributed engine that *hangs* on misuse is a debugging nightmare; the
transport's bounded waits turn desynchronized schedules, dead peers and
mismatched parameters into immediate, attributable errors.
"""

import numpy as np
import pytest

from repro.core import DistributedStencil, HYBRID_MULTIPLE
from repro.grid import Decomposition, GridDescriptor, HaloSpec, scatter
from repro.stencil import laplacian_coefficients
from repro.transport import InprocTransport, TransportError, run_ranks


def make_engine(shape=(8, 8, 8), n_ranks=2):
    gd = GridDescriptor(shape)
    decomp = Decomposition(gd, n_ranks)
    engine = DistributedStencil(decomp, laplacian_coefficients(2, gd.spacing))
    blocks = {
        gid: scatter(gd.random(seed=gid), decomp, HaloSpec(2)) for gid in range(4)
    }
    return gd, engine, blocks


class TestScheduleDesync:
    def test_mismatched_batch_sizes_detected(self):
        """Ranks disagreeing on batch size produce mismatched tags; the
        bounded recv turns the would-be deadlock into a TransportError."""
        gd, engine, blocks = make_engine()
        tr = InprocTransport(2, default_timeout=0.3)

        def rank_fn(ep):
            mine = {gid: blocks[gid][ep.rank] for gid in blocks}
            batch = 2 if ep.rank == 0 else 4  # the bug
            return engine.apply(ep, mine, batch_size=batch)

        with pytest.raises(TransportError):
            run_ranks(2, rank_fn, transport=tr)

    def test_mismatched_grid_sets_detected(self):
        gd, engine, blocks = make_engine()
        tr = InprocTransport(2, default_timeout=0.3)

        def rank_fn(ep):
            gids = list(blocks) if ep.rank == 0 else list(blocks)[:-1]  # the bug
            mine = {gid: blocks[gid][ep.rank] for gid in gids}
            return engine.apply(ep, mine)

        with pytest.raises(TransportError):
            run_ranks(2, rank_fn, transport=tr)


class TestDyingRanks:
    def test_peer_death_breaks_barrier(self):
        tr = InprocTransport(2, default_timeout=0.3)

        def rank_fn(ep):
            if ep.rank == 1:
                raise RuntimeError("simulated crash")
            ep.barrier()

        with pytest.raises(TransportError, match="rank 1 failed"):
            run_ranks(2, rank_fn, transport=tr)

    def test_peer_death_before_send_times_out_receiver(self):
        tr = InprocTransport(2, default_timeout=0.3)
        outcomes = {}

        def rank_fn(ep):
            if ep.rank == 0:
                raise RuntimeError("crash before sending")
            try:
                ep.recv(src=0, tag=0)
            except TransportError as exc:
                outcomes["recv"] = str(exc)

        with pytest.raises(TransportError):
            run_ranks(2, rank_fn, transport=tr)
        assert "timed out" in outcomes["recv"]


class TestTimeoutConfiguration:
    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            InprocTransport(2, default_timeout=0.0)

    def test_explicit_timeout_overrides_default(self):
        tr = InprocTransport(2, default_timeout=60.0)

        def rank_fn(ep):
            if ep.rank == 0:
                with pytest.raises(TransportError):
                    ep.recv(src=1, tag=0, timeout=0.05)

        run_ranks(2, rank_fn, transport=tr)

    def test_error_message_names_rank_and_tag(self):
        tr = InprocTransport(1, default_timeout=0.05)
        ep = tr.endpoint(0)
        with pytest.raises(TransportError, match=r"rank 0: recv\(src=0, tag=42\)"):
            ep.recv(src=0, tag=42)


class TestFailureAttribution:
    """Failures must *name things*: ranks, messages, schedule steps."""

    def test_barrier_failure_names_arrived_and_missing_ranks(self):
        tr = InprocTransport(3, default_timeout=0.2)

        def rank_fn(ep):
            if ep.rank == 2:
                return  # never arrives
            ep.barrier()

        with pytest.raises(
            TransportError,
            match=r"barrier failed — arrived ranks \[0, 1\], missing ranks \[2\]",
        ):
            run_ranks(3, rank_fn, transport=tr)

    def test_recv_timeout_decodes_halo_tag_meaning(self):
        from repro.core.schedule import message_tag

        tr = InprocTransport(1, default_timeout=0.05)
        ep = tr.endpoint(0)
        tag = message_tag(seq=5, dim=1, step=-1)
        with pytest.raises(
            TransportError, match=r"message is halo exchange seq 5, -y direction"
        ):
            ep.recv(src=0, tag=tag)

    def test_recv_timeout_names_collective_round(self):
        from repro.transport.errors import COLL_TAG_BASE

        tr = InprocTransport(1, default_timeout=0.05)
        with pytest.raises(TransportError, match="collective round 7"):
            tr.endpoint(0).recv(src=0, tag=COLL_TAG_BASE + 7)


class TestSeededReplay:
    """Same seed ⇒ identical fault sequence and identical crash report."""

    def _run_once(self, seed):
        from repro.transport import (
            FaultPlan,
            FaultyTransport,
            RetryPolicy,
            run_ranks_supervised,
        )

        gd, engine, blocks = make_engine()
        # ~16 transport ops per rank per attempt; op 10 is mid-schedule
        plan = FaultPlan(
            seed=seed, p_drop=0.03, p_corrupt=0.03, p_duplicate=0.05,
            p_delay=0.05, delay=0.0005, kill_at={1: 10},
        )
        reports = []

        def rank_fn(ep):
            mine = {gid: blocks[gid][ep.rank] for gid in blocks}
            return engine.apply(ep, mine)

        def factory(attempt):
            return FaultyTransport(InprocTransport(2, default_timeout=0.3), plan)

        with pytest.raises(TransportError) as exc_info:
            run_ranks_supervised(
                2, rank_fn, transport_factory=factory,
                policy=RetryPolicy(max_retries=3, backoff_base=0.0),
                on_crash=reports.append,
            )
        return plan.events, exc_info.value.crash_report, reports

    def test_same_seed_replays_identically(self):
        events_a, crash_a, _ = self._run_once(seed=3)
        events_b, crash_b, _ = self._run_once(seed=3)
        assert events_a == events_b  # bit-identical fault sequence
        assert crash_a.failed_rank == crash_b.failed_rank == 1
        assert crash_a.error_type == crash_b.error_type == "RankKilledError"
        assert crash_a.fault_events == crash_b.fault_events
        assert crash_a.format() == crash_b.format()

    def test_different_seed_diverges(self):
        from repro.transport import FaultPlan

        def stream(seed):
            plan = FaultPlan(
                seed=seed, p_drop=0.03, p_corrupt=0.03, p_duplicate=0.05,
                p_delay=0.05,
            )
            return [plan.decide(r, i) for r in (0, 1) for i in range(200)]

        assert stream(3) != stream(4)
