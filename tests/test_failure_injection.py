"""Failure injection: schedule bugs and dying ranks must fail loudly.

A distributed engine that *hangs* on misuse is a debugging nightmare; the
transport's bounded waits turn desynchronized schedules, dead peers and
mismatched parameters into immediate, attributable errors.
"""

import numpy as np
import pytest

from repro.core import DistributedStencil, HYBRID_MULTIPLE
from repro.grid import Decomposition, GridDescriptor, HaloSpec, scatter
from repro.stencil import laplacian_coefficients
from repro.transport import InprocTransport, TransportError, run_ranks


def make_engine(shape=(8, 8, 8), n_ranks=2):
    gd = GridDescriptor(shape)
    decomp = Decomposition(gd, n_ranks)
    engine = DistributedStencil(decomp, laplacian_coefficients(2, gd.spacing))
    blocks = {
        gid: scatter(gd.random(seed=gid), decomp, HaloSpec(2)) for gid in range(4)
    }
    return gd, engine, blocks


class TestScheduleDesync:
    def test_mismatched_batch_sizes_detected(self):
        """Ranks disagreeing on batch size produce mismatched tags; the
        bounded recv turns the would-be deadlock into a TransportError."""
        gd, engine, blocks = make_engine()
        tr = InprocTransport(2, default_timeout=0.3)

        def rank_fn(ep):
            mine = {gid: blocks[gid][ep.rank] for gid in blocks}
            batch = 2 if ep.rank == 0 else 4  # the bug
            return engine.apply(ep, mine, batch_size=batch)

        with pytest.raises(TransportError):
            run_ranks(2, rank_fn, transport=tr)

    def test_mismatched_grid_sets_detected(self):
        gd, engine, blocks = make_engine()
        tr = InprocTransport(2, default_timeout=0.3)

        def rank_fn(ep):
            gids = list(blocks) if ep.rank == 0 else list(blocks)[:-1]  # the bug
            mine = {gid: blocks[gid][ep.rank] for gid in gids}
            return engine.apply(ep, mine)

        with pytest.raises(TransportError):
            run_ranks(2, rank_fn, transport=tr)


class TestDyingRanks:
    def test_peer_death_breaks_barrier(self):
        tr = InprocTransport(2, default_timeout=0.3)

        def rank_fn(ep):
            if ep.rank == 1:
                raise RuntimeError("simulated crash")
            ep.barrier()

        with pytest.raises(TransportError, match="rank 1 failed"):
            run_ranks(2, rank_fn, transport=tr)

    def test_peer_death_before_send_times_out_receiver(self):
        tr = InprocTransport(2, default_timeout=0.3)
        outcomes = {}

        def rank_fn(ep):
            if ep.rank == 0:
                raise RuntimeError("crash before sending")
            try:
                ep.recv(src=0, tag=0)
            except TransportError as exc:
                outcomes["recv"] = str(exc)

        with pytest.raises(TransportError):
            run_ranks(2, rank_fn, transport=tr)
        assert "timed out" in outcomes["recv"]


class TestTimeoutConfiguration:
    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            InprocTransport(2, default_timeout=0.0)

    def test_explicit_timeout_overrides_default(self):
        tr = InprocTransport(2, default_timeout=60.0)

        def rank_fn(ep):
            if ep.rank == 0:
                with pytest.raises(TransportError):
                    ep.recv(src=1, tag=0, timeout=0.05)

        run_ranks(2, rank_fn, transport=tr)

    def test_error_message_names_rank_and_tag(self):
        tr = InprocTransport(1, default_timeout=0.05)
        ep = tr.endpoint(0)
        with pytest.raises(TransportError, match=r"rank 0: recv\(src=0, tag=42\)"):
            ep.recv(src=0, tag=42)
