"""JobSpec: the one validated, serializable run configuration.

Covers the contract every consumer now relies on: single-point
validation (the typed errors the planes used to duplicate), lossless
``to_dict``/``from_dict`` round-trips, a stable ``config_hash``, the
restart-compatibility check checkpoints enforce, and the CLI knob table
the subcommands build their shared option block from.
"""

import argparse

import pytest

from repro.core.jobspec import (
    CLI_KNOBS,
    JobSpec,
    LayoutSpec,
    ProblemSpec,
    RuntimeSpec,
    SpecMismatchError,
    add_spec_cli,
    check_restart_compatible,
    spec_from_args,
)
from repro.grid import GridDescriptor


class TestProblemSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            ProblemSpec(shape=(8, 8), n_grids=1)
        with pytest.raises(ValueError):
            ProblemSpec(shape=(8, 8, 8), n_grids=0)
        with pytest.raises(ValueError):
            ProblemSpec(shape=(8, 8, 8), n_grids=1, spacing=0.0)
        with pytest.raises(ValueError):
            ProblemSpec(shape=(8, 8, 8), n_grids=1, dtype="float32")

    def test_grid_round_trip(self):
        gd = GridDescriptor((6, 8, 10), pbc=(False, True, False), spacing=0.3)
        p = ProblemSpec.from_grid(gd, 4)
        rebuilt = p.grid()
        assert rebuilt.shape == gd.shape
        assert rebuilt.pbc == gd.pbc
        assert rebuilt.spacing == gd.spacing
        assert rebuilt.dtype == gd.dtype

    def test_fd_job(self):
        job = ProblemSpec(shape=(8, 8, 8), n_grids=5).fd_job()
        assert job.n_grids == 5 and job.grid.shape == (8, 8, 8)


class TestLayoutSpec:
    def test_unknown_approach_rejected(self):
        with pytest.raises(ValueError, match="unknown approach"):
            LayoutSpec(approach="flat-turbo")

    def test_batching_validated_per_approach(self):
        with pytest.raises(ValueError, match="does not support batching"):
            LayoutSpec(approach="flat-original", batch_size=8)
        assert LayoutSpec(approach="flat-optimized", batch_size=8).batch_size == 8

    def test_positive_counts(self):
        with pytest.raises(ValueError):
            LayoutSpec(n_cores=0)
        with pytest.raises(ValueError):
            LayoutSpec(n_band_groups=0)


class TestRuntimeSpec:
    @pytest.mark.parametrize("kwargs", [
        {"mixing": 0.0},
        {"mixing": 1.5},
        {"tolerance": -1e-6},
        {"max_iterations": 0},
        {"xc": "pbe"},
        {"checkpoint_every": 0},
        {"eig_tol": -1e-9},
        {"eigensolver": "davidson"},
        {"checkpoint_keep": 0},
    ])
    def test_rejects(self, kwargs):
        with pytest.raises(ValueError):
            RuntimeSpec(**kwargs)

    def test_zero_tolerance_allowed(self):
        # "run all iterations" is a legitimate test-suite configuration
        assert RuntimeSpec(tolerance=0.0).tolerance == 0.0

    def test_solver_and_store_knobs_round_trip(self):
        # the once-scattered knobs (SCFLoop's eig_tol/eigensolver, the
        # stores' keep) now live here and serialize with the spec
        spec = JobSpec(
            problem=ProblemSpec(shape=(8, 8, 8), n_grids=2),
            runtime=RuntimeSpec(
                eig_tol=1e-9, eigensolver="rmm-diis", checkpoint_keep=5
            ),
        )
        loaded = JobSpec.from_dict(spec.to_dict())
        assert loaded.runtime.eig_tol == 1e-9
        assert loaded.runtime.eigensolver == "rmm-diis"
        assert loaded.runtime.checkpoint_keep == 5

    def test_checkpoint_stores_build_from_spec(self, tmp_path):
        from repro.dft import FileCheckpointStore, MemoryCheckpointStore

        spec = JobSpec(
            problem=ProblemSpec(shape=(8, 8, 8), n_grids=2),
            runtime=RuntimeSpec(checkpoint_keep=7),
        )
        assert MemoryCheckpointStore.from_spec(spec).keep == 7
        assert FileCheckpointStore.from_spec(spec, tmp_path / "c").keep == 7

    def test_placement_validated_and_round_trips(self):
        with pytest.raises(ValueError):
            RuntimeSpec(placement="random")
        spec = JobSpec(
            problem=ProblemSpec(shape=(8, 8, 8), n_grids=2),
            runtime=RuntimeSpec(placement="cyclic"),
        )
        assert JobSpec.from_dict(spec.to_dict()).runtime.placement == "cyclic"
        # pre-placement serialized specs load with the default
        d = spec.to_dict()
        del d["runtime"]["placement"]
        assert JobSpec.from_dict(d).runtime.placement == "auto"

    def test_placement_feeds_the_des_runner(self):
        # simulate_spec defaults its placement from the spec; an explicit
        # argument still overrides (the sweep tools rely on it)
        from repro.core.simrun import simulate_spec

        base = JobSpec(
            problem=ProblemSpec(shape=(16, 16, 16), n_grids=4),
            layout=LayoutSpec(approach="flat-optimized", n_cores=4),
        )
        cyc = base.with_runtime(placement="cyclic")
        spr = base.with_runtime(placement="spread")
        assert (
            simulate_spec(cyc).total
            == simulate_spec(base, placement="cyclic").total
        )
        assert (
            simulate_spec(spr).total
            == simulate_spec(base, placement="spread").total
        )


class TestJobSpec:
    def spec(self, **layout):
        lay = dict(approach="hybrid-multiple", n_cores=16, batch_size=2)
        lay.update(layout)
        return JobSpec(
            problem=ProblemSpec(shape=(24, 24, 24), n_grids=8),
            layout=LayoutSpec(**lay),
            runtime=RuntimeSpec(tolerance=1e-5, seed=3),
        )

    def test_band_group_divisibility(self):
        assert self.spec(n_band_groups=2).group_cores == 8
        with pytest.raises(ValueError, match="divisible"):
            JobSpec(
                problem=ProblemSpec(shape=(24, 24, 24), n_grids=9),
                layout=LayoutSpec(n_cores=16, n_band_groups=2),
            )

    def test_group_job(self):
        s = self.spec(n_band_groups=2)
        assert s.group_job().n_grids == 4
        assert s.fd_job().n_grids == 8

    def test_round_trip_exact(self):
        s = self.spec(n_band_groups=2, ramp_up=True)
        assert JobSpec.from_dict(s.to_dict()) == s

    def test_config_hash_stable_and_sensitive(self):
        s = self.spec()
        assert s.config_hash() == self.spec().config_hash()
        assert s.config_hash() != s.with_layout(batch_size=4).config_hash()
        assert s.config_hash() != s.with_problem(n_grids=16).config_hash()
        assert len(s.config_hash()) == 12

    def test_from_dict_rejects_unknown_keys(self):
        d = self.spec().to_dict()
        d["cluster"] = {}
        with pytest.raises(ValueError, match="unknown JobSpec sections"):
            JobSpec.from_dict(d)
        d = self.spec().to_dict()
        d["layout"]["gpus"] = 4
        with pytest.raises(ValueError, match="unknown JobSpec layout fields"):
            JobSpec.from_dict(d)

    def test_from_dict_needs_problem(self):
        with pytest.raises(ValueError, match="problem"):
            JobSpec.from_dict({"layout": {"n_cores": 4}})

    def test_from_dict_fills_missing_fields_with_defaults(self):
        # the one-way compatibility rule: an older writer's spec loads
        d = {"problem": {"shape": [8, 8, 8], "n_grids": 2}}
        s = JobSpec.from_dict(d)
        assert s.layout == LayoutSpec()
        assert s.runtime == RuntimeSpec()

    def test_with_helpers_revalidate(self):
        s = self.spec()
        assert s.with_layout(n_cores=64).layout.n_cores == 64
        with pytest.raises(ValueError):
            s.with_layout(approach="flat-original", batch_size=2)


class TestRestartCompatibility:
    def spec(self, **kw):
        problem = {"shape": (6, 6, 6), "n_grids": 2}
        problem.update(kw.pop("problem", {}))
        return JobSpec(
            problem=ProblemSpec(**problem), layout=LayoutSpec(**kw)
        )

    def test_same_spec_compatible(self):
        check_restart_compatible(self.spec(), self.spec())

    def test_runtime_and_cores_may_differ(self):
        # the shrink-recovery path and a tightened tolerance are legal
        saved = self.spec(n_cores=4)
        current = self.spec(n_cores=2).with_runtime(tolerance=1e-8)
        check_restart_compatible(current, saved)

    def test_problem_mismatch_raises_typed_error(self):
        with pytest.raises(SpecMismatchError, match="does not match"):
            check_restart_compatible(
                self.spec(), self.spec(problem={"shape": (8, 8, 8)})
            )
        with pytest.raises(ValueError, match="n_grids"):
            check_restart_compatible(
                self.spec(), self.spec(problem={"n_grids": 4})
            )

    def test_band_groups_may_differ(self):
        # the regroup-recovery path: a band-parallel snapshot may resume
        # on a different group count (regroup_checkpoint re-slices the
        # band axis), so the layout section is not restart-checked
        saved = JobSpec(
            problem=ProblemSpec(shape=(6, 6, 6), n_grids=2),
            layout=LayoutSpec(
                approach="hybrid-multiple", n_cores=8, n_band_groups=2
            ),
        )
        check_restart_compatible(self.spec(), saved)

    def test_mismatches_list_every_difference(self):
        saved = self.spec(problem={"shape": (8, 8, 8), "n_grids": 4})
        with pytest.raises(SpecMismatchError) as exc:
            check_restart_compatible(self.spec(), saved)
        assert len(exc.value.mismatches) == 2


class TestCliKnobs:
    def parse(self, defaults, argv):
        parser = argparse.ArgumentParser()
        add_spec_cli(parser, defaults)
        return parser.parse_args(argv)

    def test_unknown_knob_rejected(self):
        with pytest.raises(ValueError, match="unknown spec CLI knobs"):
            add_spec_cli(argparse.ArgumentParser(), {"threads": 4})

    def test_only_named_knobs_added(self):
        args = self.parse({"cores": 32}, [])
        assert args.cores == 32
        assert not hasattr(args, "grids")

    def test_bands_alias_maps_to_grids(self):
        defaults = {"grids": 512, "shape": (8, 8, 8)}
        assert self.parse(defaults, ["--bands", "64"]).grids == 64
        assert self.parse(defaults, ["--grids", "64"]).grids == 64
        assert self.parse(defaults, []).grids == 512

    def test_spec_from_args(self):
        args = self.parse(
            {
                "approach": "flat-optimized", "cores": 8, "grids": 4,
                "batch_size": 1, "shape": (16, 16, 16), "ramp_up": False,
            },
            ["--approach", "hybrid-multiple", "--batch-size", "2", "--ramp-up"],
        )
        spec = spec_from_args(args)
        assert spec.layout.approach == "hybrid-multiple"
        assert spec.layout.batch_size == 2
        assert spec.layout.ramp_up is True
        assert spec.problem.shape == (16, 16, 16)
        assert spec_from_args(args, approach="flat-original",
                              batch_size=1).layout.approach == "flat-original"

    def test_knob_table_covers_layout_fields(self):
        # every LayoutSpec field is reachable from the CLI table
        assert {"approach", "cores", "batch_size", "band_groups", "ramp_up"} \
            <= set(CLI_KNOBS)
