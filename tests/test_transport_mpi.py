"""Tests for the optional mpi4py transport adapter.

This environment has no MPI, so the adapter's *behavioural* coverage here
is the graceful-degradation path plus interface conformance (the adapter
must present exactly the endpoint surface the engine consumes).  On a
machine with mpi4py the same module works under ``mpirun`` unchanged.
"""

import inspect

import pytest

from repro.transport.inproc import RankEndpoint
from repro.transport.mpi import (
    MpiEndpoint,
    MpiRecvHandle,
    MpiSendHandle,
    MpiUnavailableError,
    mpi_available,
)

ENGINE_SURFACE = ["isend", "irecv", "recv", "send", "waitall", "barrier", "allreduce"]


class TestAvailabilityProbe:
    def test_probe_is_boolean(self):
        assert mpi_available() in (True, False)

    @pytest.mark.skipif(mpi_available(), reason="mpi4py present on this host")
    def test_construction_fails_loudly_without_mpi4py(self):
        with pytest.raises(MpiUnavailableError, match="mpi4py"):
            MpiEndpoint()


class TestInterfaceConformance:
    """The adapter must expose the exact surface the inproc endpoint does
    (the engine is written against it)."""

    @pytest.mark.parametrize("method", ENGINE_SURFACE)
    def test_method_present(self, method):
        assert callable(getattr(MpiEndpoint, method))

    @pytest.mark.parametrize("method", ENGINE_SURFACE)
    def test_signatures_compatible(self, method):
        """Positional parameters must match the inproc endpoint's."""
        ours = inspect.signature(getattr(MpiEndpoint, method))
        theirs = inspect.signature(getattr(RankEndpoint, method))
        our_pos = [
            p.name
            for p in ours.parameters.values()
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
        their_pos = [
            p.name
            for p in theirs.parameters.values()
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
        assert our_pos == their_pos

    def test_handles_expose_wait_and_complete(self):
        for cls in (MpiRecvHandle, MpiSendHandle):
            assert callable(cls.wait)
            assert isinstance(inspect.getattr_static(cls, "complete"), property)
