"""Tests for the optional mpi4py transport adapter.

This environment has no MPI, so the adapter's *behavioural* coverage here
is the graceful-degradation path plus interface conformance (the adapter
must present exactly the endpoint surface the engine consumes).  On a
machine with mpi4py the same module works under ``mpirun`` unchanged.
"""

import inspect

import numpy as np
import pytest

from repro.transport import mpi
from repro.transport.inproc import RankEndpoint
from repro.transport.mpi import (
    MpiEndpoint,
    MpiRecvHandle,
    MpiSendHandle,
    MpiUnavailableError,
    mpi_available,
)

ENGINE_SURFACE = ["isend", "irecv", "recv", "send", "waitall", "barrier", "allreduce"]


class TestArgumentValidation:
    """The pre-MPI validators: opaque MPI_ERR_RANK becomes a named error."""

    def test_valid_rank_passes_through_as_int(self):
        assert mpi.validate_peer(np.int64(3), size=8) == 3
        assert isinstance(mpi.validate_peer(np.int64(3), size=8), int)

    def test_bool_rank_rejected(self):
        with pytest.raises(TypeError, match="rank must be an integer"):
            mpi.validate_peer(True, size=8)

    def test_non_integer_rank_rejected(self):
        with pytest.raises(TypeError, match="got 1.5"):
            mpi.validate_peer(1.5, size=8)

    def test_out_of_range_rank_rejected(self):
        with pytest.raises(
            ValueError, match="rank 8 out of range for communicator of size 8"
        ):
            mpi.validate_peer(8, size=8)
        with pytest.raises(ValueError, match="dst rank -2"):
            mpi.validate_peer(-2, size=8, what="dst")

    def test_wildcard_source_only_where_allowed(self):
        assert mpi.validate_peer(mpi.ANY_SOURCE, size=8, wildcard=True) == mpi.ANY_SOURCE
        with pytest.raises(ValueError):
            mpi.validate_peer(mpi.ANY_SOURCE, size=8)  # sends: no wildcard

    def test_tag_validation(self):
        assert mpi.validate_tag(np.int32(7)) == 7
        assert mpi.validate_tag(mpi.ANY_TAG, wildcard=True) == mpi.ANY_TAG
        with pytest.raises(ValueError, match="non-negative"):
            mpi.validate_tag(-5)
        with pytest.raises(ValueError, match="non-negative"):
            mpi.validate_tag(mpi.ANY_TAG)  # sends: no wildcard
        with pytest.raises(TypeError, match="tag must be an integer"):
            mpi.validate_tag("halo")


class TestStatsUnderRetries:
    """TransportStats keeps counting across supervised retries — the
    cost of recovery (resent messages, duplicate copies) is visible."""

    def _run(self, plan, n_ranks=2, timeout=0.4, max_retries=2):
        from repro.transport import (
            FaultyTransport,
            InprocTransport,
            RetryPolicy,
            run_ranks_supervised,
        )

        transports = []

        def factory(attempt):
            tr = FaultyTransport(
                InprocTransport(n_ranks, default_timeout=timeout), plan
            )
            transports.append(tr)
            return tr

        def rank_fn(ep):
            if ep.rank == 0:
                ep.send(1, np.arange(16, dtype=float), tag=0)
            else:
                ep.recv(src=0, tag=0)
            ep.barrier()

        res = run_ranks_supervised(
            n_ranks, rank_fn, transport_factory=factory,
            policy=RetryPolicy(max_retries=max_retries, backoff_base=0.0),
        )
        return res, transports

    def test_duplicate_inflates_message_count(self):
        from repro.transport import FaultPlan

        res, transports = self._run(FaultPlan(seed=0, inject={(0, 0): "duplicate"}))
        assert res.attempts == 1
        # one logical send, two wire messages
        assert transports[0].stats[0].messages == 2

    def test_retry_uses_fresh_transport_and_recounts(self):
        from repro.transport import FaultPlan

        res, transports = self._run(FaultPlan(seed=0, inject={(0, 0): "drop"}))
        assert res.attempts == 2 and len(transports) == 2
        # attempt 0: the send was swallowed before reaching the wire
        assert transports[0].stats[0].messages == 0
        # attempt 1: clean resend
        assert transports[1].stats[0].messages == 1
        assert transports[1].stats[0].bytes > 0


class TestAvailabilityProbe:
    def test_probe_is_boolean(self):
        assert mpi_available() in (True, False)

    @pytest.mark.skipif(mpi_available(), reason="mpi4py present on this host")
    def test_construction_fails_loudly_without_mpi4py(self):
        with pytest.raises(MpiUnavailableError, match="mpi4py"):
            MpiEndpoint()


class TestInterfaceConformance:
    """The adapter must expose the exact surface the inproc endpoint does
    (the engine is written against it)."""

    @pytest.mark.parametrize("method", ENGINE_SURFACE)
    def test_method_present(self, method):
        assert callable(getattr(MpiEndpoint, method))

    @pytest.mark.parametrize("method", ENGINE_SURFACE)
    def test_signatures_compatible(self, method):
        """Positional parameters must match the inproc endpoint's."""
        ours = inspect.signature(getattr(MpiEndpoint, method))
        theirs = inspect.signature(getattr(RankEndpoint, method))
        our_pos = [
            p.name
            for p in ours.parameters.values()
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
        their_pos = [
            p.name
            for p in theirs.parameters.values()
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
        assert our_pos == their_pos

    def test_handles_expose_wait_and_complete(self):
        for cls in (MpiRecvHandle, MpiSendHandle):
            assert callable(cls.wait)
            assert isinstance(inspect.getattr_static(cls, "complete"), property)
