"""Tests for the experiment CLI (python -m repro ...)."""

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    assert main(list(argv)) == 0
    return capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_fig5_batch_size_default(self):
        args = build_parser().parse_args(["fig5"])
        assert args.batch_size == 8

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.seed == 0 and args.ranks == 2 and not args.no_scf

    def test_mtbf_defaults(self):
        args = build_parser().parse_args(["mtbf"])
        assert args.cores == 16384
        assert args.grids == 512
        assert tuple(args.shape) == (128, 128, 128)

    def test_wholeapp_bands_option(self):
        # --bands stays as an alias of the shared --grids knob
        args = build_parser().parse_args(["wholeapp", "--bands", "128"])
        assert args.grids == 128
        args = build_parser().parse_args(["wholeapp", "--grids", "128"])
        assert args.grids == 128

    def test_plan_defaults(self):
        args = build_parser().parse_args(["plan"])
        assert args.cores == 16384
        assert args.grids == 2816
        assert tuple(args.shape) == (192, 192, 192)
        assert args.approach is None and args.des_check == 0

    def test_shared_knobs_uniform_across_subcommands(self):
        # the dedup satellite: every spec-backed subcommand parses the
        # same flags the same way
        for cmd in ("bandpar", "plan", "mtbf"):
            args = build_parser().parse_args(
                [cmd, "--cores", "64", "--grids", "32"]
            )
            assert (args.cores, args.grids) == (64, 32)


class TestCommands:
    def test_table1(self, capsys):
        out = run(capsys, "table1")
        assert "850 MHz" in out
        assert "5.1GB/s" in out

    def test_fig2(self, capsys):
        out = run(capsys, "fig2")
        assert "bandwidth MB/s" in out
        assert "Fig 2" in out

    def test_fig5_right_panel(self, capsys):
        out = run(capsys, "fig5")
        assert "batch-size 8" in out
        assert "hyb-mult" in out

    def test_fig5_left_panel(self, capsys):
        out = run(capsys, "fig5", "--batch-size", "1")
        assert "batching disabled" in out

    def test_fig6(self, capsys):
        out = run(capsys, "fig6")
        assert "Gustafson" in out
        assert "MB/node" in out

    def test_fig7(self, capsys):
        out = run(capsys, "fig7")
        assert "2816 grids" in out

    def test_headline(self, capsys):
        out = run(capsys, "headline")
        assert "1.94" in out  # the paper column

    def test_ablation(self, capsys):
        out = run(capsys, "ablation")
        assert "sub-groups" in out
        assert "hybrid multiple" in out

    def test_wholeapp(self, capsys):
        out = run(capsys, "wholeapp", "--bands", "128")
        assert "128 bands" in out
        assert "Amdahl" in out

    def test_validate(self, capsys):
        out = run(capsys, "validate")
        assert "cross-validation" in out
        assert "ratio" in out

    def test_report_contains_all_sections(self, capsys):
        out = run(capsys, "report")
        for marker in ("Table I", "Fig 2", "Fig 5", "Fig 6", "Fig 7",
                       "sub-groups", "headline", "whole application",
                       "cross-validation"):
            assert marker in out

    def test_calibrate(self, capsys):
        out = run(capsys, "calibrate")
        assert "anchor error" in out
        assert "shipped spec error" in out

    def test_schedule(self, capsys):
        out = run(capsys, "schedule", "flat-optimized",
                  "--cores", "8", "--grids", "4", "--batch-size", "2")
        assert "schedule flat-optimized" in out
        for token in ("PostSend", "PostRecv", "WaitAll", "ComputeInterior"):
            assert token in out

    def test_schedule_blocking_variant(self, capsys):
        out = run(capsys, "schedule", "flat-original", "--cores", "4")
        assert "blocking serialized exchange" in out

    def test_schedule_rejects_unknown_approach(self, capsys):
        with pytest.raises(ValueError, match="unknown approach"):
            main(["schedule", "no-such-approach"])

    def test_chaos(self, capsys):
        out = run(capsys, "chaos", "--no-scf")
        assert "Chaos survival matrix" in out
        assert "rank-kill" in out
        assert "chaos suite: PASS (seed 0)" in out

    def test_mtbf(self, capsys):
        out = run(capsys, "mtbf", "--cores", "4096", "--bands", "32",
                  "--shape", "64", "64", "64")
        assert "Daly checkpoint cadence" in out
        assert "32 bands of 64^3 on 4096 cores" in out

    def test_plan(self, capsys):
        out = run(capsys, "plan", "--cores", "32", "--grids", "16",
                  "--shape", "48", "48", "48")
        assert "planner — 16 grids of 48x48x48 on 32 cores" in out
        assert "planner best:" in out
        assert "config " in out  # the JobSpec hash travels with the verdict

    def test_plan_single_approach_with_des_check(self, capsys):
        out = run(capsys, "plan", "--cores", "32", "--grids", "16",
                  "--shape", "48", "48", "48",
                  "--approach", "hybrid-multiple", "--des-check", "1")
        assert "DES ms" in out
        assert "flat" not in out.splitlines()[2]  # only the named approach
